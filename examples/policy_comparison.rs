//! Head-to-head policy comparison on one workload — a miniature of the
//! paper's Table 2/3/4, runnable in a few seconds.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use pgc::core::PolicyKind;
use pgc::sim::{report, Experiment, RunConfig};
use pgc::types::Bytes;

fn main() {
    // A quarter-scale headline run over 3 seeds.
    let seeds = [1, 2, 3];
    let cmp = Experiment::new()
        .compare(&PolicyKind::PAPER, &seeds, |policy, seed| {
            RunConfig::paper(policy, seed).with_heap_growth(Bytes::from_mib(3))
        })
        .expect("comparison runs");

    println!("--- throughput (Table 2 shape) ---");
    print!("{}", report::format_table2(&cmp));
    println!("\n--- storage (Table 3 shape) ---");
    print!("{}", report::format_table3(&cmp));
    println!("\n--- efficiency (Table 4 shape) ---");
    print!("{}", report::format_table4(&cmp));

    // The paper's headline claims, checked on this run:
    let total = |k: PolicyKind| cmp.row(k).unwrap().total_ios.mean;
    let storage = |k: PolicyKind| cmp.row(k).unwrap().max_storage_kb.mean;
    println!("\n--- headline claims ---");
    println!(
        "UpdatedPointer within {:.1}% of MostGarbage total I/O",
        100.0 * (total(PolicyKind::UpdatedPointer) / total(PolicyKind::MostGarbage) - 1.0).abs()
    );
    println!(
        "MutatedPartition {}x NoCollection total I/O (bad GC can lose to no GC)",
        total(PolicyKind::MutatedPartition) / total(PolicyKind::NoCollection)
    );
    println!(
        "NoCollection uses {:.2}x the storage of MostGarbage",
        storage(PolicyKind::NoCollection) / storage(PolicyKind::MostGarbage)
    );
}
