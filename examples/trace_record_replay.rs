//! Trace-driven evaluation end to end: record a synthetic workload to a
//! trace file, replay the file against two different policies, and show
//! that the *same* input stream drives both — the methodological core of
//! the paper's "trace-driven simulation".
//!
//! ```text
//! cargo run --release --example trace_record_replay
//! ```

use pgc::core::PolicyKind;
use pgc::sim::{RunConfig, Simulation};
use pgc::workload::{read_trace, write_trace, Event, SyntheticWorkload, WorkloadParams};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let path = std::env::temp_dir().join("pgc_example.trace");

    // 1. Record: generate a workload once and persist it.
    let params = WorkloadParams::small().with_seed(2024);
    let events: Vec<Event> = SyntheticWorkload::new(params)
        .expect("valid params")
        .collect();
    let file = BufWriter::new(File::create(&path).expect("create trace file"));
    let written = write_trace(file, &events).expect("encode trace");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "recorded {written} events to {} ({:.1} KB, {:.1} bytes/event)",
        path.display(),
        bytes as f64 / 1024.0,
        bytes as f64 / written as f64
    );

    // 2. Replay the identical stream under two policies.
    let replayed: Vec<Event> =
        read_trace(BufReader::new(File::open(&path).expect("open"))).expect("decode trace");
    assert_eq!(replayed, events, "codec round-trip must be lossless");

    for policy in [PolicyKind::UpdatedPointer, PolicyKind::MutatedPartition] {
        let cfg = RunConfig::small().with_policy(policy);
        let out = Simulation::builder(&cfg)
            .events(&replayed)
            .run()
            .expect("replay runs");
        println!(
            "{:<18} total I/Os {:>6}  reclaimed {:>5.0} KB  footprint {:>6.0} KB",
            policy.name(),
            out.totals.total_ios(),
            out.totals.reclaimed_bytes.as_kib_f64(),
            out.totals.max_footprint.as_kib_f64()
        );
    }

    // 3. Replaying is bit-for-bit equivalent to generating live.
    let cfg = RunConfig::small().with_seed(2024);
    let live = Simulation::builder(&cfg).run().expect("live run");
    let from_trace = Simulation::builder(&cfg)
        .events(&replayed)
        .run()
        .expect("trace run");
    assert_eq!(live.totals, from_trace.totals);
    println!("live generation and trace replay agree exactly ✓");

    let _ = std::fs::remove_file(&path);
}
