//! The OO7-flavored assembly workload: cyclic composite parts under churn.
//!
//! Each composite part is a *ring* of atomic parts plus a large design
//! document; replacing a composite orphans a whole cycle. Partitioned
//! collection reclaims cycles that fit one partition but — as the paper's
//! Sec. 6.5 warns — cannot touch cycles that straddle partitions. The
//! complete collection extension (`Database::collect_full`) finishes the
//! job.
//!
//! ```text
//! cargo run --release --example oo7_churn
//! ```

use pgc::core::PolicyKind;
use pgc::odb::oracle;
use pgc::sim::{RunConfig, Simulation};
use pgc::workload::{AssemblyParams, AssemblyWorkload, Event};

fn main() {
    let params = AssemblyParams::default()
        .with_seed(7)
        .with_replacements(800);
    let events: Vec<Event> = AssemblyWorkload::new(params.clone())
        .expect("valid params")
        .collect();
    println!(
        "assembly workload: {} modules, {} initial objects, {} replacements, {} events",
        params.modules,
        params.initial_objects(),
        params.replacements,
        events.len()
    );

    // Drive the paper's best policy and the oracle over the same trace.
    // This workload mutates pointers rarely but allocates constantly
    // (whole-composite replacement), so the paper's overwrite trigger
    // underfires; the allocation-paced trigger extension fits it.
    for policy in [PolicyKind::UpdatedPointer, PolicyKind::MostGarbage] {
        let cfg = RunConfig::paper(policy, 7).with_trigger(pgc::core::Trigger::AllocationBytes(
            pgc::types::Bytes::from_kib(256),
        ));
        let out = Simulation::builder(&cfg)
            .events(&events)
            .run()
            .expect("replay");
        println!(
            "{:<16} total I/Os {:>6}  collections {:>3}  reclaimed {:>6.0} KB  leftover {:>5.0} KB (nepotism {:.0} KB)",
            policy.name(),
            out.totals.total_ios(),
            out.totals.collections,
            out.totals.reclaimed_bytes.as_kib_f64(),
            out.totals.final_garbage_bytes.as_kib_f64(),
            out.totals.final_nepotism_bytes.as_kib_f64(),
        );
    }

    println!(
        "note: on this cyclic workload the \"near-optimal\" MostGarbage policy livelocks —\n\
         it keeps selecting the partition whose garbage is nepotism-retained (uncollectable\n\
         one partition at a time), while UpdatedPointer's overwrite hints find the freshly\n\
         orphaned composites. Greedy most-garbage is only near-optimal when garbage is local."
    );

    // Show the distributed-garbage finale: partitioned collection leaves
    // some cyclic garbage behind; one complete collection clears it.
    let cfg = RunConfig::paper(PolicyKind::UpdatedPointer, 7);
    let db = pgc::odb::Database::new(cfg.db.clone()).expect("db");
    let collector = pgc::core::Collector::with_kind(PolicyKind::UpdatedPointer, 100, 7, 16);
    let mut replayer = pgc::sim::Replayer::new(db, collector);
    replayer.apply_all(&events).expect("replay");
    let (mut db, _, _) = replayer.into_parts();

    let before = oracle::analyze(&db);
    let full = db.collect_full().expect("full collection");
    let after = oracle::analyze(&db);
    println!("---");
    println!(
        "before complete collection: {:>6.0} KB garbage ({:.0} KB nepotism-retained)",
        before.garbage_bytes.as_kib_f64(),
        before.nepotism_bytes.as_kib_f64()
    );
    println!(
        "complete collection reclaimed {:>6.0} KB across {} partitions ({} gc I/Os)",
        full.garbage_bytes.as_kib_f64(),
        full.partitions_collected,
        full.gc_reads + full.gc_writes
    );
    println!(
        "after: {:.0} KB garbage remains",
        after.garbage_bytes.as_kib_f64()
    );
    assert!(after.garbage_bytes.is_zero());
    db.check_invariants();
    println!("no garbage survives a complete collection ✓");
}
