//! Shadow-scoreboard policy race: every paper policy scored in one replay.
//!
//! The paper answers "which partition would each policy pick?" by running
//! the same workload once per policy. Shadow mode collapses that: one
//! driver policy (here the `MostGarbage` oracle) makes the actual
//! collection decisions, while the scoreboards of the other honest paper
//! policies ride the same barrier event bus and record, at every trigger,
//! the victim they *would* have chosen. The result is a per-collection
//! agreement matrix — how often each heuristic endorses the near-optimal
//! choice — from a single pass over the trace.
//!
//! ```text
//! cargo run --release --example policy_race
//! ```

use pgc::core::PolicyKind;
use pgc::sim::report::format_policy_race;
use pgc::sim::shadow::{run_race, RaceOutcome};
use pgc::sim::RunConfig;

const SEEDS: std::ops::Range<u64> = 0..6;

const SHADOWS: [PolicyKind; 5] = [
    PolicyKind::MutatedPartition,
    PolicyKind::Random,
    PolicyKind::WeightedPointer,
    PolicyKind::UpdatedPointer,
    PolicyKind::MostGarbage, // the driver shadowing itself: 100% by construction
];

fn main() {
    let races: Vec<RaceOutcome> = SEEDS
        .map(|seed| {
            let cfg = RunConfig::small()
                .with_policy(PolicyKind::MostGarbage)
                .with_seed(seed);
            let race = run_race(&cfg, &SHADOWS).expect("race");
            println!(
                "seed {seed}: {} activations, driver reclaimed {:.0} KB",
                race.records.len(),
                race.outcome.totals.reclaimed_bytes.as_kib_f64()
            );
            race
        })
        .collect();

    // Per-activation detail for the first race: the full decision matrix.
    println!("\nseed 0, per-activation picks (driver = MostGarbage):");
    print!("{:>4} {:>8}", "act", "driver");
    for s in SHADOWS {
        print!(" {:>18}", s.name());
    }
    println!();
    for rec in &races[0].records {
        print!(
            "{:>4} {:>8}",
            rec.activation,
            rec.driver_victim.map(|v| v.to_string()).unwrap_or_default()
        );
        for pick in &rec.picks {
            let mark = if pick.victim == rec.driver_victim {
                ""
            } else {
                "*"
            };
            print!(
                " {:>17}{}",
                pick.victim.map(|v| v.to_string()).unwrap_or_default(),
                if mark.is_empty() { " " } else { mark }
            );
        }
        println!();
    }
    println!("(* = disagrees with the driver)");

    println!("\n{}", format_policy_race(&races));
}
