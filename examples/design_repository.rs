//! A hand-driven scenario on the low-level database API: a design-document
//! repository (the kind of CAD/engineering workload that motivated ODBMSs
//! and the OO7 benchmark the paper cites).
//!
//! The repository holds *projects*; each project is a tree of assemblies
//! whose leaves carry large design documents (64 KB blobs). Engineers
//! revise documents by unlinking the old subtree and attaching a new one —
//! exactly the pointer-overwrite pattern the `UpdatedPointer` policy feeds
//! on. We drive the `Database` + `Collector` API directly (no synthetic
//! workload) and watch the collector keep storage bounded.
//!
//! ```text
//! cargo run --release --example design_repository
//! ```

use pgc::core::{Collector, PolicyKind};
use pgc::odb::Database;
use pgc::types::{Bytes, DbConfig, Oid, SimRng, SlotId};

const ASSEMBLY_SIZE: Bytes = Bytes(120);
const DOCUMENT_SIZE: Bytes = Bytes(64 * 1024);
const REVISIONS: usize = 400;

/// Builds one project: a root assembly with `fanout` sub-assemblies, each
/// carrying a design document leaf. Returns the project root. The barrier
/// events these mutations log stay queued in the database until the next
/// [`Collector::sync`] pumps them to the policy.
fn build_project(db: &mut Database, fanout: usize) -> Oid {
    let root = db.create_root(ASSEMBLY_SIZE, fanout).expect("create root");
    for slot in 0..fanout {
        attach_assembly(db, root, SlotId(slot as u16));
    }
    root
}

/// Attaches a fresh sub-assembly (with its document) at `parent.slot`.
fn attach_assembly(db: &mut Database, parent: Oid, slot: SlotId) {
    let (assembly, _info) = db
        .create_object(ASSEMBLY_SIZE, 1, parent, slot)
        .expect("create assembly");
    db.create_object(DOCUMENT_SIZE, 0, assembly, SlotId(0))
        .expect("create document");
}

fn main() {
    let cfg = DbConfig::default().with_gc_overwrite_threshold(40);
    let mut db = Database::new(cfg).expect("valid config");
    let mut collector = Collector::with_kind(PolicyKind::UpdatedPointer, 40, 7, 16);
    let mut rng = SimRng::new(7);

    // Three projects, eight assemblies each.
    let projects: Vec<Oid> = (0..3).map(|_| build_project(&mut db, 8)).collect();
    collector.sync(&mut db); // pump the build-phase events
    println!(
        "built {} projects: {} objects, {:.1} MB live",
        projects.len(),
        db.stats().objects_created,
        db.resident_bytes().as_mib_f64()
    );

    // Revision churn: replace a random assembly's subtree with a new one.
    let mut collections = 0;
    for i in 0..REVISIONS {
        let project = *rng.pick(&projects);
        let slot = SlotId(rng.below(8) as u16);

        // Engineers browse before editing.
        db.visit(project).expect("visit project");
        if let Some(assembly) = db.read_slot(project, slot).expect("read slot") {
            db.visit(assembly).expect("visit assembly");
        }

        // The overwrite that orphans the old assembly + document.
        db.write_slot(project, slot, None).expect("unlink");
        let due = collector.sync(&mut db);
        attach_assembly(&mut db, project, slot);

        if due {
            if let Some(outcome) = collector.maybe_collect(&mut db).expect("collect") {
                collections += 1;
                if collections % 10 == 0 || i == REVISIONS - 1 {
                    println!(
                        "after revision {:>3}: collected {} -> reclaimed {:>5.0} KB, copied {:>4.0} KB, footprint {:>6.1} MB",
                        i,
                        outcome.victim,
                        outcome.garbage_bytes.as_kib_f64(),
                        outcome.live_bytes.as_kib_f64(),
                        db.total_footprint().as_mib_f64()
                    );
                }
            }
        }
    }

    let io = db.io_stats();
    let stats = db.stats();
    println!("---");
    println!(
        "revisions: {REVISIONS}, collections: {collections}, reclaimed {:.1} MB",
        stats.reclaimed_bytes.as_mib_f64()
    );
    println!(
        "page I/Os: {} app + {} gc (buffer hit rate {:.1}%)",
        io.app_ios(),
        io.gc_ios(),
        io.hit_rate().unwrap_or(0.0) * 100.0
    );
    println!(
        "storage: {:.1} MB footprint for {:.1} MB of live data",
        db.total_footprint().as_mib_f64(),
        db.resident_bytes().as_mib_f64()
    );
    db.check_invariants();
    println!("database invariants hold ✓");
}
