//! Quickstart: run one simulated object database under the paper's winning
//! partition selection policy and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pgc::prelude::*;

fn main() {
    // A small, seconds-scale configuration. `RunConfig::paper(..)` gives
    // the full-size setup from the paper's evaluation instead.
    let cfg = RunConfig::small()
        .with_policy(PolicyKind::UpdatedPointer)
        .with_seed(42);

    let outcome = Simulation::builder(&cfg).run().expect("simulation runs");
    let t = &outcome.totals;

    println!("policy             : {}", outcome.policy);
    println!("application events : {}", t.events);
    println!(
        "page I/Os          : {} app + {} gc = {}",
        t.app_ios,
        t.gc_ios,
        t.total_ios()
    );
    println!("collections        : {}", t.collections);
    println!(
        "garbage reclaimed  : {:.0} KB of {:.0} KB generated ({:.1}%)",
        t.reclaimed_bytes.as_kib_f64(),
        t.actual_garbage_bytes().as_kib_f64(),
        t.fraction_reclaimed_pct()
    );
    println!(
        "collector efficiency: {:.2} KB reclaimed per collector I/O",
        t.efficiency_kb_per_io()
    );
    println!(
        "storage footprint  : {:.0} KB across {} partitions ({:.0} KB live at end)",
        t.max_footprint.as_kib_f64(),
        t.partitions,
        t.final_live_bytes.as_kib_f64()
    );

    // Price the I/O in time, on the paper's hardware and on a modern disk.
    let page = cfg.db.page_size;
    let old = pgc::buffer::DiskModel::circa_1993(page);
    let new = pgc::buffer::DiskModel::modern_hdd(page);
    println!(
        "estimated I/O time : {:.1} s on a 1993 disk, {:.1} s on a modern HDD",
        old.seconds_for(t.total_ios()),
        new.seconds_for(t.total_ios())
    );
}
