//! # pgc — Partitioned Garbage Collection for Object Databases
//!
//! A from-scratch Rust reproduction of **Cook, Wolf & Zorn, "Partition
//! Selection Policies in Object Database Garbage Collection"** (SIGMOD 1994;
//! University of Colorado TR CU-CS-653-93).
//!
//! The crate is a facade over the workspace: it re-exports the public API of
//! every subsystem so downstream users can depend on `pgc` alone.
//!
//! ## What's inside
//!
//! * [`types`] — identifiers, units, configuration, seeded RNG.
//! * [`buffer`] — an LRU write-back page buffer that accounts page I/O,
//!   split between application-attributed and collector-attributed
//!   operations (the paper's cost model).
//! * [`storage`] — the physical model: 8 KB pages grouped into contiguous
//!   partitions, bump allocation with near-parent placement, and the object
//!   table mapping stable [`types::Oid`]s to physical locations.
//! * [`odb`] — the simulated object database: object graph, root set, write
//!   barrier, remembered sets and out-of-partition sets, object weights, and
//!   a full-reachability oracle.
//! * [`core`] — the paper's contribution: the [`core::SelectionPolicy`]
//!   trait, the six policies of the paper (plus extensions), the
//!   breadth-first copying partition collector, and the overwrite-count GC
//!   scheduler.
//! * [`workload`] — the synthetic augmented-binary-tree application model
//!   and a versioned binary trace codec for record/replay.
//! * [`sim`] — the trace-driven simulator, metrics, multi-seed experiment
//!   runner, and the experiment definitions that regenerate every table and
//!   figure in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use pgc::sim::{RunConfig, Simulation};
//! use pgc::core::PolicyKind;
//!
//! // A small run: ~1 MB of allocated objects, UpdatedPointer selection.
//! let cfg = RunConfig::small().with_policy(PolicyKind::UpdatedPointer);
//! let outcome = Simulation::run(&cfg).expect("simulation runs");
//! println!(
//!     "total page I/Os: {}, reclaimed: {} KB",
//!     outcome.totals.total_ios(),
//!     outcome.totals.reclaimed_bytes.as_kib_f64(),
//! );
//! ```

#![forbid(unsafe_code)]

pub use pgc_buffer as buffer;
pub use pgc_core as core;
pub use pgc_odb as odb;
pub use pgc_sim as sim;
pub use pgc_storage as storage;
pub use pgc_types as types;
pub use pgc_workload as workload;
