//! # pgc — Partitioned Garbage Collection for Object Databases
//!
//! A from-scratch Rust reproduction of **Cook, Wolf & Zorn, "Partition
//! Selection Policies in Object Database Garbage Collection"** (SIGMOD 1994;
//! University of Colorado TR CU-CS-653-93).
//!
//! The crate is a facade over the workspace: it re-exports the public API of
//! every subsystem so downstream users can depend on `pgc` alone.
//!
//! ## What's inside
//!
//! * [`types`] — identifiers, units, configuration, seeded RNG.
//! * [`buffer`] — an LRU write-back page buffer that accounts page I/O,
//!   split between application-attributed and collector-attributed
//!   operations (the paper's cost model).
//! * [`storage`] — the physical model: 8 KB pages grouped into contiguous
//!   partitions, bump allocation with near-parent placement, and the object
//!   table mapping stable [`types::Oid`]s to physical locations.
//! * [`odb`] — the simulated object database: object graph, root set, write
//!   barrier, remembered sets and out-of-partition sets, object weights, and
//!   a full-reachability oracle.
//! * [`core`] — the paper's contribution: the [`core::SelectionPolicy`]
//!   trait, the six policies of the paper (plus extensions), the
//!   breadth-first copying partition collector, and the overwrite-count GC
//!   scheduler.
//! * [`workload`] — the synthetic augmented-binary-tree application model
//!   and a versioned binary trace codec for record/replay.
//! * [`telemetry`] — sampling-gated observability riding the barrier event
//!   bus: lock-free counters and histograms, per-activation records, and a
//!   JSONL export — provably non-perturbing.
//! * [`sim`] — the trace-driven simulator, metrics, multi-seed experiment
//!   runner, and the experiment definitions that regenerate every table and
//!   figure in the paper.
//! * [`durable`] — the storage backend: per-partition snapshot files at
//!   collection safepoints, an append-only change log of input events, and
//!   the checksummed run manifest, all behind
//!   [`durable::DurabilityConfig`]; [`sim::durable::recover`] replays a
//!   data directory back into a bit-identical run.
//! * [`server`] — the sharded multi-tenant runtime: a deterministic router
//!   hashing client streams onto shard worker threads, one self-contained
//!   [`sim::Shard`] per session, cross-shard references as weak remset
//!   traffic over the barrier event bus, and per-stream durable data
//!   directories via [`server::ServerConfig::with_data_dir`].
//!
//! ## Quickstart
//!
//! ```
//! use pgc::prelude::*;
//!
//! // A small run: ~1 MB of allocated objects, UpdatedPointer selection.
//! let cfg = RunConfig::small().with_policy(PolicyKind::UpdatedPointer);
//! let outcome = Simulation::builder(&cfg).run().expect("simulation runs");
//! println!(
//!     "total page I/Os: {}, reclaimed: {} KB",
//!     outcome.totals.total_ios(),
//!     outcome.totals.reclaimed_bytes.as_kib_f64(),
//! );
//! ```
//!
//! Multi-seed policy comparisons and telemetry taps go through the same
//! prelude:
//!
//! ```no_run
//! use pgc::prelude::*;
//!
//! let cmp = Experiment::new()
//!     .with_telemetry(TelemetryLevel::Metrics)
//!     .compare(&PolicyKind::PAPER, &[1, 2, 3], RunConfig::paper)
//!     .unwrap();
//! println!("{}", report::format_table2(&cmp));
//! println!("{}", report::format_telemetry(&cmp));
//! ```

#![forbid(unsafe_code)]

pub use pgc_buffer as buffer;
pub use pgc_core as core;
pub use pgc_durable as durable;
pub use pgc_odb as odb;
pub use pgc_server as server;
pub use pgc_sim as sim;
pub use pgc_storage as storage;
pub use pgc_telemetry as telemetry;
pub use pgc_types as types;
pub use pgc_workload as workload;

/// The common vocabulary, importable in one line: configuration and units,
/// the policy enum, the simulation and experiment builders, their outcome
/// types, telemetry, durability and recovery, the shared-trace cache, and
/// the table renderers.
///
/// ```
/// use pgc::prelude::*;
///
/// let out = Simulation::builder(&RunConfig::small()).run().unwrap();
/// assert!(out.totals.collections > 0);
/// ```
pub mod prelude {
    pub use pgc_core::{PolicyKind, Trigger};
    pub use pgc_durable::{DurabilityConfig, DurabilityMode};
    pub use pgc_server::{FleetOutcome, Server, ServerConfig, StreamHandle, StreamId};
    pub use pgc_sim::report;
    pub use pgc_sim::{
        outcome_digest, recover, run_race, run_race_with_telemetry, Comparison, Experiment,
        PolicyRow, RaceOutcome, RecoveredRun, RunConfig, RunOutcome, RunTelemetry, RunTotals,
        Shard, Simulation, SimulationBuilder, Summary,
    };
    pub use pgc_telemetry::{TelemetryLevel, TelemetrySnapshot};
    pub use pgc_types::{Bytes, DbConfig, PlacementPolicy};
    pub use pgc_workload::{EncodedTrace, TraceCache, TraceSegment, WorkloadParams};
}
