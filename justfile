# Project task runner. `just <recipe>`; plain `just` lists recipes.

default:
    @just --list

# Tier-1 verification: the build-and-test gate every change must pass.
verify:
    cargo build --release
    cargo test -q

# Lint gate: clippy across every target, warnings are errors.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Formatting gate.
fmt-check:
    cargo fmt --all -- --check

fmt:
    cargo fmt --all

# All gates in one go.
check: fmt-check clippy verify

# Regenerate BENCH_hotpath.json and BENCH_experiment.json (perf-regression
# numbers, including the shared-trace sweep gate). Embeds the recorded
# pre-change baseline when BENCH_baseline.json is present.
bench-report:
    cargo run --release -p pgc-bench --bin perf_report

# Measure the shared-trace experiment engine: the full 11-policy
# paper-config sweep, engine vs per-job generation, written to
# BENCH_experiment.json (exits nonzero if the speedup gate regresses).
sweep:
    cargo run --release -p pgc-bench --bin perf_report

# Record the pre-change baseline (BENCH_baseline.json): build the shared
# measurement binary against the last pre-dense-structures commit in a
# scratch worktree, with only the offline-RNG change patched in so both
# trees replay identical event streams.
bench-baseline ref="5e4c50c":
    git worktree add --force target/seed-baseline {{ref}}
    cp Cargo.lock Cargo.toml target/seed-baseline/
    for c in bench buffer core odb sim storage types workload; do cp crates/$c/Cargo.toml target/seed-baseline/crates/$c/Cargo.toml; done
    cp crates/types/src/rng.rs target/seed-baseline/crates/types/src/rng.rs
    cp crates/bench/src/bin/perf_baseline.rs target/seed-baseline/crates/bench/src/bin/perf_baseline.rs
    cd target/seed-baseline && cargo build --release --offline -p pgc-bench --bin perf_baseline
    ./target/seed-baseline/target/release/perf_baseline
    git worktree remove --force target/seed-baseline

# Tap the headline comparison for telemetry: writes one JSONL line per
# collector activation (schema pgc-telemetry/v1) to telemetry.jsonl and
# prints the per-policy telemetry summary table. Scaled down by default;
# pass scale=100 for the full paper workload.
telemetry out="telemetry.jsonl" scale="25" seeds="3":
    cargo run --release -p pgc-bench --bin table2_throughput -- \
        --seeds {{seeds}} --scale {{scale}} --telemetry-out {{out}}

# Dependency-free micro-benchmarks (PGC_BENCH_QUICK=1 for a fast pass).
bench:
    cargo bench -p pgc-bench

# Intra-run parallelism: the parallel_hotpath section of the perf report
# (BENCH_parallel.json — batched decode + parallel-marking speedups and the
# Serial == Deterministic(n) bit-identity check) plus the mode-invariance
# test suite. `threads` sets --intra-threads.
parallel threads="4":
    cargo test -q -p pgc-sim --test parallel_equivalence
    cargo run --release -p pgc-bench --bin perf_report -- --intra-threads {{threads}}

# The sharded multi-tenant server: run the client_server driver on a
# fleet of `shards` shard worker threads hosting `streams` client
# streams (per-shard telemetry, aggregate events/sec, inter-shard
# remset counters, and a stream-0 fidelity check against a dedicated
# single-Simulation run). Scaled down by default; pass scale=100 for
# full paper-size tenants.
serve shards="4" streams="8" scale="25":
    cargo run --release -p pgc-bench --bin client_server -- \
        --shards {{shards}} --streams {{streams}} --scale {{scale}}

# Shard-count invariance: the 1/2/4-shard equivalence suite plus the
# server_scalability section of the perf report (BENCH_server.json).
shards:
    cargo test -q --test shard_equivalence
    cargo run --release -p pgc-bench --bin perf_report

# Zero-copy ingest: the submit-path equivalence suite plus the ingest
# section of the perf report (clone vs segment legs, BENCH_server.json).
ingest:
    cargo test -q --test shard_equivalence
    cargo run --release -p pgc-bench --bin perf_report

# Crash-recovery smoke: a clean durable run recovered with a pinned
# digest, then a mid-run kill (no final snapshot, buffered log tail
# dropped) recovered from whatever reached disk. Exercises the same
# tooling the CI smoke job runs; scratch dirs live under target/ and are
# removed afterwards.
recover:
    rm -rf target/recover-smoke
    cargo build --release -p pgc-bench --bin recover_tool
    d=$(./target/release/recover_tool run target/recover-smoke/clean updated-pointer 1 | awk '/^run:/ {print $NF}'); \
        ./target/release/recover_tool recover target/recover-smoke/clean --expect $d
    ./target/release/recover_tool crash target/recover-smoke/killed 5000 most-garbage 2
    ./target/release/recover_tool recover target/recover-smoke/killed
    rm -rf target/recover-smoke
