//! Integration tests for the OO7-flavored assembly workload: cyclic
//! composite garbage, policy behaviour under churn, and the complete
//! collection extension.

use pgc::core::{PolicyKind, Trigger};
use pgc::odb::oracle;
use pgc::sim::{RunConfig, Simulation};
use pgc::types::Bytes;
use pgc::workload::{AssemblyParams, AssemblyWorkload, Event};

fn small_events(seed: u64) -> Vec<Event> {
    AssemblyWorkload::new(AssemblyParams::small().with_seed(seed))
        .expect("valid params")
        .collect()
}

fn small_cfg(policy: PolicyKind) -> RunConfig {
    let mut cfg = RunConfig::small().with_policy(policy);
    // Composite churn is allocation-paced, not overwrite-paced.
    cfg.trigger = Some(Trigger::AllocationBytes(Bytes::from_kib(8)));
    cfg
}

#[test]
fn assembly_trace_replays_under_every_policy() {
    let events = small_events(1);
    for policy in PolicyKind::ALL {
        let out = Simulation::builder(&small_cfg(policy))
            .events(&events)
            .run()
            .expect("replay");
        assert_eq!(out.totals.events, events.len() as u64, "{policy}");
        if policy != PolicyKind::NoCollection {
            assert!(out.totals.collections > 0, "{policy} must collect");
        }
    }
}

#[test]
fn replacements_generate_cyclic_garbage() {
    // Without any collection, the orphaned composites (rings + documents)
    // pile up as garbage the oracle can see.
    let events = small_events(2);
    let out = Simulation::builder(&small_cfg(PolicyKind::NoCollection))
        .events(&events)
        .run()
        .expect("replay");
    let params = AssemblyParams::small();
    let composite_bytes =
        (params.atomics_per_composite as u64 + 1) * params.small_size + params.document_size;
    // 60 replacements orphan 60 composites (minus whatever the final state
    // retains; replacements always orphan the *old* occupant).
    assert!(
        out.totals.final_garbage_bytes >= Bytes(composite_bytes * 50),
        "expected ≥50 orphaned composites, got {} bytes",
        out.totals.final_garbage_bytes
    );
}

#[test]
fn updated_pointer_beats_the_greedy_oracle_on_cyclic_churn() {
    // The oo7_churn example's observation, pinned as a test: with heavy
    // cross-partition cyclic garbage, greedy MostGarbage keeps selecting
    // partitions whose garbage is nepotism-retained, while UpdatedPointer
    // follows the overwrite hints to reclaimable garbage. Checked at full
    // partition geometry where composites straddle partitions.
    let events: Vec<Event> = AssemblyWorkload::new(
        AssemblyParams::default()
            .with_seed(3)
            .with_replacements(300),
    )
    .expect("params")
    .collect();
    let run = |policy| {
        let cfg = RunConfig::paper(policy, 3)
            .with_trigger(Trigger::AllocationBytes(Bytes::from_kib(256)));
        Simulation::builder(&cfg)
            .events(&events)
            .run()
            .expect("replay")
            .totals
    };
    let updated = run(PolicyKind::UpdatedPointer);
    let oracle_policy = run(PolicyKind::MostGarbage);
    assert!(
        updated.reclaimed_bytes > oracle_policy.reclaimed_bytes,
        "UpdatedPointer ({}) should out-reclaim greedy MostGarbage ({}) here",
        updated.reclaimed_bytes,
        oracle_policy.reclaimed_bytes
    );
}

#[test]
fn complete_collection_clears_all_assembly_garbage() {
    let events = small_events(4);
    let cfg = small_cfg(PolicyKind::UpdatedPointer);
    let db = pgc::odb::Database::new(cfg.db.clone()).expect("db");
    let collector = pgc::core::Collector::with_kind(PolicyKind::UpdatedPointer, 50, 4, 16);
    let mut replayer = pgc::sim::Replayer::new(db, collector);
    replayer.apply_all(&events).expect("replay");
    let (mut db, _, _) = replayer.into_parts();

    let before = oracle::analyze(&db);
    assert!(before.garbage_bytes > Bytes::ZERO, "churn left garbage");
    let full = db.collect_full().expect("full collection");
    assert_eq!(full.garbage_bytes, before.garbage_bytes);
    let after = oracle::analyze(&db);
    assert!(after.garbage_bytes.is_zero());
    assert_eq!(after.live_bytes, before.live_bytes, "no live loss");
    db.check_invariants();
}

#[test]
fn assembly_trace_round_trips_through_codec() {
    let events = small_events(5);
    let mut buf = Vec::new();
    pgc::workload::write_trace(&mut buf, &events).expect("encode");
    let back = pgc::workload::read_trace(buf.as_slice()).expect("decode");
    assert_eq!(back, events);
    // And the replay of the decoded trace matches the original.
    let a = Simulation::builder(&small_cfg(PolicyKind::Random))
        .events(&events)
        .run()
        .expect("a");
    let b = Simulation::builder(&small_cfg(PolicyKind::Random))
        .events(&back)
        .run()
        .expect("b");
    assert_eq!(a.totals, b.totals);
}
