//! Bus-equivalence regression tests for the barrier event bus refactor.
//!
//! The golden values below were produced by the pre-refactor code (the
//! commit before the event bus landed), replaying the identical fixed-seed
//! workloads through the old `observe_write`/`observe_allocation` barrier
//! path. The bus-driven replay must reproduce every `RunTotals` field and
//! the exact victim sequence (FNV-1a digest) bit for bit: the typed event
//! stream is a refactor of the delivery mechanism, not of the simulated
//! semantics.
//!
//! Shadow scoreboards ride the same bus as bystanders; the second test
//! checks at integration level that registering every honest policy as a
//! shadow perturbs nothing about the driver's run.

use pgc::core::PolicyKind;
use pgc::sim::shadow::run_race;
use pgc::sim::{RunConfig, RunTotals, Simulation};
use pgc::types::Bytes;

fn fnv1a64(victims: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in victims {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// `(policy, seed, pre-refactor totals, collection count, victim digest)`.
type Golden = (PolicyKind, u64, RunTotals, usize, u64);

fn check(cfg: &RunConfig, golden: &[Golden]) {
    for (policy, seed, totals, n_collections, digest) in golden {
        let cfg = cfg.clone().with_policy(*policy).with_seed(*seed);
        let out = Simulation::builder(&cfg).run().expect("run");
        assert_eq!(
            out.totals, *totals,
            "{policy:?} seed {seed}: totals diverged from the pre-bus replay"
        );
        let victims: Vec<u32> = out.collections.iter().map(|c| c.victim.index()).collect();
        assert_eq!(victims.len(), *n_collections, "{policy:?} seed {seed}");
        assert_eq!(
            fnv1a64(&victims),
            *digest,
            "{policy:?} seed {seed}: victim sequence diverged from the pre-bus replay"
        );
    }
}

#[rustfmt::skip]
const GOLDEN_SMALL: &[Golden] = &[
    (PolicyKind::UpdatedPointer, 0, RunTotals { app_ios: 2639, gc_ios: 368, max_footprint: Bytes(458752), partitions: 28, collections: 12, reclaimed_bytes: Bytes(106848), reclaimed_objects: 1058, final_live_bytes: Bytes(216484), final_garbage_bytes: Bytes(207024), final_nepotism_bytes: Bytes(48641), events: 11630, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x93a231df09e46e48u64),
    (PolicyKind::UpdatedPointer, 1, RunTotals { app_ios: 2339, gc_ios: 279, max_footprint: Bytes(442368), partitions: 27, collections: 11, reclaimed_bytes: Bytes(105870), reclaimed_objects: 1047, final_live_bytes: Bytes(196570), final_garbage_bytes: Bytes(225964), final_nepotism_bytes: Bytes(67415), events: 9423, app_net_ops: 0, gc_net_ops: 0 }, 11, 0x7a30cde8df5b3077u64),
    (PolicyKind::UpdatedPointer, 2, RunTotals { app_ios: 2548, gc_ios: 370, max_footprint: Bytes(458752), partitions: 28, collections: 12, reclaimed_bytes: Bytes(113332), reclaimed_objects: 1142, final_live_bytes: Bytes(170153), final_garbage_bytes: Bytes(252560), final_nepotism_bytes: Bytes(74922), events: 10074, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x3dbbbdd3ecea04c9u64),
    (PolicyKind::UpdatedPointer, 3, RunTotals { app_ios: 2652, gc_ios: 329, max_footprint: Bytes(458752), partitions: 28, collections: 12, reclaimed_bytes: Bytes(107712), reclaimed_objects: 1004, final_live_bytes: Bytes(235558), final_garbage_bytes: Bytes(186065), final_nepotism_bytes: Bytes(37660), events: 10160, app_net_ops: 0, gc_net_ops: 0 }, 12, 0xf5e8edb87898ab89u64),
    (PolicyKind::UpdatedPointer, 4, RunTotals { app_ios: 2178, gc_ios: 264, max_footprint: Bytes(475136), partitions: 29, collections: 9, reclaimed_bytes: Bytes(85954), reclaimed_objects: 867, final_live_bytes: Bytes(233786), final_garbage_bytes: Bytes(210989), final_nepotism_bytes: Bytes(63895), events: 9024, app_net_ops: 0, gc_net_ops: 0 }, 9, 0x3a77e8acb041496bu64),
    (PolicyKind::UpdatedPointer, 5, RunTotals { app_ios: 2678, gc_ios: 291, max_footprint: Bytes(442368), partitions: 27, collections: 12, reclaimed_bytes: Bytes(121932), reclaimed_objects: 1200, final_live_bytes: Bytes(247830), final_garbage_bytes: Bytes(171217), final_nepotism_bytes: Bytes(40015), events: 11220, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x7a706a54cc7ed4bau64),
    (PolicyKind::UpdatedPointer, 6, RunTotals { app_ios: 2530, gc_ios: 307, max_footprint: Bytes(458752), partitions: 28, collections: 10, reclaimed_bytes: Bytes(93043), reclaimed_objects: 937, final_live_bytes: Bytes(230989), final_garbage_bytes: Bytes(204368), final_nepotism_bytes: Bytes(63701), events: 10553, app_net_ops: 0, gc_net_ops: 0 }, 10, 0xdc0317ebc598be2cu64),
    (PolicyKind::UpdatedPointer, 7, RunTotals { app_ios: 2193, gc_ios: 299, max_footprint: Bytes(458752), partitions: 28, collections: 11, reclaimed_bytes: Bytes(107170), reclaimed_objects: 983, final_live_bytes: Bytes(226453), final_garbage_bytes: Bytes(206815), final_nepotism_bytes: Bytes(49195), events: 8627, app_net_ops: 0, gc_net_ops: 0 }, 11, 0x645cb02f1de1b584u64),
    (PolicyKind::UpdatedPointer, 8, RunTotals { app_ios: 2459, gc_ios: 285, max_footprint: Bytes(442368), partitions: 27, collections: 12, reclaimed_bytes: Bytes(121407), reclaimed_objects: 1206, final_live_bytes: Bytes(216487), final_garbage_bytes: Bytes(186516), final_nepotism_bytes: Bytes(23850), events: 10960, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x93c10dd8209056bdu64),
    (PolicyKind::UpdatedPointer, 9, RunTotals { app_ios: 2326, gc_ios: 368, max_footprint: Bytes(458752), partitions: 28, collections: 11, reclaimed_bytes: Bytes(100468), reclaimed_objects: 914, final_live_bytes: Bytes(207270), final_garbage_bytes: Bytes(226709), final_nepotism_bytes: Bytes(38104), events: 10423, app_net_ops: 0, gc_net_ops: 0 }, 11, 0xcbecd7ecd78a94cbu64),
    (PolicyKind::MostGarbage, 0, RunTotals { app_ios: 2678, gc_ios: 285, max_footprint: Bytes(425984), partitions: 26, collections: 12, reclaimed_bytes: Bytes(135377), reclaimed_objects: 1283, final_live_bytes: Bytes(216484), final_garbage_bytes: Bytes(178495), final_nepotism_bytes: Bytes(57547), events: 11630, app_net_ops: 0, gc_net_ops: 0 }, 12, 0xd5e2aa04394c478bu64),
    (PolicyKind::MostGarbage, 1, RunTotals { app_ios: 2338, gc_ios: 234, max_footprint: Bytes(425984), partitions: 26, collections: 11, reclaimed_bytes: Bytes(123827), reclaimed_objects: 992, final_live_bytes: Bytes(196570), final_garbage_bytes: Bytes(208007), final_nepotism_bytes: Bytes(47839), events: 9423, app_net_ops: 0, gc_net_ops: 0 }, 11, 0xa5587a1f1f44398fu64),
    (PolicyKind::MostGarbage, 2, RunTotals { app_ios: 2667, gc_ios: 322, max_footprint: Bytes(491520), partitions: 30, collections: 12, reclaimed_bytes: Bytes(76085), reclaimed_objects: 599, final_live_bytes: Bytes(170153), final_garbage_bytes: Bytes(289807), final_nepotism_bytes: Bytes(79004), events: 10074, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x1922f81d99125a31u64),
    (PolicyKind::MostGarbage, 3, RunTotals { app_ios: 2648, gc_ios: 204, max_footprint: Bytes(425984), partitions: 26, collections: 12, reclaimed_bytes: Bytes(145884), reclaimed_objects: 1216, final_live_bytes: Bytes(235558), final_garbage_bytes: Bytes(147893), final_nepotism_bytes: Bytes(28493), events: 10160, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x3940ea46be3deb7bu64),
    (PolicyKind::MostGarbage, 4, RunTotals { app_ios: 2161, gc_ios: 176, max_footprint: Bytes(458752), partitions: 28, collections: 9, reclaimed_bytes: Bytes(106405), reclaimed_objects: 990, final_live_bytes: Bytes(233786), final_garbage_bytes: Bytes(190538), final_nepotism_bytes: Bytes(62204), events: 9024, app_net_ops: 0, gc_net_ops: 0 }, 9, 0xee10b0c50b49c408u64),
    (PolicyKind::MostGarbage, 5, RunTotals { app_ios: 2706, gc_ios: 313, max_footprint: Bytes(442368), partitions: 27, collections: 12, reclaimed_bytes: Bytes(116694), reclaimed_objects: 1144, final_live_bytes: Bytes(247830), final_garbage_bytes: Bytes(176455), final_nepotism_bytes: Bytes(46454), events: 11220, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x572da8651f2310d2u64),
    (PolicyKind::MostGarbage, 6, RunTotals { app_ios: 2553, gc_ios: 287, max_footprint: Bytes(458752), partitions: 28, collections: 10, reclaimed_bytes: Bytes(94888), reclaimed_objects: 778, final_live_bytes: Bytes(230989), final_garbage_bytes: Bytes(202523), final_nepotism_bytes: Bytes(64198), events: 10553, app_net_ops: 0, gc_net_ops: 0 }, 10, 0xb09ed37cd5c3aea7u64),
    (PolicyKind::MostGarbage, 7, RunTotals { app_ios: 2239, gc_ios: 418, max_footprint: Bytes(573440), partitions: 35, collections: 11, reclaimed_bytes: Bytes(0), reclaimed_objects: 0, final_live_bytes: Bytes(226453), final_garbage_bytes: Bytes(313985), final_nepotism_bytes: Bytes(102383), events: 8627, app_net_ops: 0, gc_net_ops: 0 }, 11, 0x00d9d049aff907d5u64),
    (PolicyKind::MostGarbage, 8, RunTotals { app_ios: 2473, gc_ios: 247, max_footprint: Bytes(425984), partitions: 26, collections: 12, reclaimed_bytes: Bytes(142761), reclaimed_objects: 1348, final_live_bytes: Bytes(216487), final_garbage_bytes: Bytes(165162), final_nepotism_bytes: Bytes(27987), events: 10960, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x36e0c647cf349cc6u64),
    (PolicyKind::MostGarbage, 9, RunTotals { app_ios: 2338, gc_ios: 360, max_footprint: Bytes(475136), partitions: 29, collections: 11, reclaimed_bytes: Bytes(82222), reclaimed_objects: 647, final_live_bytes: Bytes(207270), final_garbage_bytes: Bytes(244955), final_nepotism_bytes: Bytes(68242), events: 10423, app_net_ops: 0, gc_net_ops: 0 }, 11, 0x866e81ee07ac57fcu64),
    (PolicyKind::Random, 0, RunTotals { app_ios: 2677, gc_ios: 381, max_footprint: Bytes(475136), partitions: 29, collections: 12, reclaimed_bytes: Bytes(83659), reclaimed_objects: 752, final_live_bytes: Bytes(216484), final_garbage_bytes: Bytes(230213), final_nepotism_bytes: Bytes(57850), events: 11630, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x99963ac0bd3f50fcu64),
    (PolicyKind::Random, 1, RunTotals { app_ios: 2347, gc_ios: 224, max_footprint: Bytes(507904), partitions: 31, collections: 11, reclaimed_bytes: Bytes(54639), reclaimed_objects: 535, final_live_bytes: Bytes(196570), final_garbage_bytes: Bytes(277195), final_nepotism_bytes: Bytes(72299), events: 9423, app_net_ops: 0, gc_net_ops: 0 }, 11, 0x2f075901a3bddabbu64),
    (PolicyKind::Random, 2, RunTotals { app_ios: 2646, gc_ios: 312, max_footprint: Bytes(524288), partitions: 32, collections: 12, reclaimed_bytes: Bytes(54759), reclaimed_objects: 457, final_live_bytes: Bytes(170153), final_garbage_bytes: Bytes(311133), final_nepotism_bytes: Bytes(98402), events: 10074, app_net_ops: 0, gc_net_ops: 0 }, 12, 0xee59c51ecfc7863du64),
    (PolicyKind::Random, 3, RunTotals { app_ios: 2646, gc_ios: 362, max_footprint: Bytes(491520), partitions: 30, collections: 12, reclaimed_bytes: Bytes(69261), reclaimed_objects: 619, final_live_bytes: Bytes(235558), final_garbage_bytes: Bytes(224516), final_nepotism_bytes: Bytes(64899), events: 10160, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x97bd82b9cc54a47eu64),
    (PolicyKind::Random, 4, RunTotals { app_ios: 2170, gc_ios: 269, max_footprint: Bytes(507904), partitions: 31, collections: 9, reclaimed_bytes: Bytes(61017), reclaimed_objects: 532, final_live_bytes: Bytes(233786), final_garbage_bytes: Bytes(235926), final_nepotism_bytes: Bytes(63074), events: 9024, app_net_ops: 0, gc_net_ops: 0 }, 9, 0xf2c06320d3b632a7u64),
    (PolicyKind::Random, 5, RunTotals { app_ios: 2716, gc_ios: 342, max_footprint: Bytes(507904), partitions: 31, collections: 12, reclaimed_bytes: Bytes(59082), reclaimed_objects: 589, final_live_bytes: Bytes(247830), final_garbage_bytes: Bytes(234067), final_nepotism_bytes: Bytes(65624), events: 11220, app_net_ops: 0, gc_net_ops: 0 }, 12, 0xe2aadf796a55c687u64),
    (PolicyKind::Random, 6, RunTotals { app_ios: 2505, gc_ios: 404, max_footprint: Bytes(507904), partitions: 31, collections: 10, reclaimed_bytes: Bytes(46375), reclaimed_objects: 463, final_live_bytes: Bytes(230989), final_garbage_bytes: Bytes(251036), final_nepotism_bytes: Bytes(70383), events: 10553, app_net_ops: 0, gc_net_ops: 0 }, 10, 0x9757687a286ca6ecu64),
    (PolicyKind::Random, 7, RunTotals { app_ios: 2229, gc_ios: 332, max_footprint: Bytes(491520), partitions: 30, collections: 11, reclaimed_bytes: Bytes(85454), reclaimed_objects: 783, final_live_bytes: Bytes(226453), final_garbage_bytes: Bytes(228531), final_nepotism_bytes: Bytes(65628), events: 8627, app_net_ops: 0, gc_net_ops: 0 }, 11, 0x272d6d0018f7f946u64),
    (PolicyKind::Random, 8, RunTotals { app_ios: 2573, gc_ios: 368, max_footprint: Bytes(491520), partitions: 30, collections: 12, reclaimed_bytes: Bytes(69513), reclaimed_objects: 706, final_live_bytes: Bytes(216487), final_garbage_bytes: Bytes(238410), final_nepotism_bytes: Bytes(56432), events: 10960, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x4f0b2408b53fcd1du64),
    (PolicyKind::Random, 9, RunTotals { app_ios: 2355, gc_ios: 322, max_footprint: Bytes(491520), partitions: 30, collections: 11, reclaimed_bytes: Bytes(63138), reclaimed_objects: 468, final_live_bytes: Bytes(207270), final_garbage_bytes: Bytes(264039), final_nepotism_bytes: Bytes(85315), events: 10423, app_net_ops: 0, gc_net_ops: 0 }, 11, 0x7e260e73e85ab4c7u64),
    (PolicyKind::MutatedPartition, 0, RunTotals { app_ios: 2690, gc_ios: 444, max_footprint: Bytes(491520), partitions: 30, collections: 12, reclaimed_bytes: Bytes(60432), reclaimed_objects: 598, final_live_bytes: Bytes(216484), final_garbage_bytes: Bytes(253440), final_nepotism_bytes: Bytes(58607), events: 11630, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x342715bf54fb8fb9u64),
    (PolicyKind::MutatedPartition, 1, RunTotals { app_ios: 2334, gc_ios: 291, max_footprint: Bytes(458752), partitions: 28, collections: 11, reclaimed_bytes: Bytes(102265), reclaimed_objects: 1006, final_live_bytes: Bytes(196570), final_garbage_bytes: Bytes(229569), final_nepotism_bytes: Bytes(47504), events: 9423, app_net_ops: 0, gc_net_ops: 0 }, 11, 0xedfddfed8778189eu64),
    (PolicyKind::MutatedPartition, 2, RunTotals { app_ios: 2641, gc_ios: 329, max_footprint: Bytes(491520), partitions: 30, collections: 12, reclaimed_bytes: Bytes(87324), reclaimed_objects: 877, final_live_bytes: Bytes(170153), final_garbage_bytes: Bytes(278568), final_nepotism_bytes: Bytes(65566), events: 10074, app_net_ops: 0, gc_net_ops: 0 }, 12, 0xdd85772bd5388f15u64),
    (PolicyKind::MutatedPartition, 3, RunTotals { app_ios: 2634, gc_ios: 397, max_footprint: Bytes(491520), partitions: 30, collections: 12, reclaimed_bytes: Bytes(70700), reclaimed_objects: 699, final_live_bytes: Bytes(235558), final_garbage_bytes: Bytes(223077), final_nepotism_bytes: Bytes(80711), events: 10160, app_net_ops: 0, gc_net_ops: 0 }, 12, 0xd5cb288fc0048e72u64),
    (PolicyKind::MutatedPartition, 4, RunTotals { app_ios: 2167, gc_ios: 313, max_footprint: Bytes(491520), partitions: 30, collections: 9, reclaimed_bytes: Bytes(65601), reclaimed_objects: 663, final_live_bytes: Bytes(233786), final_garbage_bytes: Bytes(231342), final_nepotism_bytes: Bytes(32322), events: 9024, app_net_ops: 0, gc_net_ops: 0 }, 9, 0x3f093b02882555e7u64),
    (PolicyKind::MutatedPartition, 5, RunTotals { app_ios: 2754, gc_ios: 373, max_footprint: Bytes(491520), partitions: 30, collections: 12, reclaimed_bytes: Bytes(70752), reclaimed_objects: 709, final_live_bytes: Bytes(247830), final_garbage_bytes: Bytes(222397), final_nepotism_bytes: Bytes(56062), events: 11220, app_net_ops: 0, gc_net_ops: 0 }, 12, 0xed1e129c2f85534eu64),
    (PolicyKind::MutatedPartition, 6, RunTotals { app_ios: 2554, gc_ios: 352, max_footprint: Bytes(491520), partitions: 30, collections: 10, reclaimed_bytes: Bytes(56562), reclaimed_objects: 564, final_live_bytes: Bytes(230989), final_garbage_bytes: Bytes(240849), final_nepotism_bytes: Bytes(81098), events: 10553, app_net_ops: 0, gc_net_ops: 0 }, 10, 0x4197896ef44b6c61u64),
    (PolicyKind::MutatedPartition, 7, RunTotals { app_ios: 2169, gc_ios: 360, max_footprint: Bytes(491520), partitions: 30, collections: 11, reclaimed_bytes: Bytes(68980), reclaimed_objects: 696, final_live_bytes: Bytes(226453), final_garbage_bytes: Bytes(245005), final_nepotism_bytes: Bytes(82157), events: 8627, app_net_ops: 0, gc_net_ops: 0 }, 11, 0x5b8413f48f17df89u64),
    (PolicyKind::MutatedPartition, 8, RunTotals { app_ios: 2489, gc_ios: 354, max_footprint: Bytes(475136), partitions: 29, collections: 12, reclaimed_bytes: Bytes(73824), reclaimed_objects: 746, final_live_bytes: Bytes(216487), final_garbage_bytes: Bytes(234099), final_nepotism_bytes: Bytes(41166), events: 10960, app_net_ops: 0, gc_net_ops: 0 }, 12, 0x20d37fb1468ce4fdu64),
    (PolicyKind::MutatedPartition, 9, RunTotals { app_ios: 2314, gc_ios: 381, max_footprint: Bytes(475136), partitions: 29, collections: 11, reclaimed_bytes: Bytes(81881), reclaimed_objects: 803, final_live_bytes: Bytes(207270), final_garbage_bytes: Bytes(245296), final_nepotism_bytes: Bytes(66767), events: 10423, app_net_ops: 0, gc_net_ops: 0 }, 11, 0xdc06eabe7c8aab0du64),
];

#[rustfmt::skip]
const GOLDEN_PAPER_10PCT: &[Golden] = &[
    (PolicyKind::MostGarbage, 0, RunTotals { app_ios: 387, gc_ios: 188, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(514275), reclaimed_objects: 4474, final_live_bytes: Bytes(571457), final_garbage_bytes: Bytes(128810), final_nepotism_bytes: Bytes(23466), events: 52654, app_net_ops: 0, gc_net_ops: 0 }, 3, 0xff1ed9421877e875u64),
    (PolicyKind::MostGarbage, 1, RunTotals { app_ios: 341, gc_ios: 208, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(577957), reclaimed_objects: 4422, final_live_bytes: Bytes(448877), final_garbage_bytes: Bytes(173984), final_nepotism_bytes: Bytes(66609), events: 57618, app_net_ops: 0, gc_net_ops: 0 }, 3, 0x9f19854a6eada506u64),
    (PolicyKind::MostGarbage, 2, RunTotals { app_ios: 465, gc_ios: 214, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(508914), reclaimed_objects: 4458, final_live_bytes: Bytes(487149), final_garbage_bytes: Bytes(229652), final_nepotism_bytes: Bytes(9237), events: 69313, app_net_ops: 0, gc_net_ops: 0 }, 3, 0xff1ed9421877e875u64),
    (PolicyKind::MostGarbage, 3, RunTotals { app_ios: 398, gc_ios: 187, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(582834), reclaimed_objects: 4472, final_live_bytes: Bytes(469917), final_garbage_bytes: Bytes(130841), final_nepotism_bytes: Bytes(2386), events: 50278, app_net_ops: 0, gc_net_ops: 0 }, 3, 0xff1ed9421877e875u64),
    (PolicyKind::MostGarbage, 4, RunTotals { app_ios: 322, gc_ios: 77, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(602281), reclaimed_objects: 4077, final_live_bytes: Bytes(450138), final_garbage_bytes: Bytes(145842), final_nepotism_bytes: Bytes(10260), events: 57715, app_net_ops: 0, gc_net_ops: 0 }, 3, 0x9f19854a6eada506u64),
    (PolicyKind::UpdatedPointer, 0, RunTotals { app_ios: 387, gc_ios: 188, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(514275), reclaimed_objects: 4474, final_live_bytes: Bytes(571457), final_garbage_bytes: Bytes(128810), final_nepotism_bytes: Bytes(23466), events: 52654, app_net_ops: 0, gc_net_ops: 0 }, 3, 0xff1ed9421877e875u64),
    (PolicyKind::UpdatedPointer, 1, RunTotals { app_ios: 341, gc_ios: 208, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(577957), reclaimed_objects: 4422, final_live_bytes: Bytes(448877), final_garbage_bytes: Bytes(173984), final_nepotism_bytes: Bytes(66609), events: 57618, app_net_ops: 0, gc_net_ops: 0 }, 3, 0x9f19854a6eada506u64),
    (PolicyKind::UpdatedPointer, 2, RunTotals { app_ios: 465, gc_ios: 214, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(508914), reclaimed_objects: 4458, final_live_bytes: Bytes(487149), final_garbage_bytes: Bytes(229652), final_nepotism_bytes: Bytes(9237), events: 69313, app_net_ops: 0, gc_net_ops: 0 }, 3, 0xff1ed9421877e875u64),
    (PolicyKind::UpdatedPointer, 3, RunTotals { app_ios: 398, gc_ios: 187, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(582834), reclaimed_objects: 4472, final_live_bytes: Bytes(469917), final_garbage_bytes: Bytes(130841), final_nepotism_bytes: Bytes(2386), events: 50278, app_net_ops: 0, gc_net_ops: 0 }, 3, 0xff1ed9421877e875u64),
    (PolicyKind::UpdatedPointer, 4, RunTotals { app_ios: 322, gc_ios: 77, max_footprint: Bytes(1179648), partitions: 3, collections: 3, reclaimed_bytes: Bytes(602281), reclaimed_objects: 4077, final_live_bytes: Bytes(450138), final_garbage_bytes: Bytes(145842), final_nepotism_bytes: Bytes(10260), events: 57715, app_net_ops: 0, gc_net_ops: 0 }, 3, 0x9f19854a6eada506u64),
];

#[test]
fn bus_replay_is_bit_identical_to_pre_refactor_small_config() {
    check(&RunConfig::small(), GOLDEN_SMALL);
}

#[test]
fn bus_replay_is_bit_identical_to_pre_refactor_paper_config() {
    // The paper geometry at a 10% allocation target: big 8 KB pages, the
    // 200-overwrite trigger, near-parent placement across 384 KB
    // partitions — a different code path mix than the small config.
    let mut cfg = RunConfig::paper(PolicyKind::MostGarbage, 0);
    cfg.workload.target_allocated = Bytes(cfg.workload.target_allocated.0 / 10);
    check(&cfg, GOLDEN_PAPER_10PCT);
}

#[test]
fn shadow_scoreboards_do_not_perturb_the_driver() {
    let shadows = [
        PolicyKind::MutatedPartition,
        PolicyKind::Random,
        PolicyKind::WeightedPointer,
        PolicyKind::UpdatedPointer,
        PolicyKind::MostGarbage,
    ];
    for seed in [0u64, 5, 9] {
        let cfg = RunConfig::small()
            .with_policy(PolicyKind::MostGarbage)
            .with_seed(seed);
        let plain = Simulation::builder(&cfg).run().expect("plain run");
        let race = run_race(&cfg, &shadows).expect("race run");
        assert_eq!(plain.totals, race.outcome.totals, "seed {seed}");
        assert_eq!(plain.collections, race.outcome.collections, "seed {seed}");
        assert_eq!(
            race.records.len() as u64,
            plain.totals.collections,
            "seed {seed}: one race record per collection"
        );
    }
}
