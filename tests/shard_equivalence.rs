//! Shard-count invariance for the multi-tenant server runtime.
//!
//! The whole point of `pgc-server`'s design — sessions as self-contained
//! `Shard`s, a pure-hash router, weak cross-shard links — is that shard
//! placement decides only *where* a session executes, never *what* it
//! computes. These tests pin that: the same client streams run on 1, 2,
//! and 4 shards must produce bit-identical per-stream totals, victim
//! sequences, and telemetry score bits, all equal to dedicated
//! single-`Simulation` runs; and the inter-shard remset must register
//! each cross-stream pointer exactly once, clean it when the target is
//! reclaimed, and report identical counters at every shard count.

use pgc::core::PolicyKind;
use pgc::prelude::{RunConfig, RunOutcome, Server, ServerConfig, Simulation, StreamId};
use pgc::telemetry::TelemetryLevel;
use pgc::workload::{EncodedTrace, Event, NodeId, SyntheticWorkload, TraceSegment};
use std::sync::Arc;

const STREAMS: usize = 5;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const BATCH: usize = 512;

/// Which server ingest path a fleet run exercises. All three must be
/// bit-identical per stream — the data plane can change how bytes move,
/// never what a session computes.
#[derive(Clone, Copy, Debug)]
enum SubmitMode {
    /// Borrowed slices through the compat wrapper (`Server::submit`).
    Compat,
    /// Owned batches moved into the ring (`Server::submit_owned`).
    Owned,
    /// Zero-copy segments of one shared encoded trace per stream
    /// (`Server::submit_segment`).
    Segment,
}

fn stream_configs() -> Vec<(StreamId, RunConfig)> {
    (0..STREAMS as u64)
        .map(|i| {
            let policy = PolicyKind::PAPER[i as usize % PolicyKind::PAPER.len()];
            let cfg = RunConfig::small().with_policy(policy).with_seed(i + 1);
            (StreamId(i), cfg)
        })
        .collect()
}

fn stream_events(configs: &[(StreamId, RunConfig)]) -> Vec<Vec<Event>> {
    configs
        .iter()
        .map(|(_, cfg)| {
            SyntheticWorkload::new(cfg.workload.clone())
                .expect("workload params")
                .collect()
        })
        .collect()
}

/// Nodes to cross-link per link-ring edge.
const LINKS_PER_EDGE: usize = 16;

/// A deterministic sample of nodes the target stream allocated in its
/// first half — spread across the allocation order so the sample mixes
/// long-lived tree spine with doomed subtree nodes (some targets must be
/// reclaimed later for the clean path to be exercised).
fn link_nodes(events: &[Event]) -> Vec<NodeId> {
    let allocated: Vec<NodeId> = events[..events.len() / 2]
        .iter()
        .filter_map(|e| match *e {
            Event::CreateRoot { node, .. } | Event::CreateChild { node, .. } => Some(node),
            _ => None,
        })
        .collect();
    let step = (allocated.len() / LINKS_PER_EDGE).max(1);
    allocated
        .iter()
        .step_by(step)
        .take(LINKS_PER_EDGE)
        .copied()
        .collect()
}

/// Runs every stream on a fleet of `shards` shards, interleaving batches
/// round-robin via the chosen submit path and registering a ring of
/// cross-stream links midway.
fn run_fleet(
    shards: usize,
    mode: SubmitMode,
    configs: &[(StreamId, RunConfig)],
    events: &[Vec<Event>],
) -> pgc::server::FleetOutcome {
    let mut server = Server::start(ServerConfig::new(shards).with_telemetry(TelemetryLevel::Full));
    for (stream, cfg) in configs {
        server.open_stream(*stream, cfg.clone()).expect("open");
    }
    // The segment path shares one encoded trace per stream: every batch
    // submitted is a refcounted byte range of it, tiled up front.
    let mut segments: Vec<Vec<TraceSegment>> = match mode {
        SubmitMode::Segment => configs
            .iter()
            .zip(events)
            .map(|((_, cfg), events)| {
                let trace = Arc::new(EncodedTrace::from_events(cfg.workload.clone(), events));
                let mut segs = EncodedTrace::segments(&trace, BATCH as u64).expect("segments");
                segs.reverse(); // pop() from the back yields submission order
                segs
            })
            .collect(),
        _ => Vec::new(),
    };
    let mut cursors = vec![0usize; configs.len()];
    let mut linked = false;
    loop {
        let mut any = false;
        for (i, (stream, _)) in configs.iter().enumerate() {
            let at = cursors[i];
            if at >= events[i].len() {
                continue;
            }
            let end = (at + BATCH).min(events[i].len());
            match mode {
                SubmitMode::Compat => {
                    // The deprecated borrowed-slice wrapper stays pinned
                    // bit-identical until it is removed outright.
                    #[allow(deprecated)]
                    server.submit(*stream, &events[i][at..end]).expect("submit");
                }
                SubmitMode::Owned => {
                    server
                        .submit_owned(*stream, events[i][at..end].to_vec())
                        .expect("submit_owned");
                }
                SubmitMode::Segment => {
                    let seg = segments[i].pop().expect("segment per batch");
                    assert_eq!(seg.events(), (end - at) as u64, "segment tiling");
                    server.submit_segment(*stream, seg).expect("submit_segment");
                }
            }
            cursors[i] = end;
            any = true;
        }
        // Halfway through the first stream, wire the link ring — early
        // enough that later collections reclaim or relocate some targets.
        if !linked && cursors[0] >= events[0].len() / 2 {
            linked = true;
            for i in 0..configs.len() {
                let target = StreamId((i + 1) as u64 % configs.len() as u64);
                for node in link_nodes(&events[(i + 1) % configs.len()]) {
                    // Twice on purpose: registration must be idempotent.
                    server.link(configs[i].0, target, node).expect("link");
                    server.link(configs[i].0, target, node).expect("link");
                }
            }
        }
        if !any {
            break;
        }
    }
    server.shutdown().expect("shutdown")
}

fn dedicated_runs(configs: &[(StreamId, RunConfig)], events: &[Vec<Event>]) -> Vec<RunOutcome> {
    configs
        .iter()
        .zip(events)
        .map(|((_, cfg), events)| {
            Simulation::builder(cfg)
                .events(events)
                .telemetry(TelemetryLevel::Full)
                .run()
                .expect("dedicated run")
        })
        .collect()
}

#[test]
fn per_stream_results_are_shard_count_invariant() {
    let configs = stream_configs();
    let events = stream_events(&configs);
    let baseline = dedicated_runs(&configs, &events);

    for shards in SHARD_COUNTS {
        for mode in [SubmitMode::Compat, SubmitMode::Segment] {
            let fleet = run_fleet(shards, mode, &configs, &events);
            assert_eq!(fleet.shards, shards);
            assert_eq!(fleet.outcomes.len(), STREAMS);
            for ((stream, cfg), dedicated) in configs.iter().zip(&baseline) {
                let outcome = fleet.outcome(*stream).expect("stream outcome");
                assert_eq!(
                    outcome.totals, dedicated.totals,
                    "{} totals diverged on {shards} shard(s) via {mode:?} ({:?})",
                    stream, cfg.policy
                );
                let fleet_victims: Vec<_> = outcome.collections.iter().map(|c| c.victim).collect();
                let solo_victims: Vec<_> = dedicated.collections.iter().map(|c| c.victim).collect();
                assert_eq!(
                    fleet_victims, solo_victims,
                    "{stream} victim sequence diverged on {shards} shard(s) via {mode:?}"
                );
                assert_eq!(
                    outcome.collections, dedicated.collections,
                    "{stream} collection outcomes diverged on {shards} shard(s) via {mode:?}"
                );
                // Full-level telemetry includes the score histograms and
                // per-activation records — every bit must survive hosting.
                assert_eq!(
                    outcome.telemetry, dedicated.telemetry,
                    "{stream} telemetry diverged on {shards} shard(s) via {mode:?}"
                );
            }
        }
    }
}

#[test]
fn fleet_aggregates_are_shard_count_invariant() {
    let configs = stream_configs();
    let events = stream_events(&configs);

    // Sweep shard counts on the segment path, then cross-check the owned
    // path at one count — aggregates must not notice the ingest path.
    let mut fleets: Vec<_> = SHARD_COUNTS
        .iter()
        .map(|&shards| run_fleet(shards, SubmitMode::Segment, &configs, &events))
        .collect();
    fleets.push(run_fleet(2, SubmitMode::Owned, &configs, &events));
    let first = &fleets[0];
    for fleet in &fleets[1..] {
        assert_eq!(
            fleet.total_events(),
            first.total_events(),
            "aggregate event count depends on shard count"
        );
        assert_eq!(fleet.total_collections(), first.total_collections());
        assert_eq!(
            fleet.remset, first.remset,
            "inter-shard remset counters depend on shard count"
        );
        // The fleet-wide telemetry merge folds counters and histograms,
        // which are order-independent — the aggregate must not notice how
        // sessions were grouped into shards.
        let a = fleet.fleet.merged().expect("telemetry enabled");
        let b = first.fleet.merged().expect("telemetry enabled");
        assert_eq!(a.runs, b.runs, "merged session count");
        assert_eq!(a.counters, b.counters, "merged counters");
        assert_eq!(fleet.fleet.streams(), first.fleet.streams());
    }
}

#[test]
fn cross_shard_links_register_once_and_clean_on_reclaim() {
    let configs = stream_configs();
    let events = stream_events(&configs);
    let fleet = run_fleet(2, SubmitMode::Segment, &configs, &events);

    let stats = fleet.remset;
    // Each ring edge links LINKS_PER_EDGE nodes, each twice: idempotency
    // caps distinct registrations at streams × links-per-edge; duplicate
    // attempts must not double-count (resolved duplicates are absorbed,
    // unresolved ones count dangling).
    let attempted = (STREAMS * LINKS_PER_EDGE) as u64;
    assert!(
        stats.registered <= attempted,
        "duplicate link registrations were counted: {stats:?}"
    );
    assert!(
        stats.registered > 0,
        "no cross-stream link resolved — the ring never registered: {stats:?}"
    );
    // Every registration is eventually either live or cleaned; cleaning
    // only happens for registered links.
    assert!(
        stats.cleaned <= stats.registered,
        "cleaned more links than were registered: {stats:?}"
    );
    assert!(
        stats.cleaned > 0,
        "no linked target was reclaimed — the workload never exercised \
         the clean path: {stats:?}"
    );
}

/// Coalescing must be semantically invisible: a stream fed as many tiny
/// batches — alternating owned vectors and unaligned trace segments, over
/// a near-empty ring that forces heavy head-of-queue coalescing — must be
/// bit-identical to one whole-trace segment and to a dedicated run.
#[test]
fn coalesced_tiny_batches_match_one_big_batch() {
    let configs = stream_configs();
    let events = stream_events(&configs);
    let (stream, cfg) = configs[0].clone();
    let dedicated = &dedicated_runs(&configs[..1], &events[..1])[0];
    let trace = Arc::new(EncodedTrace::from_events(cfg.workload.clone(), &events[0]));

    // 97 events per chunk: never block-aligned, so segment carving takes
    // the mark-then-scan path and the worker's scratch block refills at
    // awkward offsets.
    const CHUNK: usize = 97;
    let segments = EncodedTrace::segments(&trace, CHUNK as u64).expect("segments");
    let tiny = ServerConfig::new(1)
        .with_telemetry(TelemetryLevel::Full)
        .with_inbox_capacity(2);

    let mut interleaved = Server::start(tiny.clone());
    interleaved.open_stream(stream, cfg.clone()).expect("open");
    for (j, segment) in segments.into_iter().enumerate() {
        let at = j * CHUNK;
        let end = (at + CHUNK).min(events[0].len());
        if j % 2 == 0 {
            interleaved
                .submit_owned(stream, events[0][at..end].to_vec())
                .expect("submit_owned");
        } else {
            interleaved
                .submit_segment(stream, segment)
                .expect("submit_segment");
        }
    }
    let interleaved = interleaved.shutdown().expect("shutdown");

    let mut whole = Server::start(tiny);
    whole.open_stream(stream, cfg).expect("open");
    whole
        .submit_segment(stream, TraceSegment::whole(trace))
        .expect("submit_segment");
    let whole = whole.shutdown().expect("shutdown");

    let a = interleaved.outcome(stream).expect("outcome");
    let b = whole.outcome(stream).expect("outcome");
    assert_eq!(a.totals, b.totals, "coalescing changed the totals");
    assert_eq!(a.collections, b.collections);
    assert_eq!(
        a.telemetry, b.telemetry,
        "coalescing changed telemetry bits"
    );
    assert_eq!(a.totals, dedicated.totals);
    assert_eq!(a.collections, dedicated.collections);
    assert_eq!(a.telemetry, dedicated.telemetry);
}

/// A one-slot ring must throttle the producer, not drop or reorder: the
/// full workload still lands, and the high-water mark never exceeds the
/// configured capacity.
#[test]
fn one_slot_inbox_backpressures_without_losing_events() {
    let configs = stream_configs();
    let events = stream_events(&configs);
    let (stream, cfg) = configs[0].clone();

    let mut server = Server::start(ServerConfig::new(1).with_inbox_capacity(1));
    server.open_stream(stream, cfg).expect("open");
    for chunk in events[0].chunks(64) {
        server.submit_owned(stream, chunk.to_vec()).expect("submit");
    }
    let fleet = server.shutdown().expect("shutdown");
    assert_eq!(fleet.total_events(), events[0].len() as u64);
    assert_eq!(fleet.ring_high_water, vec![1], "one slot bounds occupancy");
}

/// A worker that panics mid-run must surface as a session error at
/// shutdown — carrying the panic message — instead of aborting the whole
/// process or deadlocking parked producers. (The dense-id debug assertion
/// in the replayer only fires in debug builds.)
#[test]
#[cfg(debug_assertions)]
fn worker_panic_surfaces_as_session_error_at_shutdown() {
    use pgc::types::Bytes;

    let (stream, cfg) = stream_configs()[0].clone();
    let mut server = Server::start(ServerConfig::new(1));
    server.open_stream(stream, cfg).expect("open");
    // A wildly non-dense node id trips the replayer's dense-id invariant
    // on the worker thread.
    let poison = Event::CreateRoot {
        node: NodeId(1_000_000),
        size: Bytes(64),
        slots: 2,
    };
    server.submit_owned(stream, vec![poison]).expect("enqueue");
    let err = server.shutdown().expect_err("worker panicked");
    let msg = err.to_string();
    assert!(
        msg.contains("shard worker panicked"),
        "panic not surfaced: {msg}"
    );
    assert!(msg.contains("dense"), "panic payload lost: {msg}");
}
