//! Shard-count invariance for the multi-tenant server runtime.
//!
//! The whole point of `pgc-server`'s design — sessions as self-contained
//! `Shard`s, a pure-hash router, weak cross-shard links — is that shard
//! placement decides only *where* a session executes, never *what* it
//! computes. These tests pin that: the same client streams run on 1, 2,
//! and 4 shards must produce bit-identical per-stream totals, victim
//! sequences, and telemetry score bits, all equal to dedicated
//! single-`Simulation` runs; and the inter-shard remset must register
//! each cross-stream pointer exactly once, clean it when the target is
//! reclaimed, and report identical counters at every shard count.

use pgc::core::PolicyKind;
use pgc::prelude::{RunConfig, RunOutcome, Server, ServerConfig, Simulation, StreamId};
use pgc::telemetry::TelemetryLevel;
use pgc::workload::{Event, NodeId, SyntheticWorkload};

const STREAMS: usize = 5;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn stream_configs() -> Vec<(StreamId, RunConfig)> {
    (0..STREAMS as u64)
        .map(|i| {
            let policy = PolicyKind::PAPER[i as usize % PolicyKind::PAPER.len()];
            let cfg = RunConfig::small().with_policy(policy).with_seed(i + 1);
            (StreamId(i), cfg)
        })
        .collect()
}

fn stream_events(configs: &[(StreamId, RunConfig)]) -> Vec<Vec<Event>> {
    configs
        .iter()
        .map(|(_, cfg)| {
            SyntheticWorkload::new(cfg.workload.clone())
                .expect("workload params")
                .collect()
        })
        .collect()
}

/// Nodes to cross-link per link-ring edge.
const LINKS_PER_EDGE: usize = 16;

/// A deterministic sample of nodes the target stream allocated in its
/// first half — spread across the allocation order so the sample mixes
/// long-lived tree spine with doomed subtree nodes (some targets must be
/// reclaimed later for the clean path to be exercised).
fn link_nodes(events: &[Event]) -> Vec<NodeId> {
    let allocated: Vec<NodeId> = events[..events.len() / 2]
        .iter()
        .filter_map(|e| match *e {
            Event::CreateRoot { node, .. } | Event::CreateChild { node, .. } => Some(node),
            _ => None,
        })
        .collect();
    let step = (allocated.len() / LINKS_PER_EDGE).max(1);
    allocated
        .iter()
        .step_by(step)
        .take(LINKS_PER_EDGE)
        .copied()
        .collect()
}

/// Runs every stream on a fleet of `shards` shards, interleaving batches
/// round-robin and registering a ring of cross-stream links midway.
fn run_fleet(
    shards: usize,
    configs: &[(StreamId, RunConfig)],
    events: &[Vec<Event>],
) -> pgc::server::FleetOutcome {
    let mut server = Server::start(ServerConfig::new(shards).with_telemetry(TelemetryLevel::Full));
    for (stream, cfg) in configs {
        server.open_stream(*stream, cfg.clone()).expect("open");
    }
    let mut cursors = vec![0usize; configs.len()];
    let mut linked = false;
    loop {
        let mut any = false;
        for (i, (stream, _)) in configs.iter().enumerate() {
            let at = cursors[i];
            if at >= events[i].len() {
                continue;
            }
            let end = (at + 512).min(events[i].len());
            server.submit(*stream, &events[i][at..end]).expect("submit");
            cursors[i] = end;
            any = true;
        }
        // Halfway through the first stream, wire the link ring — early
        // enough that later collections reclaim or relocate some targets.
        if !linked && cursors[0] >= events[0].len() / 2 {
            linked = true;
            for i in 0..configs.len() {
                let target = StreamId((i + 1) as u64 % configs.len() as u64);
                for node in link_nodes(&events[(i + 1) % configs.len()]) {
                    // Twice on purpose: registration must be idempotent.
                    server.link(configs[i].0, target, node).expect("link");
                    server.link(configs[i].0, target, node).expect("link");
                }
            }
        }
        if !any {
            break;
        }
    }
    server.shutdown().expect("shutdown")
}

fn dedicated_runs(configs: &[(StreamId, RunConfig)], events: &[Vec<Event>]) -> Vec<RunOutcome> {
    configs
        .iter()
        .zip(events)
        .map(|((_, cfg), events)| {
            Simulation::builder(cfg)
                .events(events)
                .telemetry(TelemetryLevel::Full)
                .run()
                .expect("dedicated run")
        })
        .collect()
}

#[test]
fn per_stream_results_are_shard_count_invariant() {
    let configs = stream_configs();
    let events = stream_events(&configs);
    let baseline = dedicated_runs(&configs, &events);

    for shards in SHARD_COUNTS {
        let fleet = run_fleet(shards, &configs, &events);
        assert_eq!(fleet.shards, shards);
        assert_eq!(fleet.outcomes.len(), STREAMS);
        for ((stream, cfg), dedicated) in configs.iter().zip(&baseline) {
            let outcome = fleet.outcome(*stream).expect("stream outcome");
            assert_eq!(
                outcome.totals, dedicated.totals,
                "{} totals diverged on {shards} shard(s) ({:?})",
                stream, cfg.policy
            );
            let fleet_victims: Vec<_> = outcome.collections.iter().map(|c| c.victim).collect();
            let solo_victims: Vec<_> = dedicated.collections.iter().map(|c| c.victim).collect();
            assert_eq!(
                fleet_victims, solo_victims,
                "{stream} victim sequence diverged on {shards} shard(s)"
            );
            assert_eq!(
                outcome.collections, dedicated.collections,
                "{stream} collection outcomes diverged on {shards} shard(s)"
            );
            // Full-level telemetry includes the score histograms and
            // per-activation records — every bit must survive hosting.
            assert_eq!(
                outcome.telemetry, dedicated.telemetry,
                "{stream} telemetry diverged on {shards} shard(s)"
            );
        }
    }
}

#[test]
fn fleet_aggregates_are_shard_count_invariant() {
    let configs = stream_configs();
    let events = stream_events(&configs);

    let fleets: Vec<_> = SHARD_COUNTS
        .iter()
        .map(|&shards| run_fleet(shards, &configs, &events))
        .collect();
    let first = &fleets[0];
    for fleet in &fleets[1..] {
        assert_eq!(
            fleet.total_events(),
            first.total_events(),
            "aggregate event count depends on shard count"
        );
        assert_eq!(fleet.total_collections(), first.total_collections());
        assert_eq!(
            fleet.remset, first.remset,
            "inter-shard remset counters depend on shard count"
        );
        // The fleet-wide telemetry merge folds counters and histograms,
        // which are order-independent — the aggregate must not notice how
        // sessions were grouped into shards.
        let a = fleet.fleet.merged().expect("telemetry enabled");
        let b = first.fleet.merged().expect("telemetry enabled");
        assert_eq!(a.runs, b.runs, "merged session count");
        assert_eq!(a.counters, b.counters, "merged counters");
        assert_eq!(fleet.fleet.streams(), first.fleet.streams());
    }
}

#[test]
fn cross_shard_links_register_once_and_clean_on_reclaim() {
    let configs = stream_configs();
    let events = stream_events(&configs);
    let fleet = run_fleet(2, &configs, &events);

    let stats = fleet.remset;
    // Each ring edge links LINKS_PER_EDGE nodes, each twice: idempotency
    // caps distinct registrations at streams × links-per-edge; duplicate
    // attempts must not double-count (resolved duplicates are absorbed,
    // unresolved ones count dangling).
    let attempted = (STREAMS * LINKS_PER_EDGE) as u64;
    assert!(
        stats.registered <= attempted,
        "duplicate link registrations were counted: {stats:?}"
    );
    assert!(
        stats.registered > 0,
        "no cross-stream link resolved — the ring never registered: {stats:?}"
    );
    // Every registration is eventually either live or cleaned; cleaning
    // only happens for registered links.
    assert!(
        stats.cleaned <= stats.registered,
        "cleaned more links than were registered: {stats:?}"
    );
    assert!(
        stats.cleaned > 0,
        "no linked target was reclaimed — the workload never exercised \
         the clean path: {stats:?}"
    );
}
