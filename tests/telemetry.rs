//! System-level guarantees of the telemetry layer.
//!
//! The tap rides the barrier bus as a bystander observer, so turning it on
//! must change *nothing* about the simulated world: same `RunTotals`, same
//! victim sequence, for every policy and seed. These tests pin that
//! invariant end to end through the `pgc` facade, round-trip the JSONL
//! export, and check that the builder's three event sources (synthetic,
//! recorded slice, shared encoded trace) agree exactly.

use pgc::core::PolicyKind;
use pgc::sim::{Experiment, RunConfig, Simulation};
use pgc::telemetry::{parse_line, write_snapshot, TelemetryLevel, SCHEMA};

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::UpdatedPointer,
    PolicyKind::MostGarbage,
    PolicyKind::Random,
];

#[test]
fn telemetry_is_non_perturbing_across_seeds_and_policies() {
    // Seeds 0-9 x 3 policies: the run with the tap registered must be
    // bit-identical (totals + full victim sequence) to the run without.
    for seed in 0..10u64 {
        for policy in POLICIES {
            let cfg = RunConfig::small().with_policy(policy).with_seed(seed);
            let off = Simulation::builder(&cfg).run().expect("off run");
            let on = Simulation::builder(&cfg)
                .telemetry(TelemetryLevel::Full)
                .run()
                .expect("tapped run");
            assert_eq!(
                off.totals, on.totals,
                "{policy:?} seed {seed}: telemetry perturbed the totals"
            );
            assert_eq!(
                off.collections, on.collections,
                "{policy:?} seed {seed}: telemetry perturbed the victim sequence"
            );
            assert!(off.telemetry.is_none(), "off run must carry no snapshot");
            let snap = on.telemetry.expect("tapped run must carry a snapshot");
            assert_eq!(
                snap.counters.activations, on.totals.collections,
                "{policy:?} seed {seed}"
            );
            assert_eq!(
                snap.records.len() as u64,
                on.totals.collections,
                "{policy:?} seed {seed}: one record per activation"
            );
            // The record stream mirrors the authoritative victim sequence.
            for (rec, coll) in snap.records.iter().zip(&on.collections) {
                assert_eq!(rec.victim, Some(coll.victim), "{policy:?} seed {seed}");
            }
        }
    }
}

#[test]
fn metrics_level_is_also_non_perturbing_and_recordless() {
    let cfg = RunConfig::small().with_policy(PolicyKind::UpdatedPointer);
    let off = Simulation::builder(&cfg).run().expect("off run");
    let on = Simulation::builder(&cfg)
        .telemetry(TelemetryLevel::Metrics)
        .run()
        .expect("metrics run");
    assert_eq!(off.totals, on.totals);
    assert_eq!(off.collections, on.collections);
    let snap = on.telemetry.expect("metrics snapshot");
    assert_eq!(snap.counters.activations, on.totals.collections);
    assert!(
        snap.records.is_empty(),
        "Metrics level must not retain per-activation records"
    );
}

#[test]
fn jsonl_export_round_trips_exactly() {
    let cfg = RunConfig::small()
        .with_policy(PolicyKind::MostGarbage)
        .with_seed(5);
    let out = Simulation::builder(&cfg)
        .telemetry(TelemetryLevel::Full)
        .run()
        .expect("run");
    let snap = out.telemetry.expect("snapshot");
    assert!(!snap.records.is_empty(), "need records to round-trip");

    let mut buf = Vec::new();
    write_snapshot(&mut buf, out.policy.name(), out.seed, &snap).expect("write");
    let text = String::from_utf8(buf).expect("utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), snap.records.len(), "one line per activation");

    for (line, rec) in lines.iter().zip(&snap.records) {
        assert!(line.contains(SCHEMA), "every line is schema-tagged");
        let parsed = parse_line(line).expect("parse");
        assert_eq!(parsed.policy, out.policy.name());
        assert_eq!(parsed.seed, out.seed);
        assert_eq!(parsed.trigger, snap.trigger);
        assert_eq!(&parsed.record, rec, "record must survive the round trip");
    }
}

#[test]
fn experiment_tap_matches_untapped_rows() {
    // The experiment runner with a telemetry tap must produce the same
    // per-policy aggregates as without, plus one snapshot per (policy,
    // seed) job.
    let policies = [PolicyKind::UpdatedPointer, PolicyKind::Random];
    let seeds = [1u64, 2];
    let make = |policy, seed| RunConfig::small().with_policy(policy).with_seed(seed);
    let plain = Experiment::new()
        .compare(&policies, &seeds, make)
        .expect("plain comparison");
    let tapped = Experiment::new()
        .with_telemetry(TelemetryLevel::Full)
        .compare(&policies, &seeds, make)
        .expect("tapped comparison");
    assert!(plain.telemetry.is_empty());
    assert_eq!(tapped.telemetry.len(), policies.len() * seeds.len());
    for (a, b) in plain.rows.iter().zip(&tapped.rows) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.total_ios, b.total_ios, "{:?}", a.policy);
        assert_eq!(a.reclaimed_kb, b.reclaimed_kb, "{:?}", a.policy);
        assert_eq!(a.collections, b.collections, "{:?}", a.policy);
    }
    for run in &tapped.telemetry {
        assert!(run.snapshot.counters.activations > 0, "{:?}", run.policy);
    }
}

#[test]
fn builder_sources_are_exact_equivalents() {
    let cfg = RunConfig::small()
        .with_policy(PolicyKind::UpdatedPointer)
        .with_seed(3);

    // Synthetic source (the default).
    let synthetic = Simulation::builder(&cfg).run().expect("synthetic run");

    // Event-slice source.
    let events: Vec<pgc::workload::Event> =
        pgc::workload::SyntheticWorkload::new(cfg.workload.clone())
            .expect("params")
            .collect();
    let sliced = Simulation::builder(&cfg)
        .events(&events)
        .run()
        .expect("event-slice run");
    assert_eq!(synthetic.totals, sliced.totals);
    assert_eq!(synthetic.collections, sliced.collections);

    // Shared encoded-trace source.
    let trace = pgc::workload::EncodedTrace::record(cfg.workload.clone()).expect("record");
    let encoded = Simulation::builder(&cfg)
        .trace(&trace)
        .run()
        .expect("encoded run");
    assert_eq!(synthetic.totals, encoded.totals);
    assert_eq!(synthetic.collections, encoded.collections);
}

#[test]
fn shadow_race_annotates_telemetry_records() {
    let cfg = RunConfig::small()
        .with_policy(PolicyKind::MostGarbage)
        .with_seed(2);
    let shadows = [PolicyKind::Random, PolicyKind::UpdatedPointer];
    let race =
        pgc::sim::run_race_with_telemetry(&cfg, &shadows, TelemetryLevel::Full).expect("race run");
    let snap = race.outcome.telemetry.as_ref().expect("snapshot");
    assert_eq!(snap.records.len(), race.records.len());
    for rec in &snap.records {
        assert_eq!(
            rec.shadow_picks.len(),
            shadows.len(),
            "every record carries one pick per shadow"
        );
    }
    // And registering shadows + telemetry together still perturbs nothing.
    let plain = Simulation::builder(&cfg).run().expect("plain");
    assert_eq!(plain.totals, race.outcome.totals);
    assert_eq!(plain.collections, race.outcome.collections);
}
