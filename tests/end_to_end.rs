//! Cross-crate integration tests: full simulations through the `pgc`
//! facade, checking system-level invariants for every policy.

use pgc::core::PolicyKind;
use pgc::odb::oracle;
use pgc::sim::{RunConfig, Simulation};
use pgc::types::Bytes;

fn run(policy: PolicyKind, seed: u64) -> pgc::sim::RunOutcome {
    Simulation::builder(&RunConfig::small().with_policy(policy).with_seed(seed))
        .run()
        .expect("run")
}

#[test]
fn every_policy_completes_and_accounts_consistently() {
    for policy in PolicyKind::ALL {
        let out = run(policy, 11);
        let t = &out.totals;
        // I/O accounting: totals decompose.
        assert_eq!(t.total_ios(), t.app_ios + t.gc_ios, "{policy}");
        // Space accounting: footprint covers resident data.
        assert!(
            t.max_footprint >= t.final_live_bytes + t.final_garbage_bytes,
            "{policy}: footprint must cover live + unreclaimed garbage"
        );
        // Conservation: allocated = live + reclaimed + unreclaimed.
        let allocated = out.gen_stats.bytes_allocated;
        assert_eq!(
            allocated,
            t.final_live_bytes + t.reclaimed_bytes + t.final_garbage_bytes,
            "{policy}: byte conservation"
        );
        // Nepotism garbage is a subset of unreclaimed garbage.
        assert!(t.final_nepotism_bytes <= t.final_garbage_bytes, "{policy}");
    }
}

#[test]
fn collecting_policies_never_lose_to_themselves_without_gc_on_space() {
    // Any policy that actually collects must end with footprint <= the
    // NoCollection footprint for the same trace.
    let baseline = run(PolicyKind::NoCollection, 3).totals.max_footprint;
    for policy in [
        PolicyKind::Random,
        PolicyKind::MutatedPartition,
        PolicyKind::UpdatedPointer,
        PolicyKind::WeightedPointer,
        PolicyKind::MostGarbage,
        PolicyKind::RoundRobin,
        PolicyKind::Occupancy,
    ] {
        let out = run(policy, 3);
        assert!(out.totals.collections > 0, "{policy} must collect");
        assert!(
            out.totals.max_footprint <= baseline,
            "{policy}: {} > NoCollection {}",
            out.totals.max_footprint,
            baseline
        );
    }
}

#[test]
fn most_garbage_is_best_or_near_best_at_reclamation() {
    // Aggregate over a few seeds: the oracle policy must reclaim at least
    // as much as the weakest heuristic and be within noise of the best.
    let mut oracle_total = 0.0;
    let mut best_heuristic = 0.0f64;
    for seed in [1, 2, 3, 4] {
        oracle_total += run(PolicyKind::MostGarbage, seed)
            .totals
            .fraction_reclaimed_pct();
        let mutated = run(PolicyKind::MutatedPartition, seed)
            .totals
            .fraction_reclaimed_pct();
        best_heuristic += mutated;
    }
    assert!(
        oracle_total >= best_heuristic,
        "MostGarbage ({oracle_total:.1}) reclaimed less than MutatedPartition ({best_heuristic:.1}) across seeds"
    );
}

#[test]
fn final_database_state_is_coherent_for_each_policy() {
    for policy in PolicyKind::PAPER {
        let cfg = RunConfig::small().with_policy(policy).with_seed(7);
        let events: Vec<pgc::workload::Event> =
            pgc::workload::SyntheticWorkload::new(cfg.workload.clone())
                .expect("params")
                .collect();
        let db = pgc::odb::Database::new(cfg.db.clone()).expect("db");
        let collector = pgc::core::Collector::with_kind(
            policy,
            cfg.db.gc_overwrite_threshold,
            99,
            cfg.db.max_weight,
        );
        let mut replayer = pgc::sim::Replayer::new(db, collector);
        replayer.apply_all(&events).expect("replay");
        replayer.db().check_invariants();

        // Every reachable object accounted; no reachable object reclaimed.
        let report = oracle::analyze(replayer.db());
        assert_eq!(
            report.live_bytes + report.garbage_bytes,
            replayer.db().resident_bytes(),
            "{policy}"
        );
    }
}

#[test]
fn deeper_collection_thresholds_mean_fewer_collections() {
    let mut cfg = RunConfig::small().with_seed(5);
    cfg.db = cfg.db.with_gc_overwrite_threshold(25);
    let frequent = Simulation::builder(&cfg).run().expect("run");
    cfg.db = cfg.db.with_gc_overwrite_threshold(200);
    let rare = Simulation::builder(&cfg).run().expect("run");
    assert!(frequent.totals.collections > rare.totals.collections);
}

#[test]
fn buffer_size_matters_smaller_buffer_more_io() {
    let mut cfg = RunConfig::small().with_seed(6);
    let normal = Simulation::builder(&cfg).run().expect("run");
    cfg.db = cfg.db.with_buffer_pages(4); // starve the buffer
    let starved = Simulation::builder(&cfg).run().expect("run");
    assert!(
        starved.totals.total_ios() > normal.totals.total_ios(),
        "starved buffer: {} vs normal {}",
        starved.totals.total_ios(),
        normal.totals.total_ios()
    );
}

#[test]
fn extension_policies_behave_reasonably() {
    let rr = run(PolicyKind::RoundRobin, 8);
    let occ = run(PolicyKind::Occupancy, 8);
    for (name, out) in [("RoundRobin", &rr), ("Occupancy", &occ)] {
        assert!(out.totals.collections > 0, "{name}");
        assert!(out.totals.reclaimed_bytes > Bytes::ZERO, "{name}");
    }
}

#[test]
fn client_server_mode_reports_network_traffic() {
    // Single-tier (the paper's model): zero network messages.
    let single = run(PolicyKind::UpdatedPointer, 12);
    assert_eq!(single.totals.total_net_ops(), 0);

    // Client/server: a small client cache in front of the same buffer.
    let mut cfg = RunConfig::small()
        .with_policy(PolicyKind::UpdatedPointer)
        .with_seed(12);
    cfg.db = cfg.db.with_client_cache_pages(4);
    let tiered = Simulation::builder(&cfg).run().expect("run");
    assert!(
        tiered.totals.total_net_ops() > 0,
        "client misses cost messages"
    );
    // The server buffer shields the disk: tiered disk I/O never exceeds
    // what the client requested over the network.
    assert!(tiered.totals.total_ios() <= tiered.totals.total_net_ops());
    // Semantics (collections, reclamation) are cost-model independent.
    assert_eq!(tiered.totals.collections, single.totals.collections);
    assert_eq!(tiered.totals.reclaimed_bytes, single.totals.reclaimed_bytes);
}

#[test]
fn bigger_client_cache_means_fewer_network_messages() {
    let run_with_cache = |pages: u64| {
        let mut cfg = RunConfig::small()
            .with_policy(PolicyKind::UpdatedPointer)
            .with_seed(13);
        cfg.db = cfg.db.with_client_cache_pages(pages);
        Simulation::builder(&cfg)
            .run()
            .expect("run")
            .totals
            .total_net_ops()
    };
    let small_cache = run_with_cache(2);
    let big_cache = run_with_cache(12);
    assert!(
        big_cache < small_cache,
        "12-page cache ({big_cache}) should beat 2-page cache ({small_cache})"
    );
}
