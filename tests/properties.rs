//! Property-style tests over the core data structures and the collector's
//! safety invariants.
//!
//! The workspace builds offline with no property-testing crate, so each
//! property runs as a seeded loop: `SimRng` generates many random cases per
//! property, and a failure message always names the seed that produced it,
//! which makes any failure replayable with a one-line unit test.

use pgc::buffer::{Access, BufferPool};
use pgc::core::{build_policy, Collector, PolicyKind, SelectionPolicy};
use pgc::odb::{oracle, BarrierEvent, Database};
use pgc::types::{Bytes, DbConfig, Oid, PageId, SimRng, SlotId};
use pgc::workload::{read_trace, write_trace, Event, NodeId};

// ---------------------------------------------------------------------
// LRU buffer pool vs a naive reference model
// ---------------------------------------------------------------------

/// Reference LRU: a Vec ordered MRU-first, linear-time everything.
#[derive(Default)]
struct NaiveLru {
    entries: Vec<(u64, bool)>, // (page, dirty), MRU first
    capacity: usize,
    disk_reads: u64,
    disk_writes: u64,
}

impl NaiveLru {
    fn access(&mut self, page: u64, kind: Access) {
        let dirty = !matches!(kind, Access::Read);
        if let Some(pos) = self.entries.iter().position(|&(p, _)| p == page) {
            let (p, d) = self.entries.remove(pos);
            self.entries.insert(0, (p, d || dirty));
            return;
        }
        if !matches!(kind, Access::WriteNew) {
            self.disk_reads += 1;
        }
        if self.entries.len() == self.capacity {
            let (_, was_dirty) = self.entries.pop().unwrap();
            if was_dirty {
                self.disk_writes += 1;
            }
        }
        self.entries.insert(0, (page, dirty));
    }
}

fn access_kind(rng: &mut SimRng) -> Access {
    match rng.below(3) {
        0 => Access::Read,
        1 => Access::Write,
        _ => Access::WriteNew,
    }
}

#[test]
fn lru_matches_reference_model() {
    for seed in 0..40u64 {
        let mut rng = SimRng::new(seed);
        let capacity = rng.range_inclusive(1, 11) as usize;
        let mut pool = BufferPool::new(capacity);
        let mut model = NaiveLru {
            capacity,
            ..NaiveLru::default()
        };
        for _ in 0..rng.range_inclusive(1, 400) {
            let page = rng.below(24);
            let kind = access_kind(&mut rng);
            pool.access(PageId(page), kind);
            model.access(page, kind);
            pool.check_invariants();
        }
        let stats = pool.stats();
        assert_eq!(stats.app_disk_reads, model.disk_reads, "seed {seed}");
        assert_eq!(stats.app_disk_writes, model.disk_writes, "seed {seed}");
        assert_eq!(pool.resident_pages(), model.entries.len(), "seed {seed}");
        for (page, _) in &model.entries {
            assert!(pool.is_resident(PageId(*page)), "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------
// Trace codec round-trips arbitrary event sequences
// ---------------------------------------------------------------------

fn random_event(rng: &mut SimRng) -> Event {
    match rng.below(6) {
        0 => Event::CreateRoot {
            node: NodeId(rng.next_u64()),
            size: Bytes(rng.range_inclusive(1, 100_000)),
            slots: rng.below(8) as u16,
        },
        1 => Event::CreateChild {
            node: NodeId(rng.next_u64()),
            parent: NodeId(rng.next_u64()),
            parent_slot: rng.below(8) as u16,
            size: Bytes(rng.range_inclusive(1, 100_000)),
            slots: rng.below(8) as u16,
        },
        2 => Event::WritePointer {
            owner: NodeId(rng.next_u64()),
            slot: rng.below(8) as u16,
            new: rng.chance(0.5).then(|| NodeId(rng.next_u64())),
        },
        3 => Event::AddSlot {
            owner: NodeId(rng.next_u64()),
        },
        4 => Event::Visit {
            node: NodeId(rng.next_u64()),
        },
        _ => Event::DataWrite {
            node: NodeId(rng.next_u64()),
        },
    }
}

#[test]
fn trace_codec_round_trips() {
    for seed in 0..50u64 {
        let mut rng = SimRng::new(seed);
        let events: Vec<Event> = (0..rng.below(200))
            .map(|_| random_event(&mut rng))
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("encode");
        let back = read_trace(buf.as_slice()).expect("decode");
        assert_eq!(back, events, "seed {seed}");
    }
}

#[test]
fn truncated_traces_never_panic() {
    for seed in 0..50u64 {
        let mut rng = SimRng::new(seed);
        let events: Vec<Event> = (0..rng.range_inclusive(1, 50))
            .map(|_| random_event(&mut rng))
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("encode");
        let cut_at = 8 + rng.below(buf.len().saturating_sub(8).max(1) as u64) as usize;
        buf.truncate(cut_at);
        // Must yield Ok (clean prefix) or a TraceFormat error — no panic.
        let _ = read_trace(buf.as_slice());
    }
}

// ---------------------------------------------------------------------
// Collector safety under random application programs
// ---------------------------------------------------------------------

/// A random-but-valid application program, interpreted against the
/// database: ops reference existing objects modulo the current object
/// count, so every generated program is applicable.
#[derive(Debug, Clone)]
enum Op {
    NewRoot,
    NewChild {
        parent: usize,
        slot: u8,
    },
    Unlink {
        owner: usize,
        slot: u8,
    },
    Relink {
        owner: usize,
        slot: u8,
        target: usize,
    },
    Collect,
}

fn random_op(rng: &mut SimRng) -> Op {
    // Weights mirror the old generator: 2/8/4/2/1.
    match rng.below(17) {
        0..=1 => Op::NewRoot,
        2..=9 => Op::NewChild {
            parent: rng.next_u64() as usize >> 1,
            slot: rng.below(2) as u8,
        },
        10..=13 => Op::Unlink {
            owner: rng.next_u64() as usize >> 1,
            slot: rng.below(2) as u8,
        },
        14..=15 => Op::Relink {
            owner: rng.next_u64() as usize >> 1,
            slot: rng.below(2) as u8,
            target: rng.next_u64() as usize >> 1,
        },
        _ => Op::Collect,
    }
}

#[test]
fn collector_never_reclaims_reachable_objects() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(seed);
        let policy = PolicyKind::ALL[rng.pick_index(PolicyKind::ALL.len())];
        let ops: Vec<Op> = (0..rng.range_inclusive(1, 120))
            .map(|_| random_op(&mut rng))
            .collect();
        let cfg = DbConfig::default()
            .with_page_size(512)
            .with_partition_pages(8)
            .with_gc_overwrite_threshold(10);
        let mut db = Database::new(cfg).expect("db");
        let mut collector = Collector::with_kind(policy, 10, 1, 16);
        let mut objects: Vec<Oid> = Vec::new();

        for op in ops {
            match op {
                Op::NewRoot => {
                    objects.push(db.create_root(Bytes(64), 2).expect("root"));
                }
                Op::NewChild { parent, slot } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let p = objects[parent % objects.len()];
                    if !db.objects().contains(p) {
                        continue;
                    }
                    let (c, _info) = db
                        .create_object(Bytes(64), 2, p, SlotId(slot as u16))
                        .expect("child");
                    objects.push(c);
                }
                Op::Unlink { owner, slot } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let o = objects[owner % objects.len()];
                    if !db.objects().contains(o) {
                        continue;
                    }
                    // Only mutate reachable objects, like a real app.
                    if !oracle::reachable_set(&db).contains(&o) {
                        continue;
                    }
                    db.write_slot(o, SlotId(slot as u16), None).expect("write");
                }
                Op::Relink {
                    owner,
                    slot,
                    target,
                } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let o = objects[owner % objects.len()];
                    let t = objects[target % objects.len()];
                    if !db.objects().contains(o) || !db.objects().contains(t) {
                        continue;
                    }
                    let reachable = oracle::reachable_set(&db);
                    if !reachable.contains(&o) || !reachable.contains(&t) {
                        continue;
                    }
                    db.write_slot(o, SlotId(slot as u16), Some(t))
                        .expect("write");
                }
                Op::Collect => {
                    // `force_collect` pumps the accumulated barrier events
                    // through the bus before selecting, so the policy's
                    // scoreboard is current at selection time.
                    let reachable_before = oracle::reachable_set(&db);
                    collector.force_collect(&mut db).expect("collect");
                    for oid in &reachable_before {
                        assert!(
                            db.objects().contains(*oid),
                            "seed {seed}, {policy}: reclaimed reachable object {oid}"
                        );
                    }
                }
            }
            db.check_invariants();
        }

        // Final safety sweep: everything reachable is present with a valid
        // weight, and remsets mirror the heap exactly (check_invariants).
        let reachable = oracle::reachable_set(&db);
        for oid in reachable {
            let rec = db.objects().get(oid).expect("reachable object exists");
            assert!(rec.weight >= 1 && rec.weight <= 16, "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------
// Scoreboard policies: select() is the argmax of victim_score()
// ---------------------------------------------------------------------

/// Drain the database's pending barrier events into `buf` and replay them
/// onto the policy, mirroring what `Collector::sync` does on the bus.
fn pump(db: &mut Database, policy: &mut dyn SelectionPolicy, buf: &mut Vec<BarrierEvent>) {
    db.drain_events_into(buf);
    for event in buf.iter() {
        policy.on_event(event);
    }
    buf.clear();
}

/// Every scoreboard policy exposes its per-partition `victim_score`, and
/// `select` must return the argmax of that score over the collectable
/// partitions, ties toward the lowest partition id. The only exception is
/// the all-zero fallback (nothing has scored yet), where the fullest
/// partition is collected instead; the ranking check still holds there
/// because no partition scores above zero, and the ties-low check is
/// skipped. Random programs drive the database, the barrier events are
/// pumped by hand, and the ranking is checked at every selection.
#[test]
fn scoreboard_selections_maximize_victim_score() {
    const SCORED: &[PolicyKind] = &[
        PolicyKind::MutatedPartition,
        PolicyKind::UpdatedPointer,
        PolicyKind::WeightedPointer,
        PolicyKind::YnyMutated,
        PolicyKind::UpdatedDecay,
        PolicyKind::Composite,
        PolicyKind::AdaptiveMeta,
    ];

    for seed in 0..48u64 {
        let mut rng = SimRng::new(seed);
        let kind = SCORED[rng.pick_index(SCORED.len())];
        let mut policy = build_policy(kind, seed, 16);
        let ops: Vec<Op> = (0..rng.range_inclusive(40, 160))
            .map(|_| random_op(&mut rng))
            .collect();
        let cfg = DbConfig::default()
            .with_page_size(512)
            .with_partition_pages(8)
            .with_gc_overwrite_threshold(10);
        let mut db = Database::new(cfg).expect("db");
        let mut objects: Vec<Oid> = Vec::new();
        let mut buf: Vec<BarrierEvent> = Vec::new();
        let mut activation = 0u64;

        for op in ops {
            match op {
                Op::NewRoot => {
                    objects.push(db.create_root(Bytes(64), 2).expect("root"));
                }
                Op::NewChild { parent, slot } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let p = objects[parent % objects.len()];
                    if !db.objects().contains(p) {
                        continue;
                    }
                    let (c, _info) = db
                        .create_object(Bytes(64), 2, p, SlotId(slot as u16))
                        .expect("child");
                    objects.push(c);
                }
                Op::Unlink { owner, slot } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let o = objects[owner % objects.len()];
                    if !db.objects().contains(o) || !oracle::reachable_set(&db).contains(&o) {
                        continue;
                    }
                    db.write_slot(o, SlotId(slot as u16), None).expect("write");
                }
                Op::Relink {
                    owner,
                    slot,
                    target,
                } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let o = objects[owner % objects.len()];
                    let t = objects[target % objects.len()];
                    if !db.objects().contains(o) || !db.objects().contains(t) {
                        continue;
                    }
                    let reachable = oracle::reachable_set(&db);
                    if !reachable.contains(&o) || !reachable.contains(&t) {
                        continue;
                    }
                    db.write_slot(o, SlotId(slot as u16), Some(t))
                        .expect("write");
                }
                Op::Collect => {
                    // Mirror one Collector activation: pump pending events,
                    // tick, select, check the ranking, collect, pump the
                    // collection's own events.
                    pump(&mut db, policy.as_mut(), &mut buf);
                    activation += 1;
                    policy.on_event(&BarrierEvent::TriggerTick { activation });
                    let Some(victim) = policy.select(&db) else {
                        continue;
                    };
                    let sv = policy
                        .victim_score(victim)
                        .expect("scoreboard policies always score their pick");
                    for p in db.collectable_partitions() {
                        let sp = policy.victim_score(p).unwrap_or(0.0);
                        assert!(
                            sp <= sv,
                            "seed {seed}, {kind}: selected {victim:?} (score {sv}) \
                             but {p:?} scores higher ({sp})"
                        );
                        if sv > 0.0 && sp == sv {
                            assert!(
                                victim.as_usize() <= p.as_usize(),
                                "seed {seed}, {kind}: tie at score {sv} broken \
                                 toward {victim:?} over lower {p:?}"
                            );
                        }
                    }
                    policy.on_event(&BarrierEvent::VictimSelected {
                        victim,
                        score_bits: Some(sv.to_bits()),
                    });
                    db.collect_partition(victim).expect("collect");
                    pump(&mut db, policy.as_mut(), &mut buf);
                    for s in policy.take_switches() {
                        policy.on_event(&BarrierEvent::PolicySwitched {
                            activation: s.activation,
                            from: s.from.name(),
                            to: s.to.name(),
                        });
                    }
                }
            }
            db.check_invariants();
        }
    }
}

// ---------------------------------------------------------------------
// Workload generator: every generated trace is applicable
// ---------------------------------------------------------------------

#[test]
fn any_seeded_workload_replays_cleanly() {
    for seed in 0..16u64 {
        let mut params = pgc::workload::WorkloadParams::small().with_seed(seed * 61 + 7);
        params.target_allocated = Bytes::from_kib(64);
        params.tree_nodes_min = 8;
        params.tree_nodes_max = 40;
        let events: Vec<Event> = pgc::workload::SyntheticWorkload::new(params)
            .expect("params")
            .collect();
        let cfg = pgc::sim::RunConfig::small();
        let out = pgc::sim::Simulation::builder(&cfg)
            .events(&events)
            .run()
            .expect("replay");
        assert_eq!(out.totals.events, events.len() as u64, "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Page-span arithmetic
// ---------------------------------------------------------------------

#[test]
fn page_spans_cover_exactly_the_extent() {
    use pgc::storage::{page_span, ObjAddr};
    const PAGE: u64 = 8192;
    const PARTITION_PAGES: u64 = 48;
    for seed in 0..200u64 {
        let mut rng = SimRng::new(seed);
        let partition = rng.below(32) as u32;
        // Clamp the extent inside the partition, as the allocator does.
        let offset = rng.below(PARTITION_PAGES * PAGE);
        let size = rng
            .range_inclusive(1, 64 * 1024)
            .min(PARTITION_PAGES * PAGE - offset);
        let addr = ObjAddr::new(pgc::types::PartitionId(partition), offset);
        let pages: Vec<u64> = page_span(addr, Bytes(size), PAGE as usize, PARTITION_PAGES)
            .map(|p| p.index())
            .collect();
        // Non-empty, consecutive, within the partition's global page range.
        assert!(!pages.is_empty(), "seed {seed}");
        for w in pages.windows(2) {
            assert_eq!(w[1], w[0] + 1, "seed {seed}");
        }
        let base = partition as u64 * PARTITION_PAGES;
        assert!(pages[0] >= base, "seed {seed}");
        assert!(
            *pages.last().unwrap() < base + PARTITION_PAGES,
            "seed {seed}"
        );
        // First and last pages contain the extent's first and last bytes.
        assert_eq!(pages[0], base + offset / PAGE, "seed {seed}");
        assert_eq!(
            *pages.last().unwrap(),
            base + (offset + size - 1) / PAGE,
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------
// Partition allocator vs a byte-accurate reference model
// ---------------------------------------------------------------------

#[test]
fn partition_set_matches_reference_accounting() {
    use pgc::storage::PartitionSet;
    const CAPACITY: u64 = 4096;
    for seed in 0..40u64 {
        let mut rng = SimRng::new(seed);
        let mut set = PartitionSet::new(1024, 4);
        // Reference: per-partition bump cursors.
        let mut cursors: Vec<u64> = vec![0, 0]; // P0 (empty), P1
        for _ in 0..rng.range_inclusive(1, 120) {
            let size = rng.range_inclusive(1, 2999);
            let placement = set.allocate(Bytes(size), None).expect("fits a partition");
            let idx = placement.partition.as_usize();
            if placement.grew {
                assert_eq!(idx, cursors.len(), "seed {seed}: growth appends partitions");
                cursors.push(0);
            }
            // Never the designated empty partition.
            assert_ne!(placement.partition, set.empty_partition(), "seed {seed}");
            // Offsets are exactly the reference bump cursor.
            assert_eq!(placement.offset, cursors[idx], "seed {seed}");
            cursors[idx] += size;
            assert!(
                cursors[idx] <= CAPACITY,
                "seed {seed}: no partition overflows"
            );
        }
        // Footprint matches the number of partitions.
        assert_eq!(
            set.total_footprint().get(),
            CAPACITY * cursors.len() as u64,
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------
// Client/server pool: conservation properties
// ---------------------------------------------------------------------

#[test]
fn tiered_pool_disk_traffic_never_exceeds_network_traffic() {
    use pgc::buffer::TieredPool;
    for seed in 0..40u64 {
        let mut rng = SimRng::new(seed);
        let client = rng.range_inclusive(1, 5) as usize;
        let server = rng.range_inclusive(1, 9) as usize;
        let mut pool = TieredPool::new(client, server);
        for _ in 0..rng.range_inclusive(1, 300) {
            let page = rng.below(30);
            let kind = access_kind(&mut rng);
            pool.access(PageId(page), kind);
            pool.check_invariants();
        }
        let s = pool.stats();
        // Every disk read was triggered by a network fetch that missed the
        // server buffer; every disk write by a dirty page that first
        // travelled client -> server.
        assert!(
            s.disk_reads_app + s.disk_reads_gc <= s.net_reads_app + s.net_reads_gc,
            "seed {seed}"
        );
        assert!(
            s.disk_writes_app + s.disk_writes_gc <= s.net_writebacks_app + s.net_writebacks_gc,
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------
// Summary statistics vs a naive implementation
// ---------------------------------------------------------------------

#[test]
fn summary_matches_naive_statistics() {
    for seed in 0..40u64 {
        let mut rng = SimRng::new(seed);
        let samples: Vec<f64> = (0..rng.range_inclusive(2, 49))
            .map(|_| (rng.unit() - 0.5) * 2.0e6)
            .collect();
        let s = pgc::sim::Summary::of(&samples);
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!(
            (s.mean - mean).abs() <= 1e-6 * (1.0 + mean.abs()),
            "seed {seed}"
        );
        assert!(
            (s.std_dev - var.sqrt()).abs() <= 1e-6 * (1.0 + var.sqrt()),
            "seed {seed}"
        );
        assert_eq!(s.n, samples.len(), "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Dense oracle vs the retained hash-set reference (tentpole guarantee)
// ---------------------------------------------------------------------

#[test]
fn dense_oracle_matches_reference_after_real_workloads() {
    use pgc::odb::oracle::OracleScratch;
    // Drive real small workloads (not just synthetic graphs) to states with
    // garbage, nepotism, and relocation history, then require report
    // equality — including `nepotism_bytes` — between implementations.
    let mut scratch = OracleScratch::new();
    for seed in 0..6u64 {
        let cfg = pgc::sim::RunConfig::small().with_seed(seed);
        let mut params = cfg.workload.clone();
        params.target_allocated = Bytes::from_kib(128);
        let events: Vec<Event> = pgc::workload::SyntheticWorkload::new(params)
            .expect("params")
            .collect();
        let db = Database::new(cfg.db.clone()).expect("db");
        let collector = Collector::with_kind(PolicyKind::UpdatedPointer, 25, 1, 16);
        let mut replayer = pgc::sim::Replayer::new(db, collector);
        for (i, event) in events.iter().enumerate() {
            replayer.apply(event).expect("apply");
            if i % 500 == 0 {
                let expected = oracle::reference::analyze(replayer.db());
                let got = oracle::analyze_with(replayer.db(), &mut scratch);
                assert_eq!(got, expected, "seed {seed}, event {i}");
            }
        }
        let expected = oracle::reference::analyze(replayer.db());
        assert_eq!(
            oracle::analyze_with(replayer.db(), &mut scratch),
            expected,
            "seed {seed}, final state"
        );
    }
}
