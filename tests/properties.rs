//! Property-based tests over the core data structures and the collector's
//! safety invariants.

use pgc::buffer::{Access, BufferPool};
use pgc::core::{Collector, PolicyKind};
use pgc::odb::{oracle, Database};
use pgc::types::{Bytes, DbConfig, Oid, PageId, SlotId};
use pgc::workload::{read_trace, write_trace, Event, NodeId};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// LRU buffer pool vs a naive reference model
// ---------------------------------------------------------------------

/// Reference LRU: a Vec ordered MRU-first, linear-time everything.
#[derive(Default)]
struct NaiveLru {
    entries: Vec<(u64, bool)>, // (page, dirty), MRU first
    capacity: usize,
    disk_reads: u64,
    disk_writes: u64,
}

impl NaiveLru {
    fn access(&mut self, page: u64, kind: Access) {
        let dirty = !matches!(kind, Access::Read);
        if let Some(pos) = self.entries.iter().position(|&(p, _)| p == page) {
            let (p, d) = self.entries.remove(pos);
            self.entries.insert(0, (p, d || dirty));
            return;
        }
        if !matches!(kind, Access::WriteNew) {
            self.disk_reads += 1;
        }
        if self.entries.len() == self.capacity {
            let (_, was_dirty) = self.entries.pop().unwrap();
            if was_dirty {
                self.disk_writes += 1;
            }
        }
        self.entries.insert(0, (page, dirty));
    }
}

proptest! {
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..12,
        ops in prop::collection::vec((0u64..24, 0u8..3), 1..400),
    ) {
        let mut pool = BufferPool::new(capacity);
        let mut model = NaiveLru { capacity, ..NaiveLru::default() };
        for (page, kind) in ops {
            let kind = match kind {
                0 => Access::Read,
                1 => Access::Write,
                _ => Access::WriteNew,
            };
            pool.access(PageId(page), kind);
            model.access(page, kind);
            pool.check_invariants();
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.app_disk_reads, model.disk_reads);
        prop_assert_eq!(stats.app_disk_writes, model.disk_writes);
        prop_assert_eq!(pool.resident_pages(), model.entries.len());
        for (page, _) in &model.entries {
            prop_assert!(pool.is_resident(PageId(*page)));
        }
    }
}

// ---------------------------------------------------------------------
// Trace codec round-trips arbitrary event sequences
// ---------------------------------------------------------------------

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (any::<u64>(), 1u32..100_000, 0u16..8).prop_map(|(n, size, slots)| Event::CreateRoot {
            node: NodeId(n),
            size: Bytes(size as u64),
            slots,
        }),
        (any::<u64>(), any::<u64>(), 0u16..8, 1u32..100_000, 0u16..8).prop_map(
            |(n, p, ps, size, slots)| Event::CreateChild {
                node: NodeId(n),
                parent: NodeId(p),
                parent_slot: ps,
                size: Bytes(size as u64),
                slots,
            }
        ),
        (any::<u64>(), 0u16..8, prop::option::of(any::<u64>())).prop_map(|(o, s, n)| {
            Event::WritePointer {
                owner: NodeId(o),
                slot: s,
                new: n.map(NodeId),
            }
        }),
        any::<u64>().prop_map(|o| Event::AddSlot { owner: NodeId(o) }),
        any::<u64>().prop_map(|n| Event::Visit { node: NodeId(n) }),
        any::<u64>().prop_map(|n| Event::DataWrite { node: NodeId(n) }),
    ]
}

proptest! {
    #[test]
    fn trace_codec_round_trips(events in prop::collection::vec(arb_event(), 0..200)) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("encode");
        let back = read_trace(buf.as_slice()).expect("decode");
        prop_assert_eq!(back, events);
    }

    #[test]
    fn truncated_traces_never_panic(
        events in prop::collection::vec(arb_event(), 1..50),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("encode");
        let cut_at = 8 + cut.index(buf.len().saturating_sub(8));
        buf.truncate(cut_at);
        // Must yield Ok (clean prefix) or a TraceFormat error — no panic.
        let _ = read_trace(buf.as_slice());
    }
}

// ---------------------------------------------------------------------
// Collector safety under random application programs
// ---------------------------------------------------------------------

/// A random-but-valid application program, interpreted against the
/// database: ops reference existing objects modulo the current object
/// count, so every generated program is applicable.
#[derive(Debug, Clone)]
enum Op {
    NewRoot,
    NewChild { parent: usize, slot: u8 },
    Unlink { owner: usize, slot: u8 },
    Relink { owner: usize, slot: u8, target: usize },
    Collect,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::NewRoot),
        8 => (any::<prop::sample::Index>(), 0u8..2).prop_map(|(p, s)| Op::NewChild {
            parent: p.index(usize::MAX - 1),
            slot: s
        }),
        4 => (any::<prop::sample::Index>(), 0u8..2).prop_map(|(o, s)| Op::Unlink {
            owner: o.index(usize::MAX - 1),
            slot: s
        }),
        2 => (any::<prop::sample::Index>(), 0u8..2, any::<prop::sample::Index>()).prop_map(
            |(o, s, t)| Op::Relink {
                owner: o.index(usize::MAX - 1),
                slot: s,
                target: t.index(usize::MAX - 1)
            }
        ),
        1 => Just(Op::Collect),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn collector_never_reclaims_reachable_objects(
        ops in prop::collection::vec(arb_op(), 1..120),
        policy_idx in 0usize..PolicyKind::ALL.len(),
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let cfg = DbConfig::default()
            .with_page_size(512)
            .with_partition_pages(8)
            .with_gc_overwrite_threshold(10);
        let mut db = Database::new(cfg).expect("db");
        let mut collector = Collector::with_kind(policy, 10, 1, 16);
        let mut objects: Vec<Oid> = Vec::new();

        for op in ops {
            match op {
                Op::NewRoot => {
                    objects.push(db.create_root(Bytes(64), 2).expect("root"));
                }
                Op::NewChild { parent, slot } => {
                    if objects.is_empty() { continue; }
                    let p = objects[parent % objects.len()];
                    if !db.objects().contains(p) { continue; }
                    let (c, info) = db
                        .create_object(Bytes(64), 2, p, SlotId(slot as u16))
                        .expect("child");
                    collector.observe_write(&info);
                    objects.push(c);
                }
                Op::Unlink { owner, slot } => {
                    if objects.is_empty() { continue; }
                    let o = objects[owner % objects.len()];
                    if !db.objects().contains(o) { continue; }
                    // Only mutate reachable objects, like a real app.
                    if !oracle::reachable_set(&db).contains(&o) { continue; }
                    let info = db.write_slot(o, SlotId(slot as u16), None).expect("write");
                    collector.observe_write(&info);
                }
                Op::Relink { owner, slot, target } => {
                    if objects.is_empty() { continue; }
                    let o = objects[owner % objects.len()];
                    let t = objects[target % objects.len()];
                    if !db.objects().contains(o) || !db.objects().contains(t) { continue; }
                    let reachable = oracle::reachable_set(&db);
                    if !reachable.contains(&o) || !reachable.contains(&t) { continue; }
                    let info = db.write_slot(o, SlotId(slot as u16), Some(t)).expect("write");
                    collector.observe_write(&info);
                }
                Op::Collect => {
                    let reachable_before = oracle::reachable_set(&db);
                    collector.force_collect(&mut db).expect("collect");
                    for oid in &reachable_before {
                        prop_assert!(
                            db.objects().contains(*oid),
                            "{policy}: reclaimed reachable object {oid}"
                        );
                    }
                }
            }
            db.check_invariants();
        }

        // Final safety sweep: everything reachable is present with a valid
        // weight, and remsets mirror the heap exactly (check_invariants).
        let reachable = oracle::reachable_set(&db);
        for oid in reachable {
            let rec = db.objects().get(oid).expect("reachable object exists");
            prop_assert!(rec.weight >= 1 && rec.weight <= 16);
        }
    }
}

// ---------------------------------------------------------------------
// Workload generator: every generated trace is applicable
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn any_seeded_workload_replays_cleanly(seed in 0u64..1000) {
        let mut params = pgc::workload::WorkloadParams::small().with_seed(seed);
        params.target_allocated = Bytes::from_kib(64);
        params.tree_nodes_min = 8;
        params.tree_nodes_max = 40;
        let events: Vec<Event> =
            pgc::workload::SyntheticWorkload::new(params).expect("params").collect();
        let cfg = pgc::sim::RunConfig::small();
        let out = pgc::sim::Simulation::run_trace(&cfg, &events).expect("replay");
        prop_assert_eq!(out.totals.events, events.len() as u64);
    }
}

// ---------------------------------------------------------------------
// Page-span arithmetic
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn page_spans_cover_exactly_the_extent(
        partition in 0u32..32,
        offset in 0u64..(48 * 8192),
        size in 1u64..(64 * 1024),
    ) {
        use pgc::storage::{page_span, ObjAddr};
        const PAGE: u64 = 8192;
        const PARTITION_PAGES: u64 = 48;
        // Clamp the extent inside the partition, as the allocator does.
        let offset = offset.min(PARTITION_PAGES * PAGE - 1);
        let size = size.min(PARTITION_PAGES * PAGE - offset);
        let addr = ObjAddr::new(pgc::types::PartitionId(partition), offset);
        let pages: Vec<u64> = page_span(addr, Bytes(size), PAGE as usize, PARTITION_PAGES)
            .map(|p| p.index())
            .collect();
        // Non-empty, consecutive, within the partition's global page range.
        prop_assert!(!pages.is_empty());
        for w in pages.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
        let base = partition as u64 * PARTITION_PAGES;
        prop_assert!(pages[0] >= base);
        prop_assert!(*pages.last().unwrap() < base + PARTITION_PAGES);
        // First and last pages contain the extent's first and last bytes.
        prop_assert_eq!(pages[0], base + offset / PAGE);
        prop_assert_eq!(*pages.last().unwrap(), base + (offset + size - 1) / PAGE);
    }
}

// ---------------------------------------------------------------------
// Partition allocator vs a byte-accurate reference model
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn partition_set_matches_reference_accounting(
        sizes in prop::collection::vec(1u64..3000, 1..120),
    ) {
        use pgc::storage::PartitionSet;
        const CAPACITY: u64 = 4096;
        let mut set = PartitionSet::new(1024, 4);
        // Reference: per-partition bump cursors.
        let mut cursors: Vec<u64> = vec![0, 0]; // P0 (empty), P1
        for size in sizes {
            let placement = set.allocate(Bytes(size), None).expect("fits a partition");
            let idx = placement.partition.as_usize();
            if placement.grew {
                prop_assert_eq!(idx, cursors.len(), "growth appends partitions");
                cursors.push(0);
            }
            // Never the designated empty partition.
            prop_assert_ne!(placement.partition, set.empty_partition());
            // Offsets are exactly the reference bump cursor.
            prop_assert_eq!(placement.offset, cursors[idx]);
            cursors[idx] += size;
            prop_assert!(cursors[idx] <= CAPACITY, "no partition overflows");
        }
        // Footprint matches the number of partitions.
        prop_assert_eq!(
            set.total_footprint().get(),
            CAPACITY * cursors.len() as u64
        );
    }
}

// ---------------------------------------------------------------------
// Client/server pool: conservation properties
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn tiered_pool_disk_traffic_never_exceeds_network_traffic(
        client in 1usize..6,
        server in 1usize..10,
        ops in prop::collection::vec((0u64..30, 0u8..3), 1..300),
    ) {
        use pgc::buffer::{Access, TieredPool};
        let mut pool = TieredPool::new(client, server);
        for (page, kind) in ops {
            let kind = match kind {
                0 => Access::Read,
                1 => Access::Write,
                _ => Access::WriteNew,
            };
            pool.access(PageId(page), kind);
            pool.check_invariants();
        }
        let s = pool.stats();
        // Every disk read was triggered by a network fetch that missed the
        // server buffer; every disk write by a dirty page that first
        // travelled client -> server.
        prop_assert!(s.disk_reads_app + s.disk_reads_gc
            <= s.net_reads_app + s.net_reads_gc);
        prop_assert!(s.disk_writes_app + s.disk_writes_gc
            <= s.net_writebacks_app + s.net_writebacks_gc);
    }
}

// ---------------------------------------------------------------------
// Summary statistics vs a naive implementation
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn summary_matches_naive_statistics(
        samples in prop::collection::vec(-1.0e6f64..1.0e6, 2..50),
    ) {
        let s = pgc::sim::Summary::of(&samples);
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.std_dev - var.sqrt()).abs() <= 1e-6 * (1.0 + var.sqrt()));
        prop_assert_eq!(s.n, samples.len());
    }
}
