//! Crash-recovery bit-identity for the durable storage backend.
//!
//! The contract under test: a run persisted with
//! [`DurabilityConfig::snapshot_and_log`] can be rebuilt from its data
//! directory alone — manifest → config, change log → replay, snapshots →
//! verification checkpoints — and the recovered [`RunOutcome`] is
//! *bit-identical* to the uninterrupted run: same totals, same victim
//! sequence, same telemetry counters and records. A torn log tail
//! (truncated or corrupted final frame) is detected by checksum and
//! dropped, and recovery then matches a fresh run over the surviving
//! event prefix. The same holds per stream for a persisted server fleet.

use pgc::durable::{read_log, ScratchDir};
use pgc::prelude::*;
use pgc::workload::generator::GenStats;
use pgc::workload::SyntheticWorkload;
use std::fs;

/// Policies covering the paper's winner, the oracle, and the baseline —
/// distinct victim sequences, so digest collisions can't hide a mix-up.
const POLICIES: [PolicyKind; 3] = [
    PolicyKind::UpdatedPointer,
    PolicyKind::MostGarbage,
    PolicyKind::Random,
];

fn durable_cfg(dir: &ScratchDir) -> DurabilityConfig {
    // Tight snapshot cadence and small segments so even a small run
    // exercises multiple generations and log rotation.
    DurabilityConfig::snapshot_and_log(dir.path())
        .with_snapshot_every(2)
        .with_segment_bytes(64 << 10)
}

fn run_durable(policy: PolicyKind, seed: u64, dir: &ScratchDir) -> RunOutcome {
    let cfg = RunConfig::small().with_policy(policy).with_seed(seed);
    Simulation::builder(&cfg)
        .telemetry(TelemetryLevel::Full)
        .durability(durable_cfg(dir))
        .run()
        .expect("durable run")
}

#[test]
fn recovery_is_bit_identical_across_policies_and_seeds() {
    for policy in POLICIES {
        for seed in 0..5 {
            let dir = ScratchDir::new("recover");
            let original = run_durable(policy, seed, &dir);
            let recovered = recover(dir.path()).expect("recover");

            assert_eq!(
                outcome_digest(&recovered.outcome),
                outcome_digest(&original),
                "{policy} seed {seed}: recovered digest diverges"
            );
            // The digest covers these, but spell the headline fields out
            // so a failure names what broke.
            assert_eq!(
                recovered.outcome.totals, original.totals,
                "{policy} seed {seed}"
            );
            let victims =
                |out: &RunOutcome| out.collections.iter().map(|c| c.victim).collect::<Vec<_>>();
            assert_eq!(
                victims(&recovered.outcome),
                victims(&original),
                "{policy} seed {seed}: victim sequence"
            );
            assert_eq!(
                recovered.torn_tail, None,
                "{policy} seed {seed}: clean shutdown"
            );
            assert_eq!(recovered.events_replayed, original.totals.events);
            assert!(
                recovered.snapshots_verified > 0,
                "{policy} seed {seed}: the final generation must be verified"
            );
            assert_eq!(recovered.snapshot_files_skipped, 0);
            assert_eq!(recovered.cfg.policy, policy);
            assert_eq!(recovered.telemetry_level, TelemetryLevel::Full);

            let (orig_tel, rec_tel) = (
                original.telemetry.as_ref().expect("telemetry on"),
                recovered
                    .outcome
                    .telemetry
                    .as_ref()
                    .expect("telemetry replayed"),
            );
            assert_eq!(rec_tel.counters.events, orig_tel.counters.events);
            assert_eq!(rec_tel.counters.collections, orig_tel.counters.collections);
            assert_eq!(
                rec_tel.counters.reclaimed_bytes,
                orig_tel.counters.reclaimed_bytes
            );
            assert_eq!(rec_tel.records.len(), orig_tel.records.len());
        }
    }
}

/// The newest log segment in `dir`, by sequence number.
fn newest_log_segment(dir: &ScratchDir) -> std::path::PathBuf {
    let mut segments: Vec<_> = fs::read_dir(dir.path())
        .expect("read data dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("log-") && n.ends_with(".pgcl"))
        })
        .collect();
    segments.sort();
    segments.pop().expect("at least one log segment")
}

/// Replays `dir`'s surviving log prefix through a bare [`Shard`] — the
/// ground truth a torn-tail recovery must match.
fn replay_prefix_baseline(dir: &ScratchDir, recovered: &RecoveredRun) -> RunOutcome {
    let log = read_log(dir.path()).expect("read log");
    let mut shard = Shard::new(&recovered.cfg).expect("shard");
    shard.enable_telemetry(recovered.telemetry_level);
    shard.step_batch(&log.events).expect("replay prefix");
    shard.finish(GenStats::default()).expect("finish")
}

#[test]
fn torn_tail_is_dropped_and_recovery_matches_the_surviving_prefix() {
    let dir = ScratchDir::new("torn");
    run_durable(PolicyKind::UpdatedPointer, 7, &dir);

    // Tear the tail: chop bytes off the newest segment so its final frame
    // is truncated mid-payload.
    let tail = newest_log_segment(&dir);
    let len = fs::metadata(&tail).expect("stat").len();
    let file = fs::OpenOptions::new()
        .write(true)
        .open(&tail)
        .expect("open tail");
    file.set_len(len - 9).expect("truncate");
    drop(file);

    let recovered = recover(dir.path()).expect("recovery survives a torn tail");
    assert!(
        recovered.torn_tail.is_some(),
        "the torn frame must be detected"
    );
    let baseline = replay_prefix_baseline(&dir, &recovered);
    assert_eq!(
        outcome_digest(&recovered.outcome),
        outcome_digest(&baseline),
        "torn-tail recovery must equal a fresh run over the surviving prefix"
    );
    assert_eq!(recovered.outcome.totals, baseline.totals);
}

#[test]
fn corrupted_tail_frame_fails_its_checksum_and_is_dropped() {
    let dir = ScratchDir::new("corrupt");
    run_durable(PolicyKind::MostGarbage, 3, &dir);

    // Flip one byte inside the final frame: the length prefix still reads,
    // the CRC no longer matches.
    let tail = newest_log_segment(&dir);
    let mut bytes = fs::read(&tail).expect("read tail");
    let at = bytes.len() - 6;
    bytes[at] ^= 0xA5;
    fs::write(&tail, &bytes).expect("write corrupted tail");

    let recovered = recover(dir.path()).expect("recovery survives a corrupt frame");
    assert!(
        recovered.torn_tail.is_some(),
        "the corrupt frame must be detected"
    );
    let baseline = replay_prefix_baseline(&dir, &recovered);
    assert_eq!(
        outcome_digest(&recovered.outcome),
        outcome_digest(&baseline)
    );
}

#[test]
fn server_streams_persist_and_recover_independently() {
    let root = ScratchDir::new("fleet");
    let configs: Vec<(StreamId, RunConfig)> = (0..3u64)
        .map(|i| {
            let cfg = RunConfig::small()
                .with_policy(POLICIES[i as usize % POLICIES.len()])
                .with_seed(i + 1);
            (StreamId(i), cfg)
        })
        .collect();

    let mut server = Server::start(
        ServerConfig::new(2)
            .with_telemetry(TelemetryLevel::Full)
            .with_data_dir(root.path()),
    );
    let mut handles = Vec::new();
    for (stream, cfg) in &configs {
        handles.push(server.open_stream(*stream, cfg.clone()).expect("open"));
    }
    for ((_, cfg), handle) in configs.iter().zip(&handles) {
        let events: Vec<_> = SyntheticWorkload::new(cfg.workload.clone())
            .expect("workload")
            .collect();
        server.submit_owned(handle, events).expect("submit");
    }
    let fleet = server.shutdown().expect("shutdown");

    assert_eq!(fleet.outcomes.len(), configs.len());
    for (stream, outcome) in &fleet.outcomes {
        let dir = root.join(format!("stream-{:06}", stream.0));
        let recovered =
            recover(&dir).unwrap_or_else(|e| panic!("recover stream {}: {e}", stream.0));
        assert_eq!(
            outcome_digest(&recovered.outcome),
            outcome_digest(outcome),
            "stream {} recovery diverges from the fleet outcome",
            stream.0
        );
        assert_eq!(
            recovered.outcome.totals, outcome.totals,
            "stream {}",
            stream.0
        );
    }
}
