//! A single physical partition.
//!
//! Each partition is a fixed-capacity region (`partition_pages * page_size`
//! bytes) filled by bump allocation. Space freed by objects dying inside the
//! partition is *not* reusable in place: under the paper's copying design,
//! the only way a partition's dead space comes back is a copy collection
//! that evacuates the live objects and resets the whole partition. The
//! difference between the bump cursor and the live bytes is therefore the
//! partition's internal fragmentation plus unreclaimed garbage — the
//! quantity the selection policies are trying to maximize when they pick a
//! victim.

use pgc_types::{Bytes, PartitionId};

/// Bookkeeping for one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    id: PartitionId,
    capacity: Bytes,
    /// Bump cursor: all bytes below this offset have been handed out.
    cursor: u64,
    /// Bytes occupied by objects currently considered live-or-unreclaimed
    /// (decremented when an object is reclaimed or evacuated, not when it
    /// merely becomes unreachable — unreachability is invisible here).
    resident_bytes: Bytes,
    /// Number of resident objects (same caveat as `resident_bytes`).
    resident_objects: u64,
}

impl Partition {
    /// Creates an empty partition of the given byte capacity.
    pub fn new(id: PartitionId, capacity: Bytes) -> Self {
        Self {
            id,
            capacity,
            cursor: 0,
            resident_bytes: Bytes::ZERO,
            resident_objects: 0,
        }
    }

    /// This partition's id.
    #[inline]
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Total byte capacity.
    #[inline]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes still available to the bump allocator.
    #[inline]
    pub fn free_bytes(&self) -> Bytes {
        Bytes(self.capacity.get() - self.cursor)
    }

    /// Bytes handed out so far (live + dead + fragmentation).
    #[inline]
    pub fn used_bytes(&self) -> Bytes {
        Bytes(self.cursor)
    }

    /// Bytes belonging to resident (not yet reclaimed) objects.
    #[inline]
    pub fn resident_bytes(&self) -> Bytes {
        self.resident_bytes
    }

    /// Number of resident objects.
    #[inline]
    pub fn resident_objects(&self) -> u64 {
        self.resident_objects
    }

    /// True if nothing has ever been allocated since the last reset.
    #[inline]
    pub fn is_fresh(&self) -> bool {
        self.cursor == 0
    }

    /// Attempts to bump-allocate `size` bytes; returns the offset of the new
    /// extent, or `None` if the partition lacks contiguous space.
    pub fn try_alloc(&mut self, size: Bytes) -> Option<u64> {
        if size.get() > self.free_bytes().get() {
            return None;
        }
        let offset = self.cursor;
        self.cursor += size.get();
        self.resident_bytes += size;
        self.resident_objects += 1;
        Some(offset)
    }

    /// Records that a resident object of `size` bytes left the partition
    /// (reclaimed as garbage or evacuated by the collector). The space is
    /// *not* returned to the allocator.
    pub fn note_departure(&mut self, size: Bytes) {
        debug_assert!(self.resident_objects > 0, "departure from empty partition");
        self.resident_bytes -= size;
        self.resident_objects -= 1;
    }

    /// Resets the partition to completely empty (after the collector has
    /// evacuated its live objects).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.resident_bytes = Bytes::ZERO;
        self.resident_objects = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(cap: u64) -> Partition {
        Partition::new(PartitionId(0), Bytes(cap))
    }

    #[test]
    fn bump_allocation_is_sequential() {
        let mut p = part(1000);
        assert_eq!(p.try_alloc(Bytes(100)), Some(0));
        assert_eq!(p.try_alloc(Bytes(50)), Some(100));
        assert_eq!(p.try_alloc(Bytes(850)), Some(150));
        assert_eq!(p.free_bytes(), Bytes::ZERO);
        assert_eq!(p.try_alloc(Bytes(1)), None);
    }

    #[test]
    fn allocation_respects_capacity_exactly() {
        let mut p = part(100);
        assert_eq!(p.try_alloc(Bytes(100)), Some(0));
        let mut p = part(100);
        assert_eq!(p.try_alloc(Bytes(101)), None);
        assert!(p.is_fresh());
    }

    #[test]
    fn departure_does_not_free_allocator_space() {
        let mut p = part(100);
        p.try_alloc(Bytes(60)).unwrap();
        p.note_departure(Bytes(60));
        assert_eq!(p.resident_bytes(), Bytes::ZERO);
        assert_eq!(p.resident_objects(), 0);
        // The hole is not reusable: only 40 bytes remain allocatable.
        assert_eq!(p.free_bytes(), Bytes(40));
        assert_eq!(p.try_alloc(Bytes(41)), None);
        assert_eq!(p.try_alloc(Bytes(40)), Some(60));
    }

    #[test]
    fn reset_restores_everything() {
        let mut p = part(100);
        p.try_alloc(Bytes(70)).unwrap();
        p.reset();
        assert!(p.is_fresh());
        assert_eq!(p.free_bytes(), Bytes(100));
        assert_eq!(p.resident_objects(), 0);
        assert_eq!(p.try_alloc(Bytes(100)), Some(0));
    }

    #[test]
    fn accounting_tracks_residents() {
        let mut p = part(1000);
        p.try_alloc(Bytes(100)).unwrap();
        p.try_alloc(Bytes(200)).unwrap();
        assert_eq!(p.resident_bytes(), Bytes(300));
        assert_eq!(p.resident_objects(), 2);
        assert_eq!(p.used_bytes(), Bytes(300));
        p.note_departure(Bytes(100));
        assert_eq!(p.resident_bytes(), Bytes(200));
        assert_eq!(p.used_bytes(), Bytes(300)); // cursor unmoved
    }
}
