//! Physical addresses and page-span arithmetic.
//!
//! An object lives at a byte offset inside one partition and never straddles
//! a partition boundary (objects *may* straddle page boundaries within the
//! partition, as 100-byte objects packed into 8 KB pages naturally do).
//! Partition `p` of a database with `partition_pages` pages per partition
//! owns the global pages `[p * partition_pages, (p+1) * partition_pages)`,
//! so translating an object's extent into the pages it touches — the unit
//! the I/O buffer works in — is pure arithmetic.

use pgc_types::{Bytes, PageId, PartitionId};

/// The physical location of an object: a byte offset within a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjAddr {
    /// The partition holding the object.
    pub partition: PartitionId,
    /// Byte offset of the object's first byte within the partition.
    pub offset: u64,
}

impl ObjAddr {
    /// Convenience constructor.
    #[inline]
    pub const fn new(partition: PartitionId, offset: u64) -> Self {
        Self { partition, offset }
    }
}

impl std::fmt::Display for ObjAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}+{}", self.partition, self.offset)
    }
}

/// An iterator over the global pages an object extent occupies.
///
/// Cheap to construct and `Clone`; yields consecutive [`PageId`]s.
#[derive(Debug, Clone)]
pub struct PageSpan {
    next: u64,
    end: u64, // exclusive
}

impl PageSpan {
    /// Number of pages in the span.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.next
    }

    /// True for a zero-page span (only possible for zero-sized extents).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.next == self.end
    }
}

impl Iterator for PageSpan {
    type Item = PageId;

    fn next(&mut self) -> Option<PageId> {
        if self.next == self.end {
            return None;
        }
        let p = PageId(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PageSpan {}

/// Computes the global pages touched by an object of `size` bytes at `addr`.
///
/// `page_size` and `partition_pages` come from the database configuration.
/// A zero-sized extent touches no pages.
///
/// # Panics
///
/// Debug-asserts that the extent stays inside its partition; the allocator
/// guarantees this for all addresses it hands out.
pub fn page_span(addr: ObjAddr, size: Bytes, page_size: usize, partition_pages: u64) -> PageSpan {
    let base_page = addr.partition.index() as u64 * partition_pages;
    if size.is_zero() {
        return PageSpan { next: 0, end: 0 };
    }
    let first = addr.offset / page_size as u64;
    let last = (addr.offset + size.get() - 1) / page_size as u64;
    debug_assert!(
        last < partition_pages,
        "extent {addr}+{size} escapes its partition ({partition_pages} pages)"
    );
    PageSpan {
        next: base_page + first,
        end: base_page + last + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::DEFAULT_PAGE_SIZE;

    const PP: u64 = 48;

    fn span_vec(partition: u32, offset: u64, size: u64) -> Vec<u64> {
        page_span(
            ObjAddr::new(PartitionId(partition), offset),
            Bytes(size),
            DEFAULT_PAGE_SIZE,
            PP,
        )
        .map(|p| p.index())
        .collect()
    }

    #[test]
    fn small_object_on_one_page() {
        assert_eq!(span_vec(0, 0, 100), vec![0]);
        assert_eq!(span_vec(0, 8000, 100), vec![0]); // fits before 8192
    }

    #[test]
    fn object_straddling_a_page_boundary() {
        // Bytes 8100..8200 touch pages 0 and 1.
        assert_eq!(span_vec(0, 8100, 100), vec![0, 1]);
    }

    #[test]
    fn object_exactly_filling_a_page() {
        assert_eq!(span_vec(0, 8192, 8192), vec![1]);
    }

    #[test]
    fn large_object_spans_many_pages() {
        // A 64 KB object starting at offset 0 touches pages 0..8.
        assert_eq!(span_vec(0, 0, 64 * 1024), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn partition_offsets_map_to_global_pages() {
        // Partition 2 starts at global page 96 when partitions are 48 pages.
        assert_eq!(span_vec(2, 0, 100), vec![96]);
        assert_eq!(span_vec(2, 8192, 100), vec![97]);
    }

    #[test]
    fn zero_size_touches_nothing() {
        let s = page_span(
            ObjAddr::new(PartitionId(1), 500),
            Bytes::ZERO,
            DEFAULT_PAGE_SIZE,
            PP,
        );
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn span_len_matches_iteration() {
        let s = page_span(
            ObjAddr::new(PartitionId(1), 4000),
            Bytes(20_000),
            DEFAULT_PAGE_SIZE,
            PP,
        );
        assert_eq!(s.len() as usize, s.clone().count());
        assert_eq!(s.size_hint(), (3, Some(3)));
    }

    #[test]
    fn display_shows_partition_and_offset() {
        assert_eq!(ObjAddr::new(PartitionId(3), 128).to_string(), "P3+128");
    }

    #[test]
    #[should_panic(expected = "escapes")]
    #[cfg(debug_assertions)]
    fn escaping_extent_panics_in_debug() {
        let _ = page_span(
            ObjAddr::new(PartitionId(0), (PP - 1) * DEFAULT_PAGE_SIZE as u64),
            Bytes(2 * DEFAULT_PAGE_SIZE as u64),
            DEFAULT_PAGE_SIZE,
            PP,
        );
    }
}
