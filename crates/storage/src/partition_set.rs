//! The collection of all partitions: allocation policy, growth, and the
//! rotating empty partition.
//!
//! Three rules from Sec. 4.1 / Sec. 5 of the paper are implemented here:
//!
//! 1. **Near-parent placement** — "the database attempts to place a new
//!    object near its parent": allocation first tries the preferred
//!    (parent's) partition, then falls back to the first existing partition
//!    with room.
//! 2. **Growth** — "if an allocation occurs and there is insufficient free
//!    space anywhere in the database, a new partition is added. There is no
//!    limit on the number of partitions."
//! 3. **Empty partition** — "every algorithm measured maintains one empty
//!    partition at all times": one partition is reserved as the copy target;
//!    the application allocator never touches it, and after a collection the
//!    evacuated partition becomes the new empty one.

use crate::partition::Partition;
use pgc_types::{Bytes, PageId, PartitionId, PgcError, PlacementPolicy, Result};

/// Outcome of an allocation: where the extent landed and whether satisfying
/// it forced the database to grow by a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Partition that received the extent.
    pub partition: PartitionId,
    /// Byte offset within that partition.
    pub offset: u64,
    /// True if a new partition had to be created for this allocation.
    pub grew: bool,
}

/// All partitions of the database plus the allocation/growth policy.
#[derive(Debug, Clone)]
pub struct PartitionSet {
    partitions: Vec<Partition>,
    empty: PartitionId,
    partition_capacity: Bytes,
    page_size: usize,
    partition_pages: u64,
    placement: PlacementPolicy,
    /// Rotation cursor for [`PlacementPolicy::Spread`].
    spread_cursor: u32,
}

impl PartitionSet {
    /// Creates a database with one allocatable partition (`P1`) and one
    /// designated empty partition (`P0`).
    pub fn new(page_size: usize, partition_pages: u64) -> Self {
        let capacity = Bytes(partition_pages * page_size as u64);
        let partitions = vec![
            Partition::new(PartitionId(0), capacity),
            Partition::new(PartitionId(1), capacity),
        ];
        Self {
            partitions,
            empty: PartitionId(0),
            partition_capacity: capacity,
            page_size,
            partition_pages,
            placement: PlacementPolicy::NearParent,
            spread_cursor: 0,
        }
    }

    /// Sets the placement policy (default: the paper's near-parent).
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Number of partitions that exist (including the empty one).
    #[inline]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Capacity of each partition in bytes.
    #[inline]
    pub fn partition_capacity(&self) -> Bytes {
        self.partition_capacity
    }

    /// Pages per partition.
    #[inline]
    pub fn partition_pages(&self) -> u64 {
        self.partition_pages
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total storage footprint: every existing partition at full width
    /// (this is the paper's "storage required" — fragmentation and garbage
    /// included, because partitions are units of disk allocation).
    #[inline]
    pub fn total_footprint(&self) -> Bytes {
        Bytes(self.partition_capacity.get() * self.partitions.len() as u64)
    }

    /// The current designated empty partition.
    #[inline]
    pub fn empty_partition(&self) -> PartitionId {
        self.empty
    }

    /// Shared view of a partition.
    pub fn partition(&self, id: PartitionId) -> Result<&Partition> {
        self.partitions
            .get(id.as_usize())
            .ok_or(PgcError::UnknownPartition(id))
    }

    /// Mutable view of a partition.
    pub fn partition_mut(&mut self, id: PartitionId) -> Result<&mut Partition> {
        self.partitions
            .get_mut(id.as_usize())
            .ok_or(PgcError::UnknownPartition(id))
    }

    /// Iterates over all partitions.
    pub fn iter(&self) -> impl Iterator<Item = &Partition> {
        self.partitions.iter()
    }

    /// Ids of all partitions that the application may allocate into or the
    /// collector may collect (everything except the designated empty one).
    pub fn collectable_ids(&self) -> impl Iterator<Item = PartitionId> + '_ {
        let empty = self.empty;
        self.partitions
            .iter()
            .map(|p| p.id())
            .filter(move |&id| id != empty)
    }

    /// Allocates `size` bytes for the application.
    ///
    /// Placement order: `preferred` (the parent's partition) first, then the
    /// first existing non-empty-designated partition with room, then a newly
    /// created partition. Fails only if `size` exceeds a whole partition.
    pub fn allocate(&mut self, size: Bytes, preferred: Option<PartitionId>) -> Result<Placement> {
        if size.get() > self.partition_capacity.get() {
            return Err(PgcError::ObjectTooLarge {
                size,
                partition_capacity: self.partition_capacity,
            });
        }
        // Near-parent placement honours the preferred partition; the
        // ablation policies deliberately ignore it.
        if self.placement == PlacementPolicy::NearParent {
            if let Some(pref) = preferred {
                if pref != self.empty {
                    if let Some(offset) = self.partition_mut(pref)?.try_alloc(size) {
                        return Ok(Placement {
                            partition: pref,
                            offset,
                            grew: false,
                        });
                    }
                }
            }
        }
        let empty = self.empty;
        let n = self.partitions.len();
        let start = match self.placement {
            PlacementPolicy::Spread => (self.spread_cursor as usize + 1) % n,
            _ => 0,
        };
        for k in 0..n {
            let i = (start + k) % n;
            let id = self.partitions[i].id();
            if id == empty {
                continue;
            }
            if self.placement == PlacementPolicy::NearParent && Some(id) == preferred {
                continue; // already tried above
            }
            if let Some(offset) = self.partitions[i].try_alloc(size) {
                if self.placement == PlacementPolicy::Spread {
                    self.spread_cursor = id.index();
                }
                return Ok(Placement {
                    partition: id,
                    offset,
                    grew: false,
                });
            }
        }
        let id = self.grow();
        let offset = self
            .partition_mut(id)
            .expect("freshly grown partition exists")
            .try_alloc(size)
            .expect("fresh partition has room for a <= capacity extent");
        Ok(Placement {
            partition: id,
            offset,
            grew: true,
        })
    }

    /// Allocates `size` bytes inside a specific partition, bypassing the
    /// empty-partition exclusion. Used by the copying collector to fill the
    /// designated empty partition. Returns `None` when the partition is out
    /// of contiguous space.
    pub fn allocate_in(&mut self, id: PartitionId, size: Bytes) -> Result<Option<u64>> {
        Ok(self.partition_mut(id)?.try_alloc(size))
    }

    /// Adds a brand-new partition and returns its id.
    pub fn grow(&mut self) -> PartitionId {
        let id = PartitionId(self.partitions.len() as u32);
        self.partitions
            .push(Partition::new(id, self.partition_capacity));
        id
    }

    /// Completes a collection: `collected` has been fully evacuated, so it
    /// is reset and becomes the new designated empty partition; the previous
    /// empty partition (which now holds the survivors) joins the allocatable
    /// pool.
    ///
    /// Returns an error if `collected` *is* the designated empty partition.
    pub fn rotate_empty(&mut self, collected: PartitionId) -> Result<()> {
        if collected == self.empty {
            return Err(PgcError::CollectEmptyPartition(collected));
        }
        self.partition_mut(collected)?.reset();
        self.empty = collected;
        Ok(())
    }

    /// The global pages spanned by one whole partition (used to invalidate
    /// buffered pages of a collected partition).
    pub fn partition_pages_span(&self, id: PartitionId) -> impl Iterator<Item = PageId> {
        let base = id.index() as u64 * self.partition_pages;
        (base..base + self.partition_pages).map(PageId)
    }

    /// Sum of free (allocatable) bytes outside the empty partition.
    pub fn allocatable_free_bytes(&self) -> Bytes {
        self.partitions
            .iter()
            .filter(|p| p.id() != self.empty)
            .map(|p| p.free_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> PartitionSet {
        // Tiny partitions (2 pages of 1024 bytes) keep tests readable.
        PartitionSet::new(1024, 2)
    }

    #[test]
    fn starts_with_one_allocatable_and_one_empty() {
        let s = set();
        assert_eq!(s.partition_count(), 2);
        assert_eq!(s.empty_partition(), PartitionId(0));
        assert_eq!(
            s.collectable_ids().collect::<Vec<_>>(),
            vec![PartitionId(1)]
        );
        assert_eq!(s.total_footprint(), Bytes(4096));
    }

    #[test]
    fn allocation_avoids_the_empty_partition() {
        let mut s = set();
        for _ in 0..10 {
            let pl = s.allocate(Bytes(100), None).unwrap();
            assert_ne!(pl.partition, s.empty_partition());
        }
    }

    #[test]
    fn preferred_partition_is_tried_first() {
        let mut s = set();
        s.grow(); // P2
        let pl = s.allocate(Bytes(100), Some(PartitionId(2))).unwrap();
        assert_eq!(pl.partition, PartitionId(2));
        assert!(!pl.grew);
    }

    #[test]
    fn preferred_equal_to_empty_is_ignored() {
        let mut s = set();
        let pl = s.allocate(Bytes(100), Some(PartitionId(0))).unwrap();
        assert_eq!(pl.partition, PartitionId(1));
    }

    #[test]
    fn growth_when_everything_is_full() {
        let mut s = set();
        // Fill P1 (capacity 2048).
        s.allocate(Bytes(2048), None).unwrap();
        let pl = s.allocate(Bytes(100), None).unwrap();
        assert!(pl.grew);
        assert_eq!(pl.partition, PartitionId(2));
        assert_eq!(s.partition_count(), 3);
    }

    #[test]
    fn fallback_scans_existing_partitions_before_growing() {
        let mut s = set();
        s.allocate(Bytes(2000), None).unwrap(); // P1 nearly full
        let pl = s.allocate(Bytes(100), Some(PartitionId(1))).unwrap();
        // P1 has 48 bytes left; a new partition is required.
        assert!(pl.grew);
        // Now P2 has room; preferring full P1 falls through to P2 without
        // growing again.
        let pl2 = s.allocate(Bytes(100), Some(PartitionId(1))).unwrap();
        assert_eq!(pl2.partition, PartitionId(2));
        assert!(!pl2.grew);
    }

    #[test]
    fn oversized_objects_are_rejected() {
        let mut s = set();
        let err = s.allocate(Bytes(4096), None).unwrap_err();
        assert!(matches!(err, PgcError::ObjectTooLarge { .. }));
    }

    #[test]
    fn rotate_empty_swaps_roles() {
        let mut s = set();
        s.allocate(Bytes(500), None).unwrap(); // into P1
                                               // Collector copies survivors into P0, then P1 is reset and becomes
                                               // the empty partition.
        assert!(s.allocate_in(PartitionId(0), Bytes(500)).unwrap().is_some());
        s.rotate_empty(PartitionId(1)).unwrap();
        assert_eq!(s.empty_partition(), PartitionId(1));
        assert!(s.partition(PartitionId(1)).unwrap().is_fresh());
        // P0 is now allocatable by the application.
        let pl = s.allocate(Bytes(100), None).unwrap();
        assert_eq!(pl.partition, PartitionId(0));
    }

    #[test]
    fn rotate_empty_rejects_the_empty_partition() {
        let mut s = set();
        let err = s.rotate_empty(PartitionId(0)).unwrap_err();
        assert_eq!(err, PgcError::CollectEmptyPartition(PartitionId(0)));
    }

    #[test]
    fn partition_pages_span_is_contiguous_and_partition_sized() {
        let s = set();
        let pages: Vec<u64> = s
            .partition_pages_span(PartitionId(2))
            .map(|p| p.index())
            .collect();
        assert_eq!(pages, vec![4, 5]);
    }

    #[test]
    fn allocatable_free_bytes_excludes_empty() {
        let mut s = set();
        assert_eq!(s.allocatable_free_bytes(), Bytes(2048));
        s.allocate(Bytes(1000), None).unwrap();
        assert_eq!(s.allocatable_free_bytes(), Bytes(1048));
    }

    #[test]
    fn first_fit_ignores_preferred_partition() {
        let mut s = PartitionSet::new(1024, 2).with_placement(PlacementPolicy::FirstFit);
        s.grow(); // P2
                  // Prefer P2, but FirstFit starts from the lowest-id partition.
        let pl = s.allocate(Bytes(100), Some(PartitionId(2))).unwrap();
        assert_eq!(pl.partition, PartitionId(1));
    }

    #[test]
    fn spread_rotates_between_partitions() {
        let mut s = PartitionSet::new(1024, 2).with_placement(PlacementPolicy::Spread);
        s.grow(); // P2
        s.grow(); // P3
        let picks: Vec<u32> = (0..6)
            .map(|_| s.allocate(Bytes(100), None).unwrap().partition.index())
            .collect();
        // Rotates over the collectable partitions (1, 2, 3), skipping the
        // empty one.
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn spread_still_grows_when_everything_is_full() {
        let mut s = PartitionSet::new(1024, 2).with_placement(PlacementPolicy::Spread);
        s.allocate(Bytes(2048), None).unwrap(); // fill P1
        let pl = s.allocate(Bytes(2048), None).unwrap();
        assert!(pl.grew);
    }

    #[test]
    fn unknown_partition_errors() {
        let s = set();
        assert!(matches!(
            s.partition(PartitionId(99)),
            Err(PgcError::UnknownPartition(_))
        ));
    }
}
