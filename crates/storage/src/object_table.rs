//! The object table: stable identity over movable storage.
//!
//! The copying collector relocates objects, so everything above the storage
//! layer names objects by [`Oid`] and resolves physical locations through
//! this table. Besides the per-object records, the table maintains dense
//! per-partition membership lists, which the collector uses to enumerate a
//! partition's residents (to find its garbage) and the oracle uses to
//! attribute garbage to partitions.
//!
//! # Dense-id representation
//!
//! `Oid`s are allocated sequentially and never reused, so the table is a
//! **slab**: a `Vec<Option<ObjectRecord>>` indexed by `Oid::index()`. Every
//! lookup on the simulator's hottest paths (oracle traversal, write
//! barrier, collection) is one bounds check and one indexed load instead of
//! a SipHash probe. Reclaimed slots stay `None` forever; for the workloads
//! the simulator runs (bounded live set, ~2x total allocation over peak
//! live) the slab's tail of tombstones costs a few bytes per dead object,
//! which is far cheaper than hashing every access. Iteration is in
//! ascending oid order — deterministic across processes and threads, which
//! the old `HashMap` never guaranteed.
//!
//! Partition membership is a `Vec<Oid>` per partition with a parallel
//! position slab for O(1) swap-removal. Membership order is a deterministic
//! function of the operation history; callers that need a canonical order
//! (the collector's garbage sweep) sort, exactly as they did before.

use crate::addr::ObjAddr;
use pgc_types::{Bytes, Oid, PartitionId, PgcError, Result, SlotId};

/// Everything the database knows about one object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Current physical location.
    pub addr: ObjAddr,
    /// Object size in bytes (fixed at creation).
    pub size: Bytes,
    /// Pointer slots. Tree children occupy the first slots; dense edges
    /// appended by the workload extend the vector.
    pub slots: Vec<Option<Oid>>,
    /// Root-distance weight for the `WeightedPointer` policy (1 = root,
    /// capped at the configured maximum, 16 in the paper).
    pub weight: u8,
    /// Logical creation time: the value of the table's allocation clock
    /// when the object was registered (0-based, one tick per object).
    /// Backs age-based (generational) selection policies.
    pub birth: u64,
}

impl ObjectRecord {
    /// Reads slot `slot`, failing if the index is out of range.
    pub fn slot(&self, oid: Oid, slot: SlotId) -> Result<Option<Oid>> {
        self.slots
            .get(slot.as_usize())
            .copied()
            .ok_or(PgcError::SlotOutOfRange {
                oid,
                slot: slot.0,
                len: self.slots.len(),
            })
    }
}

/// The Oid → record slab plus per-partition membership.
#[derive(Debug, Clone, Default)]
pub struct ObjectTable {
    /// Slab of records, indexed by `Oid::index()`. `None` = reserved but
    /// unregistered, or reclaimed.
    records: Vec<Option<ObjectRecord>>,
    /// Per-partition resident lists.
    members: Vec<Vec<Oid>>,
    /// `member_pos[oid]` = index of `oid` within its partition's member
    /// list (meaningful only while the oid is registered).
    member_pos: Vec<u32>,
    /// Count of registered (live) objects.
    live: usize,
    next_oid: u64,
    total_bytes: Bytes,
    clock: u64,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (registered) objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no objects are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total bytes of all registered objects.
    #[inline]
    pub fn total_bytes(&self) -> Bytes {
        self.total_bytes
    }

    /// One past the highest oid ever reserved — the exclusive upper bound
    /// of valid `Oid::index()` values, i.e. the capacity a dense per-object
    /// structure (bit set, scratch slab) must cover.
    #[inline]
    pub fn oid_bound(&self) -> u64 {
        self.next_oid
    }

    /// Reserves and returns the next object id without registering a record
    /// (the database allocates storage first, then registers).
    pub fn reserve_oid(&mut self) -> Oid {
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        oid
    }

    /// The current value of the allocation clock (ticks once per
    /// registered object; relocation does not tick it).
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Registers a record under `oid` (previously handed out by
    /// [`ObjectTable::reserve_oid`]), stamping its `birth` with the
    /// current allocation clock.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `oid` is not already registered.
    pub fn register(&mut self, oid: Oid, mut record: ObjectRecord) {
        let idx = oid.index() as usize;
        if self.records.len() <= idx {
            self.records.resize_with(idx + 1, || None);
            self.member_pos.resize(idx + 1, 0);
        }
        debug_assert!(self.records[idx].is_none(), "duplicate oid {oid}");
        record.birth = self.clock;
        self.clock += 1;
        self.ensure_partition(record.addr.partition);
        let list = &mut self.members[record.addr.partition.as_usize()];
        self.member_pos[idx] = list.len() as u32;
        list.push(oid);
        self.total_bytes += record.size;
        self.live += 1;
        self.records[idx] = Some(record);
    }

    /// Looks up an object, failing with [`PgcError::UnknownObject`] if it
    /// does not exist (any more).
    #[inline]
    pub fn get(&self, oid: Oid) -> Result<&ObjectRecord> {
        self.records
            .get(oid.index() as usize)
            .and_then(Option::as_ref)
            .ok_or(PgcError::UnknownObject(oid))
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, oid: Oid) -> Result<&mut ObjectRecord> {
        self.records
            .get_mut(oid.index() as usize)
            .and_then(Option::as_mut)
            .ok_or(PgcError::UnknownObject(oid))
    }

    /// True if `oid` is currently registered.
    #[inline]
    pub fn contains(&self, oid: Oid) -> bool {
        self.records
            .get(oid.index() as usize)
            .is_some_and(Option::is_some)
    }

    /// Removes an object (it has been reclaimed), returning its record.
    pub fn remove(&mut self, oid: Oid) -> Result<ObjectRecord> {
        let idx = oid.index() as usize;
        let record = self
            .records
            .get_mut(idx)
            .and_then(Option::take)
            .ok_or(PgcError::UnknownObject(oid))?;
        self.unlink_member(oid, record.addr.partition);
        self.total_bytes -= record.size;
        self.live -= 1;
        Ok(record)
    }

    /// Moves an object to a new physical address (collector evacuation),
    /// updating partition membership.
    pub fn relocate(&mut self, oid: Oid, new_addr: ObjAddr) -> Result<()> {
        let old_partition = self.get(oid)?.addr.partition;
        if old_partition != new_addr.partition {
            self.ensure_partition(new_addr.partition);
            self.unlink_member(oid, old_partition);
            let list = &mut self.members[new_addr.partition.as_usize()];
            self.member_pos[oid.index() as usize] = list.len() as u32;
            list.push(oid);
        }
        self.get_mut(oid)?.addr = new_addr;
        Ok(())
    }

    /// The objects currently resident in `partition`.
    pub fn members(&self, partition: PartitionId) -> impl Iterator<Item = Oid> + '_ {
        self.members
            .get(partition.as_usize())
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of objects resident in `partition`.
    pub fn member_count(&self, partition: PartitionId) -> usize {
        self.members
            .get(partition.as_usize())
            .map_or(0, |s| s.len())
    }

    /// Iterates over every `(oid, record)` pair in ascending oid order.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &ObjectRecord)> {
        self.records
            .iter()
            .enumerate()
            .filter_map(|(i, rec)| rec.as_ref().map(|r| (Oid(i as u64), r)))
    }

    /// Swap-removes `oid` from `partition`'s member list, fixing up the
    /// displaced element's recorded position.
    fn unlink_member(&mut self, oid: Oid, partition: PartitionId) {
        let pos = self.member_pos[oid.index() as usize] as usize;
        let list = &mut self.members[partition.as_usize()];
        debug_assert_eq!(list[pos], oid, "member position slab out of sync");
        list.swap_remove(pos);
        if let Some(&moved) = list.get(pos) {
            self.member_pos[moved.index() as usize] = pos as u32;
        }
    }

    fn ensure_partition(&mut self, partition: PartitionId) {
        let need = partition.as_usize() + 1;
        if self.members.len() < need {
            self.members.resize_with(need, Vec::new);
        }
    }

    /// Debug invariant check: membership lists partition the record slab.
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        for (idx, list) in self.members.iter().enumerate() {
            for (pos, &oid) in list.iter().enumerate() {
                let rec = self
                    .records
                    .get(oid.index() as usize)
                    .and_then(Option::as_ref)
                    .expect("member without record");
                assert_eq!(
                    rec.addr.partition.as_usize(),
                    idx,
                    "object {oid} in wrong member list"
                );
                assert_eq!(
                    self.member_pos[oid.index() as usize] as usize,
                    pos,
                    "object {oid} has stale member position"
                );
                seen += 1;
            }
        }
        assert_eq!(seen, self.live, "membership does not cover table");
        let registered = self.records.iter().filter(|r| r.is_some()).count();
        assert_eq!(registered, self.live, "live count drifted");
        let bytes: Bytes = self.records.iter().flatten().map(|r| r.size).sum();
        assert_eq!(bytes, self.total_bytes, "byte accounting drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(partition: u32, offset: u64, size: u64, nslots: usize) -> ObjectRecord {
        ObjectRecord {
            addr: ObjAddr::new(PartitionId(partition), offset),
            size: Bytes(size),
            slots: vec![None; nslots],
            weight: 1,
            birth: 0,
        }
    }

    #[test]
    fn reserve_register_lookup() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        let b = t.reserve_oid();
        assert_ne!(a, b);
        t.register(a, rec(1, 0, 100, 2));
        assert!(t.contains(a));
        assert!(!t.contains(b));
        assert_eq!(t.get(a).unwrap().size, Bytes(100));
        assert!(matches!(t.get(b), Err(PgcError::UnknownObject(_))));
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_bytes(), Bytes(100));
        assert_eq!(t.oid_bound(), 2);
        t.check_invariants();
    }

    #[test]
    fn oids_are_never_reused() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        t.register(a, rec(1, 0, 10, 0));
        t.remove(a).unwrap();
        let b = t.reserve_oid();
        assert_ne!(a, b);
    }

    #[test]
    fn remove_updates_membership_and_bytes() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        t.register(a, rec(2, 0, 64, 1));
        assert_eq!(t.member_count(PartitionId(2)), 1);
        let removed = t.remove(a).unwrap();
        assert_eq!(removed.size, Bytes(64));
        assert_eq!(t.member_count(PartitionId(2)), 0);
        assert_eq!(t.total_bytes(), Bytes::ZERO);
        assert!(t.remove(a).is_err());
        t.check_invariants();
    }

    #[test]
    fn relocate_moves_membership() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        t.register(a, rec(1, 0, 100, 2));
        t.relocate(a, ObjAddr::new(PartitionId(3), 500)).unwrap();
        assert_eq!(t.member_count(PartitionId(1)), 0);
        assert_eq!(t.member_count(PartitionId(3)), 1);
        assert_eq!(t.get(a).unwrap().addr.offset, 500);
        t.check_invariants();
    }

    #[test]
    fn relocate_within_partition_keeps_membership() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        let b = t.reserve_oid();
        t.register(a, rec(1, 0, 100, 0));
        t.register(b, rec(1, 100, 100, 0));
        t.relocate(a, ObjAddr::new(PartitionId(1), 700)).unwrap();
        assert_eq!(t.member_count(PartitionId(1)), 2);
        assert_eq!(t.get(a).unwrap().addr.offset, 700);
        t.check_invariants();
    }

    #[test]
    fn members_lists_only_that_partition() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        let b = t.reserve_oid();
        let c = t.reserve_oid();
        t.register(a, rec(1, 0, 10, 0));
        t.register(b, rec(1, 10, 10, 0));
        t.register(c, rec(2, 0, 10, 0));
        let mut in_p1: Vec<Oid> = t.members(PartitionId(1)).collect();
        in_p1.sort();
        assert_eq!(in_p1, vec![a, b]);
        assert_eq!(t.members(PartitionId(9)).count(), 0);
    }

    #[test]
    fn swap_removal_keeps_positions_consistent() {
        // Remove from the middle of a member list repeatedly; the position
        // slab must track every displaced element.
        let mut t = ObjectTable::new();
        let oids: Vec<Oid> = (0..10)
            .map(|i| {
                let o = t.reserve_oid();
                t.register(o, rec(1, i * 10, 10, 0));
                o
            })
            .collect();
        for &o in &[oids[4], oids[0], oids[9], oids[5]] {
            t.remove(o).unwrap();
            t.check_invariants();
        }
        assert_eq!(t.member_count(PartitionId(1)), 6);
    }

    #[test]
    fn slot_bounds_are_checked() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        t.register(a, rec(1, 0, 100, 2));
        let r = t.get(a).unwrap();
        assert_eq!(r.slot(a, SlotId(0)).unwrap(), None);
        assert_eq!(r.slot(a, SlotId(1)).unwrap(), None);
        assert!(matches!(
            r.slot(a, SlotId(2)),
            Err(PgcError::SlotOutOfRange { .. })
        ));
    }

    #[test]
    fn iter_visits_everything_in_oid_order() {
        let mut t = ObjectTable::new();
        let mut oids = Vec::new();
        for i in 0..5 {
            let o = t.reserve_oid();
            t.register(o, rec(1, i * 10, 10, 0));
            oids.push(o);
        }
        t.remove(oids[2]).unwrap();
        let visited: Vec<Oid> = t.iter().map(|(o, _)| o).collect();
        assert_eq!(visited, vec![oids[0], oids[1], oids[3], oids[4]]);
    }
}
