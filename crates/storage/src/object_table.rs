//! The object table: stable identity over movable storage.
//!
//! The copying collector relocates objects, so everything above the storage
//! layer names objects by [`Oid`] and resolves physical locations through
//! this table. Besides the per-object records, the table maintains dense
//! per-partition membership sets, which the collector uses to enumerate a
//! partition's residents (to find its garbage) and the oracle uses to
//! attribute garbage to partitions.

use crate::addr::ObjAddr;
use pgc_types::{Bytes, Oid, PartitionId, PgcError, Result, SlotId};
use std::collections::HashSet;

/// Everything the database knows about one object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Current physical location.
    pub addr: ObjAddr,
    /// Object size in bytes (fixed at creation).
    pub size: Bytes,
    /// Pointer slots. Tree children occupy the first slots; dense edges
    /// appended by the workload extend the vector.
    pub slots: Vec<Option<Oid>>,
    /// Root-distance weight for the `WeightedPointer` policy (1 = root,
    /// capped at the configured maximum, 16 in the paper).
    pub weight: u8,
    /// Logical creation time: the value of the table's allocation clock
    /// when the object was registered (0-based, one tick per object).
    /// Backs age-based (generational) selection policies.
    pub birth: u64,
}

impl ObjectRecord {
    /// Reads slot `slot`, failing if the index is out of range.
    pub fn slot(&self, oid: Oid, slot: SlotId) -> Result<Option<Oid>> {
        self.slots
            .get(slot.as_usize())
            .copied()
            .ok_or(PgcError::SlotOutOfRange {
                oid,
                slot: slot.0,
                len: self.slots.len(),
            })
    }
}

/// The Oid → record map plus per-partition membership.
#[derive(Debug, Clone, Default)]
pub struct ObjectTable {
    records: std::collections::HashMap<Oid, ObjectRecord>,
    members: Vec<HashSet<Oid>>,
    next_oid: u64,
    total_bytes: Bytes,
    clock: u64,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (registered) objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no objects are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes of all registered objects.
    #[inline]
    pub fn total_bytes(&self) -> Bytes {
        self.total_bytes
    }

    /// Reserves and returns the next object id without registering a record
    /// (the database allocates storage first, then registers).
    pub fn reserve_oid(&mut self) -> Oid {
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        oid
    }

    /// The current value of the allocation clock (ticks once per
    /// registered object; relocation does not tick it).
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Registers a record under `oid` (previously handed out by
    /// [`ObjectTable::reserve_oid`]), stamping its `birth` with the
    /// current allocation clock.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `oid` is not already registered.
    pub fn register(&mut self, oid: Oid, mut record: ObjectRecord) {
        debug_assert!(!self.records.contains_key(&oid), "duplicate oid {oid}");
        record.birth = self.clock;
        self.clock += 1;
        self.ensure_partition(record.addr.partition);
        self.members[record.addr.partition.as_usize()].insert(oid);
        self.total_bytes += record.size;
        self.records.insert(oid, record);
    }

    /// Looks up an object, failing with [`PgcError::UnknownObject`] if it
    /// does not exist (any more).
    pub fn get(&self, oid: Oid) -> Result<&ObjectRecord> {
        self.records.get(&oid).ok_or(PgcError::UnknownObject(oid))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, oid: Oid) -> Result<&mut ObjectRecord> {
        self.records
            .get_mut(&oid)
            .ok_or(PgcError::UnknownObject(oid))
    }

    /// True if `oid` is currently registered.
    #[inline]
    pub fn contains(&self, oid: Oid) -> bool {
        self.records.contains_key(&oid)
    }

    /// Removes an object (it has been reclaimed), returning its record.
    pub fn remove(&mut self, oid: Oid) -> Result<ObjectRecord> {
        let record = self
            .records
            .remove(&oid)
            .ok_or(PgcError::UnknownObject(oid))?;
        self.members[record.addr.partition.as_usize()].remove(&oid);
        self.total_bytes -= record.size;
        Ok(record)
    }

    /// Moves an object to a new physical address (collector evacuation),
    /// updating partition membership.
    pub fn relocate(&mut self, oid: Oid, new_addr: ObjAddr) -> Result<()> {
        let old_partition = self.get(oid)?.addr.partition;
        self.ensure_partition(new_addr.partition);
        self.members[old_partition.as_usize()].remove(&oid);
        self.members[new_addr.partition.as_usize()].insert(oid);
        self.get_mut(oid)?.addr = new_addr;
        Ok(())
    }

    /// The objects currently resident in `partition`.
    pub fn members(&self, partition: PartitionId) -> impl Iterator<Item = Oid> + '_ {
        self.members
            .get(partition.as_usize())
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of objects resident in `partition`.
    pub fn member_count(&self, partition: PartitionId) -> usize {
        self.members
            .get(partition.as_usize())
            .map_or(0, |s| s.len())
    }

    /// Iterates over every `(oid, record)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &ObjectRecord)> {
        self.records.iter().map(|(&oid, rec)| (oid, rec))
    }

    fn ensure_partition(&mut self, partition: PartitionId) {
        let need = partition.as_usize() + 1;
        if self.members.len() < need {
            self.members.resize_with(need, HashSet::new);
        }
    }

    /// Debug invariant check: membership sets partition the record map.
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        for (idx, set) in self.members.iter().enumerate() {
            for &oid in set {
                let rec = self.records.get(&oid).expect("member without record");
                assert_eq!(
                    rec.addr.partition.as_usize(),
                    idx,
                    "object {oid} in wrong member set"
                );
                seen += 1;
            }
        }
        assert_eq!(seen, self.records.len(), "membership does not cover table");
        let bytes: Bytes = self.records.values().map(|r| r.size).sum();
        assert_eq!(bytes, self.total_bytes, "byte accounting drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(partition: u32, offset: u64, size: u64, nslots: usize) -> ObjectRecord {
        ObjectRecord {
            addr: ObjAddr::new(PartitionId(partition), offset),
            size: Bytes(size),
            slots: vec![None; nslots],
            weight: 1,
            birth: 0,
        }
    }

    #[test]
    fn reserve_register_lookup() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        let b = t.reserve_oid();
        assert_ne!(a, b);
        t.register(a, rec(1, 0, 100, 2));
        assert!(t.contains(a));
        assert!(!t.contains(b));
        assert_eq!(t.get(a).unwrap().size, Bytes(100));
        assert!(matches!(t.get(b), Err(PgcError::UnknownObject(_))));
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_bytes(), Bytes(100));
        t.check_invariants();
    }

    #[test]
    fn oids_are_never_reused() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        t.register(a, rec(1, 0, 10, 0));
        t.remove(a).unwrap();
        let b = t.reserve_oid();
        assert_ne!(a, b);
    }

    #[test]
    fn remove_updates_membership_and_bytes() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        t.register(a, rec(2, 0, 64, 1));
        assert_eq!(t.member_count(PartitionId(2)), 1);
        let removed = t.remove(a).unwrap();
        assert_eq!(removed.size, Bytes(64));
        assert_eq!(t.member_count(PartitionId(2)), 0);
        assert_eq!(t.total_bytes(), Bytes::ZERO);
        assert!(t.remove(a).is_err());
        t.check_invariants();
    }

    #[test]
    fn relocate_moves_membership() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        t.register(a, rec(1, 0, 100, 2));
        t.relocate(a, ObjAddr::new(PartitionId(3), 500)).unwrap();
        assert_eq!(t.member_count(PartitionId(1)), 0);
        assert_eq!(t.member_count(PartitionId(3)), 1);
        assert_eq!(t.get(a).unwrap().addr.offset, 500);
        t.check_invariants();
    }

    #[test]
    fn members_lists_only_that_partition() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        let b = t.reserve_oid();
        let c = t.reserve_oid();
        t.register(a, rec(1, 0, 10, 0));
        t.register(b, rec(1, 10, 10, 0));
        t.register(c, rec(2, 0, 10, 0));
        let mut in_p1: Vec<Oid> = t.members(PartitionId(1)).collect();
        in_p1.sort();
        assert_eq!(in_p1, vec![a, b]);
        assert_eq!(t.members(PartitionId(9)).count(), 0);
    }

    #[test]
    fn slot_bounds_are_checked() {
        let mut t = ObjectTable::new();
        let a = t.reserve_oid();
        t.register(a, rec(1, 0, 100, 2));
        let r = t.get(a).unwrap();
        assert_eq!(r.slot(a, SlotId(0)).unwrap(), None);
        assert_eq!(r.slot(a, SlotId(1)).unwrap(), None);
        assert!(matches!(
            r.slot(a, SlotId(2)),
            Err(PgcError::SlotOutOfRange { .. })
        ));
    }

    #[test]
    fn iter_visits_everything() {
        let mut t = ObjectTable::new();
        for i in 0..5 {
            let o = t.reserve_oid();
            t.register(o, rec(1, i * 10, 10, 0));
        }
        assert_eq!(t.iter().count(), 5);
    }
}
