//! # pgc-storage
//!
//! The physical storage model of the simulated object database, following
//! Sec. 4.1 of the paper: *"we chose to partition objects physically,
//! segmenting the address space into contiguous partitions"* of 8 KB pages.
//!
//! * [`addr`] — physical addresses `(partition, byte offset)` and the
//!   arithmetic mapping an object's byte extent to the global pages it
//!   occupies (what the buffer pool gets charged for).
//! * [`partition`] — one partition: a bump-allocated region of
//!   `partition_pages` pages with live-byte accounting. Holes left by dead
//!   objects are never reused in place; only copying collection compacts a
//!   partition, exactly as in the paper's copying design.
//! * [`partition_set`] — the set of all partitions, the near-parent
//!   allocation policy, database growth ("if there is insufficient free
//!   space anywhere, a new partition is added"), and the rotating designated
//!   empty partition the copying collector targets.
//! * [`object_table`] — the mapping from stable [`pgc_types::Oid`]s to
//!   [`object_table::ObjectRecord`]s (location, size, pointer slots, weight)
//!   plus dense per-partition membership sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod object_table;
pub mod partition;
pub mod partition_set;

pub use addr::{page_span, ObjAddr, PageSpan};
pub use object_table::{ObjectRecord, ObjectTable};
pub use partition::Partition;
pub use partition_set::PartitionSet;
