//! # pgc-bench
//!
//! Experiment binaries (one per table/figure of the paper) and
//! dependency-free micro-benchmarks built on [`microbench`]. The library
//! part holds small shared helpers for the binaries: CLI parsing for the
//! common flags, output-file plumbing, and the timing harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;

use std::path::PathBuf;

/// Common command-line options shared by the experiment binaries.
///
/// Supported flags (all optional):
/// `--seeds N` (number of seeds, default 10), `--scale PCT` (shrink the
/// allocation target to PCT% of the paper's, for quick runs), `--out PATH`
/// (also write the report/CSV to a file).
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Number of seeds to aggregate over (paper: 10).
    pub seeds: u64,
    /// Percentage of the paper's allocation target to simulate (100 =
    /// full-size run).
    pub scale_pct: u64,
    /// Optional output file for the rendered report.
    pub out: Option<PathBuf>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            seeds: 10,
            scale_pct: 100,
            out: None,
        }
    }
}

impl CommonArgs {
    /// Parses `std::env::args`, panicking with a usage message on malformed
    /// input (these are experiment drivers, not user-facing tools).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seeds" => {
                    out.seeds = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seeds needs a positive integer");
                }
                "--scale" => {
                    out.scale_pct = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a percentage");
                }
                "--out" => {
                    out.out = Some(PathBuf::from(it.next().expect("--out needs a path")));
                }
                "--help" | "-h" => {
                    eprintln!("flags: --seeds N (default 10) --scale PCT (default 100) --out PATH");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        assert!(out.seeds >= 1, "--seeds must be at least 1");
        assert!(out.scale_pct >= 1, "--scale must be at least 1");
        out
    }

    /// Applies the scale factor to an allocation target.
    pub fn scale_bytes(&self, bytes: pgc_types::Bytes) -> pgc_types::Bytes {
        pgc_types::Bytes(bytes.get() * self.scale_pct / 100)
    }

    /// The seed list.
    pub fn seed_list(&self) -> Vec<u64> {
        (1..=self.seeds).collect()
    }
}

/// Prints a report to stdout and, if requested, to `--out`.
pub fn emit(args: &CommonArgs, title: &str, body: &str) {
    println!("== {title} ==");
    println!("{body}");
    if let Some(path) = &args.out {
        let content = format!("== {title} ==\n{body}");
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("(written to {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.seeds, 10);
        assert_eq!(a.scale_pct, 100);
        assert!(a.out.is_none());
        assert_eq!(a.seed_list().len(), 10);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--seeds", "3", "--scale", "25", "--out", "/tmp/x.txt"]);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.scale_pct, 25);
        assert_eq!(a.out.as_deref(), Some(std::path::Path::new("/tmp/x.txt")));
        assert_eq!(
            a.scale_bytes(pgc_types::Bytes::from_mib(8)),
            pgc_types::Bytes::from_mib(2)
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }
}
