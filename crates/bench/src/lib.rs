//! # pgc-bench
//!
//! Experiment binaries (one per table/figure of the paper) and
//! dependency-free micro-benchmarks built on [`microbench`]. The library
//! part holds small shared helpers for the binaries: CLI parsing for the
//! common flags, output-file plumbing, and the timing harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;

use pgc_core::PolicyKind;
use pgc_sim::Comparison;
use pgc_telemetry::{write_snapshot, TelemetryLevel};
use std::path::PathBuf;

/// Parses a policy-list spec shared by every experiment binary.
///
/// Accepted specs: `paper` ([`PolicyKind::PAPER`]), `all`
/// ([`PolicyKind::ALL`]), `implementable` (every policy that observes only
/// the barrier bus — [`PolicyKind::ALL`] minus the oracle), or a
/// comma-separated list of policy names/aliases accepted by
/// `PolicyKind::from_str` (e.g. `UpdatedPointer,mutated,composite`).
/// Duplicates are dropped, first occurrence wins, order is preserved.
pub fn parse_policies(spec: &str) -> Result<Vec<PolicyKind>, String> {
    let mut list: Vec<PolicyKind> = match spec.trim().to_ascii_lowercase().as_str() {
        "paper" => PolicyKind::PAPER.to_vec(),
        "all" => PolicyKind::ALL.to_vec(),
        "implementable" => PolicyKind::ALL
            .into_iter()
            .filter(|k| k.is_implementable())
            .collect(),
        _ => spec
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(str::parse)
            .collect::<Result<_, _>>()?,
    };
    if list.is_empty() {
        return Err(format!("policy spec {spec:?} names no policies"));
    }
    let mut seen = Vec::new();
    list.retain(|k| {
        let fresh = !seen.contains(k);
        seen.push(*k);
        fresh
    });
    Ok(list)
}

/// Labels each run of a time-series job list with its policy's stable
/// display name, in the shape [`pgc_sim::render_chart`] expects.
pub fn labelled_series(
    results: &[(PolicyKind, pgc_sim::RunOutcome)],
) -> Vec<(&'static str, &pgc_sim::TimeSeries)> {
    results.iter().map(|(p, o)| (p.name(), &o.series)).collect()
}

/// Common command-line options shared by the experiment binaries.
///
/// Supported flags (all optional):
/// `--seeds N` (number of seeds, default 10), `--scale PCT` (shrink the
/// allocation target to PCT% of the paper's, for quick runs), `--out PATH`
/// (also write the report/CSV to a file), `--telemetry-out PATH` (tap every
/// run at full telemetry and write one JSONL line per collector activation),
/// `--intra-threads N` (intra-run worker threads; 1 = serial reference
/// execution, default 4 — any N is bit-identical to serial).
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Number of seeds to aggregate over (paper: 10).
    pub seeds: u64,
    /// Percentage of the paper's allocation target to simulate (100 =
    /// full-size run).
    pub scale_pct: u64,
    /// Optional output file for the rendered report.
    pub out: Option<PathBuf>,
    /// Optional JSONL file for per-activation telemetry records.
    pub telemetry_out: Option<PathBuf>,
    /// Optional policy-list override (`--policies SPEC`); `None` keeps the
    /// binary's default slate.
    pub policies: Option<Vec<PolicyKind>>,
    /// Intra-run worker threads (`--intra-threads N`). `1` runs every
    /// simulation in the serial reference mode; anything larger enables the
    /// deterministic parallel kernels, which are pinned bit-identical to
    /// serial.
    pub intra_threads: u32,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            seeds: 10,
            scale_pct: 100,
            out: None,
            telemetry_out: None,
            policies: None,
            intra_threads: 4,
        }
    }
}

impl CommonArgs {
    /// Parses `std::env::args`, panicking with a usage message on malformed
    /// input (these are experiment drivers, not user-facing tools).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seeds" => {
                    out.seeds = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seeds needs a positive integer");
                }
                "--scale" => {
                    out.scale_pct = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a percentage");
                }
                "--out" => {
                    out.out = Some(PathBuf::from(it.next().expect("--out needs a path")));
                }
                "--telemetry-out" => {
                    out.telemetry_out = Some(PathBuf::from(
                        it.next().expect("--telemetry-out needs a path"),
                    ));
                }
                "--policies" => {
                    let spec = it.next().expect("--policies needs a spec");
                    out.policies =
                        Some(parse_policies(&spec).unwrap_or_else(|e| panic!("--policies: {e}")));
                }
                "--intra-threads" => {
                    out.intra_threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--intra-threads needs a positive integer");
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --seeds N (default 10) --scale PCT (default 100) --out PATH \
                         --telemetry-out PATH --policies SPEC (paper|all|implementable|comma \
                         list of names) --intra-threads N (default 4; 1 = serial)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        assert!(out.seeds >= 1, "--seeds must be at least 1");
        assert!(out.scale_pct >= 1, "--scale must be at least 1");
        assert!(out.intra_threads >= 1, "--intra-threads must be at least 1");
        out
    }

    /// The intra-run execution mode implied by `--intra-threads`:
    /// [`pgc_types::Parallelism::Serial`] for 1, the deterministic
    /// parallel mode (bit-identical to serial) otherwise.
    pub fn parallelism(&self) -> pgc_types::Parallelism {
        if self.intra_threads <= 1 {
            pgc_types::Parallelism::Serial
        } else {
            pgc_types::Parallelism::deterministic(self.intra_threads)
        }
    }

    /// Applies the scale factor to an allocation target.
    pub fn scale_bytes(&self, bytes: pgc_types::Bytes) -> pgc_types::Bytes {
        pgc_types::Bytes(bytes.get() * self.scale_pct / 100)
    }

    /// The seed list.
    pub fn seed_list(&self) -> Vec<u64> {
        (1..=self.seeds).collect()
    }

    /// The policy slate: the `--policies` override when given, otherwise
    /// the binary's default (usually [`PolicyKind::PAPER`]).
    pub fn policy_list(&self, default: &[PolicyKind]) -> Vec<PolicyKind> {
        self.policies.clone().unwrap_or_else(|| default.to_vec())
    }

    /// The telemetry level implied by the flags: [`TelemetryLevel::Full`]
    /// when `--telemetry-out` was given (the JSONL export needs the
    /// per-activation records), `Off` otherwise.
    pub fn telemetry_level(&self) -> TelemetryLevel {
        if self.telemetry_out.is_some() {
            TelemetryLevel::Full
        } else {
            TelemetryLevel::Off
        }
    }
}

/// Writes every tapped run of a [`Comparison`] to `--telemetry-out` as
/// JSONL (one line per collector activation, schema
/// [`pgc_telemetry::SCHEMA`]), appending a human summary of the per-policy
/// aggregates to stdout. No-op when the flag (or the tap) is absent.
pub fn emit_telemetry(args: &CommonArgs, cmp: &Comparison) {
    let Some(path) = &args.telemetry_out else {
        return;
    };
    let write = || -> std::io::Result<u64> {
        let mut lines = 0;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        for run in &cmp.telemetry {
            write_snapshot(&mut w, run.policy.name(), run.seed, &run.snapshot)?;
            lines += run.snapshot.records.len() as u64;
        }
        std::io::Write::flush(&mut w)?;
        Ok(lines)
    };
    match write() {
        Ok(lines) => {
            eprintln!(
                "(telemetry: {lines} activation records to {})",
                path.display()
            );
            let summary = pgc_sim::report::format_telemetry(cmp);
            if !summary.is_empty() {
                println!("-- telemetry --\n{summary}");
            }
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Prints a report to stdout and, if requested, to `--out`.
pub fn emit(args: &CommonArgs, title: &str, body: &str) {
    println!("== {title} ==");
    println!("{body}");
    if let Some(path) = &args.out {
        let content = format!("== {title} ==\n{body}");
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("(written to {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.seeds, 10);
        assert_eq!(a.scale_pct, 100);
        assert!(a.out.is_none());
        assert_eq!(a.seed_list().len(), 10);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--seeds", "3", "--scale", "25", "--out", "/tmp/x.txt"]);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.scale_pct, 25);
        assert_eq!(a.out.as_deref(), Some(std::path::Path::new("/tmp/x.txt")));
        assert_eq!(
            a.scale_bytes(pgc_types::Bytes::from_mib(8)),
            pgc_types::Bytes::from_mib(2)
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    fn policy_specs_parse() {
        assert_eq!(parse_policies("paper").unwrap(), PolicyKind::PAPER.to_vec());
        assert_eq!(parse_policies("all").unwrap(), PolicyKind::ALL.to_vec());
        let impl_list = parse_policies("implementable").unwrap();
        assert!(impl_list.iter().all(|k| k.is_implementable()));
        assert_eq!(
            impl_list.len(),
            PolicyKind::ALL
                .iter()
                .filter(|k| k.is_implementable())
                .count()
        );
        assert_eq!(
            parse_policies("UpdatedPointer, composite,adaptive-meta").unwrap(),
            vec![
                PolicyKind::UpdatedPointer,
                PolicyKind::Composite,
                PolicyKind::AdaptiveMeta
            ]
        );
        // Duplicates collapse, first occurrence wins.
        assert_eq!(
            parse_policies("random,random,mutated").unwrap(),
            vec![PolicyKind::Random, PolicyKind::MutatedPartition]
        );
        assert!(parse_policies("bogus").is_err());
        assert!(parse_policies("").is_err());
    }

    #[test]
    fn policies_flag_overrides_the_default_slate() {
        let a = parse(&[]);
        assert_eq!(
            a.policy_list(&PolicyKind::PAPER),
            PolicyKind::PAPER.to_vec()
        );
        let a = parse(&["--policies", "implementable"]);
        assert!(a
            .policy_list(&PolicyKind::PAPER)
            .iter()
            .all(|k| k.is_implementable()));
    }

    #[test]
    fn intra_threads_flag_selects_the_execution_mode() {
        let a = parse(&[]);
        assert_eq!(a.intra_threads, 4);
        assert_eq!(a.parallelism(), pgc_types::Parallelism::deterministic(4));
        let a = parse(&["--intra-threads", "1"]);
        assert_eq!(a.parallelism(), pgc_types::Parallelism::Serial);
        let a = parse(&["--intra-threads", "8"]);
        assert_eq!(a.parallelism(), pgc_types::Parallelism::deterministic(8));
    }

    #[test]
    #[should_panic(expected = "--intra-threads")]
    fn zero_intra_threads_panics() {
        parse(&["--intra-threads", "0"]);
    }

    #[test]
    fn telemetry_flag_sets_level() {
        let a = parse(&[]);
        assert_eq!(a.telemetry_level(), TelemetryLevel::Off);
        let a = parse(&["--telemetry-out", "/tmp/t.jsonl"]);
        assert_eq!(a.telemetry_level(), TelemetryLevel::Full);
        assert_eq!(
            a.telemetry_out.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
    }
}
