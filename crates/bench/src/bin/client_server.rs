//! Client/server cost-model experiment (extension).
//!
//! The paper evaluates against a local disk and notes its simulator could
//! "model network costs for a distributed or client/server database" —
//! the setting of the Yong/Naughton/Yu work it extends. This binary runs
//! the headline policy comparison under a page-server architecture: a
//! client cache in front of the server buffer, with client misses costing
//! network messages and server misses costing disk I/O.
//!
//! The question it answers: **does the policy ranking survive the cost
//! model change?** (It does — locality wins translate into both fewer
//! network messages and fewer disk I/Os.)
//!
//! ```text
//! cargo run --release -p pgc-bench --bin client_server [--seeds N] [--scale PCT]
//! ```

use pgc_bench::{emit, CommonArgs};
use pgc_buffer::{DiskModel, NetworkModel};
use pgc_core::PolicyKind;
use pgc_sim::{paper, Experiment, Summary};
use std::fmt::Write as _;

fn main() {
    let mut args = CommonArgs::parse();
    if args.seeds == 10 {
        args.seeds = 5;
    }
    let seeds = args.seed_list();
    const CLIENT_PAGES: u64 = 16;

    let mut jobs = Vec::new();
    for (pi, &policy) in PolicyKind::PAPER.iter().enumerate() {
        for &seed in &seeds {
            let mut cfg = paper::headline(policy, seed);
            cfg.workload.target_allocated = args.scale_bytes(cfg.workload.target_allocated);
            cfg.db = cfg.db.with_client_cache_pages(CLIENT_PAGES);
            jobs.push((pi, cfg.with_parallelism(args.parallelism())));
        }
    }
    let results = Experiment::new().run_jobs(jobs).expect("runs complete");

    let page = 8192;
    let disk = DiskModel::circa_1993(page);
    let net = NetworkModel::ethernet_1993(page);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "client cache {CLIENT_PAGES} pages, server buffer 48 pages; {} seeds",
        seeds.len()
    );
    let _ = writeln!(
        out,
        "{:<18} {:>11} {:>9} {:>11} {:>9} {:>12} {:>9}",
        "Selection Policy", "net msgs", "(sd)", "disk I/Os", "(sd)", "est. 1993 s", "Relative"
    );

    // Aggregate per policy.
    let mut rows: Vec<(PolicyKind, Summary, Summary, f64)> = Vec::new();
    for (pi, &policy) in PolicyKind::PAPER.iter().enumerate() {
        let runs: Vec<_> = results
            .iter()
            .filter(|(label, _)| *label == pi)
            .map(|(_, o)| o)
            .collect();
        let net_ops = Summary::of_u64(runs.iter().map(|o| o.totals.total_net_ops()));
        let disk_ops = Summary::of_u64(runs.iter().map(|o| o.totals.total_ios()));
        let secs = disk.seconds_for(disk_ops.mean as u64) + net.seconds_for(net_ops.mean as u64);
        rows.push((policy, net_ops, disk_ops, secs));
    }
    let baseline_secs = rows
        .iter()
        .find(|(p, ..)| *p == PolicyKind::MostGarbage)
        .map(|(_, _, _, s)| *s)
        .unwrap_or(1.0);
    for (policy, net_ops, disk_ops, secs) in &rows {
        let _ = writeln!(
            out,
            "{:<18} {:>11.0} {:>9.0} {:>11.0} {:>9.0} {:>12.1} {:>9.3}",
            policy.name(),
            net_ops.mean,
            net_ops.std_dev,
            disk_ops.mean,
            disk_ops.std_dev,
            secs,
            secs / baseline_secs,
        );
    }
    let _ = writeln!(
        out,
        "\n(net msg = page fetch or dirty write-back over the client/server link;\n estimated time prices disk at {:.1} ms/IO and the network at {:.1} ms/page)",
        disk.ms_per_io(),
        net.ms_per_page()
    );

    emit(
        &args,
        "Client/Server cost model: policy comparison under a page-server architecture",
        &out,
    );
}
