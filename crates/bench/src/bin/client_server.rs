//! Multi-tenant client/server run on the sharded runtime.
//!
//! The paper evaluates one client against a local disk and notes its
//! simulator could "model network costs for a distributed or
//! client/server database". Earlier revisions of this binary priced a
//! single run under a page-server cost model; this one runs the *server*:
//! many client streams, each a tenant with its own partitioned database,
//! selection policy, and client cache, multiplexed onto a fixed fleet of
//! shard worker threads behind the deterministic router, with a few
//! cross-tenant references flowing through the inter-shard remset.
//!
//! The question it answers: **does multi-tenancy cost anything in
//! fidelity?** It does not — the binary spot-checks that a stream's
//! totals and victim sequence on the fleet are bit-identical to a
//! dedicated single-`Simulation` run of the same events, and reports
//! aggregate throughput per shard alongside the fleet-wide telemetry
//! merge.
//!
//! ```text
//! cargo run --release -p pgc-bench --bin client_server \
//!     [--shards N] [--streams M] [--scale PCT]
//! ```

use pgc_bench::{emit, CommonArgs};
use pgc_core::PolicyKind;
use pgc_server::{Server, ServerConfig, StreamId, TelemetryLevel};
use pgc_sim::{paper, RunConfig, Simulation};
use pgc_workload::{Event, NodeId, SyntheticWorkload};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

/// Events per submitted batch: small enough that thousands of streams
/// interleave on the inboxes, large enough to amortize the ring hop.
const BATCH: usize = 2048;

fn main() {
    // Server-specific flags peel off before the common ones parse.
    let mut shards = 4usize;
    let mut streams = 8usize;
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards needs a positive integer");
            }
            "--streams" => {
                streams = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--streams needs a positive integer");
            }
            other => rest.push(other.to_string()),
        }
    }
    let args = CommonArgs::parse_from(rest);
    assert!(shards >= 1, "--shards must be at least 1");
    assert!(streams >= 1, "--streams must be at least 1");
    const CLIENT_PAGES: u64 = 16;

    // One tenant per stream: the paper's policy slate round-robined over
    // the streams, each on its own seed, each with a client cache in
    // front of the server buffer (the page-server cost model).
    println!("generating {streams} tenant workloads...");
    let configs: Vec<(StreamId, RunConfig)> = (0..streams as u64)
        .map(|i| {
            let policy = PolicyKind::PAPER[i as usize % PolicyKind::PAPER.len()];
            let mut cfg = paper::headline(policy, i + 1);
            cfg.workload.target_allocated = args.scale_bytes(cfg.workload.target_allocated);
            cfg.db = cfg.db.with_client_cache_pages(CLIENT_PAGES);
            (StreamId(i), cfg)
        })
        .collect();
    // Pre-chunk each tenant's events into owned batches at generation
    // time: the submit loop then *moves* every batch into its shard ring
    // (`submit_owned`) — no per-batch clone, no per-event allocation on
    // the timed path.
    let mut batches: Vec<VecDeque<Vec<Event>>> = configs
        .iter()
        .map(|(_, cfg)| {
            let mut chunks: VecDeque<Vec<Event>> = VecDeque::new();
            for event in SyntheticWorkload::new(cfg.workload.clone()).expect("workload params") {
                match chunks.back_mut().filter(|b| b.len() < BATCH) {
                    Some(batch) => batch.push(event),
                    None => chunks.push_back({
                        let mut b = Vec::with_capacity(BATCH);
                        b.push(event);
                        b
                    }),
                }
            }
            chunks
        })
        .collect();
    // Stream 0's full event list, kept for the dedicated fidelity run
    // (one flatten-copy outside the timed region).
    let events0: Vec<Event> = batches[0].iter().flatten().copied().collect();

    // Open every stream, then feed the fleet round-robin in ragged
    // batches — the interleaving a real server would see.
    println!("running {streams} streams on {shards} shards...");
    let t0 = Instant::now();
    let mut server =
        Server::start(ServerConfig::new(shards).with_telemetry(TelemetryLevel::Metrics));
    for (stream, cfg) in &configs {
        server.open_stream(*stream, cfg.clone()).expect("open");
    }
    loop {
        let mut any = false;
        for (i, (stream, _)) in configs.iter().enumerate() {
            if let Some(batch) = batches[i].pop_front() {
                server.submit_owned(*stream, batch).expect("submit");
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    // Cross-tenant references: each tenant points at its neighbor's first
    // few objects — inter-shard remset traffic over the barrier bus.
    for i in 0..streams as u64 {
        let target = StreamId((i + 1) % streams as u64);
        for node in 0..4 {
            server
                .link(StreamId(i), target, NodeId(node))
                .expect("link");
        }
    }
    let fleet = server.shutdown().expect("fleet shutdown");
    let secs = t0.elapsed().as_secs_f64();

    // Fidelity spot-check: stream 0 on the fleet vs a dedicated run.
    let (stream0, cfg0) = &configs[0];
    let dedicated = Simulation::builder(cfg0)
        .events(&events0)
        .run()
        .expect("dedicated run");
    let fleet0 = fleet.outcome(*stream0).expect("stream 0 outcome");
    let identical =
        fleet0.totals == dedicated.totals && fleet0.collections == dedicated.collections;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{streams} streams on {shards} shards; client cache {CLIENT_PAGES} pages per tenant"
    );
    let _ = writeln!(
        out,
        "\n{:<7} {:>8} {:>14} {:>13} {:>14} {:>9}",
        "Shard", "streams", "bus events", "activations", "reclaimed KB", "ring hwm"
    );
    for shard in fleet.fleet.shards() {
        let _ = writeln!(
            out,
            "{:<7} {:>8} {:>14} {:>13} {:>14.0} {:>9}",
            shard.shard,
            shard.streams,
            shard.snapshot.counters.events,
            shard.snapshot.counters.activations,
            shard.snapshot.counters.reclaimed_bytes as f64 / 1024.0,
            shard.ring_high_water,
        );
    }
    let merged = fleet.fleet.merged();
    let _ = writeln!(
        out,
        "\nfleet: {} events in {secs:.2}s ({:.0} events/sec aggregate), {} collections",
        fleet.total_events(),
        fleet.total_events() as f64 / secs.max(1e-9),
        fleet.total_collections(),
    );
    if let Some(snap) = &merged {
        let _ = writeln!(
            out,
            "telemetry merge: {} sessions, {} activations recorded",
            snap.runs, snap.counters.activations
        );
    }
    let r = fleet.remset;
    let _ = writeln!(
        out,
        "inter-shard remset: {} registered, {} cleaned, {} relocated, {} dangling",
        r.registered, r.cleaned, r.relocated, r.dangling
    );
    let _ = writeln!(
        out,
        "stream 0 vs dedicated run: {}",
        if identical {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );

    emit(
        &args,
        "Client/Server runtime: multi-tenant streams on the sharded fleet",
        &out,
    );
    assert!(identical, "fleet run diverged from the dedicated run");
}
