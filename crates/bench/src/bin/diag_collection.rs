//! Diagnostic: per-collection cost breakdown for one headline run.
//! Not a paper artifact — used to calibrate the simulator.

use pgc_core::PolicyKind;
use pgc_sim::{paper, Simulation};

fn main() {
    for policy in [PolicyKind::UpdatedPointer, PolicyKind::MostGarbage] {
        let cfg = paper::headline(policy, 1);
        let out = Simulation::builder(&cfg).run().unwrap();
        let t = &out.totals;
        println!(
            "{}: events={} collections={} app={} gc={} reclaimedKB={:.0} liveKB={:.0} garbageKB={:.0} parts={}",
            policy,
            t.events,
            t.collections,
            t.app_ios,
            t.gc_ios,
            t.reclaimed_bytes.as_kib_f64(),
            t.final_live_bytes.as_kib_f64(),
            t.final_garbage_bytes.as_kib_f64(),
            t.partitions,
        );
        println!(
            "  gc/collection = {:.1}, reclaimed/collection KB = {:.1}, rw-ratio={:.1}",
            t.gc_ios as f64 / t.collections.max(1) as f64,
            t.reclaimed_bytes.as_kib_f64() / t.collections.max(1) as f64,
            out.db_stats.read_write_ratio().unwrap_or(0.0),
        );
    }
    // Collection-level detail for one run.
    let cfg = paper::headline(PolicyKind::UpdatedPointer, 1);
    let events: Vec<pgc_workload::Event> =
        pgc_workload::SyntheticWorkload::new(cfg.workload.clone())
            .unwrap()
            .collect();
    let db = pgc_odb::Database::new(cfg.db.clone()).unwrap();
    let collector = pgc_core::Collector::with_kind(
        cfg.policy,
        cfg.db.gc_overwrite_threshold,
        42,
        cfg.db.max_weight,
    );
    let mut r = pgc_sim::Replayer::new(db, collector);
    r.apply_all(&events).unwrap();
    let mut fwd = 0u64;
    let mut live = 0u64;
    let mut garbage = 0u64;
    let (mut reads, mut writes) = (0u64, 0u64);
    for c in r.collections() {
        fwd += c.forwarded_pointers;
        live += c.live_bytes.get();
        garbage += c.garbage_bytes.get();
        reads += c.gc_reads;
        writes += c.gc_writes;
    }
    let n = r.collections().len() as u64;
    println!(
        "UpdatedPointer detail: n={n} fwd/col={:.1} liveKB/col={:.1} garbageKB/col={:.1} reads/col={:.1} writes/col={:.1}",
        fwd as f64 / n as f64,
        live as f64 / 1024.0 / n as f64,
        garbage as f64 / 1024.0 / n as f64,
        reads as f64 / n as f64,
        writes as f64 / n as f64,
    );
}
