//! Regenerates **Table 2** of the paper: throughput as number of page I/O
//! operations per policy (application, collector, total, and total relative
//! to `MostGarbage`).
//!
//! ```text
//! cargo run --release -p pgc-bench --bin table2_throughput [--seeds N] [--scale PCT]
//! ```

use pgc_bench::{emit, emit_telemetry, CommonArgs};
use pgc_core::PolicyKind;
use pgc_sim::{paper, report, Experiment};

fn main() {
    let args = CommonArgs::parse();
    let cmp = Experiment::new()
        .with_telemetry(args.telemetry_level())
        .compare(
            &args.policy_list(&PolicyKind::PAPER),
            &args.seed_list(),
            |policy, seed| {
                let cfg = paper::headline(policy, seed);
                let target = args.scale_bytes(cfg.workload.target_allocated);
                cfg.with_heap_growth(target)
                    .with_parallelism(args.parallelism())
            },
        )
        .expect("experiment runs");
    emit(
        &args,
        "Table 2: Throughput as Number of Page I/O Operations (Relative: MostGarbage = 1)",
        &report::format_table2(&cmp),
    );
    emit_telemetry(&args, &cmp);
}
