//! Regenerates **Table 2** of the paper: throughput as number of page I/O
//! operations per policy (application, collector, total, and total relative
//! to `MostGarbage`).
//!
//! ```text
//! cargo run --release -p pgc-bench --bin table2_throughput [--seeds N] [--scale PCT]
//! ```

use pgc_bench::{emit, CommonArgs};
use pgc_core::PolicyKind;
use pgc_sim::{compare_policies, paper, report};

fn main() {
    let args = CommonArgs::parse();
    let cmp = compare_policies(&PolicyKind::PAPER, &args.seed_list(), |policy, seed| {
        let mut cfg = paper::headline(policy, seed);
        cfg.workload.target_allocated = args.scale_bytes(cfg.workload.target_allocated);
        cfg
    })
    .expect("experiment runs");
    emit(
        &args,
        "Table 2: Throughput as Number of Page I/O Operations (Relative: MostGarbage = 1)",
        &report::format_table2(&cmp),
    );
}
