//! Ablation sweeps over the design axes the paper holds fixed (its
//! Table 1 lists them as open policy decisions):
//!
//! 1. **GC trigger threshold** — overwrites between collections (the paper
//!    uses 150–300; when to collect).
//! 2. **Partition size** — pages per partition at fixed database size
//!    (how database partitions relate to GC partitions).
//! 3. **Buffer : partition ratio** — the paper always uses 1:1 and argues
//!    why; this quantifies it.
//! 4. **Extension policies** — `RoundRobin` and `Occupancy` against the
//!    paper's six.
//! 5. **Complete collection** — the stop-the-world global mark-and-collect
//!    (the paper's future work) versus partitioned collection, including
//!    the distributed garbage left behind.
//! 6. **Trigger kind** — the paper's overwrite trigger vs allocation-paced
//!    and space-pressure triggers (when to perform collection).
//! 7. **Partitions per activation** — the paper collects one; Sec. 3.1
//!    floats collecting several.
//! 8. **Related-work baselines** — the unenhanced Yong/Naughton/Yu policy
//!    (data writes count) and the generational transplant, against the
//!    paper's policies.
//! 9. **Object placement** — the paper's near-parent clustering vs
//!    first-fit and deliberate spreading, testing the premise that
//!    clustering concentrates subtree garbage.
//!
//! ```text
//! cargo run --release -p pgc-bench --bin ablation_sweeps [--seeds N] [--scale PCT]
//! ```

use pgc_bench::{emit, CommonArgs};
use pgc_core::{PolicyKind, Trigger};
use pgc_sim::{report, Comparison, Experiment, RunConfig, Simulation};
use pgc_types::Bytes;
use pgc_workload::TraceCache;
use std::fmt::Write as _;

fn base(args: &CommonArgs, policy: PolicyKind, seed: u64) -> RunConfig {
    let cfg = RunConfig::paper(policy, seed);
    let target = args.scale_bytes(cfg.workload.target_allocated);
    cfg.with_heap_growth(target)
        .with_parallelism(args.parallelism())
}

fn main() {
    let mut args = CommonArgs::parse();
    if args.seeds == 10 {
        args.seeds = 5; // sweeps multiply runs; 5 seeds keeps this quick
    }
    let seeds = args.seed_list();
    let mut out = String::new();
    // Every sweep below varies database-side knobs (trigger, partition
    // size, buffer, batch, placement) over the same workload parameters, so
    // one shared trace cache records each seed's trace once and every sweep
    // point replays it.
    let cache = TraceCache::new();
    let experiment = Experiment::new().with_cache(&cache);
    let run = |policies: &[PolicyKind],
               make: &(dyn Fn(PolicyKind, u64) -> RunConfig + Sync)|
     -> Comparison { experiment.compare(policies, &seeds, make).expect("runs") };

    // --- 1. Trigger threshold sweep (UpdatedPointer). ---
    let _ = writeln!(
        out,
        "== Ablation 1: GC trigger threshold (UpdatedPointer) =="
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "threshold", "total I/Os", "collections", "max stor KB", "frac %"
    );
    for threshold in [100u64, 150, 250, 400, 800] {
        let cmp = run(&[PolicyKind::UpdatedPointer], &|p, s| {
            base(&args, p, s).with_gc_overwrite_threshold(threshold)
        });
        let r = &cmp.rows[0];
        let _ = writeln!(
            out,
            "{:>10} {:>12.0} {:>12.1} {:>12.0} {:>10.1}",
            threshold,
            r.total_ios.mean,
            r.collections.mean,
            r.max_storage_kb.mean,
            r.fraction_pct.mean
        );
    }

    // --- 2. Partition size sweep at fixed database size. ---
    let _ = writeln!(out, "\n== Ablation 2: partition size (UpdatedPointer) ==");
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "pages", "total I/Os", "gc I/Os", "max stor KB", "frac %"
    );
    for pages in [24u64, 48, 72, 100] {
        let cmp = run(&[PolicyKind::UpdatedPointer], &|p, s| {
            base(&args, p, s).with_partition_pages(pages)
        });
        let r = &cmp.rows[0];
        let _ = writeln!(
            out,
            "{:>10} {:>12.0} {:>12.0} {:>12.0} {:>10.1}",
            pages, r.total_ios.mean, r.gc_ios.mean, r.max_storage_kb.mean, r.fraction_pct.mean
        );
    }

    // --- 3. Buffer : partition ratio. ---
    let _ = writeln!(
        out,
        "\n== Ablation 3: buffer size / partition size (UpdatedPointer) =="
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>12}",
        "ratio", "buffer pgs", "app I/Os", "gc I/Os"
    );
    for (label, buffer_pages) in [("0.5x", 24u64), ("1.0x", 48), ("2.0x", 96), ("4.0x", 192)] {
        let cmp = run(&[PolicyKind::UpdatedPointer], &|p, s| {
            base(&args, p, s).with_buffer_pages(buffer_pages)
        });
        let r = &cmp.rows[0];
        let _ = writeln!(
            out,
            "{:>10} {:>12} {:>12.0} {:>12.0}",
            label, buffer_pages, r.app_ios.mean, r.gc_ios.mean
        );
    }

    // --- 4. Extension policies vs paper policies. ---
    let _ = writeln!(out, "\n== Ablation 4: extension policies ==");
    let all = [
        PolicyKind::Random,
        PolicyKind::RoundRobin,
        PolicyKind::Occupancy,
        PolicyKind::UpdatedPointer,
        PolicyKind::MostGarbage,
    ];
    let cmp = run(&all, &|p, s| base(&args, p, s));
    out.push_str(&report::format_table2(&cmp));

    // --- 5. Partitioned vs complete collection: distributed garbage. ---
    let _ = writeln!(
        out,
        "\n== Ablation 5: distributed garbage after partitioned collection, and the cost of a complete collection =="
    );
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>16} {:>14} {:>14}",
        "seed", "nepotism KB", "leftover garb KB", "full-GC I/Os", "full-GC KB"
    );
    for &seed in seeds.iter().take(3) {
        let cfg = base(&args, PolicyKind::UpdatedPointer, seed);
        let outcome = Simulation::builder(&cfg).run().expect("run");
        // Rebuild the final state and apply a complete collection on top.
        let events: Vec<pgc_workload::Event> =
            pgc_workload::SyntheticWorkload::new(cfg.workload.clone())
                .expect("params")
                .collect();
        let db = pgc_odb::Database::new(cfg.db.clone()).expect("db");
        let collector = pgc_core::Collector::with_kind(
            cfg.policy,
            cfg.db.gc_overwrite_threshold,
            seed,
            cfg.db.max_weight,
        );
        let mut replayer = pgc_sim::Replayer::new(db, collector);
        replayer.apply_all(&events).expect("replay");
        let (mut db, _, _) = replayer.into_parts();
        let full = db.collect_full().expect("full collection");
        let _ = writeln!(
            out,
            "{:>6} {:>14.0} {:>16.0} {:>14} {:>14.0}",
            seed,
            outcome.totals.final_nepotism_bytes.as_kib_f64(),
            outcome.totals.final_garbage_bytes.as_kib_f64(),
            full.gc_reads + full.gc_writes,
            full.garbage_bytes.as_kib_f64(),
        );
    }
    let _ = writeln!(
        out,
        "(complete collection reclaims ALL leftover garbage, distributed cycles included,\n at the cost of reading every live object — the trade the paper's future work targets)"
    );

    // --- 6. Trigger kind (when to collect, Table 1's fourth axis). ---
    let _ = writeln!(out, "\n== Ablation 6: trigger kind (UpdatedPointer) ==");
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>12} {:>10}",
        "trigger", "total I/Os", "collections", "max stor KB", "frac %"
    );
    let triggers: [(&str, Trigger); 3] = [
        ("overwrites(250)", Trigger::OverwriteCount(250)),
        (
            "alloc(384 KB)",
            Trigger::AllocationBytes(Bytes::from_kib(384)),
        ),
        ("partition-growth", Trigger::PartitionGrowth),
    ];
    for (label, trigger) in triggers {
        let cmp = run(&[PolicyKind::UpdatedPointer], &|p, s| {
            base(&args, p, s).with_trigger(trigger)
        });
        let r = &cmp.rows[0];
        let _ = writeln!(
            out,
            "{:<24} {:>12.0} {:>12.1} {:>12.0} {:>10.1}",
            label, r.total_ios.mean, r.collections.mean, r.max_storage_kb.mean, r.fraction_pct.mean
        );
    }

    // --- 7. Partitions per collection (Sec. 3.1 "more than one"). ---
    let _ = writeln!(
        out,
        "\n== Ablation 7: partitions per activation (UpdatedPointer) =="
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "batch", "total I/Os", "activations", "max stor KB", "frac %"
    );
    for batch in [1u32, 2, 4] {
        let cmp = run(&[PolicyKind::UpdatedPointer], &|p, s| {
            base(&args, p, s).with_collect_batch(batch)
        });
        let r = &cmp.rows[0];
        let _ = writeln!(
            out,
            "{:>6} {:>12.0} {:>12.1} {:>12.0} {:>10.1}",
            batch,
            r.total_ios.mean,
            r.collections.mean / batch as f64,
            r.max_storage_kb.mean,
            r.fraction_pct.mean
        );
    }

    // --- 8. The paper's enhancement: MutatedPartition vs original YNY,
    //        plus the generational transplant. ---
    let _ = writeln!(out, "\n== Ablation 8: related-work baselines ==");
    let cmp = run(
        &[
            PolicyKind::YnyMutated,
            PolicyKind::MutatedPartition,
            PolicyKind::Generational,
            PolicyKind::UpdatedPointer,
            PolicyKind::UpdatedDecay,
            PolicyKind::MostGarbage,
        ],
        &|p, s| base(&args, p, s),
    );
    out.push_str(&report::format_table4(&cmp));

    // --- 9. Placement policy (clustering premise). ---
    let _ = writeln!(out, "\n== Ablation 9: object placement (UpdatedPointer) ==");
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>10} {:>12}",
        "placement", "total I/Os", "max stor KB", "frac %", "eff KB/IO"
    );
    for (label, placement) in [
        ("near-parent", pgc_types::PlacementPolicy::NearParent),
        ("first-fit", pgc_types::PlacementPolicy::FirstFit),
        ("spread", pgc_types::PlacementPolicy::Spread),
    ] {
        let cmp = run(&[PolicyKind::UpdatedPointer], &|p, s| {
            base(&args, p, s).with_placement(placement)
        });
        let r = &cmp.rows[0];
        let _ = writeln!(
            out,
            "{:<12} {:>12.0} {:>12.0} {:>10.1} {:>12.2}",
            label,
            r.total_ios.mean,
            r.max_storage_kb.mean,
            r.fraction_pct.mean,
            r.efficiency_kb_per_io.mean
        );
    }

    emit(
        &args,
        "Ablation sweeps (design axes the paper holds fixed)",
        &out,
    );
}
