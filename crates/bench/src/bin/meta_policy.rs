//! The **AdaptiveMeta** extension experiment (not in the paper): the
//! adaptive meta-policy raced against every *fixed* implementable policy
//! on the paper's headline configuration.
//!
//! For each seed, every fixed policy and the meta-policy replay the same
//! workload; the per-seed table compares the meta-policy's space (maximum
//! storage footprint, Table 3's metric) and efficiency (fraction of
//! generated garbage reclaimed, Table 4's metric) against the best fixed
//! policy for that seed on each metric. A summary line counts the seeds
//! where the meta-policy landed at-or-better than the best fixed policy.
//!
//! The meta-policy's runs are tapped at full telemetry, so every driving
//! policy switch is printed (activation, from → to) and — with
//! `--telemetry-out PATH` — the per-activation JSONL trace carries the
//! switch records (`policy_switches` key, schema `pgc-telemetry/v1`).
//! A shadow-scoreboard regret table over the candidate slate (seed 1)
//! closes the report.
//!
//! ```text
//! cargo run --release -p pgc-bench --bin meta_policy [--seeds N] [--scale PCT] \
//!     [--policies SPEC] [--out PATH] [--telemetry-out PATH]
//! ```

use pgc_bench::{emit, CommonArgs};
use pgc_core::policies::{AdaptiveMeta, DEFAULT_CANDIDATES};
use pgc_core::{Collector, PolicyKind};
use pgc_odb::Database;
use pgc_sim::{
    paper, report, run_race_with_telemetry, Experiment, Replayer, Simulation, TelemetryLevel,
};
use pgc_telemetry::{write_snapshot, TelemetryObserver, TelemetrySnapshot};
use pgc_workload::{SyntheticWorkload, TraceCache};
use std::fmt::Write as _;

fn main() {
    let args = CommonArgs::parse();
    // The fixed slate: every implementable policy except the meta-policy
    // itself (`--policies` can narrow it; the oracle is excluded because
    // the meta-policy only claims to track the best *implementable* one).
    let default_fixed: Vec<PolicyKind> = PolicyKind::ALL
        .into_iter()
        .filter(|k| k.is_implementable() && *k != PolicyKind::AdaptiveMeta)
        .collect();
    let fixed: Vec<PolicyKind> = args
        .policy_list(&default_fixed)
        .into_iter()
        .filter(|k| *k != PolicyKind::AdaptiveMeta)
        .collect();
    let seeds = args.seed_list();

    let scaled = |policy: PolicyKind, seed: u64| {
        let cfg = paper::headline(policy, seed);
        let target = args.scale_bytes(cfg.workload.target_allocated);
        cfg.with_heap_growth(target)
            .with_parallelism(args.parallelism())
    };

    // Fixed policies ride the shared-trace engine (one recording per
    // seed); the meta-policy runs with a full telemetry tap to capture its
    // switch trace.
    let cache = TraceCache::new();
    let jobs: Vec<((PolicyKind, u64), _)> = seeds
        .iter()
        .flat_map(|&seed| fixed.iter().map(move |&p| ((p, seed), scaled(p, seed))))
        .collect();
    let fixed_runs = Experiment::new()
        .with_cache(&cache)
        .run_jobs(jobs)
        .expect("fixed-policy runs");
    let meta_runs: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            let cfg = scaled(PolicyKind::AdaptiveMeta, seed);
            let out = Simulation::builder(&cfg)
                .telemetry(TelemetryLevel::Full)
                .run()
                .expect("meta-policy run");
            (seed, out)
        })
        .collect();

    let mut body = String::new();
    let _ = writeln!(
        body,
        "Fixed slate: {} (candidates raced inside the meta-policy: {})",
        fixed
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", "),
        DEFAULT_CANDIDATES
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let _ = writeln!(body);
    let _ = writeln!(
        body,
        "{:<6} {:>12} {:>12} {:<18} {:>8} {:>8} {:<18} {:>9}",
        "seed",
        "meta KB",
        "best KB",
        "(best-space by)",
        "meta %",
        "best %",
        "(best-frac by)",
        "switches"
    );
    let mut space_wins = 0usize;
    let mut frac_wins = 0usize;
    for (seed, meta) in &meta_runs {
        let row_of = |p: PolicyKind| {
            fixed_runs
                .iter()
                .find(|((fp, fs), _)| *fp == p && fs == seed)
                .map(|(_, o)| o)
                .expect("every fixed job ran")
        };
        let best_space = fixed
            .iter()
            .map(|&p| (p, row_of(p).totals.max_footprint))
            .min_by_key(|&(_, kb)| kb)
            .expect("non-empty slate");
        let best_frac = fixed
            .iter()
            .map(|&p| (p, row_of(p).totals.fraction_reclaimed_pct()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty slate");
        let meta_kb = meta.totals.max_footprint.as_kib_f64();
        let meta_frac = meta.totals.fraction_reclaimed_pct();
        let space_win = meta.totals.max_footprint <= best_space.1;
        let frac_win = meta_frac >= best_frac.1 - 1e-9;
        space_wins += space_win as usize;
        frac_wins += frac_win as usize;
        let switches = meta
            .telemetry
            .as_ref()
            .map(|t| t.switches.len())
            .unwrap_or(0);
        let _ = writeln!(
            body,
            "{:<6} {:>12.0} {:>12.0} {:<18} {:>8.1} {:>8.1} {:<18} {:>9}",
            seed,
            meta_kb,
            best_space.1.as_kib_f64(),
            format!("({})", best_space.0),
            meta_frac,
            best_frac.1,
            format!("({})", best_frac.0),
            switches
        );
    }
    let _ = writeln!(body);
    let _ = writeln!(
        body,
        "At-or-better than the best fixed policy: space {space_wins}/{} seeds, \
         efficiency {frac_wins}/{} seeds.",
        seeds.len(),
        seeds.len()
    );

    // The switch traces: which policy drove when.
    let _ = writeln!(body);
    let _ = writeln!(body, "Policy-switch traces (activation: from -> to):");
    for (seed, meta) in &meta_runs {
        let Some(snap) = &meta.telemetry else {
            continue;
        };
        if snap.switches.is_empty() {
            let _ = writeln!(body, "  seed {seed}: no switches (incumbent held)");
            continue;
        }
        let trace = snap
            .switches
            .iter()
            .map(|s| format!("{}: {} -> {}", s.activation, s.from, s.to))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(body, "  seed {seed}: {trace}");
    }

    // Weak-incumbent recovery (seed 1): on the headline workload the
    // default slate starts — and the runs above show it staying — on
    // UpdatedPointer, the paper's winner, so the switch rule never fires.
    // Restarting the same slate with `Occupancy` as the incumbent forces
    // the credit rule to *discover* a better driver mid-run. The demo runs
    // with an aggressive window (4 activations) and no hysteresis margin
    // (100%: switch as soon as a challenger strictly out-earns the
    // incumbent); under the conservative defaults (window 8, margin 150%)
    // the on-policy feedback bias — only the incumbent's picks are ever
    // realized — keeps even a weak incumbent in place for this run length.
    let weak_slate = [
        PolicyKind::Occupancy,
        PolicyKind::MutatedPartition,
        PolicyKind::WeightedPointer,
        PolicyKind::UpdatedDecay,
        PolicyKind::UpdatedPointer,
    ];
    let weak_cfg = scaled(PolicyKind::AdaptiveMeta, 1);
    let weak_snap = weak_incumbent_run(&weak_cfg, &weak_slate, 4, 100);
    let _ = writeln!(body);
    let _ = writeln!(
        body,
        "Weak-incumbent recovery (seed 1, incumbent starts as Occupancy, window 4, margin 100%):"
    );
    if weak_snap.switches.is_empty() {
        let _ = writeln!(body, "  no switches (incumbent held)");
    } else {
        for s in &weak_snap.switches {
            let _ = writeln!(
                body,
                "  activation {}: {} -> {}",
                s.activation, s.from, s.to
            );
        }
    }

    // Shadow regret over the candidate slate (seed 1): how much realized
    // garbage the driver out-earned each candidate's would-be picks by.
    let race_cfg = scaled(PolicyKind::AdaptiveMeta, 1);
    let race = run_race_with_telemetry(&race_cfg, &DEFAULT_CANDIDATES, TelemetryLevel::Off)
        .expect("candidate race");
    let _ = writeln!(body);
    let _ = writeln!(body, "Candidate-slate shadow regret (seed 1):");
    body.push_str(&report::format_regret(std::slice::from_ref(&race)));

    emit(
        &args,
        "AdaptiveMeta vs fixed implementable policies (paper headline config)",
        &body,
    );

    // JSONL export of the meta-policy's tapped runs (switch records ride
    // each activation line under the `policy_switches` key).
    if let Some(path) = &args.telemetry_out {
        let write = || -> std::io::Result<u64> {
            let mut lines = 0;
            let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
            for (seed, meta) in &meta_runs {
                if let Some(snap) = &meta.telemetry {
                    write_snapshot(&mut w, PolicyKind::AdaptiveMeta.name(), *seed, snap)?;
                    lines += snap.records.len() as u64;
                }
            }
            write_snapshot(&mut w, "AdaptiveMeta(weak-start)", 1, &weak_snap)?;
            lines += weak_snap.records.len() as u64;
            std::io::Write::flush(&mut w)?;
            Ok(lines)
        };
        match write() {
            Ok(lines) => eprintln!(
                "(telemetry: {lines} activation records to {})",
                path.display()
            ),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Runs the headline workload with an explicitly ordered candidate slate
/// (the first entry starts as incumbent) and a full telemetry tap; the
/// snapshot's `switches` are the recovery trace.
fn weak_incumbent_run(
    cfg: &pgc_sim::RunConfig,
    slate: &[PolicyKind],
    window: u64,
    margin_pct: u64,
) -> TelemetrySnapshot {
    let policy = AdaptiveMeta::with_config(slate, window, margin_pct, cfg.db.max_weight);
    let collector = Collector::with_trigger(Box::new(policy), cfg.effective_trigger())
        .with_batch(cfg.collect_batch);
    let db = Database::new(cfg.db.clone()).expect("database");
    let mut replayer = Replayer::new(db, collector);
    let (obs, handle) = TelemetryObserver::new(TelemetryLevel::Full, cfg.trigger_reason());
    replayer.collector_mut().add_observer(Box::new(obs));
    let mut generator = SyntheticWorkload::new(cfg.workload.clone()).expect("workload");
    for event in generator.by_ref() {
        replayer.apply(&event).expect("replay");
    }
    drop(replayer);
    handle.finish()
}
