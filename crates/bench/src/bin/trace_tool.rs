//! Trace tooling: record, inspect, and replay workload traces.
//!
//! ```text
//! trace_tool record <tree|assembly> <seed> <out.trace>   # generate + save
//! trace_tool stats <file.trace>                          # event histogram
//! trace_tool head <file.trace> [n]                       # first n events
//! trace_tool replay <file.trace> <policy>                # simulate + totals
//! ```
//!
//! The paper's methodology is trace-driven simulation; this binary is the
//! operational face of that: capture a workload once, inspect what it
//! contains, and drive any policy from the identical byte stream.

use pgc_core::PolicyKind;
use pgc_sim::{RunConfig, Simulation};
use pgc_workload::{
    read_trace, AssemblyParams, AssemblyWorkload, EncodedTrace, Event, TraceWriter, WorkloadParams,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace_tool record <tree|assembly> <seed> <out.trace>\n  trace_tool stats <file.trace>\n  trace_tool head <file.trace> [n]\n  trace_tool replay <file.trace> <policy>"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("head") => head(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("profile") => profile(&args[1..]),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn record(args: &[String]) -> Result<(), String> {
    let [kind, seed, path] = args else { usage() };
    let seed: u64 = seed.parse().map_err(|_| "seed must be an integer")?;
    let file = File::create(path).map_err(|e| e.to_string())?;
    let n = match kind.as_str() {
        // The tree workload records straight into the shared-trace engine's
        // encoded buffer; the file bytes are identical to the streaming
        // writer's.
        "tree" => {
            let trace = EncodedTrace::record(WorkloadParams::default().with_seed(seed))
                .map_err(|e| e.to_string())?;
            trace
                .write_to(BufWriter::new(file))
                .map_err(|e| e.to_string())?;
            trace.events()
        }
        "assembly" => {
            let mut writer = TraceWriter::new(BufWriter::new(file)).map_err(|e| e.to_string())?;
            let events: Box<dyn Iterator<Item = Event>> = Box::new(
                AssemblyWorkload::new(AssemblyParams::default().with_seed(seed))
                    .map_err(|e| e.to_string())?,
            );
            for e in events {
                writer.write_event(&e).map_err(|e| e.to_string())?;
            }
            let n = writer.events_written();
            writer.finish().map_err(|e| e.to_string())?;
            n
        }
        other => return Err(format!("unknown workload '{other}' (tree|assembly)")),
    };
    println!("recorded {n} events to {path}");
    Ok(())
}

fn load(path: &str) -> Result<Vec<Event>, String> {
    let file = File::open(path).map_err(|e| e.to_string())?;
    read_trace(BufReader::new(file)).map_err(|e| e.to_string())
}

fn stats(args: &[String]) -> Result<(), String> {
    let [path] = args else { usage() };
    let events = load(path)?;
    let mut creations = 0u64;
    let mut created_bytes = 0u64;
    let mut pointer_writes = 0u64;
    let mut deletions = 0u64;
    let mut visits = 0u64;
    let mut data_writes = 0u64;
    let mut add_slots = 0u64;
    for e in &events {
        match e {
            Event::CreateRoot { size, .. } | Event::CreateChild { size, .. } => {
                creations += 1;
                created_bytes += size.get();
            }
            Event::WritePointer { new, .. } => {
                pointer_writes += 1;
                if new.is_none() {
                    deletions += 1;
                }
            }
            Event::Visit { .. } => visits += 1,
            Event::DataWrite { .. } => data_writes += 1,
            Event::AddSlot { .. } => add_slots += 1,
        }
    }
    println!("events         {:>12}", events.len());
    println!(
        "creations      {:>12}  ({:.1} MB allocated)",
        creations,
        created_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("pointer writes {pointer_writes:>12}  ({deletions} deletions)");
    println!("slot additions {add_slots:>12}");
    println!("visits         {visits:>12}");
    println!("data writes    {data_writes:>12}");
    Ok(())
}

fn head(args: &[String]) -> Result<(), String> {
    let (path, n) = match args {
        [path] => (path, 20usize),
        [path, n] => (path, n.parse().map_err(|_| "n must be an integer")?),
        _ => usage(),
    };
    for e in load(path)?.into_iter().take(n) {
        println!("{e:?}");
    }
    Ok(())
}

fn profile(args: &[String]) -> Result<(), String> {
    let [path, policy] = args else { usage() };
    let policy: PolicyKind = policy.parse()?;
    let events = load(path)?;
    let cfg = RunConfig::paper(policy, 0);
    let db = pgc_odb::Database::new(cfg.db.clone()).map_err(|e| e.to_string())?;
    let collector =
        pgc_core::Collector::with_kind(policy, cfg.db.gc_overwrite_threshold, 0, cfg.db.max_weight);
    let mut replayer = pgc_sim::Replayer::new(db, collector);
    for e in &events {
        replayer.apply(e).map_err(|e| e.to_string())?;
    }
    let report = pgc_odb::oracle::analyze(replayer.db());
    print!(
        "{}",
        pgc_sim::report::format_partition_profile(
            &replayer.db().partition_profile(),
            Some(&report),
        )
    );
    Ok(())
}

fn replay(args: &[String]) -> Result<(), String> {
    let [path, policy] = args else { usage() };
    let policy: PolicyKind = policy.parse()?;
    let events = load(path)?;
    let cfg = RunConfig::paper(policy, 0);
    let out = Simulation::builder(&cfg)
        .events(&events)
        .run()
        .map_err(|e| e.to_string())?;
    let t = &out.totals;
    println!("policy       {}", policy.name());
    println!("events       {}", t.events);
    println!(
        "page I/Os    {} app + {} gc = {}",
        t.app_ios,
        t.gc_ios,
        t.total_ios()
    );
    println!("collections  {}", t.collections);
    println!(
        "reclaimed    {:.0} KB of {:.0} KB generated ({:.1}%)",
        t.reclaimed_bytes.as_kib_f64(),
        t.actual_garbage_bytes().as_kib_f64(),
        t.fraction_reclaimed_pct()
    );
    println!(
        "storage      {:.0} KB across {} partitions",
        t.max_footprint.as_kib_f64(),
        t.partitions
    );
    Ok(())
}
