//! Regenerates **Figure 6** of the paper: storage required as a function
//! of selection policy and maximum allocated storage (4–40 MB, with the
//! partition size scaled 24–100 pages alongside).
//!
//! ```text
//! cargo run --release -p pgc-bench --bin fig6_scalability [--seeds N] [--scale PCT]
//! ```
//!
//! Note: `--scale` shrinks every sweep point proportionally (useful for a
//! quick shape check); the paper's axis labels correspond to `--scale 100`.

use pgc_bench::{emit, emit_telemetry, CommonArgs};
use pgc_core::PolicyKind;
use pgc_sim::{paper, report, Comparison, Experiment};

fn main() {
    let mut args = CommonArgs::parse();
    // The paper's 20/40 MB points were single-run values; default to fewer
    // seeds than the tables to keep the sweep affordable, unless the user
    // asked explicitly.
    if args.seeds == 10 {
        args.seeds = 3;
    }
    let mut results: Vec<(u64, Comparison)> = Vec::new();
    for mib in paper::FIG6_SIZES_MIB {
        let cmp = Experiment::new()
            .with_telemetry(args.telemetry_level())
            .compare(
                &args.policy_list(&PolicyKind::PAPER),
                &args.seed_list(),
                |policy, seed| {
                    let cfg = paper::scaled(policy, seed, mib);
                    let target = args.scale_bytes(cfg.workload.target_allocated);
                    cfg.with_heap_growth(target)
                        .with_parallelism(args.parallelism())
                },
            )
            .expect("experiment runs");
        results.push((mib, cmp));
    }
    emit(
        &args,
        "Figure 6: Storage Required vs Maximum Allocated Storage",
        &report::format_figure6(&results),
    );
    if let Some((_, largest)) = results.last() {
        emit_telemetry(&args, largest);
    }
}
