//! Regenerates **Figure 5** of the paper: database size (live + unreclaimed
//! garbage) over time for every policy, as CSV series.
//!
//! Plot `resident_kb` against `events` to reproduce the figure. The run is
//! identical to Figure 4's (the paper draws both from one simulation).
//!
//! ```text
//! cargo run --release -p pgc-bench --bin fig5_dbsize_over_time [--scale PCT] [--out fig5.csv]
//! ```

use pgc_bench::{emit, labelled_series, CommonArgs};
use pgc_core::PolicyKind;
use pgc_sim::{paper, Experiment};
use std::fmt::Write as _;

fn main() {
    let args = CommonArgs::parse();
    let seed = 1u64;
    let jobs = args
        .policy_list(&PolicyKind::PAPER)
        .into_iter()
        .map(|policy| {
            let mut cfg = paper::time_series(policy, seed);
            cfg.workload.target_allocated = args.scale_bytes(cfg.workload.target_allocated);
            (policy, cfg.with_parallelism(args.parallelism()))
        })
        .collect();
    let results = Experiment::new().run_jobs(jobs).expect("runs complete");
    // Terminal rendering of the figure, then the precise CSV.
    let labelled = labelled_series(&results);
    let chart = pgc_sim::render_chart(&labelled, pgc_sim::ChartMetric::ResidentKb, 96, 24);
    let mut body = String::new();
    body.push_str(&chart);
    body.push('\n');
    for (policy, outcome) in &results {
        let _ = writeln!(body, "# policy = {policy}");
        body.push_str(&outcome.series.to_csv());
    }
    emit(
        &args,
        "Figure 5: Database Size Over Time (CSV; plot resident_kb vs events)",
        &body,
    );
}
