//! Crash-recovery smoke tooling for the durable storage backend.
//!
//! ```text
//! recover_tool run <dir> [policy] [seed]            # full durable run, prints digest
//! recover_tool crash <dir> <events> [policy] [seed] # persist, abandon mid-run
//! recover_tool recover <dir> [--expect DIGEST]      # replay; nonzero on mismatch
//! ```
//!
//! `run` persists a small workload (snapshots + change log) into `dir` and
//! prints the [`outcome_digest`] of the finished run. `crash` does the
//! same but *abandons* the shard after `<events>` events — no final
//! snapshot, no clean log close, buffered frames dropped on the floor —
//! simulating a process kill. `recover` rebuilds the run from the
//! directory alone and prints what it found; with `--expect` it exits
//! nonzero unless the recovered digest matches, which is how CI pins that
//! a recovered run is bit-identical to the uninterrupted one.

use pgc_core::PolicyKind;
use pgc_durable::DurabilityConfig;
use pgc_sim::{outcome_digest, recover, RunConfig, RunOutcome, Shard, Simulation};
use pgc_telemetry::TelemetryLevel;
use pgc_workload::SyntheticWorkload;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  recover_tool run <dir> [policy] [seed]\n  recover_tool crash <dir> <events> [policy] [seed]\n  recover_tool recover <dir> [--expect DIGEST]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("crash") => crash(&args[1..]),
        Some("recover") => do_recover(&args[1..]),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn parse_policy_seed(args: &[String]) -> Result<(PolicyKind, u64), String> {
    let policy = match args.first() {
        Some(p) => p.parse()?,
        None => PolicyKind::UpdatedPointer,
    };
    let seed = match args.get(1) {
        Some(s) => s.parse().map_err(|_| "seed must be an integer")?,
        None => 1,
    };
    Ok((policy, seed))
}

fn config(policy: PolicyKind, seed: u64, dir: &str) -> RunConfig {
    RunConfig::small()
        .with_policy(policy)
        .with_seed(seed)
        .with_durability(DurabilityConfig::snapshot_and_log(dir).with_snapshot_every(2))
}

fn print_digest(label: &str, out: &RunOutcome) {
    println!(
        "{label}: policy {} seed {} events {} collections {} digest {:016x}",
        out.policy.name(),
        out.seed,
        out.totals.events,
        out.totals.collections,
        outcome_digest(out)
    );
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(dir) = args.first() else { usage() };
    let (policy, seed) = parse_policy_seed(&args[1..])?;
    let cfg = config(policy, seed, dir);
    let out = Simulation::builder(&cfg)
        .telemetry(TelemetryLevel::Metrics)
        .run()
        .map_err(|e| e.to_string())?;
    print_digest("run", &out);
    Ok(())
}

fn crash(args: &[String]) -> Result<(), String> {
    let [dir, events, rest @ ..] = args else {
        usage()
    };
    let budget: usize = events.parse().map_err(|_| "events must be an integer")?;
    let (policy, seed) = parse_policy_seed(rest)?;
    let cfg = config(policy, seed, dir);
    let events: Vec<_> = SyntheticWorkload::new(cfg.workload.clone())
        .map_err(|e| e.to_string())?
        .collect();
    let budget = budget.min(events.len());
    let mut shard = Shard::new(&cfg).map_err(|e| e.to_string())?;
    shard.enable_telemetry(TelemetryLevel::Metrics);
    shard
        .step_batch(&events[..budget])
        .map_err(|e| e.to_string())?;
    println!(
        "crash: policy {} seed {} abandoned after {budget} of {} events",
        policy.name(),
        seed,
        events.len()
    );
    // Simulate the kill: leak the shard so neither the final snapshot nor
    // the buffered log tail is written — process exit drops the file
    // descriptors with whatever the OS already has.
    std::mem::forget(shard);
    Ok(())
}

fn do_recover(args: &[String]) -> Result<(), String> {
    let Some(dir) = args.first() else { usage() };
    let expect = match &args[1..] {
        [] => None,
        [flag, digest] if flag == "--expect" => Some(
            u64::from_str_radix(digest.trim_start_matches("0x"), 16)
                .map_err(|_| "DIGEST must be hex")?,
        ),
        _ => usage(),
    };
    let rec = recover(dir.as_ref()).map_err(|e| e.to_string())?;
    println!(
        "recovered: {} events, {} safepoints, {} snapshots verified ({} skipped), torn tail: {}",
        rec.events_replayed,
        rec.safepoints,
        rec.snapshots_verified,
        rec.snapshot_files_skipped,
        match &rec.torn_tail {
            Some(t) => format!("yes (segment {} @{}: {})", t.segment, t.offset, t.reason),
            None => "no".to_string(),
        }
    );
    print_digest("recover", &rec.outcome);
    if let Some(want) = expect {
        let got = outcome_digest(&rec.outcome);
        if got != want {
            return Err(format!(
                "digest mismatch: expected {want:016x}, got {got:016x}"
            ));
        }
        println!("digest matches");
    }
    Ok(())
}
