//! Diagnostic: connectivity effect probe (calibration helper, not a paper
//! artifact).
use pgc_core::PolicyKind;
use pgc_sim::{RunConfig, Simulation};
use pgc_types::Bytes;

fn main() {
    for dense in [0.005f64, 0.30] {
        for policy in [PolicyKind::UpdatedPointer, PolicyKind::MostGarbage] {
            let mut frac = 0.0;
            let mut nep = 0.0;
            for seed in [1u64, 2, 3, 4] {
                let cfg = RunConfig::paper(policy, seed)
                    .with_heap_growth(Bytes::from_mib(4))
                    .with_dense_edge_fraction(dense);
                let t = Simulation::builder(&cfg).run().unwrap().totals;
                frac += t.fraction_reclaimed_pct() / 4.0;
                nep += t.final_nepotism_bytes.as_kib_f64() / 4.0;
            }
            println!("dense={dense} {policy}: frac={frac:.1}% nepotism={nep:.0}KB");
        }
    }
}
