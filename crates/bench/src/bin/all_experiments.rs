//! Runs the entire evaluation: Tables 2–5 and Figures 4–6, in one pass.
//!
//! ```text
//! cargo run --release -p pgc-bench --bin all_experiments [--seeds N] [--scale PCT] [--out report.txt]
//! ```
//!
//! With default flags this is the paper's full experimental grid (≈ 310
//! simulation runs); on a laptop-class machine it completes in a few
//! minutes. Use `--scale 25 --seeds 3` for a quick shape check.

use pgc_bench::{emit, emit_telemetry, CommonArgs};
use pgc_core::PolicyKind;
use pgc_sim::{paper, report, Comparison, Experiment};
use pgc_workload::TraceCache;
use std::fmt::Write as _;

fn main() {
    let args = CommonArgs::parse();
    let mut full = String::new();
    // One trace cache for the whole evaluation: sections whose workload
    // parameters coincide (the tables share the headline workload; the
    // figures reuse it at other scales) replay the same recorded trace
    // instead of regenerating it.
    let cache = TraceCache::new();
    let experiment = Experiment::new().with_cache(&cache);

    // Tables 2-4 share one experiment; telemetry (if requested via
    // --telemetry-out) taps the headline grid.
    let headline = experiment
        .with_telemetry(args.telemetry_level())
        .compare(
            &args.policy_list(&PolicyKind::PAPER),
            &args.seed_list(),
            |policy, seed| {
                let cfg = paper::headline(policy, seed);
                let target = args.scale_bytes(cfg.workload.target_allocated);
                cfg.with_heap_growth(target)
                    .with_parallelism(args.parallelism())
            },
        )
        .expect("headline experiment runs");
    let _ = writeln!(full, "== Table 2: Throughput (page I/Os) ==");
    full.push_str(&report::format_table2(&headline));
    let _ = writeln!(full, "\n== Table 3: Maximum Storage ==");
    full.push_str(&report::format_table3(&headline));
    let _ = writeln!(full, "\n== Table 4: Effectiveness and Efficiency ==");
    full.push_str(&report::format_table4(&headline));

    // Table 5: connectivity sweep.
    let mut t5: Vec<(f64, Comparison)> = Vec::new();
    for (connectivity, dense) in paper::TABLE5_CONNECTIVITY {
        let cmp = experiment
            .compare(
                &args.policy_list(&PolicyKind::PAPER),
                &args.seed_list(),
                |policy, seed| {
                    let cfg = paper::connectivity(policy, seed, dense);
                    let target = args.scale_bytes(cfg.workload.target_allocated);
                    cfg.with_heap_growth(target)
                        .with_parallelism(args.parallelism())
                },
            )
            .expect("connectivity experiment runs");
        t5.push((connectivity, cmp));
    }
    let _ = writeln!(full, "\n== Table 5: Connectivity Effects (% reclaimed) ==");
    full.push_str(&report::format_table5(&t5));

    // Figures 4/5: time series (single seed).
    let jobs = args
        .policy_list(&PolicyKind::PAPER)
        .into_iter()
        .map(|policy| {
            let mut cfg = paper::time_series(policy, 1);
            cfg.workload.target_allocated = args.scale_bytes(cfg.workload.target_allocated);
            (policy, cfg.with_parallelism(args.parallelism()))
        })
        .collect();
    let series = experiment.run_jobs(jobs).expect("time series runs");
    let _ = writeln!(
        full,
        "\n== Figures 4 & 5: time series (final samples; full CSV via fig4/fig5 binaries) =="
    );
    let _ = writeln!(
        full,
        "{:<18} {:>14} {:>14} {:>14}",
        "Policy", "final garb KB", "final size KB", "collections"
    );
    for (policy, outcome) in &series {
        if let Some(last) = outcome.series.points().last() {
            let _ = writeln!(
                full,
                "{:<18} {:>14.0} {:>14.0} {:>14}",
                policy.name(),
                last.garbage_bytes.as_kib_f64(),
                last.resident_bytes.as_kib_f64(),
                last.collections
            );
        }
    }

    // Figure 6: size sweep (3 seeds keeps it affordable).
    let sweep_seeds: Vec<u64> = (1..=args.seeds.min(3)).collect();
    let mut f6: Vec<(u64, Comparison)> = Vec::new();
    for mib in paper::FIG6_SIZES_MIB {
        let cmp = experiment
            .compare(
                &args.policy_list(&PolicyKind::PAPER),
                &sweep_seeds,
                |policy, seed| {
                    let cfg = paper::scaled(policy, seed, mib);
                    let target = args.scale_bytes(cfg.workload.target_allocated);
                    cfg.with_heap_growth(target)
                        .with_parallelism(args.parallelism())
                },
            )
            .expect("scalability experiment runs");
        f6.push((mib, cmp));
    }
    let _ = writeln!(full, "\n== Figure 6: Storage vs Maximum Allocated ==");
    full.push_str(&report::format_figure6(&f6));

    emit(&args, "Full evaluation (Tables 2-5, Figures 4-6)", &full);
    emit_telemetry(&args, &headline);
}
