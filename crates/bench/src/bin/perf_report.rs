//! Performance-regression harness for the dense-id hot paths.
//!
//! Replays fixed-seed workloads through the simulator and reports, in
//! `BENCH_hotpath.json`:
//!
//! * **events/sec** of the full replay loop per policy, on the paper
//!   configuration and the small configuration;
//! * the same replay with the pre-dense **baseline** (`MostGarbage`
//!   backed by the retained hash-set oracle, `oracle::reference`), so the
//!   speedup and the baseline it is measured against live in one file;
//! * **oracle passes/sec** for the dense and reference analyses over an
//!   identical database state;
//! * a **peak-RSS proxy** (`VmHWM` from `/proc/self/status`);
//! * a **bit-identical check**: for seeds 0–9 on the small configuration,
//!   the dense-oracle `MostGarbage` run and the reference-oracle run must
//!   produce equal `RunTotals` — the dense structures change no simulated
//!   outcome, only wall-clock time.
//!
//! It also measures the **shared-trace experiment engine** and writes
//! `BENCH_experiment.json`: the full 11-policy paper-config sweep, timed
//! once on the pre-change per-job scheduler (every job regenerates its
//! workload inline) and once on the engine (record each seed's trace once,
//! replay everywhere). The two sweeps must agree on every job's totals and
//! victim sequence, and — at full scale — the speedup must stay above 90%
//! of the recorded value, or the process exits nonzero.
//!
//! It also gates the **derive-layer policy engine** and writes
//! `BENCH_policy.json`: the `UpdatedPointer` paper replay (the paper's
//! best implementable policy, now backed by revision-stamped derived
//! state) is timed in paired passes against the reproduced pre-derive
//! hand-rolled scoreboard and must hold at least 95% of its throughput
//! (gate binding at full scale; victims must match at any scale),
//! alongside the engine's memo hit/partial/full counters and context
//! timings for the two derive-native policies (`Composite`,
//! `AdaptiveMeta`).
//!
//! It also measures the **telemetry tap** and writes
//! `BENCH_telemetry.json`: the paper `MostGarbage` replay timed bare, with
//! telemetry off, and at full telemetry. The off path must stay within 2%
//! of the bare loop and the full path within 10% (gates binding at full
//! scale), and neither level may change totals or the victim sequence.
//!
//! Finally it gates the **intra-run parallel hot path** and writes
//! `BENCH_parallel.json`: one encoded paper trace replayed three ways —
//! the pre-dense execution model (per-event decode, hash-set oracle), the
//! batched serial block loop, and the full parallel pipeline (decode-ahead
//! thread, work-stealing parallel oracle) at `--intra-threads` workers.
//! All three legs must pick identical victims (the `Deterministic(n)`
//! contract). At full scale the serial block loop must beat the pre-dense
//! leg by 1.5x on any machine, and — on machines with at least
//! `--intra-threads` cores — the parallel leg must beat it by 2.5x, all
//! measured in the same process.
//!
//! Finally it gates the **sharded server runtime** and writes
//! `BENCH_server.json`: the same set of client streams run on 1, 2, and 4
//! shards through `pgc-server`. Every stream's outcome must be
//! bit-identical at every shard count and to a dedicated
//! single-`Simulation` run (binding at any scale). At full scale — on
//! machines with at least as many cores as the widest fleet — aggregate
//! events/sec at 4 shards must beat 1 shard by 2x. Wall-clock gates that
//! cannot bind (reduced scale, too few cores) record an explicit
//! `skipped` status in their artifact instead of a silent pass.
//!
//! Finally it gates the **durable storage backend** and writes
//! `BENCH_storage.json`: the paper `MostGarbage` replay timed bare, with
//! the append-only change log (`LogOnly`), and with snapshots + log. The
//! log path must hold ≥ 90% of bare throughput (binding at full scale,
//! explicit skipped status otherwise), victims must match across legs at
//! any scale, and a persisted run is recovered from its data directory —
//! timed as recovery replay speed — with the recovered digest pinned to
//! the original.
//!
//! Usage: `cargo run --release --bin perf_report` (or `just bench-report`).
//! `--scale PCT` shrinks the paper workload for quick runs.

use pgc_bench::CommonArgs;
use pgc_core::policy::{fallback_victim, PolicyKind, SelectionPolicy};
use pgc_core::{build_policy, build_policy_with, Collector};
use pgc_durable::{DurabilityConfig, ScratchDir};
use pgc_odb::oracle::{self, OracleScratch};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_server::{Server, ServerConfig, StreamId};
use pgc_sim::{
    drive_encoded, experiment, outcome_digest, recover, Experiment, Replayer, RunConfig,
    RunOutcome, Shard, Simulation, TelemetryLevel,
};
use pgc_telemetry::TelemetryObserver;
use pgc_types::{Bytes, Parallelism, PartitionId};
use pgc_workload::generator::GenStats;
use pgc_workload::{EncodedTrace, Event, NodeId, SyntheticWorkload, TraceCache, TraceSegment};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Paper-config `MostGarbage` events/sec recorded before the barrier event
/// bus landed (the dense-ID PR's `BENCH_hotpath.json`). The bus adds an
/// enum-dispatch hop to every mutation, so this is the yardstick the
/// `bus_overhead` section measures against: staying within 10% means the
/// typed event stream is effectively free on the hot path.
const PRE_BUS_PAPER_MOSTGARBAGE_EPS: f64 = 4_990_198.0;

/// Shared-trace sweep speedup recorded when the engine landed: the full
/// 11-policy × 3-seed paper-config sweep on the engine (record each seed
/// once, replay everywhere) versus the pre-change per-job scheduler (every
/// job regenerates its workload). The generator is the only work the engine
/// removes, so the ratio is a machine-portable property of the sweep —
/// full-scale paired passes measured 1.5–1.8x; this records the
/// conservative end, and the gate fails when a full-scale run measures
/// less than 90% of it.
const RECORDED_SWEEP_SPEEDUP: f64 = 1.5;

/// Paper-config `UpdatedPointer` events/sec recorded immediately before the
/// derive layer landed, when the policy still hand-maintained its private
/// overwrite scoreboard (best-of-3, this harness's replay loop). The
/// `policy_engine` gate holds the revision-stamped derived-state port to
/// ≥ 95% of this: memoized selection must not tax the barrier hot path.
const PRE_DERIVE_PAPER_UPDATEDPOINTER_EPS: f64 = 11_391_478.4;

/// Required single-run speedup of the intra-run parallel pipeline
/// (decode-ahead thread + work-stealing parallel oracle) over the
/// pre-dense execution model (per-event decode, hash-set oracle) on the
/// paper `MostGarbage` replay. Both legs are measured in the same process
/// over the same encoded trace. Binds at full scale, and only on machines
/// with at least `--intra-threads` available cores — on fewer cores the
/// worker threads time-slice one CPU and wall-clock parallel speedup is
/// physically unmeasurable (bit-identity still binds everywhere).
const PARALLEL_SPEEDUP_GATE: f64 = 2.5;

/// Required speedup of the *serial* batched block loop (SoA decode, dense
/// oracle, no threads) over the same pre-dense leg. Unlike the parallel
/// gate this involves no concurrency, so it binds at full scale on any
/// machine, including single-core CI runners.
const BATCHED_SPEEDUP_GATE: f64 = 1.5;

/// Required aggregate-throughput speedup of the sharded server runtime at
/// its widest shard count versus one shard, over the same client streams.
/// Binds at full scale, and only on machines with at least as many
/// available cores as shards — on fewer cores the shard workers
/// time-slice one CPU, so the artifact records an explicit skipped
/// status instead of a silent pass (per-stream bit-identity still binds
/// everywhere).
const SERVER_SPEEDUP_GATE: f64 = 2.0;

/// Shard counts the `server_scalability` section sweeps, ascending; the
/// gate compares the last against the first.
const SERVER_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Client streams multiplexed onto the fleet in the server sweep.
const SERVER_STREAMS: usize = 8;

/// Paired passes per shard count in the server sweep (best-of, with the
/// visit order rotated across passes like the other paired gates).
const SERVER_PASSES: usize = 2;

/// Required speedup of the zero-copy segment ingest path
/// (`submit_segment`: an `Arc` bump plus a byte range per batch) over the
/// clone path (an owned `Vec<Event>` allocated and copied per batch — the
/// pre-ring data plane's cost shape). Measured on an ingest-dominated
/// workload (visit-heavy streams whose stepping is cheap, so moving bytes
/// is the bill); binds at full scale and only when the machine has more
/// cores than the ingest fleet has shards, so the producer genuinely
/// overlaps the workers instead of time-slicing one CPU. Anywhere else
/// the artifact records an explicit skipped status; leg bit-identity
/// still binds everywhere.
const INGEST_SPEEDUP_GATE: f64 = 1.3;

/// Client streams in the ingest comparison.
const INGEST_STREAMS: usize = 4;

/// Shards the ingest fleet runs on (small on purpose: the gate is about
/// the submit path, not fleet scaling).
const INGEST_SHARDS: usize = 2;

/// Paired passes per ingest leg (best-of, order alternated).
const INGEST_PASSES: usize = 3;

/// Visit events per ingest stream at full scale (scaled linearly by
/// `--scale`).
const INGEST_EVENTS_FULL: usize = 2_000_000;

/// The pre-derive `UpdatedPointer`: the hand-rolled private scoreboard the
/// derive layer replaced — a bare counter vector bumped on overwrites and
/// zeroed on collection, with the same skip-zero/ties-low argmax. Timed in
/// paired passes against the derive-backed policy, the within-pass ratio
/// is the `policy_engine` gate.
#[derive(Default)]
struct HandRolledUpdatedPointer {
    counts: Vec<u64>,
}

impl BarrierObserver for HandRolledUpdatedPointer {
    fn on_event(&mut self, event: &BarrierEvent) {
        match event {
            BarrierEvent::PointerWrite(info) => {
                if let Some(old) = &info.old {
                    let idx = old.partition.as_usize();
                    if self.counts.len() <= idx {
                        self.counts.resize(idx + 1, 0);
                    }
                    self.counts[idx] += 1;
                }
            }
            BarrierEvent::CollectionCompleted(outcome) => {
                if let Some(c) = self.counts.get_mut(outcome.victim.as_usize()) {
                    *c = 0;
                }
            }
            _ => {}
        }
    }
}

impl SelectionPolicy for HandRolledUpdatedPointer {
    fn kind(&self) -> PolicyKind {
        PolicyKind::UpdatedPointer
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        let mut best: Option<(PartitionId, u64)> = None;
        for p in db.collectable_partitions() {
            let s = self.counts.get(p.as_usize()).copied().unwrap_or(0);
            if s == 0 {
                continue;
            }
            match best {
                Some((_, b)) if b >= s => {}
                _ => best = Some((p, s)),
            }
        }
        best.map(|(p, _)| p).or_else(|| fallback_victim(db))
    }

    fn name(&self) -> &'static str {
        "UpdatedPointer(handrolled)"
    }
}

/// The pre-dense `MostGarbage`: identical selection rule, hash-set oracle.
struct ReferenceMostGarbage;

impl BarrierObserver for ReferenceMostGarbage {
    fn on_event(&mut self, _event: &BarrierEvent) {}
}

impl SelectionPolicy for ReferenceMostGarbage {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MostGarbage
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        let report = oracle::reference::analyze(db);
        report
            .most_garbage_partition(db.empty_partition())
            .or_else(|| fallback_victim(db))
    }

    fn name(&self) -> &'static str {
        "MostGarbage(reference)"
    }
}

/// Builds a fresh policy instance for each timed pass.
type PolicyFactory<'a> = &'a dyn Fn() -> Box<dyn SelectionPolicy>;

/// One measured replay.
struct ReplayRow {
    config: &'static str,
    policy: String,
    implementation: &'static str,
    events: u64,
    secs: f64,
}

impl ReplayRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs.max(1e-9)
    }
}

fn events_for(cfg: &RunConfig) -> Vec<Event> {
    SyntheticWorkload::new(cfg.workload.clone())
        .expect("workload params")
        .collect()
}

/// Builds the policy exactly as `Simulation` does (same decorrelated
/// policy seed, same weight cap), so replays here match `Experiment::compare`.
fn dense_policy(cfg: &RunConfig) -> Box<dyn SelectionPolicy> {
    build_policy(cfg.policy, cfg.policy_seed(), cfg.db.max_weight)
}

fn replayer_for(cfg: &RunConfig, policy: Box<dyn SelectionPolicy>) -> Replayer {
    let db = Database::new(cfg.db.clone()).expect("db config");
    let collector =
        Collector::with_trigger(policy, cfg.effective_trigger()).with_batch(cfg.collect_batch);
    Replayer::new(db, collector)
}

/// Like [`replayer_for`], but builds the collector — and the policy, when
/// it owns parallelism-aware kernels — in the given intra-run execution
/// mode.
fn mode_replayer(cfg: &RunConfig, parallelism: Parallelism) -> Replayer {
    let db = Database::new(cfg.db.clone()).expect("db config");
    let policy = build_policy_with(
        cfg.policy,
        cfg.policy_seed(),
        cfg.db.max_weight,
        parallelism,
    );
    let collector = Collector::with_trigger(policy, cfg.effective_trigger())
        .with_batch(cfg.collect_batch)
        .with_parallelism(parallelism);
    Replayer::new(db, collector)
}

/// Replays `events` under `policy`, returning the timed row and totals
/// (events applied + collections, used for cross-checking runs).
///
/// Best-of-3: each pass rebuilds the replayer from scratch and the fastest
/// wall time wins — the max-throughput estimator sheds scheduler noise that
/// a single ~100 ms sample cannot (and that would flap the `bus_overhead`
/// within-10% gate). Repeats double as a determinism check: every pass must
/// apply the same events and perform the same collections.
fn timed_replay(
    config: &'static str,
    cfg: &RunConfig,
    events: &[Event],
    policy: PolicyFactory<'_>,
    implementation: &'static str,
) -> (ReplayRow, u64) {
    const PASSES: usize = 3;
    let mut label = String::new();
    let mut best: Option<(f64, u64, u64)> = None;
    for _ in 0..PASSES {
        let policy = policy();
        label = policy.name().to_string();
        let mut replayer = replayer_for(cfg, policy);
        let t0 = Instant::now();
        for event in events {
            replayer.apply(event).expect("replay");
        }
        let secs = t0.elapsed().as_secs_f64();
        let applied = replayer.events_applied();
        let collections = replayer.collections().len() as u64;
        match best {
            Some((best_secs, best_applied, best_collections)) => {
                assert_eq!(
                    (applied, collections),
                    (best_applied, best_collections),
                    "replay passes must be deterministic"
                );
                if secs < best_secs {
                    best = Some((secs, applied, collections));
                }
            }
            None => best = Some((secs, applied, collections)),
        }
    }
    let (secs, applied, collections) = best.expect("at least one pass");
    (
        ReplayRow {
            config,
            policy: label,
            implementation,
            events: applied,
            secs,
        },
        collections,
    )
}

/// Peak resident set size in KiB (`VmHWM`), or 0 where unavailable.
fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|v| v.split_whitespace().next().and_then(|n| n.parse().ok()))
            })
        })
        .unwrap_or(0)
}

/// For seeds 0–9 on the small config, dense and reference `MostGarbage`
/// must be observationally identical: equal totals, equal final oracle
/// reports.
fn check_bit_identical() -> bool {
    for seed in 0..10u64 {
        let cfg = RunConfig::small()
            .with_policy(PolicyKind::MostGarbage)
            .with_seed(seed);
        let events = events_for(&cfg);

        let mut dense = replayer_for(&cfg, dense_policy(&cfg));
        let mut reference = replayer_for(&cfg, Box::new(ReferenceMostGarbage));
        for event in &events {
            dense.apply(event).expect("dense replay");
            reference.apply(event).expect("reference replay");
        }
        let dense_report = oracle::analyze(dense.db());
        let reference_report = oracle::reference::analyze(reference.db());
        if dense_report != reference_report
            || dense.db().stats() != reference.db().stats()
            || dense.db().io_stats() != reference.db().io_stats()
            || dense.collections().len() != reference.collections().len()
        {
            eprintln!("MISMATCH: seed {seed} diverged between dense and reference");
            return false;
        }
    }
    true
}

/// The pre-change sweep scheduler, reproduced as the baseline: every job
/// runs a live-generator simulation — regenerating its workload inline —
/// fanned over `threads` workers claiming jobs from a shared counter.
fn per_job_sweep(jobs: &[RunConfig], threads: usize) -> Vec<RunOutcome> {
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<RunOutcome>> = (0..jobs.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = jobs.get(i) else { break };
                let outcome = Simulation::builder(cfg).run().expect("per-job sweep run");
                assert!(slots[i].set(outcome).is_ok(), "slot claimed once");
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every sweep slot filled"))
        .collect()
}

/// Measures repeated full-database oracle passes over one built state.
fn oracle_passes(db: &Database, dense: bool, budget_secs: f64) -> (u64, f64) {
    let mut scratch = OracleScratch::new();
    let mut passes = 0u64;
    let t0 = Instant::now();
    loop {
        if dense {
            std::hint::black_box(oracle::analyze_with(db, &mut scratch));
        } else {
            std::hint::black_box(oracle::reference::analyze(db));
        }
        passes += 1;
        if t0.elapsed().as_secs_f64() >= budget_secs && passes >= 3 {
            break;
        }
    }
    (passes, t0.elapsed().as_secs_f64())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The pre-change baseline recorded by `perf_baseline` (see the
/// `bench-baseline` recipe in the justfile), if one has been captured.
struct RecordedBaseline {
    raw: String,
    paper_mostgarbage_eps: f64,
}

fn read_recorded_baseline() -> Option<RecordedBaseline> {
    let raw = std::fs::read_to_string("BENCH_baseline.json").ok()?;
    let key = "\"paper_mostgarbage_events_per_sec\":";
    let rest = &raw[raw.find(key)? + key.len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    let paper_mostgarbage_eps = num.parse().ok()?;
    Some(RecordedBaseline {
        raw: raw.trim_end().to_string(),
        paper_mostgarbage_eps,
    })
}

fn main() {
    let args = CommonArgs::parse();
    let mut rows: Vec<ReplayRow> = Vec::new();

    // --- Small configuration: every paper policy, dense structures. ---
    println!("replaying small configuration (seed 1) per policy...");
    let small = RunConfig::small().with_seed(1);
    let small_events = events_for(&small);
    for kind in PolicyKind::PAPER {
        let cfg = small.clone().with_policy(kind);
        let (row, _) = timed_replay(
            "small",
            &cfg,
            &small_events,
            &|| dense_policy(&cfg),
            "dense",
        );
        println!(
            "  {:<24} {:>12.0} events/sec",
            row.policy,
            row.events_per_sec()
        );
        rows.push(row);
    }
    let (row, _) = timed_replay(
        "small",
        &small.clone().with_policy(PolicyKind::MostGarbage),
        &small_events,
        &|| Box::new(ReferenceMostGarbage),
        "reference-baseline",
    );
    println!(
        "  {:<24} {:>12.0} events/sec",
        row.policy,
        row.events_per_sec()
    );
    rows.push(row);

    // --- Paper configuration: the MostGarbage hot path, dense vs the
    // recorded reference baseline, plus one implementable policy for
    // context. `--scale` shrinks the allocation target for quick runs. ---
    println!("replaying paper configuration (seed 1)...");
    let mut paper = RunConfig::paper(PolicyKind::MostGarbage, 1);
    paper.workload.target_allocated = args.scale_bytes(paper.workload.target_allocated);
    let paper_events = events_for(&paper);
    let mut paper_pairs: Vec<(&'static str, f64)> = Vec::new();
    let factories: [(&'static str, PolicyFactory<'_>); 2] = [
        ("dense", &|| dense_policy(&paper)),
        ("reference-baseline", &|| Box::new(ReferenceMostGarbage)),
    ];
    for (implementation, policy) in factories {
        let (row, collections) =
            timed_replay("paper", &paper, &paper_events, policy, implementation);
        println!(
            "  {:<24} {:>12.0} events/sec  ({} collections)",
            format!("{} [{}]", row.policy, row.implementation),
            row.events_per_sec(),
            collections
        );
        paper_pairs.push((implementation, row.events_per_sec()));
        rows.push(row);
    }
    let up_cfg = paper.clone().with_policy(PolicyKind::UpdatedPointer);
    let (row, _) = timed_replay(
        "paper",
        &up_cfg,
        &paper_events,
        &|| dense_policy(&up_cfg),
        "dense",
    );
    println!(
        "  {:<24} {:>12.0} events/sec",
        row.policy,
        row.events_per_sec()
    );
    rows.push(row);

    let dense_paper_eps = paper_pairs
        .iter()
        .find(|(i, _)| *i == "dense")
        .map(|(_, v)| *v)
        .unwrap_or(0.0);
    let reference_paper_eps = paper_pairs
        .iter()
        .find(|(i, _)| *i == "reference-baseline")
        .map(|(_, v)| *v)
        .unwrap_or(f64::INFINITY);

    // The speedup headline compares against the recorded pre-change run
    // (old object table AND old oracle) when one exists; the in-process
    // reference-oracle replay otherwise (which understates the win — it
    // still enjoys the slab object table on every event).
    let recorded = read_recorded_baseline();
    let (baseline_kind, baseline_paper_eps) = match &recorded {
        Some(b) => ("pre-change run (perf_baseline)", b.paper_mostgarbage_eps),
        None => ("reference-oracle replay", reference_paper_eps),
    };
    let replay_speedup = dense_paper_eps / baseline_paper_eps.max(1e-9);
    println!("  MostGarbage paper speedup: {replay_speedup:.2}x vs {baseline_kind}");

    // --- Event-bus overhead vs the recorded pre-bus run. Only meaningful
    // at full scale: a shrunk workload replays a different event mix. ---
    let bus_ratio = dense_paper_eps / PRE_BUS_PAPER_MOSTGARBAGE_EPS;
    let bus_within_10pct = bus_ratio >= 0.90;
    println!(
        "  event-bus overhead: {:.1}% of pre-bus throughput ({})",
        bus_ratio * 100.0,
        if bus_within_10pct {
            "within 10%"
        } else {
            "REGRESSION beyond 10%"
        }
    );

    // --- Policy engine: derived-state selection vs the hand-rolled
    // scoreboard it replaced. `UpdatedPointer` on the paper config is the
    // yardstick workload (the paper's best implementable policy, pure
    // barrier-counter state). Paired best-of-N passes — each pass times
    // the derive-backed policy and the reproduced pre-derive scoreboard
    // back-to-back, order alternating — and the best within-pass ratio is
    // gated at ≥ 95%, binding at full scale. The recorded pre-derive
    // constant rides along in the JSON for cross-run context. Both legs
    // must pick identical victims at any scale. ---
    println!("measuring the derive-layer policy engine (UpdatedPointer paper replay)...");
    const POLICY_PASSES: usize = 5;
    let mut derive_secs = f64::INFINITY;
    let mut hand_secs = f64::INFINITY;
    let mut best_policy_ratio = 0.0f64;
    let mut derive_victims: Option<Vec<PartitionId>> = None;
    let mut hand_victims: Option<Vec<PartitionId>> = None;
    for pass in 0..POLICY_PASSES {
        let (mut d, mut h) = (0.0f64, 0.0f64);
        for leg in [pass % 2, (pass + 1) % 2] {
            let policy: Box<dyn SelectionPolicy> = if leg == 0 {
                dense_policy(&up_cfg)
            } else {
                Box::<HandRolledUpdatedPointer>::default()
            };
            let mut replayer = replayer_for(&up_cfg, policy);
            let t0 = Instant::now();
            for event in &paper_events {
                replayer.apply(event).expect("policy-engine replay");
            }
            let secs = t0.elapsed().as_secs_f64();
            let victims: Vec<PartitionId> =
                replayer.collections().iter().map(|c| c.victim).collect();
            let seen = if leg == 0 {
                d = secs;
                &mut derive_victims
            } else {
                h = secs;
                &mut hand_victims
            };
            match seen {
                Some(v) => assert_eq!(*v, victims, "policy-engine replay determinism"),
                None => *seen = Some(victims),
            }
        }
        best_policy_ratio = best_policy_ratio.max(h / d.max(1e-9));
        derive_secs = derive_secs.min(d);
        hand_secs = hand_secs.min(h);
    }
    // Same two noise-shedding estimators as the telemetry gate: the paired
    // per-pass ratio and the min-time ratio, best of either.
    best_policy_ratio = best_policy_ratio.max(hand_secs / derive_secs.max(1e-9));
    let policy_identical = derive_victims == hand_victims;
    let policy_engine_eps = paper_events.len() as f64 / derive_secs.max(1e-9);
    let hand_rolled_eps = paper_events.len() as f64 / hand_secs.max(1e-9);
    let policy_gate_applies = args.scale_pct == 100;
    let policy_gate_ok = (!policy_gate_applies || best_policy_ratio >= 0.95) && policy_identical;
    let mut up_replayer = replayer_for(&up_cfg, dense_policy(&up_cfg));
    for event in &paper_events {
        up_replayer.apply(event).expect("derive-stats replay");
    }
    let derive_stats = up_replayer
        .collector()
        .policy()
        .derive_stats()
        .expect("UpdatedPointer is derive-backed");
    drop(up_replayer);
    let memo_hit_rate = derive_stats.hits as f64 / derive_stats.selections().max(1) as f64;
    println!(
        "  derived-state:  {policy_engine_eps:>12.0} events/sec ({:.1}% of hand-rolled, gate 95%{})",
        best_policy_ratio * 100.0,
        if policy_gate_applies {
            ""
        } else {
            ", not binding at this --scale"
        }
    );
    println!("  hand-rolled:    {hand_rolled_eps:>12.0} events/sec");
    println!("  victims bit-identical: {policy_identical}");
    println!(
        "  memo: {} selections ({} hit / {} partial / {} full; {:.0}% hit rate), revision {}",
        derive_stats.selections(),
        derive_stats.hits,
        derive_stats.partial,
        derive_stats.full,
        memo_hit_rate * 100.0,
        derive_stats.revision
    );
    let mut new_policy_rows: Vec<(&'static str, f64)> = Vec::new();
    for kind in [PolicyKind::Composite, PolicyKind::AdaptiveMeta] {
        let cfg = paper.clone().with_policy(kind);
        let (row, _) = timed_replay(
            "paper",
            &cfg,
            &paper_events,
            &|| dense_policy(&cfg),
            "dense",
        );
        println!(
            "  {:<24} {:>12.0} events/sec",
            row.policy,
            row.events_per_sec()
        );
        new_policy_rows.push((kind.name(), row.events_per_sec()));
        rows.push(row);
    }
    if !policy_identical {
        eprintln!(
            "MISMATCH: derive-backed UpdatedPointer diverged from the hand-rolled scoreboard"
        );
    } else if !policy_gate_ok {
        eprintln!(
            "REGRESSION: derived-state UpdatedPointer throughput {:.1}% fell below the 95% gate",
            best_policy_ratio * 100.0
        );
    }

    // --- Shared-trace experiment engine: the full 11-policy sweep, on the
    // paper configuration. The engine records each seed's trace once and
    // replays it for every policy; the baseline regenerates per job. ---
    println!(
        "timing the 11-policy paper-config sweep (shared-trace engine vs per-job generation)..."
    );
    let sweep_seeds: Vec<u64> = (1..=args.seeds.min(3)).collect();
    let threads = experiment::default_threads();
    // The recorded speedup constant was calibrated on the 11-policy slate
    // that existed when the engine landed; the two derive-native extensions
    // (whose replay cost the `policy_engine` section gates separately) are
    // excluded so the ratio stays comparable across runs.
    let sweep_policies: Vec<PolicyKind> = PolicyKind::ALL
        .into_iter()
        .filter(|k| !matches!(k, PolicyKind::Composite | PolicyKind::AdaptiveMeta))
        .collect();
    let mut sweep_jobs: Vec<RunConfig> = Vec::new();
    for &seed in &sweep_seeds {
        for &policy in &sweep_policies {
            let mut cfg = RunConfig::paper(policy, seed);
            cfg.workload.target_allocated = args.scale_bytes(cfg.workload.target_allocated);
            sweep_jobs.push(cfg);
        }
    }
    // Best-of-3 *paired* passes: each pass times both schedulers
    // back-to-back (order alternating, so warm-up effects don't always
    // favor one side) and yields one speedup ratio; the pass with the best
    // ratio wins. Pairing matters on shared machines — background load
    // tends to slow a whole pass, which the within-pass ratio cancels,
    // where independent min-times across passes would not.
    const SWEEP_PASSES: usize = 3;
    let mut per_job: Option<Vec<RunOutcome>> = None;
    let mut engine: Option<Vec<(usize, RunOutcome)>> = None;
    let mut per_job_secs = f64::INFINITY;
    let mut record_secs = f64::INFINITY;
    let mut replay_secs = f64::INFINITY;
    let mut engine_secs = f64::INFINITY;
    let mut best_ratio = 0.0f64;
    for pass in 0..SWEEP_PASSES {
        let mut pj = 0.0;
        let mut rec = 0.0;
        let mut rep = 0.0;
        let mut time_per_job = || {
            let t0 = Instant::now();
            let outcomes = per_job_sweep(&sweep_jobs, threads);
            pj = t0.elapsed().as_secs_f64();
            per_job.get_or_insert(outcomes);
        };
        let mut time_engine = || {
            // A fresh cache per pass, so the record phase is always measured.
            let cache = TraceCache::new();
            let t0 = Instant::now();
            for jobs_for_seed in sweep_jobs.chunks(sweep_policies.len()) {
                cache
                    .get_or_record(&jobs_for_seed[0].workload)
                    .expect("record sweep trace");
            }
            rec = t0.elapsed().as_secs_f64();
            let labeled: Vec<(usize, RunConfig)> = sweep_jobs.iter().cloned().enumerate().collect();
            let t0 = Instant::now();
            let outcomes = Experiment::new()
                .with_threads(threads)
                .with_cache(&cache)
                .run_jobs(labeled)
                .expect("engine sweep");
            rep = t0.elapsed().as_secs_f64();
            engine.get_or_insert(outcomes);
        };
        if pass % 2 == 0 {
            time_per_job();
            time_engine();
        } else {
            time_engine();
            time_per_job();
        }
        let ratio = pj / (rec + rep).max(1e-9);
        if ratio > best_ratio {
            best_ratio = ratio;
            per_job_secs = pj;
            record_secs = rec;
            replay_secs = rep;
            engine_secs = rec + rep;
        }
    }
    let per_job = per_job.expect("at least one per-job pass");
    let engine = engine.expect("at least one engine pass");

    let sweep_identical = per_job.len() == engine.len()
        && per_job
            .iter()
            .zip(&engine)
            .all(|(a, (_, b))| a.totals == b.totals && a.collections == b.collections);
    let sweep_events: u64 = engine.iter().map(|(_, o)| o.totals.events).sum();
    let sweep_speedup = per_job_secs / engine_secs.max(1e-9);
    // The generator's share of the per-job sweep: one record pass per job
    // (the engine pays one per seed), over the per-job wall clock.
    let generator_share =
        (record_secs / sweep_seeds.len() as f64) * sweep_jobs.len() as f64 / per_job_secs.max(1e-9);
    // Workload size changes the generator/replay balance, so the recorded
    // ratio only binds at full scale.
    let sweep_gate = 0.9 * RECORDED_SWEEP_SPEEDUP;
    let sweep_gate_applies = args.scale_pct == 100;
    let sweep_gate_ok = !sweep_gate_applies || sweep_speedup >= sweep_gate;
    println!(
        "  per-job generation: {per_job_secs:>8.2}s  ({:.0} events/sec)",
        sweep_events as f64 / per_job_secs.max(1e-9)
    );
    println!(
        "  shared-trace:       {engine_secs:>8.2}s  ({:.0} events/sec; record {record_secs:.2}s + replay {replay_secs:.2}s)",
        sweep_events as f64 / engine_secs.max(1e-9)
    );
    println!(
        "  sweep speedup: {sweep_speedup:.2}x (recorded {RECORDED_SWEEP_SPEEDUP:.2}x, gate {sweep_gate:.2}x{}); generator share {:.0}%",
        if sweep_gate_applies {
            ""
        } else {
            ", not binding at this --scale"
        },
        generator_share * 100.0
    );
    println!("  sweep bit-identical: {sweep_identical}");
    if !sweep_gate_ok {
        eprintln!(
            "REGRESSION: sweep speedup {sweep_speedup:.2}x fell below the {sweep_gate:.2}x gate"
        );
    }

    // --- Oracle passes/sec over the small end state. ---
    println!("measuring oracle passes/sec over the small end state...");
    let oracle_cfg = small.clone().with_policy(PolicyKind::UpdatedPointer);
    let mut replayer = replayer_for(&oracle_cfg, dense_policy(&oracle_cfg));
    for event in &small_events {
        replayer.apply(event).expect("replay");
    }
    let db = replayer.db();
    let (dense_passes, dense_secs) = oracle_passes(db, true, 1.0);
    let (ref_passes, ref_secs) = oracle_passes(db, false, 1.0);
    let dense_pps = dense_passes as f64 / dense_secs.max(1e-9);
    let ref_pps = ref_passes as f64 / ref_secs.max(1e-9);
    println!("  dense:     {dense_pps:>12.1} passes/sec");
    println!("  reference: {ref_pps:>12.1} passes/sec");

    // --- Equivalence across seeds 0-9. ---
    println!("verifying dense == reference across small-config seeds 0-9...");
    let identical = check_bit_identical();
    println!("  bit-identical: {identical}");

    // --- Telemetry overhead: the observer tap must be free when off and
    // cheap when on. Three legs over the identical paper `MostGarbage`
    // replay loop: bare (no bus bystanders — what `.telemetry(Off)`
    // builds, since `Off` registers nothing), a second bare leg standing
    // in for the disabled path (pinning that "off" really is the same
    // code), and the loop with a `Full` `TelemetryObserver` on the bus.
    // Paired best-of-N passes, order rotating per pass; the within-pass
    // ratios cancel background load and the best ratio per gate wins.
    // Gates bind at full scale only: off >= 98% of bare, full >= 90%. ---
    println!("measuring telemetry overhead (off / full vs bare replay)...");
    const TELEMETRY_PASSES: usize = 5;
    let mut plain_secs = f64::INFINITY;
    let mut off_secs = f64::INFINITY;
    let mut full_secs = f64::INFINITY;
    let mut best_off_ratio = 0.0f64;
    let mut best_full_ratio = 0.0f64;
    let mut plain_victims: Option<Vec<PartitionId>> = None;
    let mut full_victims: Option<Vec<PartitionId>> = None;
    let mut telemetry_records = 0u64;
    let mut telemetry_activations = 0u64;
    for pass in 0..TELEMETRY_PASSES {
        let (mut p, mut o, mut f) = (0.0f64, 0.0f64, 0.0f64);
        let order = [[0usize, 1, 2], [1, 2, 0], [2, 0, 1]][pass % 3];
        for leg in order {
            let mut replayer = replayer_for(&paper, dense_policy(&paper));
            let handle = if leg == 2 {
                let (obs, handle) =
                    TelemetryObserver::new(TelemetryLevel::Full, paper.trigger_reason());
                replayer.collector_mut().add_observer(Box::new(obs));
                Some(handle)
            } else {
                None
            };
            let t0 = Instant::now();
            for event in &paper_events {
                replayer.apply(event).expect("telemetry-leg replay");
            }
            let secs = t0.elapsed().as_secs_f64();
            let victims: Vec<PartitionId> =
                replayer.collections().iter().map(|c| c.victim).collect();
            drop(replayer);
            match leg {
                0 => {
                    p = secs;
                    match &plain_victims {
                        Some(v) => assert_eq!(*v, victims, "bare replay determinism"),
                        None => plain_victims = Some(victims),
                    }
                }
                1 => o = secs,
                _ => {
                    f = secs;
                    match &full_victims {
                        Some(v) => assert_eq!(*v, victims, "tapped replay determinism"),
                        None => full_victims = Some(victims),
                    }
                    let snap = handle.expect("tapped leg keeps a handle").finish();
                    telemetry_records = snap.records.len() as u64;
                    telemetry_activations = snap.counters.activations;
                }
            }
        }
        // events/sec ratios reduce to wall-clock ratios over one event set.
        best_off_ratio = best_off_ratio.max(p / o.max(1e-9));
        best_full_ratio = best_full_ratio.max(p / f.max(1e-9));
        plain_secs = plain_secs.min(p);
        off_secs = off_secs.min(o);
        full_secs = full_secs.min(f);
    }
    // Two noise-shedding estimators, best of either: the paired per-pass
    // ratio (cancels load that slows a whole pass) and the min-time ratio
    // (sheds one-off stalls that hit a single leg). A 2% gate on a
    // ~100 ms sample needs both.
    best_off_ratio = best_off_ratio.max(plain_secs / off_secs.max(1e-9));
    best_full_ratio = best_full_ratio.max(plain_secs / full_secs.max(1e-9));
    // Non-perturbation at harness level: the victim sequence must not
    // depend on the tap, and the tap must have seen every activation.
    let telemetry_identical = plain_victims == full_victims
        && telemetry_activations == plain_victims.as_ref().map(Vec::len).unwrap_or(0) as u64
        && telemetry_records == telemetry_activations;
    let telemetry_gate_applies = args.scale_pct == 100;
    let off_gate_ok = !telemetry_gate_applies || best_off_ratio >= 0.98;
    let full_gate_ok = !telemetry_gate_applies || best_full_ratio >= 0.90;
    let telemetry_gate_ok = off_gate_ok && full_gate_ok;
    let paper_event_count = paper_events.len() as f64;
    println!(
        "  bare loop:      {plain_secs:>8.3}s  ({:.0} events/sec)",
        paper_event_count / plain_secs.max(1e-9)
    );
    println!(
        "  telemetry off:  {off_secs:>8.3}s  ({:.1}% of bare, gate 98%{})",
        best_off_ratio * 100.0,
        if telemetry_gate_applies {
            ""
        } else {
            ", not binding at this --scale"
        }
    );
    println!(
        "  telemetry full: {full_secs:>8.3}s  ({:.1}% of bare, gate 90%; {} activation records)",
        best_full_ratio * 100.0,
        telemetry_records
    );
    println!("  telemetry bit-identical: {telemetry_identical}");
    if !telemetry_gate_ok {
        eprintln!(
            "REGRESSION: telemetry overhead gate failed (off {:.1}%, full {:.1}%)",
            best_off_ratio * 100.0,
            best_full_ratio * 100.0
        );
    }
    if !telemetry_identical {
        eprintln!("MISMATCH: telemetry level changed simulated outcomes");
    }

    // --- Intra-run parallel hot path: one encoded paper trace replayed
    // three ways. Leg 0 is the pre-dense execution model — decode one
    // event at a time, apply it, answer every trigger with the hash-set
    // reference oracle. Leg 1 is the batched serial block loop (SoA decode
    // into a reused `EventBlock`, dense oracle). Leg 2 is the full
    // pipeline: a decode-ahead thread keeps blocks in flight while the
    // applier drains them, and every trigger runs the work-stealing
    // parallel oracle at `--intra-threads` workers. Paired best-of-N
    // passes, order rotating; the within-pass ratios cancel background
    // load and the best ratio per gate wins. Victim sequences must match
    // across legs and passes at any scale (the `Deterministic(n)`
    // bit-identity contract); the speedup gate binds at full scale. ---
    let intra = args.parallelism();
    println!(
        "measuring the intra-run parallel hot path ({} workers)...",
        intra.worker_count()
    );
    let paper_trace = EncodedTrace::record(paper.workload.clone()).expect("record paper trace");
    const PARALLEL_PASSES: usize = 3;
    let mut prepar_secs = f64::INFINITY;
    let mut serial_block_secs = f64::INFINITY;
    let mut parallel_secs = f64::INFINITY;
    let mut best_parallel_speedup = 0.0f64;
    let mut best_vs_serial_block = 0.0f64;
    let mut leg_victims: [Option<Vec<PartitionId>>; 3] = [None, None, None];
    for pass in 0..PARALLEL_PASSES {
        let (mut r, mut s, mut p) = (0.0f64, 0.0f64, 0.0f64);
        let order = [[0usize, 1, 2], [1, 2, 0], [2, 0, 1]][pass % 3];
        for leg in order {
            let mut replayer = match leg {
                0 => replayer_for(&paper, Box::new(ReferenceMostGarbage)),
                1 => mode_replayer(&paper, Parallelism::Serial),
                _ => mode_replayer(&paper, intra),
            };
            let t0 = Instant::now();
            if leg == 0 {
                let mut cursor = paper_trace.cursor();
                while let Some(event) = cursor.next_event().expect("decode paper trace") {
                    replayer.apply(&event).expect("pre-dense replay");
                }
            } else {
                let mode = if leg == 1 { Parallelism::Serial } else { intra };
                drive_encoded(&mut replayer, &paper_trace, mode).expect("block replay");
            }
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(
                replayer.events_applied(),
                paper_trace.events(),
                "every leg must apply the whole trace"
            );
            let victims: Vec<PartitionId> =
                replayer.collections().iter().map(|c| c.victim).collect();
            match &leg_victims[leg] {
                Some(v) => assert_eq!(*v, victims, "parallel-leg replay determinism"),
                None => leg_victims[leg] = Some(victims),
            }
            match leg {
                0 => r = secs,
                1 => s = secs,
                _ => p = secs,
            }
        }
        best_parallel_speedup = best_parallel_speedup.max(r / p.max(1e-9));
        best_vs_serial_block = best_vs_serial_block.max(s / p.max(1e-9));
        prepar_secs = prepar_secs.min(r);
        serial_block_secs = serial_block_secs.min(s);
        parallel_secs = parallel_secs.min(p);
    }
    // Same two noise-shedding estimators as the other paired gates.
    best_parallel_speedup = best_parallel_speedup.max(prepar_secs / parallel_secs.max(1e-9));
    best_vs_serial_block = best_vs_serial_block.max(serial_block_secs / parallel_secs.max(1e-9));
    let best_batched_speedup = prepar_secs / serial_block_secs.max(1e-9);
    let parallel_identical = leg_victims[0].is_some()
        && leg_victims[0] == leg_victims[1]
        && leg_victims[1] == leg_victims[2];
    let trace_events = paper_trace.events() as f64;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let batched_gate_applies = args.scale_pct == 100;
    // Wall-clock parallel speedup needs real cores to run the workers on;
    // on a machine with fewer cores than workers the threads time-slice
    // one CPU and only the (always-binding) bit-identity is meaningful.
    let parallel_gate_applies = batched_gate_applies && cores >= intra.worker_count();
    let batched_gate_ok = !batched_gate_applies || best_batched_speedup >= BATCHED_SPEEDUP_GATE;
    let parallel_gate_ok = (!parallel_gate_applies
        || best_parallel_speedup >= PARALLEL_SPEEDUP_GATE)
        && batched_gate_ok
        && parallel_identical;
    // A wall-clock gate that cannot bind records *why* in the artifact —
    // a skipped gate must be distinguishable from a passed one.
    let parallel_gate_status = if !parallel_identical {
        "failed (victim mismatch)"
    } else if !batched_gate_ok {
        "failed (batched leg below gate)"
    } else if !batched_gate_applies {
        "skipped (reduced scale)"
    } else if cores < intra.worker_count() {
        "skipped (insufficient cores)"
    } else if best_parallel_speedup >= PARALLEL_SPEEDUP_GATE {
        "passed"
    } else {
        "failed"
    };
    println!(
        "  pre-dense (per-event):   {prepar_secs:>8.3}s  ({:.0} events/sec)",
        trace_events / prepar_secs.max(1e-9)
    );
    println!(
        "  serial block loop:       {serial_block_secs:>8.3}s  ({:.0} events/sec)",
        trace_events / serial_block_secs.max(1e-9)
    );
    println!(
        "  parallel pipeline:       {parallel_secs:>8.3}s  ({:.0} events/sec)",
        trace_events / parallel_secs.max(1e-9)
    );
    println!(
        "  batched speedup:  {best_batched_speedup:.2}x vs pre-dense (gate {BATCHED_SPEEDUP_GATE:.1}x{})",
        if batched_gate_applies {
            ""
        } else {
            ", not binding at this --scale"
        }
    );
    println!(
        "  parallel speedup: {best_parallel_speedup:.2}x vs pre-dense (gate {PARALLEL_SPEEDUP_GATE:.1}x{}), {best_vs_serial_block:.2}x vs serial blocks",
        if parallel_gate_applies {
            ""
        } else if !batched_gate_applies {
            ", not binding at this --scale"
        } else {
            ", not binding: too few cores"
        }
    );
    println!(
        "  available cores: {cores} (workers: {})",
        intra.worker_count()
    );
    println!("  parallel gate status: {parallel_gate_status}");
    println!("  victims bit-identical across legs: {parallel_identical}");
    if !parallel_identical {
        eprintln!("MISMATCH: parallel execution changed the victim sequence");
    } else if !batched_gate_ok {
        eprintln!(
            "REGRESSION: batched speedup {best_batched_speedup:.2}x fell below the {BATCHED_SPEEDUP_GATE:.1}x gate"
        );
    } else if !parallel_gate_ok {
        eprintln!(
            "REGRESSION: parallel speedup {best_parallel_speedup:.2}x fell below the {PARALLEL_SPEEDUP_GATE:.1}x gate"
        );
    }

    // --- Server scalability: the same client streams on 1, 2, and 4
    // shards through pgc-server. Aggregate throughput should scale with
    // the fleet (wall-clock gate); every stream's outcome must be
    // bit-identical at every shard count and to a dedicated
    // single-`Simulation` run (always binding). ---
    println!("server scalability: {SERVER_STREAMS} streams on {SERVER_SHARD_COUNTS:?} shards...");
    let server_cfgs: Vec<(StreamId, RunConfig)> = (0..SERVER_STREAMS as u64)
        .map(|i| {
            let policy = PolicyKind::PAPER[i as usize % PolicyKind::PAPER.len()];
            let mut cfg = RunConfig::paper(policy, i + 1);
            cfg.workload.target_allocated = args.scale_bytes(cfg.workload.target_allocated);
            (StreamId(i), cfg)
        })
        .collect();
    let server_events: Vec<Vec<Event>> =
        server_cfgs.iter().map(|(_, cfg)| events_for(cfg)).collect();
    let total_server_events: u64 = server_events.iter().map(|e| e.len() as u64).sum();
    // Dedicated single-Simulation runs are the fidelity baseline; the
    // fleet must reproduce them bit for bit at every shard count.
    let dedicated: Vec<RunOutcome> = server_cfgs
        .iter()
        .zip(&server_events)
        .map(|((_, cfg), events)| {
            Simulation::builder(cfg)
                .events(events)
                .run()
                .expect("dedicated baseline run")
        })
        .collect();
    // Each stream's events encoded once and tiled into 4096-event
    // segments: the sweep rides the zero-copy data plane, so every
    // submitted batch is a refcount bump, not a clone.
    let server_segments: Vec<Vec<TraceSegment>> = server_cfgs
        .iter()
        .zip(&server_events)
        .map(|((_, cfg), events)| {
            let trace = Arc::new(EncodedTrace::from_events(cfg.workload.clone(), events));
            EncodedTrace::segments(&trace, 4096).expect("segment tiling")
        })
        .collect();
    let run_fleet = |shards: usize| {
        let t0 = Instant::now();
        let mut server = Server::start(ServerConfig::new(shards));
        for (stream, cfg) in &server_cfgs {
            server
                .open_stream(*stream, cfg.clone())
                .expect("open stream");
        }
        // Round-robin batches: the interleaving a real fleet would see.
        let mut cursors = [0usize; SERVER_STREAMS];
        loop {
            let mut any = false;
            for (i, (stream, _)) in server_cfgs.iter().enumerate() {
                let at = cursors[i];
                if at >= server_segments[i].len() {
                    continue;
                }
                server
                    .submit_segment(*stream, server_segments[i][at].clone())
                    .expect("submit");
                cursors[i] = at + 1;
                any = true;
            }
            if !any {
                break;
            }
        }
        let fleet = server.shutdown().expect("fleet shutdown");
        (t0.elapsed().as_secs_f64(), fleet.outcomes)
    };
    let mut server_secs = vec![f64::INFINITY; SERVER_SHARD_COUNTS.len()];
    let mut server_identical = true;
    for pass in 0..SERVER_PASSES {
        for step in 0..SERVER_SHARD_COUNTS.len() {
            let slot = (step + pass) % SERVER_SHARD_COUNTS.len();
            let shards = SERVER_SHARD_COUNTS[slot];
            let (secs, outcomes) = run_fleet(shards);
            server_secs[slot] = server_secs[slot].min(secs);
            // Outcomes come back sorted by stream id, and streams are
            // numbered 0..N, so they align with the baseline by index.
            for ((stream, outcome), baseline) in outcomes.iter().zip(&dedicated) {
                if outcome.totals != baseline.totals || outcome.collections != baseline.collections
                {
                    server_identical = false;
                    eprintln!(
                        "MISMATCH: stream {stream} diverged from its dedicated run on {shards} shard(s)"
                    );
                }
            }
        }
    }
    let server_eps: Vec<f64> = server_secs
        .iter()
        .map(|s| total_server_events as f64 / s.max(1e-9))
        .collect();
    let max_shards = *SERVER_SHARD_COUNTS.last().expect("non-empty sweep");
    let server_speedup = server_secs[0] / server_secs[SERVER_SHARD_COUNTS.len() - 1].max(1e-9);
    let server_gate_applies = args.scale_pct == 100 && cores >= max_shards;
    let server_gate_ok =
        (!server_gate_applies || server_speedup >= SERVER_SPEEDUP_GATE) && server_identical;
    let server_gate_status = if !server_identical {
        "failed (stream outcome mismatch)"
    } else if args.scale_pct != 100 {
        "skipped (reduced scale)"
    } else if cores < max_shards {
        "skipped (insufficient cores)"
    } else if server_speedup >= SERVER_SPEEDUP_GATE {
        "passed"
    } else {
        "failed"
    };
    for (i, shards) in SERVER_SHARD_COUNTS.iter().enumerate() {
        println!(
            "  {shards} shard(s): {:>8.3}s  ({:.0} events/sec aggregate)",
            server_secs[i], server_eps[i]
        );
    }
    println!(
        "  speedup at {max_shards} shards: {server_speedup:.2}x vs 1 shard (gate {SERVER_SPEEDUP_GATE:.1}x, status: {server_gate_status})"
    );
    println!("  per-stream outcomes bit-identical to dedicated runs: {server_identical}");
    if !server_gate_ok {
        eprintln!("REGRESSION: server scalability gate failed ({server_gate_status})");
    }

    // --- Ingest path: clone vs zero-copy segment submission over an
    // ingest-dominated workload. The streams are visit-heavy (a handful
    // of roots, then pure visits), so stepping is cheap and the bill is
    // moving events into the shards: the clone leg allocates and copies
    // an owned `Vec<Event>` per batch (the pre-ring cost shape), the
    // segment leg bumps a refcount on one shared encoded trace. Both legs
    // must agree bit for bit; the speedup gate binds only where the
    // producer has a core of its own. ---
    let ingest_events_per_stream = (INGEST_EVENTS_FULL * args.scale_pct as usize / 100).max(10_000);
    println!(
        "ingest path: {INGEST_STREAMS} streams x {ingest_events_per_stream} visit-heavy events on {INGEST_SHARDS} shards..."
    );
    const INGEST_ROOTS: u64 = 64;
    const INGEST_BATCH: usize = 4096;
    let ingest_events: Vec<Event> = (0..INGEST_ROOTS)
        .map(|i| Event::CreateRoot {
            node: NodeId(i),
            size: Bytes(128),
            slots: 2,
        })
        .chain(
            (0..ingest_events_per_stream as u64 - INGEST_ROOTS).map(|i| Event::Visit {
                node: NodeId(i % INGEST_ROOTS),
            }),
        )
        .collect();
    let ingest_cfg = RunConfig::small();
    let ingest_trace = Arc::new(EncodedTrace::from_events(
        ingest_cfg.workload.clone(),
        &ingest_events,
    ));
    let ingest_segments =
        EncodedTrace::segments(&ingest_trace, INGEST_BATCH as u64).expect("segment tiling");
    let ingest_streams: Vec<StreamId> = (0..INGEST_STREAMS as u64).map(StreamId).collect();
    // One leg: feed every stream the same visit-heavy events round-robin
    // through the chosen submit path, shut down, return time + outcomes.
    let run_ingest = |zero_copy: bool| {
        let t0 = Instant::now();
        let mut server = Server::start(ServerConfig::new(INGEST_SHARDS));
        for stream in &ingest_streams {
            server
                .open_stream(*stream, ingest_cfg.clone())
                .expect("open stream");
        }
        for (at, segment) in ingest_segments.iter().enumerate() {
            for stream in &ingest_streams {
                if zero_copy {
                    server
                        .submit_segment(*stream, segment.clone())
                        .expect("submit");
                } else {
                    let lo = at * INGEST_BATCH;
                    let hi = (lo + INGEST_BATCH).min(ingest_events.len());
                    server
                        .submit_owned(*stream, ingest_events[lo..hi].to_vec())
                        .expect("submit");
                }
            }
        }
        let fleet = server.shutdown().expect("fleet shutdown");
        (t0.elapsed().as_secs_f64(), fleet.outcomes)
    };
    let total_ingest_events = (ingest_events.len() * INGEST_STREAMS) as u64;
    let mut ingest_clone_secs = f64::INFINITY;
    let mut ingest_segment_secs = f64::INFINITY;
    let mut ingest_identical = true;
    let mut ingest_baseline: Option<Vec<(StreamId, RunOutcome)>> = None;
    for pass in 0..INGEST_PASSES {
        // Alternate leg order across passes so neither leg always runs
        // into a cold allocator or a warm cache.
        for leg in 0..2 {
            let zero_copy = (leg + pass) % 2 == 0;
            let (secs, outcomes) = run_ingest(zero_copy);
            if zero_copy {
                ingest_segment_secs = ingest_segment_secs.min(secs);
            } else {
                ingest_clone_secs = ingest_clone_secs.min(secs);
            }
            match &ingest_baseline {
                None => ingest_baseline = Some(outcomes),
                Some(first) => {
                    if first.iter().zip(&outcomes).any(|(a, b)| {
                        a.1.totals != b.1.totals || a.1.collections != b.1.collections
                    }) {
                        ingest_identical = false;
                        eprintln!("MISMATCH: ingest legs disagree on stream outcomes");
                    }
                }
            }
        }
    }
    let ingest_speedup = ingest_clone_secs / ingest_segment_secs.max(1e-9);
    let ingest_gate_applies = args.scale_pct == 100 && cores > INGEST_SHARDS;
    let ingest_gate_ok =
        (!ingest_gate_applies || ingest_speedup >= INGEST_SPEEDUP_GATE) && ingest_identical;
    let ingest_gate_status = if !ingest_identical {
        "failed (leg outcome mismatch)"
    } else if args.scale_pct != 100 {
        "skipped (reduced scale)"
    } else if cores <= INGEST_SHARDS {
        "skipped (insufficient cores)"
    } else if ingest_speedup >= INGEST_SPEEDUP_GATE {
        "passed"
    } else {
        "failed"
    };
    println!(
        "  clone path:   {ingest_clone_secs:>8.3}s  ({:.0} events/sec)",
        total_ingest_events as f64 / ingest_clone_secs.max(1e-9)
    );
    println!(
        "  segment path: {ingest_segment_secs:>8.3}s  ({:.0} events/sec)",
        total_ingest_events as f64 / ingest_segment_secs.max(1e-9)
    );
    println!(
        "  segment speedup: {ingest_speedup:.2}x vs clone (gate {INGEST_SPEEDUP_GATE:.1}x, status: {ingest_gate_status})"
    );
    println!("  legs bit-identical: {ingest_identical}");
    if !ingest_gate_ok {
        eprintln!("REGRESSION: ingest gate failed ({ingest_gate_status})");
    }

    // --- Storage backend: the durable write path must stay off the hot
    // path. Three legs over the identical paper `MostGarbage` replay
    // through the shard pump: bare (durability off), the append-only
    // change log (`LogOnly` — every input event written ahead of
    // application, fsync batched to safepoints), and full snapshots +
    // log. Paired best-of-N passes with the leg order rotating; the
    // within-pass ratios cancel background load and the best ratio wins.
    // The gate holds `LogOnly` to >= 90% of bare throughput, binding at
    // full scale only (a shrunk workload changes the event/safepoint
    // balance); victim sequences must match across legs at any scale.
    // Afterwards one more persisted run times `recover()` — the replay
    // side of the durability story — and pins the recovered digest. ---
    println!("measuring the storage backend (bare / log-only / snapshot+log)...");
    const STORAGE_PASSES: usize = 5;
    let storage_leg = |durability: DurabilityConfig| {
        let cfg = paper.clone().with_durability(durability);
        let mut shard = Shard::new(&cfg).expect("storage-leg shard");
        let t0 = Instant::now();
        shard.step_batch(&paper_events).expect("storage-leg replay");
        let out = shard
            .finish(GenStats::default())
            .expect("storage-leg finish");
        let secs = t0.elapsed().as_secs_f64();
        let victims: Vec<PartitionId> = out.collections.iter().map(|c| c.victim).collect();
        (secs, victims, out)
    };
    let mut storage_bare_secs = f64::INFINITY;
    let mut storage_log_secs = f64::INFINITY;
    let mut storage_snap_secs = f64::INFINITY;
    let mut best_log_ratio = 0.0f64;
    let mut best_snap_ratio = 0.0f64;
    let mut storage_victims: [Option<Vec<PartitionId>>; 3] = [None, None, None];
    for pass in 0..STORAGE_PASSES {
        let (mut b, mut l, mut s) = (0.0f64, 0.0f64, 0.0f64);
        let order = [[0usize, 1, 2], [1, 2, 0], [2, 0, 1]][pass % 3];
        for leg in order {
            // Fresh scratch dir per durable leg: a data dir is single-use.
            let scratch = ScratchDir::new("bench-storage");
            let (secs, victims, _) = match leg {
                0 => storage_leg(DurabilityConfig::off()),
                1 => storage_leg(DurabilityConfig::log_only(scratch.path())),
                _ => storage_leg(DurabilityConfig::snapshot_and_log(scratch.path())),
            };
            match leg {
                0 => b = secs,
                1 => l = secs,
                _ => s = secs,
            }
            match &storage_victims[leg] {
                Some(v) => assert_eq!(*v, victims, "storage-leg replay determinism"),
                None => storage_victims[leg] = Some(victims),
            }
        }
        best_log_ratio = best_log_ratio.max(b / l.max(1e-9));
        best_snap_ratio = best_snap_ratio.max(b / s.max(1e-9));
        storage_bare_secs = storage_bare_secs.min(b);
        storage_log_secs = storage_log_secs.min(l);
        storage_snap_secs = storage_snap_secs.min(s);
    }
    // Same two noise-shedding estimators as the telemetry gate.
    best_log_ratio = best_log_ratio.max(storage_bare_secs / storage_log_secs.max(1e-9));
    best_snap_ratio = best_snap_ratio.max(storage_bare_secs / storage_snap_secs.max(1e-9));
    let storage_identical = storage_victims[0].is_some()
        && storage_victims[0] == storage_victims[1]
        && storage_victims[1] == storage_victims[2];
    let storage_gate_applies = args.scale_pct == 100;
    let storage_gate_ok = (!storage_gate_applies || best_log_ratio >= 0.90) && storage_identical;
    // Recovery replay speed: persist once more, then rebuild the run from
    // the directory alone and pin the digest.
    let recovery_scratch = ScratchDir::new("bench-recover");
    let (_, _, persisted) =
        storage_leg(DurabilityConfig::snapshot_and_log(recovery_scratch.path()));
    let t0 = Instant::now();
    let recovered = recover(recovery_scratch.path()).expect("recover persisted bench run");
    let recovery_secs = t0.elapsed().as_secs_f64();
    let recovery_eps = recovered.events_replayed as f64 / recovery_secs.max(1e-9);
    let recovery_digest_match = outcome_digest(&recovered.outcome) == outcome_digest(&persisted);
    drop(recovery_scratch);
    let storage_gate_ok = storage_gate_ok && recovery_digest_match;
    let storage_gate_status = if !storage_identical {
        "failed (victim mismatch)"
    } else if !recovery_digest_match {
        "failed (recovery digest mismatch)"
    } else if !storage_gate_applies {
        "skipped (reduced scale)"
    } else if best_log_ratio >= 0.90 {
        "passed"
    } else {
        "failed"
    };
    println!(
        "  bare:          {storage_bare_secs:>8.3}s  ({:.0} events/sec)",
        paper_event_count / storage_bare_secs.max(1e-9)
    );
    println!(
        "  log-only:      {storage_log_secs:>8.3}s  ({:.1}% of bare, gate 90%{})",
        best_log_ratio * 100.0,
        if storage_gate_applies {
            ""
        } else {
            ", not binding at this --scale"
        }
    );
    println!(
        "  snapshot+log:  {storage_snap_secs:>8.3}s  ({:.1}% of bare)",
        best_snap_ratio * 100.0
    );
    println!(
        "  recovery:      {recovery_secs:>8.3}s  ({recovery_eps:.0} events/sec replayed, {} snapshots verified, digest match: {recovery_digest_match})",
        recovered.snapshots_verified
    );
    println!("  storage gate status: {storage_gate_status}");
    println!("  victims bit-identical across legs: {storage_identical}");
    if !storage_gate_ok {
        eprintln!("REGRESSION: storage backend gate failed ({storage_gate_status})");
    }

    let rss = peak_rss_kib();

    // --- Emit JSON (hand-rolled; the workspace has no serde). ---
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"perf_report\",");
    let _ = writeln!(json, "  \"scale_pct\": {},", args.scale_pct);
    let _ = writeln!(json, "  \"peak_rss_kib\": {rss},");
    let _ = writeln!(json, "  \"bit_identical_seeds_0_9\": {identical},");
    let _ = writeln!(
        json,
        "  \"baseline_kind\": \"{}\",",
        json_escape(baseline_kind)
    );
    let _ = writeln!(
        json,
        "  \"mostgarbage_paper_speedup_vs_baseline\": {replay_speedup:.3},"
    );
    if let Some(b) = &recorded {
        let _ = writeln!(json, "  \"pre_change_baseline\": {},", b.raw);
    }
    let _ = writeln!(json, "  \"bus_overhead\": {{");
    let _ = writeln!(
        json,
        "    \"pre_bus_paper_mostgarbage_events_per_sec\": {PRE_BUS_PAPER_MOSTGARBAGE_EPS:.1},"
    );
    let _ = writeln!(
        json,
        "    \"paper_mostgarbage_events_per_sec\": {dense_paper_eps:.1},"
    );
    let _ = writeln!(json, "    \"ratio\": {bus_ratio:.3},");
    let _ = writeln!(json, "    \"within_10pct\": {bus_within_10pct}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"oracle\": {{");
    let _ = writeln!(json, "    \"dense_passes_per_sec\": {dense_pps:.1},");
    let _ = writeln!(json, "    \"reference_passes_per_sec\": {ref_pps:.1},");
    let _ = writeln!(
        json,
        "    \"speedup\": {:.3}",
        dense_pps / ref_pps.max(1e-9)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replay\": [");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"policy\": \"{}\", \"impl\": \"{}\", \"events\": {}, \"secs\": {:.4}, \"events_per_sec\": {:.1}}}{}",
            row.config,
            json_escape(&row.policy),
            row.implementation,
            row.events,
            row.secs,
            row.events_per_sec(),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let out = args
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_hotpath.json"));
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {}", out.display());

    // --- BENCH_experiment.json: the shared-trace engine sweep. ---
    let mut ejson = String::from("{\n");
    let _ = writeln!(ejson, "  \"harness\": \"perf_report/experiment_sweep\",");
    let _ = writeln!(ejson, "  \"scale_pct\": {},", args.scale_pct);
    let _ = writeln!(ejson, "  \"threads\": {threads},");
    let _ = writeln!(ejson, "  \"policies\": {},", sweep_policies.len());
    let _ = writeln!(ejson, "  \"seeds\": {},", sweep_seeds.len());
    let _ = writeln!(ejson, "  \"jobs\": {},", per_job.len());
    let _ = writeln!(ejson, "  \"events_replayed\": {sweep_events},");
    let _ = writeln!(ejson, "  \"per_job_sweep_secs\": {per_job_secs:.4},");
    let _ = writeln!(ejson, "  \"engine_record_secs\": {record_secs:.4},");
    let _ = writeln!(ejson, "  \"engine_replay_secs\": {replay_secs:.4},");
    let _ = writeln!(ejson, "  \"engine_sweep_secs\": {engine_secs:.4},");
    let _ = writeln!(
        ejson,
        "  \"per_job_events_per_sec\": {:.1},",
        sweep_events as f64 / per_job_secs.max(1e-9)
    );
    let _ = writeln!(
        ejson,
        "  \"engine_events_per_sec\": {:.1},",
        sweep_events as f64 / engine_secs.max(1e-9)
    );
    let _ = writeln!(ejson, "  \"sweep_speedup\": {sweep_speedup:.3},");
    let _ = writeln!(
        ejson,
        "  \"recorded_sweep_speedup\": {RECORDED_SWEEP_SPEEDUP:.3},"
    );
    let _ = writeln!(ejson, "  \"gate_speedup\": {sweep_gate:.3},");
    let _ = writeln!(ejson, "  \"gate_applies\": {sweep_gate_applies},");
    let _ = writeln!(ejson, "  \"gate_ok\": {sweep_gate_ok},");
    let _ = writeln!(
        ejson,
        "  \"generator_share_of_per_job_sweep\": {generator_share:.3},"
    );
    let _ = writeln!(ejson, "  \"bit_identical\": {sweep_identical}");
    ejson.push_str("}\n");
    std::fs::write("BENCH_experiment.json", &ejson).expect("write experiment report");
    println!("wrote BENCH_experiment.json");

    // --- BENCH_policy.json: the derive-layer policy-engine gate. ---
    let mut pjson = String::from("{\n");
    let _ = writeln!(pjson, "  \"harness\": \"perf_report/policy_engine\",");
    let _ = writeln!(pjson, "  \"scale_pct\": {},", args.scale_pct);
    let _ = writeln!(pjson, "  \"config\": \"paper\",");
    let _ = writeln!(pjson, "  \"policy\": \"UpdatedPointer\",");
    let _ = writeln!(pjson, "  \"events\": {},", paper_events.len());
    let _ = writeln!(
        pjson,
        "  \"recorded_pre_derive_events_per_sec\": {PRE_DERIVE_PAPER_UPDATEDPOINTER_EPS:.1},"
    );
    let _ = writeln!(
        pjson,
        "  \"hand_rolled_events_per_sec\": {hand_rolled_eps:.1},"
    );
    let _ = writeln!(
        pjson,
        "  \"derived_events_per_sec\": {policy_engine_eps:.1},"
    );
    let _ = writeln!(pjson, "  \"throughput_ratio\": {best_policy_ratio:.4},");
    let _ = writeln!(pjson, "  \"gate_ratio\": 0.95,");
    let _ = writeln!(pjson, "  \"gate_applies\": {policy_gate_applies},");
    let _ = writeln!(pjson, "  \"gate_ok\": {policy_gate_ok},");
    let _ = writeln!(pjson, "  \"bit_identical\": {policy_identical},");
    let _ = writeln!(pjson, "  \"memo\": {{");
    let _ = writeln!(pjson, "    \"inputs\": {},", derive_stats.inputs);
    let _ = writeln!(pjson, "    \"queries\": {},", derive_stats.queries);
    let _ = writeln!(pjson, "    \"revision\": {},", derive_stats.revision);
    let _ = writeln!(pjson, "    \"selections\": {},", derive_stats.selections());
    let _ = writeln!(pjson, "    \"hits\": {},", derive_stats.hits);
    let _ = writeln!(pjson, "    \"partial\": {},", derive_stats.partial);
    let _ = writeln!(pjson, "    \"full\": {},", derive_stats.full);
    let _ = writeln!(pjson, "    \"hit_rate\": {memo_hit_rate:.4}");
    let _ = writeln!(pjson, "  }},");
    let _ = writeln!(pjson, "  \"new_policies\": [");
    for (i, (name, eps)) in new_policy_rows.iter().enumerate() {
        let _ = writeln!(
            pjson,
            "    {{\"policy\": \"{name}\", \"events_per_sec\": {eps:.1}}}{}",
            if i + 1 == new_policy_rows.len() {
                ""
            } else {
                ","
            }
        );
    }
    let _ = writeln!(pjson, "  ]");
    pjson.push_str("}\n");
    std::fs::write("BENCH_policy.json", &pjson).expect("write policy report");
    println!("wrote BENCH_policy.json");

    // --- BENCH_telemetry.json: the observer-tap overhead gate. ---
    let mut tjson = String::from("{\n");
    let _ = writeln!(tjson, "  \"harness\": \"perf_report/telemetry_overhead\",");
    let _ = writeln!(tjson, "  \"scale_pct\": {},", args.scale_pct);
    let _ = writeln!(tjson, "  \"events\": {},", paper_events.len());
    let _ = writeln!(tjson, "  \"bare_replay_secs\": {plain_secs:.4},");
    let _ = writeln!(tjson, "  \"telemetry_off_secs\": {off_secs:.4},");
    let _ = writeln!(tjson, "  \"telemetry_full_secs\": {full_secs:.4},");
    let _ = writeln!(
        tjson,
        "  \"bare_events_per_sec\": {:.1},",
        paper_event_count / plain_secs.max(1e-9)
    );
    let _ = writeln!(tjson, "  \"off_throughput_ratio\": {best_off_ratio:.4},");
    let _ = writeln!(tjson, "  \"full_throughput_ratio\": {best_full_ratio:.4},");
    let _ = writeln!(tjson, "  \"off_gate_ratio\": 0.98,");
    let _ = writeln!(tjson, "  \"full_gate_ratio\": 0.90,");
    let _ = writeln!(tjson, "  \"gate_applies\": {telemetry_gate_applies},");
    let _ = writeln!(tjson, "  \"off_gate_ok\": {off_gate_ok},");
    let _ = writeln!(tjson, "  \"full_gate_ok\": {full_gate_ok},");
    let _ = writeln!(tjson, "  \"activation_records\": {telemetry_records},");
    let _ = writeln!(tjson, "  \"bit_identical\": {telemetry_identical}");
    tjson.push_str("}\n");
    std::fs::write("BENCH_telemetry.json", &tjson).expect("write telemetry report");
    println!("wrote BENCH_telemetry.json");

    // --- BENCH_parallel.json: the intra-run parallel hot-path gate. ---
    let mut pljson = String::from("{\n");
    let _ = writeln!(pljson, "  \"harness\": \"perf_report/parallel_hotpath\",");
    let _ = writeln!(pljson, "  \"scale_pct\": {},", args.scale_pct);
    let _ = writeln!(pljson, "  \"config\": \"paper\",");
    let _ = writeln!(pljson, "  \"policy\": \"MostGarbage\",");
    let _ = writeln!(pljson, "  \"intra_threads\": {},", intra.worker_count());
    let _ = writeln!(pljson, "  \"available_cores\": {cores},");
    let _ = writeln!(pljson, "  \"events\": {},", paper_trace.events());
    let _ = writeln!(pljson, "  \"trace_bytes\": {},", paper_trace.byte_len());
    let _ = writeln!(pljson, "  \"pre_dense_secs\": {prepar_secs:.4},");
    let _ = writeln!(pljson, "  \"serial_block_secs\": {serial_block_secs:.4},");
    let _ = writeln!(pljson, "  \"parallel_secs\": {parallel_secs:.4},");
    let _ = writeln!(
        pljson,
        "  \"pre_dense_events_per_sec\": {:.1},",
        trace_events / prepar_secs.max(1e-9)
    );
    let _ = writeln!(
        pljson,
        "  \"serial_block_events_per_sec\": {:.1},",
        trace_events / serial_block_secs.max(1e-9)
    );
    let _ = writeln!(
        pljson,
        "  \"parallel_events_per_sec\": {:.1},",
        trace_events / parallel_secs.max(1e-9)
    );
    let _ = writeln!(
        pljson,
        "  \"batched_speedup_vs_pre_dense\": {best_batched_speedup:.3},"
    );
    let _ = writeln!(
        pljson,
        "  \"speedup_vs_pre_dense\": {best_parallel_speedup:.3},"
    );
    let _ = writeln!(
        pljson,
        "  \"speedup_vs_serial_block\": {best_vs_serial_block:.3},"
    );
    let _ = writeln!(
        pljson,
        "  \"batched_gate_speedup\": {BATCHED_SPEEDUP_GATE:.3},"
    );
    let _ = writeln!(
        pljson,
        "  \"batched_gate_applies\": {batched_gate_applies},"
    );
    let _ = writeln!(pljson, "  \"batched_gate_ok\": {batched_gate_ok},");
    let _ = writeln!(pljson, "  \"gate_speedup\": {PARALLEL_SPEEDUP_GATE:.3},");
    let _ = writeln!(pljson, "  \"gate_applies\": {parallel_gate_applies},");
    let _ = writeln!(pljson, "  \"gate_status\": \"{parallel_gate_status}\",");
    let _ = writeln!(pljson, "  \"gate_ok\": {parallel_gate_ok},");
    let _ = writeln!(pljson, "  \"bit_identical\": {parallel_identical}");
    pljson.push_str("}\n");
    std::fs::write("BENCH_parallel.json", &pljson).expect("write parallel report");
    println!("wrote BENCH_parallel.json");

    // --- BENCH_server.json: the sharded-runtime scalability gate. ---
    let join = |vals: &[String]| vals.join(", ");
    let mut sjson = String::from("{\n");
    let _ = writeln!(sjson, "  \"harness\": \"perf_report/server_scalability\",");
    let _ = writeln!(sjson, "  \"scale_pct\": {},", args.scale_pct);
    let _ = writeln!(sjson, "  \"streams\": {SERVER_STREAMS},");
    let _ = writeln!(sjson, "  \"events\": {total_server_events},");
    let _ = writeln!(sjson, "  \"available_cores\": {cores},");
    let _ = writeln!(
        sjson,
        "  \"shard_counts\": [{}],",
        join(&SERVER_SHARD_COUNTS.map(|s| s.to_string()))
    );
    let _ = writeln!(
        sjson,
        "  \"secs\": [{}],",
        join(
            &server_secs
                .iter()
                .map(|s| format!("{s:.4}"))
                .collect::<Vec<_>>()
        )
    );
    let _ = writeln!(
        sjson,
        "  \"events_per_sec\": [{}],",
        join(
            &server_eps
                .iter()
                .map(|e| format!("{e:.1}"))
                .collect::<Vec<_>>()
        )
    );
    let _ = writeln!(sjson, "  \"speedup_at_max_shards\": {server_speedup:.3},");
    let _ = writeln!(sjson, "  \"gate_speedup\": {SERVER_SPEEDUP_GATE:.3},");
    let _ = writeln!(sjson, "  \"gate_applies\": {server_gate_applies},");
    let _ = writeln!(sjson, "  \"gate_status\": \"{server_gate_status}\",");
    let _ = writeln!(sjson, "  \"gate_ok\": {server_gate_ok},");
    let _ = writeln!(sjson, "  \"bit_identical\": {server_identical},");
    let _ = writeln!(sjson, "  \"ingest\": {{");
    let _ = writeln!(sjson, "    \"streams\": {INGEST_STREAMS},");
    let _ = writeln!(sjson, "    \"shards\": {INGEST_SHARDS},");
    let _ = writeln!(sjson, "    \"events\": {total_ingest_events},");
    let _ = writeln!(sjson, "    \"clone_secs\": {ingest_clone_secs:.4},");
    let _ = writeln!(sjson, "    \"segment_secs\": {ingest_segment_secs:.4},");
    let _ = writeln!(
        sjson,
        "    \"clone_events_per_sec\": {:.1},",
        total_ingest_events as f64 / ingest_clone_secs.max(1e-9)
    );
    let _ = writeln!(
        sjson,
        "    \"segment_events_per_sec\": {:.1},",
        total_ingest_events as f64 / ingest_segment_secs.max(1e-9)
    );
    let _ = writeln!(sjson, "    \"segment_speedup\": {ingest_speedup:.3},");
    let _ = writeln!(sjson, "    \"gate_speedup\": {INGEST_SPEEDUP_GATE:.3},");
    let _ = writeln!(sjson, "    \"gate_applies\": {ingest_gate_applies},");
    let _ = writeln!(sjson, "    \"gate_status\": \"{ingest_gate_status}\",");
    let _ = writeln!(sjson, "    \"gate_ok\": {ingest_gate_ok},");
    let _ = writeln!(sjson, "    \"bit_identical\": {ingest_identical}");
    let _ = writeln!(sjson, "  }}");
    sjson.push_str("}\n");
    std::fs::write("BENCH_server.json", &sjson).expect("write server report");
    println!("wrote BENCH_server.json");

    // --- BENCH_storage.json: the durable-backend overhead gate. ---
    let mut stjson = String::from("{\n");
    let _ = writeln!(stjson, "  \"harness\": \"perf_report/storage_backend\",");
    let _ = writeln!(stjson, "  \"scale_pct\": {},", args.scale_pct);
    let _ = writeln!(stjson, "  \"config\": \"paper\",");
    let _ = writeln!(stjson, "  \"policy\": \"MostGarbage\",");
    let _ = writeln!(stjson, "  \"events\": {},", paper_events.len());
    let _ = writeln!(stjson, "  \"bare_secs\": {storage_bare_secs:.4},");
    let _ = writeln!(stjson, "  \"log_only_secs\": {storage_log_secs:.4},");
    let _ = writeln!(
        stjson,
        "  \"snapshot_and_log_secs\": {storage_snap_secs:.4},"
    );
    let _ = writeln!(
        stjson,
        "  \"bare_events_per_sec\": {:.1},",
        paper_event_count / storage_bare_secs.max(1e-9)
    );
    let _ = writeln!(
        stjson,
        "  \"log_only_events_per_sec\": {:.1},",
        paper_event_count / storage_log_secs.max(1e-9)
    );
    let _ = writeln!(
        stjson,
        "  \"snapshot_and_log_events_per_sec\": {:.1},",
        paper_event_count / storage_snap_secs.max(1e-9)
    );
    let _ = writeln!(
        stjson,
        "  \"log_only_throughput_ratio\": {best_log_ratio:.4},"
    );
    let _ = writeln!(
        stjson,
        "  \"snapshot_and_log_throughput_ratio\": {best_snap_ratio:.4},"
    );
    let _ = writeln!(stjson, "  \"gate_ratio\": 0.90,");
    let _ = writeln!(stjson, "  \"gate_applies\": {storage_gate_applies},");
    let _ = writeln!(stjson, "  \"gate_status\": \"{storage_gate_status}\",");
    let _ = writeln!(stjson, "  \"gate_ok\": {storage_gate_ok},");
    let _ = writeln!(stjson, "  \"bit_identical\": {storage_identical},");
    let _ = writeln!(stjson, "  \"recovery\": {{");
    let _ = writeln!(
        stjson,
        "    \"events_replayed\": {},",
        recovered.events_replayed
    );
    let _ = writeln!(stjson, "    \"secs\": {recovery_secs:.4},");
    let _ = writeln!(stjson, "    \"events_per_sec\": {recovery_eps:.1},");
    let _ = writeln!(stjson, "    \"safepoints\": {},", recovered.safepoints);
    let _ = writeln!(
        stjson,
        "    \"snapshots_verified\": {},",
        recovered.snapshots_verified
    );
    let _ = writeln!(stjson, "    \"digest_match\": {recovery_digest_match}");
    let _ = writeln!(stjson, "  }}");
    stjson.push_str("}\n");
    std::fs::write("BENCH_storage.json", &stjson).expect("write storage report");
    println!("wrote BENCH_storage.json");

    if !identical
        || !sweep_identical
        || !sweep_gate_ok
        || !policy_gate_ok
        || !telemetry_gate_ok
        || !telemetry_identical
        || !parallel_gate_ok
        || !server_gate_ok
        || !ingest_gate_ok
        || !storage_gate_ok
    {
        std::process::exit(1);
    }
}
