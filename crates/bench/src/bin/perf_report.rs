//! Performance-regression harness for the dense-id hot paths.
//!
//! Replays fixed-seed workloads through the simulator and reports, in
//! `BENCH_hotpath.json`:
//!
//! * **events/sec** of the full replay loop per policy, on the paper
//!   configuration and the small configuration;
//! * the same replay with the pre-dense **baseline** (`MostGarbage`
//!   backed by the retained hash-set oracle, `oracle::reference`), so the
//!   speedup and the baseline it is measured against live in one file;
//! * **oracle passes/sec** for the dense and reference analyses over an
//!   identical database state;
//! * a **peak-RSS proxy** (`VmHWM` from `/proc/self/status`);
//! * a **bit-identical check**: for seeds 0–9 on the small configuration,
//!   the dense-oracle `MostGarbage` run and the reference-oracle run must
//!   produce equal `RunTotals` — the dense structures change no simulated
//!   outcome, only wall-clock time.
//!
//! Usage: `cargo run --release --bin perf_report` (or `just bench-report`).
//! `--scale PCT` shrinks the paper workload for quick runs.

use pgc_bench::CommonArgs;
use pgc_core::policy::{fallback_victim, PolicyKind, SelectionPolicy};
use pgc_core::{build_policy, Collector};
use pgc_odb::oracle::{self, OracleScratch};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_sim::{Replayer, RunConfig};
use pgc_types::PartitionId;
use pgc_workload::{Event, SyntheticWorkload};
use std::fmt::Write as _;
use std::time::Instant;

/// Paper-config `MostGarbage` events/sec recorded before the barrier event
/// bus landed (the dense-ID PR's `BENCH_hotpath.json`). The bus adds an
/// enum-dispatch hop to every mutation, so this is the yardstick the
/// `bus_overhead` section measures against: staying within 10% means the
/// typed event stream is effectively free on the hot path.
const PRE_BUS_PAPER_MOSTGARBAGE_EPS: f64 = 4_990_198.0;

/// The pre-dense `MostGarbage`: identical selection rule, hash-set oracle.
struct ReferenceMostGarbage;

impl BarrierObserver for ReferenceMostGarbage {
    fn on_event(&mut self, _event: &BarrierEvent) {}
}

impl SelectionPolicy for ReferenceMostGarbage {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MostGarbage
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        let report = oracle::reference::analyze(db);
        report
            .most_garbage_partition(db.empty_partition())
            .or_else(|| fallback_victim(db))
    }

    fn name(&self) -> &'static str {
        "MostGarbage(reference)"
    }
}

/// Builds a fresh policy instance for each timed pass.
type PolicyFactory<'a> = &'a dyn Fn() -> Box<dyn SelectionPolicy>;

/// One measured replay.
struct ReplayRow {
    config: &'static str,
    policy: String,
    implementation: &'static str,
    events: u64,
    secs: f64,
}

impl ReplayRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs.max(1e-9)
    }
}

fn events_for(cfg: &RunConfig) -> Vec<Event> {
    SyntheticWorkload::new(cfg.workload.clone())
        .expect("workload params")
        .collect()
}

/// Builds the policy exactly as `Simulation` does (same decorrelated
/// policy seed, same weight cap), so replays here match `compare_policies`.
fn dense_policy(cfg: &RunConfig) -> Box<dyn SelectionPolicy> {
    build_policy(cfg.policy, cfg.policy_seed(), cfg.db.max_weight)
}

fn replayer_for(cfg: &RunConfig, policy: Box<dyn SelectionPolicy>) -> Replayer {
    let db = Database::new(cfg.db.clone()).expect("db config");
    let collector =
        Collector::with_trigger(policy, cfg.effective_trigger()).with_batch(cfg.collect_batch);
    Replayer::new(db, collector)
}

/// Replays `events` under `policy`, returning the timed row and totals
/// (events applied + collections, used for cross-checking runs).
///
/// Best-of-3: each pass rebuilds the replayer from scratch and the fastest
/// wall time wins — the max-throughput estimator sheds scheduler noise that
/// a single ~100 ms sample cannot (and that would flap the `bus_overhead`
/// within-10% gate). Repeats double as a determinism check: every pass must
/// apply the same events and perform the same collections.
fn timed_replay(
    config: &'static str,
    cfg: &RunConfig,
    events: &[Event],
    policy: PolicyFactory<'_>,
    implementation: &'static str,
) -> (ReplayRow, u64) {
    const PASSES: usize = 3;
    let mut label = String::new();
    let mut best: Option<(f64, u64, u64)> = None;
    for _ in 0..PASSES {
        let policy = policy();
        label = policy.name().to_string();
        let mut replayer = replayer_for(cfg, policy);
        let t0 = Instant::now();
        for event in events {
            replayer.apply(event).expect("replay");
        }
        let secs = t0.elapsed().as_secs_f64();
        let applied = replayer.events_applied();
        let collections = replayer.collections().len() as u64;
        match best {
            Some((best_secs, best_applied, best_collections)) => {
                assert_eq!(
                    (applied, collections),
                    (best_applied, best_collections),
                    "replay passes must be deterministic"
                );
                if secs < best_secs {
                    best = Some((secs, applied, collections));
                }
            }
            None => best = Some((secs, applied, collections)),
        }
    }
    let (secs, applied, collections) = best.expect("at least one pass");
    (
        ReplayRow {
            config,
            policy: label,
            implementation,
            events: applied,
            secs,
        },
        collections,
    )
}

/// Peak resident set size in KiB (`VmHWM`), or 0 where unavailable.
fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|v| v.split_whitespace().next().and_then(|n| n.parse().ok()))
            })
        })
        .unwrap_or(0)
}

/// For seeds 0–9 on the small config, dense and reference `MostGarbage`
/// must be observationally identical: equal totals, equal final oracle
/// reports.
fn check_bit_identical() -> bool {
    for seed in 0..10u64 {
        let cfg = RunConfig::small()
            .with_policy(PolicyKind::MostGarbage)
            .with_seed(seed);
        let events = events_for(&cfg);

        let mut dense = replayer_for(&cfg, dense_policy(&cfg));
        let mut reference = replayer_for(&cfg, Box::new(ReferenceMostGarbage));
        for event in &events {
            dense.apply(event).expect("dense replay");
            reference.apply(event).expect("reference replay");
        }
        let dense_report = oracle::analyze(dense.db());
        let reference_report = oracle::reference::analyze(reference.db());
        if dense_report != reference_report
            || dense.db().stats() != reference.db().stats()
            || dense.db().io_stats() != reference.db().io_stats()
            || dense.collections().len() != reference.collections().len()
        {
            eprintln!("MISMATCH: seed {seed} diverged between dense and reference");
            return false;
        }
    }
    true
}

/// Measures repeated full-database oracle passes over one built state.
fn oracle_passes(db: &Database, dense: bool, budget_secs: f64) -> (u64, f64) {
    let mut scratch = OracleScratch::new();
    let mut passes = 0u64;
    let t0 = Instant::now();
    loop {
        if dense {
            std::hint::black_box(oracle::analyze_with(db, &mut scratch));
        } else {
            std::hint::black_box(oracle::reference::analyze(db));
        }
        passes += 1;
        if t0.elapsed().as_secs_f64() >= budget_secs && passes >= 3 {
            break;
        }
    }
    (passes, t0.elapsed().as_secs_f64())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The pre-change baseline recorded by `perf_baseline` (see the
/// `bench-baseline` recipe in the justfile), if one has been captured.
struct RecordedBaseline {
    raw: String,
    paper_mostgarbage_eps: f64,
}

fn read_recorded_baseline() -> Option<RecordedBaseline> {
    let raw = std::fs::read_to_string("BENCH_baseline.json").ok()?;
    let key = "\"paper_mostgarbage_events_per_sec\":";
    let rest = &raw[raw.find(key)? + key.len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    let paper_mostgarbage_eps = num.parse().ok()?;
    Some(RecordedBaseline {
        raw: raw.trim_end().to_string(),
        paper_mostgarbage_eps,
    })
}

fn main() {
    let args = CommonArgs::parse();
    let mut rows: Vec<ReplayRow> = Vec::new();

    // --- Small configuration: every paper policy, dense structures. ---
    println!("replaying small configuration (seed 1) per policy...");
    let small = RunConfig::small().with_seed(1);
    let small_events = events_for(&small);
    for kind in PolicyKind::PAPER {
        let cfg = small.clone().with_policy(kind);
        let (row, _) = timed_replay(
            "small",
            &cfg,
            &small_events,
            &|| dense_policy(&cfg),
            "dense",
        );
        println!(
            "  {:<24} {:>12.0} events/sec",
            row.policy,
            row.events_per_sec()
        );
        rows.push(row);
    }
    let (row, _) = timed_replay(
        "small",
        &small.clone().with_policy(PolicyKind::MostGarbage),
        &small_events,
        &|| Box::new(ReferenceMostGarbage),
        "reference-baseline",
    );
    println!(
        "  {:<24} {:>12.0} events/sec",
        row.policy,
        row.events_per_sec()
    );
    rows.push(row);

    // --- Paper configuration: the MostGarbage hot path, dense vs the
    // recorded reference baseline, plus one implementable policy for
    // context. `--scale` shrinks the allocation target for quick runs. ---
    println!("replaying paper configuration (seed 1)...");
    let mut paper = RunConfig::paper(PolicyKind::MostGarbage, 1);
    paper.workload.target_allocated = args.scale_bytes(paper.workload.target_allocated);
    let paper_events = events_for(&paper);
    let mut paper_pairs: Vec<(&'static str, f64)> = Vec::new();
    let factories: [(&'static str, PolicyFactory<'_>); 2] = [
        ("dense", &|| dense_policy(&paper)),
        ("reference-baseline", &|| Box::new(ReferenceMostGarbage)),
    ];
    for (implementation, policy) in factories {
        let (row, collections) =
            timed_replay("paper", &paper, &paper_events, policy, implementation);
        println!(
            "  {:<24} {:>12.0} events/sec  ({} collections)",
            format!("{} [{}]", row.policy, row.implementation),
            row.events_per_sec(),
            collections
        );
        paper_pairs.push((implementation, row.events_per_sec()));
        rows.push(row);
    }
    let up_cfg = paper.clone().with_policy(PolicyKind::UpdatedPointer);
    let (row, _) = timed_replay(
        "paper",
        &up_cfg,
        &paper_events,
        &|| dense_policy(&up_cfg),
        "dense",
    );
    println!(
        "  {:<24} {:>12.0} events/sec",
        row.policy,
        row.events_per_sec()
    );
    rows.push(row);

    let dense_paper_eps = paper_pairs
        .iter()
        .find(|(i, _)| *i == "dense")
        .map(|(_, v)| *v)
        .unwrap_or(0.0);
    let reference_paper_eps = paper_pairs
        .iter()
        .find(|(i, _)| *i == "reference-baseline")
        .map(|(_, v)| *v)
        .unwrap_or(f64::INFINITY);

    // The speedup headline compares against the recorded pre-change run
    // (old object table AND old oracle) when one exists; the in-process
    // reference-oracle replay otherwise (which understates the win — it
    // still enjoys the slab object table on every event).
    let recorded = read_recorded_baseline();
    let (baseline_kind, baseline_paper_eps) = match &recorded {
        Some(b) => ("pre-change run (perf_baseline)", b.paper_mostgarbage_eps),
        None => ("reference-oracle replay", reference_paper_eps),
    };
    let replay_speedup = dense_paper_eps / baseline_paper_eps.max(1e-9);
    println!("  MostGarbage paper speedup: {replay_speedup:.2}x vs {baseline_kind}");

    // --- Event-bus overhead vs the recorded pre-bus run. Only meaningful
    // at full scale: a shrunk workload replays a different event mix. ---
    let bus_ratio = dense_paper_eps / PRE_BUS_PAPER_MOSTGARBAGE_EPS;
    let bus_within_10pct = bus_ratio >= 0.90;
    println!(
        "  event-bus overhead: {:.1}% of pre-bus throughput ({})",
        bus_ratio * 100.0,
        if bus_within_10pct {
            "within 10%"
        } else {
            "REGRESSION beyond 10%"
        }
    );

    // --- Oracle passes/sec over the small end state. ---
    println!("measuring oracle passes/sec over the small end state...");
    let oracle_cfg = small.clone().with_policy(PolicyKind::UpdatedPointer);
    let mut replayer = replayer_for(&oracle_cfg, dense_policy(&oracle_cfg));
    for event in &small_events {
        replayer.apply(event).expect("replay");
    }
    let db = replayer.db();
    let (dense_passes, dense_secs) = oracle_passes(db, true, 1.0);
    let (ref_passes, ref_secs) = oracle_passes(db, false, 1.0);
    let dense_pps = dense_passes as f64 / dense_secs.max(1e-9);
    let ref_pps = ref_passes as f64 / ref_secs.max(1e-9);
    println!("  dense:     {dense_pps:>12.1} passes/sec");
    println!("  reference: {ref_pps:>12.1} passes/sec");

    // --- Equivalence across seeds 0-9. ---
    println!("verifying dense == reference across small-config seeds 0-9...");
    let identical = check_bit_identical();
    println!("  bit-identical: {identical}");

    let rss = peak_rss_kib();

    // --- Emit JSON (hand-rolled; the workspace has no serde). ---
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"perf_report\",");
    let _ = writeln!(json, "  \"scale_pct\": {},", args.scale_pct);
    let _ = writeln!(json, "  \"peak_rss_kib\": {rss},");
    let _ = writeln!(json, "  \"bit_identical_seeds_0_9\": {identical},");
    let _ = writeln!(
        json,
        "  \"baseline_kind\": \"{}\",",
        json_escape(baseline_kind)
    );
    let _ = writeln!(
        json,
        "  \"mostgarbage_paper_speedup_vs_baseline\": {replay_speedup:.3},"
    );
    if let Some(b) = &recorded {
        let _ = writeln!(json, "  \"pre_change_baseline\": {},", b.raw);
    }
    let _ = writeln!(json, "  \"bus_overhead\": {{");
    let _ = writeln!(
        json,
        "    \"pre_bus_paper_mostgarbage_events_per_sec\": {PRE_BUS_PAPER_MOSTGARBAGE_EPS:.1},"
    );
    let _ = writeln!(
        json,
        "    \"paper_mostgarbage_events_per_sec\": {dense_paper_eps:.1},"
    );
    let _ = writeln!(json, "    \"ratio\": {bus_ratio:.3},");
    let _ = writeln!(json, "    \"within_10pct\": {bus_within_10pct}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"oracle\": {{");
    let _ = writeln!(json, "    \"dense_passes_per_sec\": {dense_pps:.1},");
    let _ = writeln!(json, "    \"reference_passes_per_sec\": {ref_pps:.1},");
    let _ = writeln!(
        json,
        "    \"speedup\": {:.3}",
        dense_pps / ref_pps.max(1e-9)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replay\": [");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"policy\": \"{}\", \"impl\": \"{}\", \"events\": {}, \"secs\": {:.4}, \"events_per_sec\": {:.1}}}{}",
            row.config,
            json_escape(&row.policy),
            row.implementation,
            row.events,
            row.secs,
            row.events_per_sec(),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let out = args
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_hotpath.json"));
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {}", out.display());
    if !identical {
        std::process::exit(1);
    }
}
