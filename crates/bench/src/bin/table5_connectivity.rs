//! Regenerates **Table 5** of the paper: database connectivity effects on
//! garbage collection performance — % of garbage reclaimed per policy at
//! connectivities C ∈ {1.167, 1.083, 1.040, 1.005}.
//!
//! ```text
//! cargo run --release -p pgc-bench --bin table5_connectivity [--seeds N] [--scale PCT]
//! ```

use pgc_bench::{emit, emit_telemetry, CommonArgs};
use pgc_core::PolicyKind;
use pgc_sim::{paper, report, Comparison, Experiment};

fn main() {
    let args = CommonArgs::parse();
    let mut results: Vec<(f64, Comparison)> = Vec::new();
    for (connectivity, dense) in paper::TABLE5_CONNECTIVITY {
        let cmp = Experiment::new()
            .with_telemetry(args.telemetry_level())
            .compare(
                &args.policy_list(&PolicyKind::PAPER),
                &args.seed_list(),
                |policy, seed| {
                    let cfg = paper::connectivity(policy, seed, dense);
                    let target = args.scale_bytes(cfg.workload.target_allocated);
                    cfg.with_heap_growth(target)
                        .with_parallelism(args.parallelism())
                },
            )
            .expect("experiment runs");
        results.push((connectivity, cmp));
    }
    emit(
        &args,
        "Table 5: Database Connectivity Effects (% of garbage reclaimed)",
        &report::format_table5(&results),
    );
    if let Some((_, densest)) = results.first() {
        emit_telemetry(&args, densest);
    }
}
