//! Records the pre-change performance baseline for `BENCH_hotpath.json`.
//!
//! This binary deliberately uses only APIs that exist both before and after
//! the dense-structure rework (`Replayer`, `Collector`, `oracle::analyze`),
//! so the *same measurement code* can be compiled against the pre-change
//! tree and against the current tree. The `bench-baseline` recipe in the
//! `justfile` builds it in a scratch worktree of the pre-change commit (with
//! only the offline-RNG satellite patched in, so both trees replay identical
//! event streams) and writes `BENCH_baseline.json`; `perf_report` then
//! embeds those numbers as the recorded baseline.
//!
//! Usage: `cargo run --release --bin perf_baseline [--scale PCT] [--out PATH]`.

use pgc_bench::CommonArgs;
use pgc_core::{build_policy, Collector, PolicyKind, Trigger};
use pgc_odb::{oracle, Database};
use pgc_sim::{Replayer, RunConfig};
use pgc_workload::{Event, SyntheticWorkload};
use std::time::Instant;

fn events_for(cfg: &RunConfig) -> Vec<Event> {
    SyntheticWorkload::new(cfg.workload.clone())
        .expect("workload params")
        .collect()
}

/// Mirrors `Simulation`'s replayer construction (same policy seed formula,
/// same trigger), so these replays match `Experiment::compare` runs.
fn replayer_for(cfg: &RunConfig) -> Replayer {
    let db = Database::new(cfg.db.clone()).expect("db config");
    let policy_seed = cfg.workload.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5;
    let policy = build_policy(cfg.policy, policy_seed, cfg.db.max_weight);
    let trigger = cfg
        .trigger
        .unwrap_or(Trigger::OverwriteCount(cfg.db.gc_overwrite_threshold));
    let collector = Collector::with_trigger(policy, trigger).with_batch(cfg.collect_batch);
    Replayer::new(db, collector)
}

/// Replays `events` under `cfg`, returning (events applied, seconds).
fn timed_replay(cfg: &RunConfig, events: &[Event]) -> (u64, f64) {
    let mut replayer = replayer_for(cfg);
    let t0 = Instant::now();
    for event in events {
        replayer.apply(event).expect("replay");
    }
    (replayer.events_applied(), t0.elapsed().as_secs_f64())
}

/// Peak resident set size in KiB (`VmHWM`), or 0 where unavailable.
fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|v| v.split_whitespace().next().and_then(|n| n.parse().ok()))
            })
        })
        .unwrap_or(0)
}

fn main() {
    let args = CommonArgs::parse();

    println!("baseline: replaying small configuration (seed 1, MostGarbage)...");
    let small = RunConfig::small()
        .with_policy(PolicyKind::MostGarbage)
        .with_seed(1);
    let small_events = events_for(&small);
    let (small_applied, small_secs) = timed_replay(&small, &small_events);
    let small_eps = small_applied as f64 / small_secs.max(1e-9);
    println!("  {small_eps:>12.0} events/sec");

    println!("baseline: replaying paper configuration (seed 1, MostGarbage)...");
    let mut paper = RunConfig::paper(PolicyKind::MostGarbage, 1);
    paper.workload.target_allocated = args.scale_bytes(paper.workload.target_allocated);
    let paper_events = events_for(&paper);
    let (paper_applied, paper_secs) = timed_replay(&paper, &paper_events);
    let paper_eps = paper_applied as f64 / paper_secs.max(1e-9);
    println!("  {paper_eps:>12.0} events/sec");

    println!("baseline: measuring oracle passes/sec over the small end state...");
    let oracle_cfg = RunConfig::small().with_seed(1);
    let mut replayer = replayer_for(&oracle_cfg);
    for event in &events_for(&oracle_cfg) {
        replayer.apply(event).expect("replay");
    }
    let db = replayer.db();
    let mut passes = 0u64;
    let t0 = Instant::now();
    loop {
        std::hint::black_box(oracle::analyze(db));
        passes += 1;
        if t0.elapsed().as_secs_f64() >= 1.0 && passes >= 3 {
            break;
        }
    }
    let pps = passes as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    println!("  {pps:>12.1} passes/sec");

    let json = format!(
        "{{\n  \"harness\": \"perf_baseline\",\n  \"scale_pct\": {},\n  \"peak_rss_kib\": {},\n  \"paper_mostgarbage_events_per_sec\": {:.1},\n  \"small_mostgarbage_events_per_sec\": {:.1},\n  \"oracle_passes_per_sec\": {:.1}\n}}\n",
        args.scale_pct,
        peak_rss_kib(),
        paper_eps,
        small_eps,
        pps
    );
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_baseline.json"));
    std::fs::write(&out, &json).expect("write baseline");
    println!("wrote {}", out.display());
}
