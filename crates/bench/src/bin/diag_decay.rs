//! Diagnostic: UpdatedDecay vs UpdatedPointer at full scale (calibration
//! helper, not a paper artifact).
use pgc_core::PolicyKind;
use pgc_sim::{paper, Experiment};

fn main() {
    let cmp = Experiment::new()
        .compare(
            &[
                PolicyKind::UpdatedPointer,
                PolicyKind::UpdatedDecay,
                PolicyKind::MostGarbage,
            ],
            &[1, 2, 3, 4, 5],
            paper::headline,
        )
        .unwrap();
    for r in &cmp.rows {
        println!(
            "{:<16} total={:.0} frac={:.1}% stor={:.0}KB",
            r.policy.name(),
            r.total_ios.mean,
            r.fraction_pct.mean,
            r.max_storage_kb.mean
        );
    }
}
