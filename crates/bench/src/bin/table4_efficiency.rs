//! Regenerates **Table 4** of the paper: collector effectiveness and
//! efficiency — garbage reclaimed, fraction of actual garbage reclaimed,
//! and KB reclaimed per collector I/O (Relative is MostGarbage = 1).
//!
//! ```text
//! cargo run --release -p pgc-bench --bin table4_efficiency [--seeds N] [--scale PCT]
//! ```

use pgc_bench::{emit, CommonArgs};
use pgc_core::PolicyKind;
use pgc_sim::{compare_policies, paper, report};

fn main() {
    let args = CommonArgs::parse();
    let cmp = compare_policies(&PolicyKind::PAPER, &args.seed_list(), |policy, seed| {
        let mut cfg = paper::headline(policy, seed);
        cfg.workload.target_allocated = args.scale_bytes(cfg.workload.target_allocated);
        cfg
    })
    .expect("experiment runs");
    emit(
        &args,
        "Table 4: Collector Effectiveness and Efficiency (Relative: MostGarbage = 1)",
        &report::format_table4(&cmp),
    );
}
