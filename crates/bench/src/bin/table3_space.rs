//! Regenerates **Table 3** of the paper: maximum storage space usage per
//! policy (KB and partition count; Relative is MostGarbage = 1).
//!
//! ```text
//! cargo run --release -p pgc-bench --bin table3_space [--seeds N] [--scale PCT]
//! ```

use pgc_bench::{emit, emit_telemetry, CommonArgs};
use pgc_core::PolicyKind;
use pgc_sim::{paper, report, Experiment};

fn main() {
    let args = CommonArgs::parse();
    let cmp = Experiment::new()
        .with_telemetry(args.telemetry_level())
        .compare(
            &args.policy_list(&PolicyKind::PAPER),
            &args.seed_list(),
            |policy, seed| {
                let cfg = paper::headline(policy, seed);
                let target = args.scale_bytes(cfg.workload.target_allocated);
                cfg.with_heap_growth(target)
                    .with_parallelism(args.parallelism())
            },
        )
        .expect("experiment runs");
    emit(
        &args,
        "Table 3: Maximum Storage Space Usage (Relative: MostGarbage = 1)",
        &report::format_table3(&cmp),
    );
    emit_telemetry(&args, &cmp);
}
