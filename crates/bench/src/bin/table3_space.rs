//! Regenerates **Table 3** of the paper: maximum storage space usage per
//! policy (KB and partition count; Relative is MostGarbage = 1).
//!
//! ```text
//! cargo run --release -p pgc-bench --bin table3_space [--seeds N] [--scale PCT]
//! ```

use pgc_bench::{emit, CommonArgs};
use pgc_core::PolicyKind;
use pgc_sim::{compare_policies, paper, report};

fn main() {
    let args = CommonArgs::parse();
    let cmp = compare_policies(&PolicyKind::PAPER, &args.seed_list(), |policy, seed| {
        let mut cfg = paper::headline(policy, seed);
        cfg.workload.target_allocated = args.scale_bytes(cfg.workload.target_allocated);
        cfg
    })
    .expect("experiment runs");
    emit(
        &args,
        "Table 3: Maximum Storage Space Usage (Relative: MostGarbage = 1)",
        &report::format_table3(&cmp),
    );
}
