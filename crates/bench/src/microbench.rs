//! A minimal timing harness for the `benches/` targets.
//!
//! The workspace builds offline, so the benches cannot use an external
//! harness crate; this module provides the 10% of one they need: a warmup
//! phase, an adaptively sized timed loop, and a `ns/iter` report line per
//! benchmark. All bench targets set `harness = false` and call
//! [`Runner::bench`]/[`Runner::bench_batched`] from `main`.
//!
//! Numbers from this harness are for eyeballing relative cost, not for
//! statistically rigorous comparison — the regression harness proper is
//! the `perf_report` binary, which measures end-to-end replay throughput.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs and reports a sequence of named benchmarks.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Warmup budget per benchmark.
    warmup: Duration,
    /// Measurement budget per benchmark.
    measure: Duration,
}

impl Default for Runner {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(300),
        }
    }
}

impl Runner {
    /// Creates a runner with the default time budgets, honoring the
    /// `PGC_BENCH_QUICK` environment variable (any value) for fast smoke
    /// runs.
    pub fn new() -> Self {
        if std::env::var_os("PGC_BENCH_QUICK").is_some() {
            Self {
                warmup: Duration::from_millis(5),
                measure: Duration::from_millis(20),
            }
        } else {
            Self::default()
        }
    }

    /// Benchmarks `f` called in a tight loop: warms up, then runs
    /// doubling batches until the measurement budget is spent, and prints
    /// the mean ns/iter.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Warmup.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(f());
        }
        // Measure in doubling batches so timer overhead amortizes away.
        let mut iters_total = 0u64;
        let mut elapsed_total = Duration::ZERO;
        let mut batch = 1u64;
        while elapsed_total < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed_total += t0.elapsed();
            iters_total += batch;
            batch = batch.saturating_mul(2);
        }
        report(name, elapsed_total, iters_total);
    }

    /// Benchmarks `f` with a fresh untimed `setup()` value per call — for
    /// workloads that consume their input (e.g. collecting a database).
    ///
    /// Each call is timed individually, so per-call timer overhead (~tens
    /// of ns) is included; use only for operations well above that scale.
    pub fn bench_batched<S, R>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            let s = setup();
            black_box(f(s));
        }
        let mut iters_total = 0u64;
        let mut elapsed_total = Duration::ZERO;
        while elapsed_total < self.measure {
            let s = setup();
            let t0 = Instant::now();
            black_box(f(s));
            elapsed_total += t0.elapsed();
            iters_total += 1;
        }
        report(name, elapsed_total, iters_total);
    }
}

fn report(name: &str, elapsed: Duration, iters: u64) {
    let ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    println!("{name:<48} {ns_per_iter:>14.1} ns/iter  ({iters} iters)");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Runner {
        Runner {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0u64;
        quick().bench("test/counter", || calls += 1);
        assert!(calls > 0);
    }

    #[test]
    fn bench_batched_pairs_setup_with_run() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        quick().bench_batched(
            "test/batched",
            || {
                setups += 1;
                setups
            },
            |_| runs += 1,
        );
        assert!(runs > 0);
        assert!(setups >= runs, "every run had a setup");
    }
}
