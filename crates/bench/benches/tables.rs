//! One micro-benchmark per paper artifact, at reduced scale.
//!
//! These measure the *simulation cost* of regenerating each table/figure
//! (the full-size regenerators are the `pgc-bench` binaries; the numbers
//! they print are the reproduction itself). Scale: ~1 MB allocations, one
//! seed, so the whole suite runs in seconds while still exercising every
//! code path each artifact depends on.

use pgc_bench::microbench::Runner;
use pgc_core::PolicyKind;
use pgc_sim::{paper, RunConfig, Simulation};
use pgc_types::Bytes;
use std::hint::black_box;

fn shrink(mut cfg: RunConfig) -> RunConfig {
    cfg.workload.target_allocated = Bytes::from_mib(1);
    cfg
}

fn main() {
    let r = Runner::new();

    // Tables 2–4 share the headline configuration; one run per policy row.
    for policy in PolicyKind::PAPER {
        let cfg = shrink(paper::headline(policy, 1));
        r.bench(
            &format!("table2_3_4/headline_run/{}", policy.name()),
            || black_box(Simulation::builder(&cfg).run().unwrap().totals),
        );
    }

    // Table 5: the connectivity extremes.
    for (label, dense) in [(1.005f64, 0.005f64), (1.167, 0.167)] {
        let cfg = shrink(paper::connectivity(PolicyKind::UpdatedPointer, 1, dense));
        r.bench(&format!("table5/connectivity_run/C={label}"), || {
            black_box(Simulation::builder(&cfg).run().unwrap().totals)
        });
    }

    // Figures 4–5: a sampled time-series run (sampling adds oracle passes).
    {
        let mut cfg = shrink(paper::time_series(PolicyKind::UpdatedPointer, 1));
        cfg.sample_every = Some(10_000);
        r.bench("fig4_5/time_series_run/UpdatedPointer_sampled", || {
            black_box(
                Simulation::builder(&cfg)
                    .run()
                    .unwrap()
                    .series
                    .points()
                    .len(),
            )
        });
    }

    // Figure 6: the smallest and largest sweep points (partition scaling).
    for mib in [4u64, 40] {
        let cfg = shrink(paper::scaled(PolicyKind::UpdatedPointer, 1, mib));
        r.bench(&format!("fig6/scaled_run/{mib}MB_geometry"), || {
            black_box(Simulation::builder(&cfg).run().unwrap().totals)
        });
    }
}
