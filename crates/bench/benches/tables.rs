//! One Criterion benchmark per paper artifact, at reduced scale.
//!
//! These measure the *simulation cost* of regenerating each table/figure
//! (the full-size regenerators are the `pgc-bench` binaries; the numbers
//! they print are the reproduction itself). Scale: ~1 MB allocations, one
//! seed, so the whole suite runs in seconds while still exercising every
//! code path each artifact depends on.

use criterion::{criterion_group, criterion_main, Criterion};
use pgc_core::PolicyKind;
use pgc_sim::{paper, RunConfig, Simulation};
use pgc_types::Bytes;
use std::hint::black_box;

fn shrink(mut cfg: RunConfig) -> RunConfig {
    cfg.workload.target_allocated = Bytes::from_mib(1);
    cfg
}

/// Tables 2–4 share the headline configuration; benchmark one run per
/// policy row.
fn bench_tables_2_3_4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_3_4/headline_run");
    group.sample_size(10);
    for policy in PolicyKind::PAPER {
        group.bench_function(policy.name(), |b| {
            let cfg = shrink(paper::headline(policy, 1));
            b.iter(|| black_box(Simulation::run(&cfg).unwrap().totals));
        });
    }
    group.finish();
}

/// Table 5: the connectivity extremes.
fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5/connectivity_run");
    group.sample_size(10);
    for (label, dense) in [(1.005f64, 0.005f64), (1.167, 0.167)] {
        group.bench_function(format!("C={label}"), |b| {
            let cfg = shrink(paper::connectivity(PolicyKind::UpdatedPointer, 1, dense));
            b.iter(|| black_box(Simulation::run(&cfg).unwrap().totals));
        });
    }
    group.finish();
}

/// Figures 4–5: a sampled time-series run (sampling adds oracle passes).
fn bench_figs_4_5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_5/time_series_run");
    group.sample_size(10);
    group.bench_function("UpdatedPointer_sampled", |b| {
        let mut cfg = shrink(paper::time_series(PolicyKind::UpdatedPointer, 1));
        cfg.sample_every = Some(10_000);
        b.iter(|| black_box(Simulation::run(&cfg).unwrap().series.points().len()));
    });
    group.finish();
}

/// Figure 6: the smallest and largest sweep points (partition scaling).
fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/scaled_run");
    group.sample_size(10);
    for mib in [4u64, 40] {
        group.bench_function(format!("{mib}MB_geometry"), |b| {
            let cfg = shrink(paper::scaled(PolicyKind::UpdatedPointer, 1, mib));
            b.iter(|| black_box(Simulation::run(&cfg).unwrap().totals));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tables_2_3_4,
    bench_table5,
    bench_figs_4_5,
    bench_fig6
);
criterion_main!(benches);
