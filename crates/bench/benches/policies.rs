//! Micro-benchmarks for the selection policies: the per-barrier-event cost
//! (the paper argues these are cheap — verify it) and the selection cost,
//! including the oracle-backed `MostGarbage` for contrast.

use pgc_bench::microbench::Runner;
use pgc_core::{build_policy, PolicyKind};
use pgc_odb::{BarrierEvent, Database, PointerTarget, PointerWriteInfo};
use pgc_types::{Bytes, DbConfig, Oid, PartitionId, SlotId};
use std::hint::black_box;

fn overwrite_event(p: u32) -> BarrierEvent {
    BarrierEvent::PointerWrite(PointerWriteInfo {
        owner: Oid(1),
        owner_partition: PartitionId(p),
        slot: SlotId(0),
        old: Some(PointerTarget {
            oid: Oid(2),
            partition: PartitionId((p + 1) % 8),
            weight: 4,
        }),
        new: None,
        during_creation: false,
    })
}

/// A populated small database for selection benchmarks.
fn populated_db() -> Database {
    let mut db = Database::new(
        DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(16)
            .with_gc_overwrite_threshold(50),
    )
    .unwrap();
    let root = db.create_root(Bytes(100), 2).unwrap();
    let mut prev = root;
    for i in 0..2000u64 {
        let (c, _) = db
            .create_object(Bytes(100), 2, prev, SlotId((i % 2) as u16))
            .unwrap();
        if i % 3 == 0 {
            prev = c;
        }
    }
    db
}

fn main() {
    let r = Runner::new();

    for kind in [
        PolicyKind::MutatedPartition,
        PolicyKind::UpdatedPointer,
        PolicyKind::WeightedPointer,
        PolicyKind::MostGarbage,
    ] {
        let mut policy = build_policy(kind, 7, 16);
        let mut i = 0u32;
        r.bench(&format!("policy/on_event/{}", kind.name()), || {
            policy.on_event(black_box(&overwrite_event(i % 8)));
            i += 1;
        });
    }

    let db = populated_db();
    for kind in [
        PolicyKind::UpdatedPointer,
        PolicyKind::Random,
        PolicyKind::MostGarbage, // runs the full oracle: orders of magnitude dearer
    ] {
        let mut policy = build_policy(kind, 7, 16);
        for i in 0..100 {
            policy.on_event(&overwrite_event(i % 8));
        }
        r.bench(&format!("policy/select/{}", kind.name()), || {
            black_box(policy.select(&db))
        });
    }
}
