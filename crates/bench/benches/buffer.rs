//! Micro-benchmarks for the LRU write-back buffer pool: hit path, miss
//! path with dirty eviction, and sequential span scans.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pgc_buffer::{Access, BufferPool};
use pgc_types::PageId;
use std::hint::black_box;

fn bench_hits(c: &mut Criterion) {
    c.bench_function("buffer/read_hit", |b| {
        let mut pool = BufferPool::new(64);
        for i in 0..64 {
            pool.access(PageId(i), Access::Read);
        }
        let mut i = 0u64;
        b.iter(|| {
            pool.access(PageId(i % 64), Access::Read);
            i += 1;
            black_box(&pool);
        });
    });
}

fn bench_miss_evict(c: &mut Criterion) {
    c.bench_function("buffer/miss_with_dirty_eviction", |b| {
        let mut pool = BufferPool::new(64);
        let mut i = 0u64;
        b.iter(|| {
            // Every access misses and evicts a dirty page (steady state).
            pool.access(PageId(i), Access::Write);
            i += 1;
            black_box(&pool);
        });
    });
}

fn bench_span_scan(c: &mut Criterion) {
    c.bench_function("buffer/span_scan_48_pages", |b| {
        b.iter_batched(
            || BufferPool::new(48),
            |mut pool| {
                pool.access_span((0..48).map(PageId), Access::Read);
                black_box(pool.stats())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_hits, bench_miss_evict, bench_span_scan);
criterion_main!(benches);
