//! Micro-benchmarks for the LRU write-back buffer pool: hit path, miss
//! path with dirty eviction, and sequential span scans.

use pgc_bench::microbench::Runner;
use pgc_buffer::{Access, BufferPool};
use pgc_types::PageId;
use std::hint::black_box;

fn main() {
    let r = Runner::new();

    {
        let mut pool = BufferPool::new(64);
        for i in 0..64 {
            pool.access(PageId(i), Access::Read);
        }
        let mut i = 0u64;
        r.bench("buffer/read_hit", || {
            pool.access(PageId(i % 64), Access::Read);
            i += 1;
            black_box(&pool);
        });
    }

    {
        let mut pool = BufferPool::new(64);
        let mut i = 0u64;
        r.bench("buffer/miss_with_dirty_eviction", || {
            // Every access misses and evicts a dirty page (steady state).
            pool.access(PageId(i), Access::Write);
            i += 1;
            black_box(&pool);
        });
    }

    r.bench_batched(
        "buffer/span_scan_48_pages",
        || BufferPool::new(48),
        |mut pool| {
            pool.access_span((0..48).map(PageId), Access::Read);
            black_box(pool.stats())
        },
    );
}
