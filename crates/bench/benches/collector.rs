//! Micro-benchmarks for the copying collector and the oracle: cost of
//! collecting a garbage-heavy vs live-heavy partition, and of one full
//! reachability analysis (dense and reference implementations).

use pgc_bench::microbench::Runner;
use pgc_odb::oracle::{self, OracleScratch};
use pgc_odb::Database;
use pgc_types::{Bytes, DbConfig, SlotId};
use std::hint::black_box;

/// Builds a database whose first partition holds a chain of `n` objects;
/// if `kill` is true the chain is unlinked (all garbage except the root).
fn chain_db(n: usize, kill: bool) -> Database {
    let mut db = Database::new(
        DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(64),
    )
    .unwrap();
    let root = db.create_root(Bytes(100), 2).unwrap();
    let mut prev = root;
    for _ in 0..n {
        let (c, _) = db.create_object(Bytes(100), 2, prev, SlotId(0)).unwrap();
        prev = c;
    }
    if kill {
        db.write_slot(root, SlotId(0), None).unwrap();
    }
    db
}

fn main() {
    let r = Runner::new();

    r.bench_batched(
        "collector/collect_partition_500/all_live",
        || chain_db(500, false),
        |mut db| {
            let victim = pgc_types::PartitionId(1);
            black_box(db.collect_partition(victim).unwrap())
        },
    );
    r.bench_batched(
        "collector/collect_partition_500/all_garbage",
        || chain_db(500, true),
        |mut db| {
            let victim = pgc_types::PartitionId(1);
            black_box(db.collect_partition(victim).unwrap())
        },
    );

    {
        let db = chain_db(2000, false);
        let mut scratch = OracleScratch::new();
        r.bench("oracle/analyze_2000_objects/dense", || {
            black_box(oracle::analyze_with(&db, &mut scratch))
        });
        r.bench("oracle/analyze_2000_objects/reference", || {
            black_box(oracle::reference::analyze(&db))
        });
    }

    r.bench_batched(
        "collector/collect_full_2000_objects",
        || chain_db(2000, true),
        |mut db| black_box(db.collect_full().unwrap()),
    );
}
