//! Micro-benchmarks for the copying collector and the oracle: cost of
//! collecting a garbage-heavy vs live-heavy partition, and of one full
//! reachability analysis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pgc_odb::{oracle, Database};
use pgc_types::{Bytes, DbConfig, SlotId};
use std::hint::black_box;

/// Builds a database whose first partition holds a chain of `n` objects;
/// if `kill` is true the chain is unlinked (all garbage except the root).
fn chain_db(n: usize, kill: bool) -> Database {
    let mut db = Database::new(
        DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(64),
    )
    .unwrap();
    let root = db.create_root(Bytes(100), 2).unwrap();
    let mut prev = root;
    for _ in 0..n {
        let (c, _) = db.create_object(Bytes(100), 2, prev, SlotId(0)).unwrap();
        prev = c;
    }
    if kill {
        db.write_slot(root, SlotId(0), None).unwrap();
    }
    db
}

fn bench_collect(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector/collect_partition_500_objects");
    group.bench_function("all_live", |b| {
        b.iter_batched(
            || chain_db(500, false),
            |mut db| {
                let victim = pgc_types::PartitionId(1);
                black_box(db.collect_partition(victim).unwrap())
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("all_garbage", |b| {
        b.iter_batched(
            || chain_db(500, true),
            |mut db| {
                let victim = pgc_types::PartitionId(1);
                black_box(db.collect_partition(victim).unwrap())
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let db = chain_db(2000, false);
    c.bench_function("oracle/analyze_2000_objects", |b| {
        b.iter(|| black_box(oracle::analyze(&db)));
    });
}

/// Complete (whole-database) collection vs a single-partition pass over
/// the same population.
fn bench_full_collection(c: &mut Criterion) {
    c.bench_function("collector/collect_full_2000_objects", |b| {
        b.iter_batched(
            || chain_db(2000, true),
            |mut db| black_box(db.collect_full().unwrap()),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_collect, bench_oracle, bench_full_collection);
criterion_main!(benches);
