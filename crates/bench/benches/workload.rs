//! Micro-benchmarks for the workload generator and the trace codec.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pgc_workload::{read_trace, write_trace, Event, SyntheticWorkload, WorkloadParams};
use std::hint::black_box;

fn small_events() -> Vec<Event> {
    SyntheticWorkload::new(WorkloadParams::small().with_seed(3))
        .unwrap()
        .collect()
}

fn bench_generation(c: &mut Criterion) {
    c.bench_function("workload/generate_small", |b| {
        b.iter(|| {
            let g = SyntheticWorkload::new(WorkloadParams::small().with_seed(3)).unwrap();
            black_box(g.count())
        });
    });
    c.bench_function("workload/generate_assembly_small", |b| {
        b.iter(|| {
            let g = pgc_workload::AssemblyWorkload::new(
                pgc_workload::AssemblyParams::small().with_seed(3),
            )
            .unwrap();
            black_box(g.count())
        });
    });
}

fn bench_codec(c: &mut Criterion) {
    let events = small_events();
    let mut encoded = Vec::new();
    write_trace(&mut encoded, &events).unwrap();

    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("encode", |b| {
        b.iter_batched(
            || Vec::with_capacity(encoded.len()),
            |mut buf| {
                write_trace(&mut buf, &events).unwrap();
                black_box(buf.len())
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(read_trace(encoded.as_slice()).unwrap().len()));
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_codec);
criterion_main!(benches);
