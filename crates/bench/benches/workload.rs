//! Micro-benchmarks for the workload generator and the trace codec.

use pgc_bench::microbench::Runner;
use pgc_workload::{
    read_trace, write_trace, EncodedTrace, Event, SyntheticWorkload, WorkloadParams,
};
use std::hint::black_box;

fn small_events() -> Vec<Event> {
    SyntheticWorkload::new(WorkloadParams::small().with_seed(3))
        .unwrap()
        .collect()
}

fn main() {
    let r = Runner::new();

    r.bench("workload/generate_small", || {
        let g = SyntheticWorkload::new(WorkloadParams::small().with_seed(3)).unwrap();
        black_box(g.count())
    });
    r.bench("workload/generate_assembly_small", || {
        let g =
            pgc_workload::AssemblyWorkload::new(pgc_workload::AssemblyParams::small().with_seed(3))
                .unwrap();
        black_box(g.count())
    });

    let events = small_events();
    let mut encoded = Vec::new();
    write_trace(&mut encoded, &events).unwrap();

    r.bench_batched(
        "trace/encode",
        || Vec::with_capacity(encoded.len()),
        |mut buf| {
            write_trace(&mut buf, &events).unwrap();
            black_box(buf.len())
        },
    );
    r.bench("trace/decode", || {
        black_box(read_trace(encoded.as_slice()).unwrap().len())
    });

    // The shared-trace engine: record straight into the contiguous buffer,
    // and walk it with the zero-allocation cursor (what every policy worker
    // pays per replayed event).
    r.bench("encoded/record_small", || {
        let trace = EncodedTrace::record(WorkloadParams::small().with_seed(3)).unwrap();
        black_box(trace.events())
    });
    let trace = EncodedTrace::record(WorkloadParams::small().with_seed(3)).unwrap();
    r.bench("encoded/cursor_replay", || {
        let mut n = 0u64;
        let mut cursor = trace.cursor();
        while let Some(event) = cursor.next_event().unwrap() {
            black_box(&event);
            n += 1;
        }
        black_box(n)
    });
    // Batched decode: same stream, but decoded a block at a time into one
    // reused struct-of-arrays buffer (the intra-run parallel replay path).
    r.bench_batched(
        "encoded/decode_block",
        || pgc_workload::EventBlock::with_capacity(pgc_workload::BLOCK_EVENTS),
        |mut block| {
            let mut n = 0u64;
            let mut cursor = trace.cursor();
            while cursor.next_block(&mut block).unwrap() > 0 {
                for i in 0..block.len() {
                    black_box(&block.get(i));
                    n += 1;
                }
            }
            black_box(n)
        },
    );
}
