//! The selection-policy abstraction.
//!
//! A policy observes the barrier event bus (that is *all* an implementable
//! policy can see — the paper's policies are deliberately restricted to
//! per-partition counters fed by the barrier), so [`SelectionPolicy`] is a
//! [`BarrierObserver`] first: scoreboard maintenance is
//! [`BarrierObserver::on_event`] handling. When the scheduler fires, the
//! policy names the partition to collect. The near-optimal `MostGarbage`
//! policy additionally consults the simulation oracle, which is why the
//! trait hands `select` a full view of the database; honest policies only
//! use its cheap structural accessors.

use pgc_odb::{BarrierObserver, Database};
use pgc_types::PartitionId;
use std::fmt;
use std::str::FromStr;

/// Every implemented partition selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Never collect; grow the database instead (space upper bound).
    NoCollection,
    /// Pick a uniformly random collectable partition.
    Random,
    /// Pick the partition with the most pointer writes into it since its
    /// last collection (the enhanced Yong/Naughton/Yu policy: data writes
    /// excluded).
    MutatedPartition,
    /// Pick the partition the most *overwritten* pointers pointed into —
    /// the paper's winning policy.
    UpdatedPointer,
    /// Like `UpdatedPointer` but each overwritten pointer scores
    /// `2^(max_weight - w)` where `w` is the old target's root-distance
    /// weight.
    WeightedPointer,
    /// Oracle policy: the partition that actually holds the most garbage.
    /// Near-optimal and not implementable.
    MostGarbage,
    /// Extension (not in the paper): cycle through partitions in order.
    RoundRobin,
    /// Extension (not in the paper): pick the partition with the most
    /// allocated (used) bytes.
    Occupancy,
    /// The *unenhanced* Yong/Naughton/Yu policy the paper improves on:
    /// counts every mutation into a partition, data writes included.
    YnyMutated,
    /// Extension (not in the paper): the programming-language generational
    /// heuristic transplanted to partitions — collect the partition with
    /// the youngest average allocation.
    Generational,
    /// Extension (not in the paper): `UpdatedPointer` with geometric score
    /// decay at each collection, so stale hints fade.
    UpdatedDecay,
    /// Extension (not in the paper): a weighted blend of overwrite count,
    /// partition occupancy, and allocation recency, computed in one pass
    /// over the derive layer's shared inputs.
    Composite,
    /// Extension (not in the paper): an adaptive meta-policy that races a
    /// slate of candidate policies as shadow scoreboards and switches the
    /// driving policy mid-run when a challenger's retrospective garbage
    /// credit beats the incumbent's by a configurable margin.
    AdaptiveMeta,
}

impl PolicyKind {
    /// The six policies evaluated in the paper, in the row order of its
    /// tables (worst space behaviour first).
    pub const PAPER: [PolicyKind; 6] = [
        PolicyKind::NoCollection,
        PolicyKind::MutatedPartition,
        PolicyKind::Random,
        PolicyKind::WeightedPointer,
        PolicyKind::UpdatedPointer,
        PolicyKind::MostGarbage,
    ];

    /// Every implemented policy, paper policies first.
    pub const ALL: [PolicyKind; 13] = [
        PolicyKind::NoCollection,
        PolicyKind::MutatedPartition,
        PolicyKind::Random,
        PolicyKind::WeightedPointer,
        PolicyKind::UpdatedPointer,
        PolicyKind::MostGarbage,
        PolicyKind::RoundRobin,
        PolicyKind::Occupancy,
        PolicyKind::YnyMutated,
        PolicyKind::Generational,
        PolicyKind::UpdatedDecay,
        PolicyKind::Composite,
        PolicyKind::AdaptiveMeta,
    ];

    /// Stable display name, matching the paper's table rows.
    pub const fn name(self) -> &'static str {
        match self {
            PolicyKind::NoCollection => "NoCollection",
            PolicyKind::Random => "Random",
            PolicyKind::MutatedPartition => "MutatedPartition",
            PolicyKind::UpdatedPointer => "UpdatedPointer",
            PolicyKind::WeightedPointer => "WeightedPointer",
            PolicyKind::MostGarbage => "MostGarbage",
            PolicyKind::RoundRobin => "RoundRobin",
            PolicyKind::Occupancy => "Occupancy",
            PolicyKind::YnyMutated => "YNY-Mutated",
            PolicyKind::Generational => "Generational",
            PolicyKind::UpdatedDecay => "UpdatedDecay",
            PolicyKind::Composite => "Composite",
            PolicyKind::AdaptiveMeta => "AdaptiveMeta",
        }
    }

    /// True for policies a real ODBMS could implement (everything but the
    /// oracle-backed `MostGarbage`).
    pub const fn is_implementable(self) -> bool {
        !matches!(self, PolicyKind::MostGarbage)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    /// Parses either the CamelCase table name or a kebab-case CLI form
    /// (`updated-pointer`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match norm.as_str() {
            "nocollection" | "none" => Ok(PolicyKind::NoCollection),
            "random" => Ok(PolicyKind::Random),
            "mutatedpartition" | "mutated" => Ok(PolicyKind::MutatedPartition),
            "updatedpointer" | "updated" => Ok(PolicyKind::UpdatedPointer),
            "weightedpointer" | "weighted" => Ok(PolicyKind::WeightedPointer),
            "mostgarbage" | "oracle" => Ok(PolicyKind::MostGarbage),
            "roundrobin" => Ok(PolicyKind::RoundRobin),
            "occupancy" => Ok(PolicyKind::Occupancy),
            "ynymutated" | "yny" => Ok(PolicyKind::YnyMutated),
            "generational" => Ok(PolicyKind::Generational),
            "updateddecay" | "decay" => Ok(PolicyKind::UpdatedDecay),
            "composite" => Ok(PolicyKind::Composite),
            "adaptivemeta" | "adaptive" | "meta" => Ok(PolicyKind::AdaptiveMeta),
            _ => Err(format!("unknown policy '{s}'")),
        }
    }
}

/// A partition selection policy.
///
/// Lifecycle per simulation: the policy observes the barrier event stream
/// through its [`BarrierObserver::on_event`] implementation —
/// [`pgc_odb::BarrierEvent::PointerWrite`] feeds the scoreboards,
/// [`pgc_odb::BarrierEvent::DataWrite`] is counted only by the unenhanced
/// Yong/Naughton/Yu policy (ignoring it *is* the paper's enhancement), and
/// [`pgc_odb::BarrierEvent::CollectionCompleted`] resets the victim's
/// per-partition state. When the scheduler triggers a collection,
/// [`SelectionPolicy::select`] names the victim.
///
/// A policy must tolerate `CollectionCompleted` events for collections it
/// did not request: in shadow-scoreboard mode (see `pgc_sim`), shadow
/// policies ride a driver policy's event stream and observe the driver's
/// collections.
pub trait SelectionPolicy: BarrierObserver {
    /// Which policy this is.
    fn kind(&self) -> PolicyKind;

    /// Chooses the partition to collect, or `None` to skip collection
    /// (only `NoCollection` does that, and a policy with an entirely empty
    /// database may). Must never return the designated empty partition.
    fn select(&mut self, db: &Database) -> Option<PartitionId>;

    /// Chooses a victim as [`SelectionPolicy::select`] would, but never
    /// one of the partitions in `exclude`.
    ///
    /// Zone-parallel batches condemn several victims against one
    /// pre-collection database view, so follow-up picks must exclude the
    /// partitions already condemned this activation. The default simply
    /// filters [`SelectionPolicy::select`]'s answer — correct for every
    /// policy, at the cost of ending condemnation early when the policy's
    /// first choice is already condemned. Policies that can rank cheaply
    /// (the oracle) override it to return their best *eligible* pick.
    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        self.select(db).filter(|p| !exclude.contains(p))
    }

    /// The policy's current numeric score for `partition`, if it keeps
    /// one. Scoreboard policies report their counter; policies with no
    /// per-partition score (`Random`, the oracle, `NoCollection`) report
    /// `None`. Purely diagnostic: the collector broadcasts it on the bus
    /// as [`pgc_odb::BarrierEvent::VictimSelected`], and it must never
    /// influence selection.
    fn victim_score(&self, partition: PartitionId) -> Option<f64> {
        let _ = partition;
        None
    }

    /// The policy's display name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Drains any driving-policy switches the policy decided since the
    /// last drain. Only meta-policies ever return entries; the collector
    /// broadcasts each as [`pgc_odb::BarrierEvent::PolicySwitched`].
    fn take_switches(&mut self) -> Vec<PolicySwitch> {
        Vec::new()
    }

    /// Recompute/hit counters of the policy's derive engine(s), if it is
    /// built on [`crate::derive`]. Hand-rolled and stateless policies
    /// report `None`. Purely diagnostic (surfaced through telemetry).
    fn derive_stats(&self) -> Option<crate::derive::DeriveStats> {
        None
    }
}

/// One driving-policy switch decided by a meta-policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicySwitch {
    /// The activation whose collection outcome triggered the switch (the
    /// new policy drives selection from the *next* activation).
    pub activation: u64,
    /// The policy that was driving.
    pub from: PolicyKind,
    /// The policy now driving.
    pub to: PolicyKind,
}

/// Deterministic fallback victim used by counter-based policies whose
/// scores are all zero (possible immediately after a collection or in a
/// freshly created database): the collectable partition with the most used
/// bytes, ties toward the lowest id, `None` if every collectable partition
/// is fresh.
pub fn fallback_victim(db: &Database) -> Option<PartitionId> {
    fallback_victim_excluding(db, &[])
}

/// [`fallback_victim`] restricted to partitions not in `exclude` (zone
/// batches pass the partitions already condemned this activation).
pub fn fallback_victim_excluding(db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
    let mut best: Option<(PartitionId, u64)> = None;
    for id in db.collectable_partitions() {
        if exclude.contains(&id) {
            continue;
        }
        let used = db
            .partitions()
            .partition(id)
            .map(|p| p.used_bytes().get())
            .unwrap_or(0);
        if used == 0 {
            continue;
        }
        match best {
            Some((_, b)) if b >= used => {}
            _ => best = Some((id, used)),
        }
    }
    best.map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig};

    #[test]
    fn names_match_paper_rows() {
        assert_eq!(PolicyKind::UpdatedPointer.to_string(), "UpdatedPointer");
        assert_eq!(PolicyKind::PAPER.len(), 6);
        assert_eq!(PolicyKind::PAPER[0], PolicyKind::NoCollection);
        assert_eq!(PolicyKind::PAPER[5], PolicyKind::MostGarbage);
    }

    #[test]
    fn parsing_accepts_table_and_cli_forms() {
        assert_eq!(
            "UpdatedPointer".parse::<PolicyKind>().unwrap(),
            PolicyKind::UpdatedPointer
        );
        assert_eq!(
            "updated-pointer".parse::<PolicyKind>().unwrap(),
            PolicyKind::UpdatedPointer
        );
        assert_eq!(
            "most_garbage".parse::<PolicyKind>().unwrap(),
            PolicyKind::MostGarbage
        );
        assert_eq!(
            "oracle".parse::<PolicyKind>().unwrap(),
            PolicyKind::MostGarbage
        );
        assert!("bogus".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn every_kind_round_trips_through_its_name() {
        assert_eq!(PolicyKind::ALL.len(), 13);
        for kind in PolicyKind::ALL {
            assert_eq!(
                kind.name().parse::<PolicyKind>().unwrap(),
                kind,
                "{kind}: display name must parse back to the same variant"
            );
        }
        // The new derive-layer policies' CLI aliases.
        assert_eq!(
            "composite".parse::<PolicyKind>().unwrap(),
            PolicyKind::Composite
        );
        for alias in ["adaptive-meta", "adaptive", "meta"] {
            assert_eq!(
                alias.parse::<PolicyKind>().unwrap(),
                PolicyKind::AdaptiveMeta,
                "{alias}"
            );
        }
    }

    #[test]
    fn implementability() {
        assert!(!PolicyKind::MostGarbage.is_implementable());
        for k in PolicyKind::PAPER {
            if k != PolicyKind::MostGarbage {
                assert!(k.is_implementable(), "{k}");
            }
        }
    }

    #[test]
    fn fallback_prefers_fullest_partition() {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        assert_eq!(fallback_victim(&db), None, "fresh database");
        let r = db.create_root(Bytes(100), 2).unwrap();
        let home = db.objects().get(r).unwrap().addr.partition;
        assert_eq!(fallback_victim(&db), Some(home));
    }
}
