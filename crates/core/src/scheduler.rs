//! When to collect: the paper's overwrite-count trigger, plus alternative
//! triggers from its Table 1 design-space ("when more space is needed",
//! "when garbage is created", "opportunistically").
//!
//! The paper's evaluation uses [`Trigger::OverwriteCount`]: *"garbage
//! collection is triggered after a fixed number of pointer overwrites"*
//! (150–300 in its runs). Two properties make this the right trigger for a
//! policy comparison: overwrites correlate with garbage creation, and the
//! trigger is independent of the selection policy, so every policy
//! performs the same number of collections. The other variants exist for
//! the ablation studies.

use pgc_types::Bytes;

/// What causes a collection to become due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// After this many pointer overwrites (the paper's trigger; "when
    /// garbage is created").
    OverwriteCount(u64),
    /// After this many bytes of new allocation ("opportunistically", paced
    /// by allocation rather than mutation).
    AllocationBytes(Bytes),
    /// Whenever an allocation had to grow the database by a partition
    /// ("when more space is needed").
    PartitionGrowth,
}

/// Tracks application activity and fires collections per its [`Trigger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcScheduler {
    trigger: Trigger,
    overwrites_since: u64,
    bytes_since: Bytes,
    grew_since: bool,
    total_overwrites: u64,
    triggers: u64,
}

impl GcScheduler {
    /// Creates the paper's scheduler: fire every `threshold` overwrites
    /// (must be positive; the configuration validates this).
    pub fn new(threshold: u64) -> Self {
        Self::with_trigger(Trigger::OverwriteCount(threshold))
    }

    /// Creates a scheduler with an explicit trigger.
    pub fn with_trigger(trigger: Trigger) -> Self {
        if let Trigger::OverwriteCount(t) = trigger {
            debug_assert!(t > 0);
        }
        if let Trigger::AllocationBytes(b) = trigger {
            debug_assert!(!b.is_zero());
        }
        Self {
            trigger,
            overwrites_since: 0,
            bytes_since: Bytes::ZERO,
            grew_since: false,
            total_overwrites: 0,
            triggers: 0,
        }
    }

    /// The configured trigger.
    #[inline]
    pub fn trigger(&self) -> Trigger {
        self.trigger
    }

    /// Records one pointer overwrite; returns `true` when a collection is
    /// now due. The caller must invoke [`GcScheduler::collection_done`]
    /// after actually collecting (or deciding not to, for `NoCollection`),
    /// otherwise the trigger keeps reporting due.
    pub fn note_overwrite(&mut self) -> bool {
        self.overwrites_since += 1;
        self.total_overwrites += 1;
        self.is_due()
    }

    /// Records an allocation of `bytes` (and whether it grew the database
    /// by a partition); returns `true` when a collection is now due.
    pub fn note_allocation(&mut self, bytes: Bytes, grew: bool) -> bool {
        self.bytes_since += bytes;
        self.grew_since |= grew;
        self.is_due()
    }

    /// True when the trigger condition has been met since the last reset.
    pub fn is_due(&self) -> bool {
        match self.trigger {
            Trigger::OverwriteCount(t) => self.overwrites_since >= t,
            Trigger::AllocationBytes(b) => self.bytes_since >= b,
            Trigger::PartitionGrowth => self.grew_since,
        }
    }

    /// Resets the window after a collection attempt.
    pub fn collection_done(&mut self) {
        self.overwrites_since = 0;
        self.bytes_since = Bytes::ZERO;
        self.grew_since = false;
        self.triggers += 1;
    }

    /// Total overwrites observed over the scheduler's lifetime.
    #[inline]
    pub fn total_overwrites(&self) -> u64 {
        self.total_overwrites
    }

    /// Number of times the trigger fired (collections attempted).
    #[inline]
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// The overwrite threshold, when that is the trigger.
    pub fn threshold(&self) -> Option<u64> {
        match self.trigger {
            Trigger::OverwriteCount(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_at_threshold() {
        let mut s = GcScheduler::new(3);
        assert!(!s.note_overwrite());
        assert!(!s.note_overwrite());
        assert!(s.note_overwrite());
        assert!(s.is_due());
        s.collection_done();
        assert!(!s.is_due());
        assert_eq!(s.triggers(), 1);
        assert_eq!(s.threshold(), Some(3));
    }

    #[test]
    fn stays_due_until_reset() {
        let mut s = GcScheduler::new(2);
        s.note_overwrite();
        assert!(s.note_overwrite());
        assert!(s.note_overwrite(), "still due while not collected");
        s.collection_done();
        assert!(!s.is_due());
    }

    #[test]
    fn counts_accumulate() {
        let mut s = GcScheduler::new(2);
        for _ in 0..10 {
            if s.note_overwrite() {
                s.collection_done();
            }
        }
        assert_eq!(s.total_overwrites(), 10);
        assert_eq!(s.triggers(), 5);
    }

    #[test]
    fn allocation_trigger_fires_on_bytes() {
        let mut s = GcScheduler::with_trigger(Trigger::AllocationBytes(Bytes(1000)));
        assert!(!s.note_allocation(Bytes(400), false));
        assert!(!s.note_allocation(Bytes(400), false));
        assert!(s.note_allocation(Bytes(400), false));
        // Overwrites don't matter for this trigger.
        s.collection_done();
        assert!(!s.note_overwrite());
        assert_eq!(s.threshold(), None);
    }

    #[test]
    fn growth_trigger_fires_on_growth() {
        let mut s = GcScheduler::with_trigger(Trigger::PartitionGrowth);
        assert!(!s.note_allocation(Bytes(10_000), false));
        assert!(s.note_allocation(Bytes(100), true));
        s.collection_done();
        assert!(!s.is_due());
    }

    #[test]
    fn overwrite_trigger_ignores_allocation() {
        let mut s = GcScheduler::new(1);
        assert!(!s.note_allocation(Bytes(1 << 30), true));
        assert!(s.note_overwrite());
    }
}
