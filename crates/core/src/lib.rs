//! # pgc-core
//!
//! The paper's contribution: **partition selection policies** for
//! partitioned garbage collection of object databases, plus the trigger
//! machinery that decides *when* to collect.
//!
//! * [`policy`] — the [`SelectionPolicy`] trait: every honest policy is a
//!   [`pgc_odb::BarrierObserver`] over the typed [`pgc_odb::BarrierEvent`]
//!   stream (what a policy may observe) that must produce a victim
//!   partition on demand; plus [`PolicyKind`], the enumeration of every
//!   implemented policy.
//! * [`policies`] — the six policies evaluated in the paper
//!   (`NoCollection`, `Random`, `MutatedPartition`, `UpdatedPointer`,
//!   `WeightedPointer`, `MostGarbage`), extensions used for ablations
//!   (`RoundRobin`, `Occupancy`, `YnyMutated`, `Generational`,
//!   `UpdatedDecay`), and two built on the derive layer (`Composite`,
//!   `AdaptiveMeta`).
//! * [`mod@derive`] — the incremental-computation runtime behind the counter
//!   policies: revision-stamped per-partition inputs fed by bus events and
//!   memoized ranking queries recomputed only when a tracked input moved.
//! * [`scheduler`] — the paper's trigger: collect after a fixed number of
//!   pointer overwrites, independent of the selection policy so that every
//!   policy performs the same number of collections.
//! * [`collector`] — [`collector::Collector`], the pump that drains the
//!   database's event log to the policy, the scheduler, and any registered
//!   bystander observers (shadow scoreboards), and drives
//!   [`pgc_odb::Database::collect_partition`] when the trigger fires.
//!
//! The copying *mechanism* itself lives in `pgc-odb` (it is shared, fixed
//! machinery); this crate decides **which** partition it runs on and
//! **when**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod derive;
pub mod policies;
pub mod policy;
pub mod scheduler;

pub use collector::Collector;
pub use derive::DeriveStats;
pub use policies::{build_policy, build_policy_with};
pub use policy::{PolicyKind, PolicySwitch, SelectionPolicy};
pub use scheduler::{GcScheduler, Trigger};
