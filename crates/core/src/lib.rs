//! # pgc-core
//!
//! The paper's contribution: **partition selection policies** for
//! partitioned garbage collection of object databases, plus the trigger
//! machinery that decides *when* to collect.
//!
//! * [`policy`] — the [`SelectionPolicy`] trait (what a policy may observe:
//!   write-barrier events; what it must produce: a victim partition) and
//!   [`PolicyKind`], the enumeration of every implemented policy.
//! * [`policies`] — the six policies evaluated in the paper
//!   (`NoCollection`, `Random`, `MutatedPartition`, `UpdatedPointer`,
//!   `WeightedPointer`, `MostGarbage`) and two extensions used for
//!   ablations (`RoundRobin`, `Occupancy`).
//! * [`scheduler`] — the paper's trigger: collect after a fixed number of
//!   pointer overwrites, independent of the selection policy so that every
//!   policy performs the same number of collections.
//! * [`collector`] — [`collector::Collector`], the bundle of policy +
//!   scheduler that drives [`pgc_odb::Database::collect_partition`].
//!
//! The copying *mechanism* itself lives in `pgc-odb` (it is shared, fixed
//! machinery); this crate decides **which** partition it runs on and
//! **when**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod policies;
pub mod policy;
pub mod scheduler;

pub use collector::Collector;
pub use policies::build_policy;
pub use policy::{PolicyKind, SelectionPolicy};
pub use scheduler::{GcScheduler, Trigger};
