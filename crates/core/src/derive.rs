//! Incremental derived state over the barrier bus.
//!
//! Every counter policy in this crate reduces to the same shape: fold
//! barrier events into per-partition base values, then rank partitions by
//! some function of those values at selection time. This module factors
//! that shape out as a tiny incremental-computation runtime in the salsa
//! ingredient/revision idiom:
//!
//! - **Inputs** ([`InputKind`]) are dense per-partition `u64` tables fed by
//!   [`BarrierEvent`]s. Every change stamps the affected partition with the
//!   engine's current [`Revision`], so a consumer can ask "did this
//!   partition's value move since I last looked?" in O(1).
//! - **Queries** ([`QueryKind`]) are memoized rankings over one or more
//!   inputs. A query caches its arg-max and the revision it was verified
//!   at; re-selection is a cache hit when no tracked input advanced, a
//!   partial rescan over just the dirty partitions when the cached winner
//!   is untouched, and a full rescan otherwise.
//!
//! A separate **structure revision** advances on events that *grow* the
//! candidate set — partition growth and allocations that grew the
//! database — and forces a full rescan, because a brand-new partition has
//! no stamps for the partial path to notice. Collections rotate rather
//! than grow the set (the victim becomes the new designated empty
//! partition, the copy target rejoins the candidates), and rotation is a
//! *partial* invalidation: the engine stamps exactly the victim and the
//! target dirty, so a query whose cached winner survives the collection —
//! every shadow scoreboard, every meta-policy candidate, and any driver
//! under a batched or `AllocationBytes`-style trigger whose winner wasn't
//! the partition just collected — rescans two partitions instead of all
//! of them. (A driver whose memoized winner *was* the victim still takes
//! the full path: its score was reset, and scores can only be compared by
//! rescanning.) Every recomputation stays observable: per-query
//! hit/partial/full counters surface through [`DeriveStats`] into
//! telemetry, and the no-longer-voided memo shows up there as partial
//! counts displacing full ones.
//!
//! Ranking semantics are bit-identical to the hand-rolled scoreboards this
//! replaces: partitions scoring zero are skipped, ties break toward the
//! lowest partition id, and an all-zero board falls back to
//! [`crate::policy::fallback_victim`].

use pgc_odb::{BarrierEvent, Database};
use pgc_types::PartitionId;

/// A monotonically increasing change counter; one tick per applied event.
pub type Revision = u64;

/// The base input tables the engine knows how to maintain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// +1 to the *old target's* partition per pointer overwrite
    /// (`UpdatedPointer`'s table). Victim zeroed on collection.
    Overwrites,
    /// +1 to the owner's partition per pointer write, creation stores
    /// included (`MutatedPartition`'s table). Victim zeroed on collection.
    PointerWrites,
    /// +1 per pointer write *and* per data write (`YNY-Mutated`'s table).
    /// Victim zeroed on collection.
    Mutations,
    /// `2^(max_weight - w)` to the old target's partition per overwrite of
    /// a pointer to a weight-`w` object (`WeightedPointer`'s table).
    /// Victim zeroed on collection.
    WeightedOverwrites {
        /// The database's weight cap (16 in the paper).
        max_weight: u8,
    },
    /// +2 to the old target's partition per overwrite, every value halved
    /// at each collection (`UpdatedDecay`'s table). Victim zeroed first.
    DecayedOverwrites,
    /// Bytes resident per partition, maintained from
    /// allocation/copy/reclaim events. *Not* reset on collection — the
    /// copy/reclaim events already account for evacuation exactly.
    OccupancyBytes,
    /// The engine's allocation-clock value at the partition's most recent
    /// allocation (higher = allocated into more recently). Victim zeroed
    /// on collection.
    LastAllocation,
}

/// Handle to a registered input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputId(usize);

/// Handle to a registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryId(usize);

/// Weights for the [`QueryKind::Composite`] score. The defaults make the
/// three signals hierarchical on the paper's workload scale: overwrite
/// evidence dominates, occupancy breaks ties among similarly-overwritten
/// partitions, allocation recency breaks the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompositeWeights {
    /// Weight on the [`InputKind::Overwrites`] count.
    pub overwrites: u64,
    /// Weight on resident KiB ([`InputKind::OccupancyBytes`] / 1024).
    pub occupancy_kib: u64,
    /// Weight on the [`InputKind::LastAllocation`] clock value.
    pub recency: u64,
}

impl Default for CompositeWeights {
    fn default() -> Self {
        Self {
            overwrites: 4096,
            occupancy_kib: 16,
            recency: 1,
        }
    }
}

/// The derived rankings the engine knows how to memoize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Arg-max of a single input (all the paper's counter policies).
    MaxInput(InputId),
    /// Arg-max of `w·overwrites + w·occupancy_kib + w·recency`, computed
    /// in one pass over the three shared inputs with no extra scans.
    Composite {
        /// The [`InputKind::Overwrites`] input.
        overwrites: InputId,
        /// The [`InputKind::OccupancyBytes`] input.
        occupancy: InputId,
        /// The [`InputKind::LastAllocation`] input.
        recency: InputId,
        /// The blend weights.
        weights: CompositeWeights,
    },
}

impl QueryKind {
    fn deps(&self) -> [Option<InputId>; 3] {
        match *self {
            QueryKind::MaxInput(i) => [Some(i), None, None],
            QueryKind::Composite {
                overwrites,
                occupancy,
                recency,
                ..
            } => [Some(overwrites), Some(occupancy), Some(recency)],
        }
    }
}

/// Recompute counters for one query (and, summed, for a whole engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeriveStats {
    /// Registered inputs.
    pub inputs: u64,
    /// Registered queries.
    pub queries: u64,
    /// Events applied (the engine's current revision).
    pub revision: u64,
    /// Selections answered from the memo without any rescans.
    pub hits: u64,
    /// Selections answered by rescanning only dirty partitions.
    pub partial: u64,
    /// Selections that rescanned every collectable partition.
    pub full: u64,
}

impl DeriveStats {
    /// Accumulates another engine's counters (used by policies that own
    /// several engines, e.g. the meta-policy's candidates).
    pub fn absorb(&mut self, other: &DeriveStats) {
        self.inputs += other.inputs;
        self.queries += other.queries;
        self.revision = self.revision.max(other.revision);
        self.hits += other.hits;
        self.partial += other.partial;
        self.full += other.full;
    }

    /// Total selections answered.
    pub fn selections(&self) -> u64 {
        self.hits + self.partial + self.full
    }
}

/// One partition's slot in an input table. Value and stamp live side by
/// side so the barrier hot path touches one cache line per update.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    value: u64,
    stamp: Revision,
}

#[derive(Debug, Clone)]
struct Input {
    kind: InputKind,
    cells: Vec<Cell>,
    last_changed: Revision,
}

impl Input {
    fn new(kind: InputKind) -> Self {
        Self {
            kind,
            cells: Vec::new(),
            last_changed: 0,
        }
    }

    fn value(&self, p: PartitionId) -> u64 {
        self.cells.get(p.as_usize()).map_or(0, |c| c.value)
    }

    fn stamp(&self, p: PartitionId) -> Revision {
        self.cells.get(p.as_usize()).map_or(0, |c| c.stamp)
    }

    fn touch(&mut self, p: PartitionId, rev: Revision) -> &mut u64 {
        let idx = p.as_usize();
        if self.cells.len() <= idx {
            self.cells.resize(idx + 1, Cell::default());
        }
        self.last_changed = rev;
        let cell = &mut self.cells[idx];
        cell.stamp = rev;
        &mut cell.value
    }

    fn add(&mut self, p: PartitionId, amount: u64, rev: Revision) {
        if amount == 0 {
            return;
        }
        *self.touch(p, rev) += amount;
    }

    fn sub(&mut self, p: PartitionId, amount: u64, rev: Revision) {
        if amount == 0 {
            return;
        }
        let v = self.touch(p, rev);
        *v = v.saturating_sub(amount);
    }

    fn reset(&mut self, p: PartitionId, rev: Revision) {
        // Resetting an already-zero (or never-seen) partition is not a
        // change; leaving its stamp alone keeps dirty sets minimal.
        if self.value(p) != 0 {
            *self.touch(p, rev) = 0;
        }
    }

    /// Stamps `p` dirty at `rev` without changing its value. Used when the
    /// candidate set rotates (a collection swaps the victim out and the old
    /// empty partition back in) so memoized queries re-examine exactly the
    /// two rotated partitions on the partial path instead of voiding the
    /// whole memo.
    fn mark(&mut self, p: PartitionId, rev: Revision) {
        let _ = self.touch(p, rev);
    }

    fn halve_all(&mut self, rev: Revision) {
        for cell in &mut self.cells {
            if cell.value != 0 {
                cell.value /= 2;
                cell.stamp = rev;
                self.last_changed = rev;
            }
        }
    }

    fn update(&mut self, event: &BarrierEvent, rev: Revision, alloc_clock: u64) {
        match (self.kind, event) {
            (InputKind::Overwrites, BarrierEvent::PointerWrite(info)) => {
                if let Some(old) = info.old {
                    self.add(old.partition, 1, rev);
                }
            }
            (InputKind::PointerWrites, BarrierEvent::PointerWrite(info)) => {
                self.add(info.owner_partition, 1, rev);
            }
            (InputKind::Mutations, BarrierEvent::PointerWrite(info)) => {
                self.add(info.owner_partition, 1, rev);
            }
            (InputKind::Mutations, BarrierEvent::DataWrite { partition, .. }) => {
                self.add(*partition, 1, rev);
            }
            (InputKind::WeightedOverwrites { max_weight }, BarrierEvent::PointerWrite(info)) => {
                if let Some(old) = info.old {
                    let exp = max_weight.saturating_sub(old.weight.min(max_weight)) as u32;
                    self.add(old.partition, 1u64 << exp, rev);
                }
            }
            (InputKind::DecayedOverwrites, BarrierEvent::PointerWrite(info)) => {
                if let Some(old) = info.old {
                    self.add(old.partition, 2, rev);
                }
            }
            (InputKind::DecayedOverwrites, BarrierEvent::CollectionCompleted(outcome)) => {
                self.reset(outcome.victim, rev);
                self.halve_all(rev);
            }
            (
                InputKind::OccupancyBytes,
                BarrierEvent::Allocation {
                    partition, size, ..
                },
            ) => {
                self.add(*partition, size.get(), rev);
            }
            (InputKind::OccupancyBytes, BarrierEvent::ObjectCopied { from, to, size, .. }) => {
                self.sub(*from, size.get(), rev);
                self.add(*to, size.get(), rev);
            }
            (
                InputKind::OccupancyBytes,
                BarrierEvent::ObjectReclaimed {
                    partition, size, ..
                },
            ) => {
                self.sub(*partition, size.get(), rev);
            }
            (InputKind::LastAllocation, BarrierEvent::Allocation { partition, .. }) => {
                *self.touch(*partition, rev) = alloc_clock;
            }
            (
                InputKind::Overwrites
                | InputKind::PointerWrites
                | InputKind::Mutations
                | InputKind::WeightedOverwrites { .. }
                | InputKind::LastAllocation,
                BarrierEvent::CollectionCompleted(outcome),
            ) => {
                self.reset(outcome.victim, rev);
            }
            _ => {}
        }
    }
}

#[derive(Debug, Clone)]
struct Query {
    kind: QueryKind,
    /// The cached winner and its score (`None` = every score was zero).
    memo: Option<(PartitionId, u128)>,
    /// Whether `memo` has ever been computed.
    valid: bool,
    /// Engine revision the memo was last verified at.
    verified_at: Revision,
    /// Structure revision the memo was computed under.
    structure_at: Revision,
    stats: QueryStats,
}

#[derive(Debug, Clone, Copy, Default)]
struct QueryStats {
    hits: u64,
    partial: u64,
    full: u64,
}

fn score_of(kind: &QueryKind, inputs: &[Input], p: PartitionId) -> u128 {
    match *kind {
        QueryKind::MaxInput(i) => inputs[i.0].value(p) as u128,
        QueryKind::Composite {
            overwrites,
            occupancy,
            recency,
            weights,
        } => {
            let o = inputs[overwrites.0].value(p) as u128;
            let kib = (inputs[occupancy.0].value(p) / 1024) as u128;
            let r = inputs[recency.0].value(p) as u128;
            o * weights.overwrites as u128
                + kib * weights.occupancy_kib as u128
                + r * weights.recency as u128
        }
    }
}

fn full_scan(kind: &QueryKind, inputs: &[Input], db: &Database) -> Option<(PartitionId, u128)> {
    let mut best: Option<(PartitionId, u128)> = None;
    for p in db.collectable_partitions() {
        let s = score_of(kind, inputs, p);
        if s == 0 {
            continue;
        }
        match best {
            Some((_, b)) if b >= s => {}
            _ => best = Some((p, s)),
        }
    }
    best
}

/// The incremental engine: revision-stamped inputs plus memoized rankings.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    revision: Revision,
    structure: Revision,
    alloc_clock: u64,
    inputs: Vec<Input>,
    queries: Vec<Query>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an input table, deduplicating identical kinds so several
    /// queries (or policies sharing one engine) share the same table.
    pub fn input(&mut self, kind: InputKind) -> InputId {
        if let Some(i) = self.inputs.iter().position(|inp| inp.kind == kind) {
            return InputId(i);
        }
        self.inputs.push(Input::new(kind));
        InputId(self.inputs.len() - 1)
    }

    /// Registers a memoized ranking query.
    pub fn query(&mut self, kind: QueryKind) -> QueryId {
        for dep in kind.deps().into_iter().flatten() {
            assert!(
                dep.0 < self.inputs.len(),
                "query depends on unregistered input"
            );
        }
        self.queries.push(Query {
            kind,
            memo: None,
            valid: false,
            verified_at: 0,
            structure_at: 0,
            stats: QueryStats::default(),
        });
        QueryId(self.queries.len() - 1)
    }

    /// Folds one bus event into every registered input. Advances the
    /// revision unconditionally and the structure revision on events that
    /// *grow* the candidate set (partition growth, growing allocations).
    /// Collections rotate the candidate set instead of growing it, so they
    /// invalidate partially: the victim (now the designated empty
    /// partition) and the copy target (rejoining the candidates) are
    /// stamped dirty in every input, and memoized queries re-examine just
    /// those on [`Engine::select`]'s partial path.
    pub fn apply(&mut self, event: &BarrierEvent) {
        self.revision += 1;
        let rev = self.revision;
        match event {
            BarrierEvent::PartitionGrowth { .. } | BarrierEvent::Allocation { grew: true, .. } => {
                self.structure = rev
            }
            _ => {}
        }
        if matches!(event, BarrierEvent::Allocation { .. }) {
            self.alloc_clock += 1;
        }
        let clock = self.alloc_clock;
        for input in &mut self.inputs {
            input.update(event, rev, clock);
        }
        if let BarrierEvent::CollectionCompleted(outcome) = event {
            for input in &mut self.inputs {
                input.mark(outcome.victim, rev);
                input.mark(outcome.target, rev);
            }
        }
    }

    /// Current value of `input` for `partition`.
    pub fn value(&self, input: InputId, partition: PartitionId) -> u64 {
        self.inputs[input.0].value(partition)
    }

    /// Current (unmemoized) score of `query` for `partition`.
    pub fn score(&self, query: QueryId, partition: PartitionId) -> u128 {
        score_of(&self.queries[query.0].kind, &self.inputs, partition)
    }

    /// The revision stamp of `input` at `partition` (0 = never changed).
    pub fn stamp(&self, input: InputId, partition: PartitionId) -> Revision {
        self.inputs[input.0].stamp(partition)
    }

    /// Events applied so far.
    pub fn revision(&self) -> Revision {
        self.revision
    }

    /// Selects the ranking winner of `query`, memoized: a cache hit when
    /// nothing relevant changed, a rescan of just the dirty partitions when
    /// the cached winner's own inputs are untouched, a full rescan
    /// otherwise. Falls back to [`crate::policy::fallback_victim`] when
    /// every score is zero — identical semantics, partition by partition,
    /// to the hand-rolled scoreboard argmax it replaces.
    pub fn select(&mut self, query: QueryId, db: &Database) -> Option<PartitionId> {
        let q = &self.queries[query.0];
        let kind = q.kind;
        let deps = kind.deps();
        let deps_clean = deps
            .into_iter()
            .flatten()
            .all(|d| self.inputs[d.0].last_changed <= q.verified_at);
        let structure_clean = self.structure <= q.structure_at;

        let best = if q.valid && deps_clean && structure_clean {
            let memo = q.memo;
            self.queries[query.0].stats.hits += 1;
            memo
        } else {
            let winner_dirty = match q.memo {
                Some((w, _)) => deps
                    .into_iter()
                    .flatten()
                    .any(|d| self.inputs[d.0].stamp(w) > q.verified_at),
                None => false,
            };
            let best = if !q.valid || !structure_clean || winner_dirty {
                // Scores can decrease (victim resets, decay) and the
                // candidate set can rotate, so anything touching the cached
                // winner or the structure voids the memo entirely.
                self.queries[query.0].stats.full += 1;
                full_scan(&kind, &self.inputs, db)
            } else {
                // The cached winner's score is unchanged; only partitions
                // whose stamps advanced can displace it. Ascending id order
                // with a strict `>` (or equal-and-lower-id) comparison
                // reproduces the full scan's ties-break-low exactly.
                let verified_at = q.verified_at;
                let mut best = q.memo;
                for p in db.collectable_partitions() {
                    let dirty = deps
                        .into_iter()
                        .flatten()
                        .any(|d| self.inputs[d.0].stamp(p) > verified_at);
                    if !dirty {
                        continue;
                    }
                    let s = score_of(&kind, &self.inputs, p);
                    if s == 0 {
                        continue;
                    }
                    match best {
                        Some((w, b)) if b > s || (b == s && w <= p) => {}
                        _ => best = Some((p, s)),
                    }
                }
                self.queries[query.0].stats.partial += 1;
                best
            };
            let q = &mut self.queries[query.0];
            q.memo = best;
            q.valid = true;
            best
        };
        let q = &mut self.queries[query.0];
        q.verified_at = self.revision;
        q.structure_at = self.structure;
        debug_assert_eq!(
            best,
            full_scan(&kind, &self.inputs, db),
            "memoized ranking diverged from full scan"
        );
        best.map(|(p, _)| p)
            .or_else(|| crate::policy::fallback_victim(db))
    }

    /// The ranking winner of `query` among partitions *not* in `exclude`,
    /// by direct scan — same scoring rule and ties-break-low order as
    /// [`Engine::select`], same fallback when every eligible score is zero.
    ///
    /// Deliberately unmemoized and read-only: zone batches ask for at most
    /// a handful of follow-up picks per activation, far too rarely to
    /// justify a second memo, and leaving the query state untouched keeps
    /// the post-batch [`Engine::select`] fast path warm.
    pub fn select_excluding(
        &self,
        query: QueryId,
        db: &Database,
        exclude: &[PartitionId],
    ) -> Option<PartitionId> {
        let kind = self.queries[query.0].kind;
        let mut best: Option<(PartitionId, u128)> = None;
        for p in db.collectable_partitions() {
            if exclude.contains(&p) {
                continue;
            }
            let s = score_of(&kind, &self.inputs, p);
            if s == 0 {
                continue;
            }
            match best {
                Some((_, b)) if b >= s => {}
                _ => best = Some((p, s)),
            }
        }
        best.map(|(p, _)| p)
            .or_else(|| crate::policy::fallback_victim_excluding(db, exclude))
    }

    /// Aggregate recompute counters across every registered query.
    pub fn stats(&self) -> DeriveStats {
        let mut out = DeriveStats {
            inputs: self.inputs.len() as u64,
            queries: self.queries.len() as u64,
            revision: self.revision,
            ..DeriveStats::default()
        };
        for q in &self.queries {
            out.hits += q.stats.hits;
            out.partial += q.stats.partial;
            out.full += q.stats.full;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::{CollectionOutcome, PointerTarget, PointerWriteInfo};
    use pgc_types::{Bytes, DbConfig, Oid, SlotId};

    fn overwrite(old_partition: u32, weight: u8) -> BarrierEvent {
        BarrierEvent::PointerWrite(PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(0),
            slot: SlotId(0),
            old: Some(PointerTarget {
                oid: Oid(2),
                partition: PartitionId(old_partition),
                weight,
            }),
            new: None,
            during_creation: false,
        })
    }

    fn collected(victim: u32) -> BarrierEvent {
        BarrierEvent::CollectionCompleted(CollectionOutcome {
            victim: PartitionId(victim),
            target: PartitionId(0),
            live_objects: 0,
            live_bytes: Bytes::ZERO,
            garbage_objects: 0,
            garbage_bytes: Bytes::ZERO,
            forwarded_pointers: 0,
            gc_reads: 0,
            gc_writes: 0,
        })
    }

    fn db_with_two_partitions() -> Database {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        db
    }

    fn overwrite_engine() -> (Engine, InputId, QueryId) {
        let mut e = Engine::new();
        let i = e.input(InputKind::Overwrites);
        let q = e.query(QueryKind::MaxInput(i));
        (e, i, q)
    }

    #[test]
    fn inputs_accumulate_and_stamp() {
        let (mut e, i, _) = overwrite_engine();
        assert_eq!(e.value(i, PartitionId(2)), 0);
        e.apply(&overwrite(2, 3));
        e.apply(&overwrite(2, 3));
        assert_eq!(e.value(i, PartitionId(2)), 2);
        assert_eq!(e.stamp(i, PartitionId(2)), e.revision());
        assert_eq!(
            e.stamp(i, PartitionId(1)),
            0,
            "untouched partition unstamped"
        );
    }

    #[test]
    fn identical_input_kinds_are_shared() {
        let mut e = Engine::new();
        let a = e.input(InputKind::Overwrites);
        let b = e.input(InputKind::Overwrites);
        assert_eq!(a, b);
        let c = e.input(InputKind::WeightedOverwrites { max_weight: 16 });
        assert_ne!(a, c);
        // Distinct parameterizations are distinct tables.
        let d = e.input(InputKind::WeightedOverwrites { max_weight: 8 });
        assert_ne!(c, d);
    }

    #[test]
    fn select_picks_highest_and_skips_empty_partition() {
        let db = db_with_two_partitions();
        let (mut e, _, q) = overwrite_engine();
        let empty = db.empty_partition();
        e.apply(&overwrite(empty.0, 3)); // must be ignored (not collectable)
        e.apply(&overwrite(1, 3));
        e.apply(&overwrite(2, 3));
        e.apply(&overwrite(2, 3));
        assert_eq!(e.select(q, &db), Some(PartitionId(2)));
    }

    #[test]
    fn select_ties_break_low() {
        let db = db_with_two_partitions();
        let (mut e, _, q) = overwrite_engine();
        e.apply(&overwrite(2, 3));
        e.apply(&overwrite(1, 3));
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
    }

    #[test]
    fn select_falls_back_when_all_zero() {
        let db = db_with_two_partitions();
        let (mut e, _, q) = overwrite_engine();
        // Fallback picks the fullest used partition (P2 holds the spill).
        assert_eq!(e.select(q, &db), Some(PartitionId(2)));
    }

    #[test]
    fn unchanged_reselection_is_a_memo_hit() {
        let db = db_with_two_partitions();
        let (mut e, _, q) = overwrite_engine();
        e.apply(&overwrite(1, 3));
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        let s = e.stats();
        assert_eq!((s.full, s.hits), (1, 2), "{s:?}");
    }

    #[test]
    fn off_winner_changes_rescan_partially() {
        let db = db_with_two_partitions();
        let (mut e, _, q) = overwrite_engine();
        for _ in 0..5 {
            e.apply(&overwrite(1, 3));
        }
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        // P2 moves but stays below the cached winner: partial rescan.
        e.apply(&overwrite(2, 3));
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        // P2 overtakes: still a partial rescan, new winner.
        for _ in 0..10 {
            e.apply(&overwrite(2, 3));
        }
        assert_eq!(e.select(q, &db), Some(PartitionId(2)));
        let s = e.stats();
        assert_eq!((s.full, s.partial, s.hits), (1, 2, 0), "{s:?}");
    }

    #[test]
    fn collecting_the_cached_winner_forces_a_full_rescan() {
        let db = db_with_two_partitions();
        let (mut e, i, q) = overwrite_engine();
        e.apply(&overwrite(1, 3));
        e.apply(&overwrite(2, 3));
        e.apply(&overwrite(2, 3));
        assert_eq!(e.select(q, &db), Some(PartitionId(2)));
        e.apply(&collected(2));
        assert_eq!(e.value(i, PartitionId(2)), 0, "victim zeroed");
        // The reset touched the cached winner itself, so nothing short of
        // a full rescan can rank the survivors: full, new winner.
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        assert_eq!(e.stats().full, 2);
    }

    #[test]
    fn collecting_a_non_winner_invalidates_partially() {
        let db = db_with_two_partitions();
        let (mut e, i, q) = overwrite_engine();
        e.apply(&overwrite(1, 3));
        e.apply(&overwrite(1, 3));
        e.apply(&overwrite(2, 3));
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        // Collecting P2 rotates the candidate set but leaves the cached
        // winner untouched: the rotation stamps only the victim and the
        // copy target, so re-selection is a partial rescan, not a void.
        e.apply(&collected(2));
        assert_eq!(e.value(i, PartitionId(2)), 0, "victim zeroed");
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        let s = e.stats();
        assert_eq!((s.full, s.partial, s.hits), (1, 1, 0), "{s:?}");
    }

    #[test]
    fn weighted_and_decayed_inputs_match_their_policies() {
        let mut e = Engine::new();
        let w = e.input(InputKind::WeightedOverwrites { max_weight: 16 });
        let d = e.input(InputKind::DecayedOverwrites);
        e.apply(&overwrite(1, 2));
        assert_eq!(
            e.value(w, PartitionId(1)),
            16384,
            "paper's 2^(16-2) example"
        );
        assert_eq!(e.value(d, PartitionId(1)), 2);
        e.apply(&overwrite(1, 200));
        assert_eq!(
            e.value(w, PartitionId(1)),
            16385,
            "out-of-range weight clamps"
        );
        e.apply(&collected(9));
        assert_eq!(
            e.value(d, PartitionId(1)),
            2,
            "decay halves the doubled bump"
        );
        assert_eq!(
            e.value(w, PartitionId(1)),
            16385,
            "weighted input does not decay"
        );
    }

    #[test]
    fn occupancy_input_tracks_alloc_copy_reclaim() {
        let mut e = Engine::new();
        let occ = e.input(InputKind::OccupancyBytes);
        e.apply(&BarrierEvent::Allocation {
            oid: Oid(1),
            partition: PartitionId(1),
            size: Bytes(3000),
            grew: false,
        });
        assert_eq!(e.value(occ, PartitionId(1)), 3000);
        e.apply(&BarrierEvent::ObjectCopied {
            oid: Oid(1),
            from: PartitionId(1),
            to: PartitionId(2),
            size: Bytes(1000),
        });
        assert_eq!(e.value(occ, PartitionId(1)), 2000);
        assert_eq!(e.value(occ, PartitionId(2)), 1000);
        e.apply(&BarrierEvent::ObjectReclaimed {
            oid: Oid(1),
            partition: PartitionId(1),
            size: Bytes(2000),
        });
        assert_eq!(e.value(occ, PartitionId(1)), 0);
    }

    #[test]
    fn composite_blends_in_one_pass() {
        let db = db_with_two_partitions();
        let mut e = Engine::new();
        let o = e.input(InputKind::Overwrites);
        let occ = e.input(InputKind::OccupancyBytes);
        let r = e.input(InputKind::LastAllocation);
        let q = e.query(QueryKind::Composite {
            overwrites: o,
            occupancy: occ,
            recency: r,
            weights: CompositeWeights::default(),
        });
        // Lots of bytes in P2, but overwrite evidence on P1 dominates.
        e.apply(&BarrierEvent::Allocation {
            oid: Oid(1),
            partition: PartitionId(2),
            size: Bytes(100 * 1024),
            grew: false,
        });
        e.apply(&overwrite(1, 3));
        assert!(e.score(q, PartitionId(1)) > e.score(q, PartitionId(2)));
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
    }

    #[test]
    fn growing_allocation_bumps_structure_and_forces_rescan() {
        let db = db_with_two_partitions();
        let (mut e, _, q) = overwrite_engine();
        e.apply(&overwrite(1, 3));
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        e.apply(&BarrierEvent::PartitionGrowth { partitions: 5 });
        assert_eq!(e.select(q, &db), Some(PartitionId(1)));
        let s = e.stats();
        assert_eq!((s.full, s.hits), (2, 0), "growth voids the memo");
    }
}
