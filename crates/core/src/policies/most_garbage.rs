//! `MostGarbage`: the oracle policy (Sec. 3.1).
//!
//! "Using an oracle (provided by our simulation system), this policy always
//! correctly selects the partition that contains the most garbage." It is
//! near-optimal but not implementable — and, as the paper notes, not even
//! globally optimal: it greedily takes the best partition *now*, unaware
//! that another partition is about to fill with garbage.
//!
//! The oracle traversal costs no simulated I/O.

use crate::policy::{fallback_victim, PolicyKind, SelectionPolicy};
use pgc_odb::oracle::parallel::ParallelScratch;
use pgc_odb::oracle::{OracleReport, OracleScratch};
use pgc_odb::{oracle, BarrierEvent, BarrierObserver, Database};
use pgc_types::{Parallelism, PartitionId};

/// The oracle-backed near-optimal policy.
///
/// Owns its [`OracleScratch`] so that the per-trigger reachability pass —
/// the simulator's hottest loop under this policy — reuses the same working
/// memory for the entire run instead of allocating three hash sets each
/// time. Under [`Parallelism::Deterministic`] with two or more workers the
/// pass runs through the work-stealing parallel oracle instead, producing
/// a bit-identical report.
#[derive(Debug, Default)]
pub struct MostGarbage {
    scratch: OracleScratch,
    par_scratch: ParallelScratch,
    parallelism: Parallelism,
}

impl Clone for MostGarbage {
    fn clone(&self) -> Self {
        // Scratch memory is contentless between passes; a clone starts
        // with fresh scratch and the same parallelism mode.
        Self {
            scratch: OracleScratch::new(),
            par_scratch: ParallelScratch::new(),
            parallelism: self.parallelism,
        }
    }
}

impl MostGarbage {
    /// Creates the policy (serial oracle passes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many threads oracle passes may fan out over.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// One oracle pass through whichever engine the mode selects.
    fn analyze(&mut self, db: &Database) -> OracleReport {
        if self.parallelism.is_parallel() {
            oracle::parallel::analyze_parallel(
                db,
                &mut self.par_scratch,
                self.parallelism.worker_count(),
            )
        } else {
            oracle::analyze_with(db, &mut self.scratch)
        }
    }
}

impl BarrierObserver for MostGarbage {
    // The oracle needs no barrier hints: its knowledge comes from the
    // `select`-time database view.
    fn on_event(&mut self, _event: &BarrierEvent) {}
}

impl SelectionPolicy for MostGarbage {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MostGarbage
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        let report = self.analyze(db);
        report
            .most_garbage_partition(db.empty_partition())
            // With zero garbage anywhere, still collect something so every
            // policy performs the same number of collections (the paper's
            // fairness condition).
            .or_else(|| fallback_victim(db))
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        let report = self.analyze(db);
        report
            .most_garbage_partition_excluding(db.empty_partition(), exclude)
            .or_else(|| crate::policy::fallback_victim_excluding(db, exclude))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, SlotId};

    #[test]
    fn picks_the_partition_with_most_garbage() {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(8);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 3).unwrap();
        // A garbage-heavy spill partition.
        let (spill, _) = db.create_object(Bytes(8100), 2, r, SlotId(0)).unwrap();
        let spill_p = db.objects().get(spill).unwrap().addr.partition;
        db.write_slot(r, SlotId(0), None).unwrap(); // 8100 bytes die
                                                    // A small bit of garbage at home.
        let (tiny, _) = db.create_object(Bytes(100), 2, r, SlotId(1)).unwrap();
        let home = db.objects().get(tiny).unwrap().addr.partition;
        db.write_slot(r, SlotId(1), None).unwrap();
        assert_ne!(spill_p, home);
        let mut p = MostGarbage::new();
        assert_eq!(p.select(&db), Some(spill_p));
    }

    #[test]
    fn falls_back_when_no_garbage_exists() {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(8);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        let home = db.objects().get(r).unwrap().addr.partition;
        let mut p = MostGarbage::new();
        assert_eq!(p.select(&db), Some(home));
    }

    #[test]
    fn empty_database_yields_none() {
        let db = Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap();
        let mut p = MostGarbage::new();
        assert_eq!(p.select(&db), None);
    }
}
