//! `UpdatedPointer`: most overwritten pointers pointed into it (Sec. 3.1).
//!
//! The paper's winning policy, "based on the observation that when a
//! pointer is overwritten, the object it pointed to is more likely to
//! become garbage". For each overwrite, the partition of the *old* target
//! is credited; the partition with the most credits is collected. Cost is
//! essentially that of `MutatedPartition`: the overwritten value is on the
//! very page being written, so reading it is free.

use crate::derive::{DeriveStats, Engine, InputId, InputKind, QueryId, QueryKind};
use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The overwritten-pointer policy (the paper's best implementable policy).
#[derive(Debug, Clone)]
pub struct UpdatedPointer {
    engine: Engine,
    input: InputId,
    query: QueryId,
}

impl Default for UpdatedPointer {
    fn default() -> Self {
        Self::new()
    }
}

impl UpdatedPointer {
    /// Creates the policy: an [`InputKind::Overwrites`] table and the
    /// memoized arg-max over it.
    pub fn new() -> Self {
        let mut engine = Engine::new();
        let input = engine.input(InputKind::Overwrites);
        let query = engine.query(QueryKind::MaxInput(input));
        Self {
            engine,
            input,
            query,
        }
    }

    /// Current score of a partition (for tests and diagnostics).
    pub fn score(&self, p: PartitionId) -> u64 {
        self.engine.value(self.input, p)
    }
}

impl BarrierObserver for UpdatedPointer {
    fn on_event(&mut self, event: &BarrierEvent) {
        self.engine.apply(event);
    }
}

impl SelectionPolicy for UpdatedPointer {
    fn kind(&self) -> PolicyKind {
        PolicyKind::UpdatedPointer
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        self.engine.select(self.query, db)
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        self.engine.select_excluding(self.query, db, exclude)
    }

    fn victim_score(&self, partition: PartitionId) -> Option<f64> {
        Some(self.score(partition) as f64)
    }

    fn derive_stats(&self) -> Option<DeriveStats> {
        Some(self.engine.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::{CollectionOutcome, PointerTarget, PointerWriteInfo};
    use pgc_types::{Bytes, DbConfig, Oid, SlotId};

    fn overwrite(owner_partition: u32, old_partition: u32) -> BarrierEvent {
        BarrierEvent::PointerWrite(PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(owner_partition),
            slot: SlotId(0),
            old: Some(PointerTarget {
                oid: Oid(2),
                partition: PartitionId(old_partition),
                weight: 3,
            }),
            new: None,
            during_creation: false,
        })
    }

    fn fresh_store(owner_partition: u32) -> BarrierEvent {
        BarrierEvent::PointerWrite(PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(owner_partition),
            slot: SlotId(0),
            old: None,
            new: None,
            during_creation: true,
        })
    }

    fn db() -> Database {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        db
    }

    #[test]
    fn credits_old_targets_partition_not_owners() {
        let mut p = UpdatedPointer::new();
        p.on_event(&overwrite(1, 2));
        assert_eq!(p.score(PartitionId(1)), 0);
        assert_eq!(p.score(PartitionId(2)), 1);
    }

    #[test]
    fn creation_stores_do_not_count() {
        // The very property that makes this policy beat MutatedPartition.
        let mut p = UpdatedPointer::new();
        p.on_event(&fresh_store(1));
        p.on_event(&fresh_store(1));
        assert_eq!(p.score(PartitionId(1)), 0);
    }

    #[test]
    fn selects_most_overwritten_into() {
        let d = db();
        let mut p = UpdatedPointer::new();
        p.on_event(&overwrite(1, 2));
        p.on_event(&overwrite(1, 2));
        p.on_event(&overwrite(2, 1));
        assert_eq!(p.select(&d), Some(PartitionId(2)));
        p.on_event(&BarrierEvent::CollectionCompleted(CollectionOutcome {
            victim: PartitionId(2),
            target: PartitionId(0),
            live_objects: 0,
            live_bytes: Bytes::ZERO,
            garbage_objects: 0,
            garbage_bytes: Bytes::ZERO,
            forwarded_pointers: 0,
            gc_reads: 0,
            gc_writes: 0,
        }));
        assert_eq!(p.select(&d), Some(PartitionId(1)));
    }
}
