//! Per-partition score accumulation shared by the counter-based policies.
//!
//! `MutatedPartition`, `UpdatedPointer`, and `WeightedPointer` all reduce
//! to: bump a per-partition counter on certain barrier events, pick the
//! arg-max at selection time, and zero the collected partition's counter
//! afterwards. The paper stresses how cheap this is — "a small array that
//! can easily be maintained in memory" — and this type is exactly that
//! array.

use pgc_odb::Database;
use pgc_types::PartitionId;

/// A dense `partition id -> u64 score` table.
#[derive(Debug, Clone, Default)]
pub struct ScoreBoard {
    scores: Vec<u64>,
}

impl ScoreBoard {
    /// Creates an empty scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to `partition`'s score.
    pub fn bump(&mut self, partition: PartitionId, amount: u64) {
        let idx = partition.as_usize();
        if self.scores.len() <= idx {
            self.scores.resize(idx + 1, 0);
        }
        self.scores[idx] += amount;
    }

    /// Current score of `partition`.
    pub fn score(&self, partition: PartitionId) -> u64 {
        self.scores.get(partition.as_usize()).copied().unwrap_or(0)
    }

    /// Zeroes `partition`'s score (after it was collected).
    pub fn reset(&mut self, partition: PartitionId) {
        if let Some(s) = self.scores.get_mut(partition.as_usize()) {
            *s = 0;
        }
    }

    /// Halves every score (geometric decay; used by recency-weighted
    /// policy variants).
    pub fn decay_all(&mut self) {
        for s in &mut self.scores {
            *s /= 2;
        }
    }

    /// The collectable partition with the highest non-zero score, falling
    /// back to [`crate::policy::fallback_victim`] when every score is zero.
    /// Ties break toward the lowest partition id (deterministic).
    pub fn select_max(&self, db: &Database) -> Option<PartitionId> {
        let mut best: Option<(PartitionId, u64)> = None;
        for id in db.collectable_partitions() {
            let s = self.score(id);
            if s == 0 {
                continue;
            }
            match best {
                Some((_, b)) if b >= s => {}
                _ => best = Some((id, s)),
            }
        }
        best.map(|(p, _)| p)
            .or_else(|| crate::policy::fallback_victim(db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::Database;
    use pgc_types::{Bytes, DbConfig};

    fn db_with_two_partitions() -> Database {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        // Spill an object into a second partition.
        db.create_object(Bytes(4000), 2, r, pgc_types::SlotId(0))
            .unwrap();
        db
    }

    #[test]
    fn bump_and_score() {
        let mut sb = ScoreBoard::new();
        assert_eq!(sb.score(PartitionId(3)), 0);
        sb.bump(PartitionId(3), 5);
        sb.bump(PartitionId(3), 2);
        assert_eq!(sb.score(PartitionId(3)), 7);
        assert_eq!(sb.score(PartitionId(0)), 0);
    }

    #[test]
    fn reset_zeroes_one_partition_only() {
        let mut sb = ScoreBoard::new();
        sb.bump(PartitionId(1), 3);
        sb.bump(PartitionId(2), 4);
        sb.reset(PartitionId(2));
        assert_eq!(sb.score(PartitionId(1)), 3);
        assert_eq!(sb.score(PartitionId(2)), 0);
        // Resetting a never-seen partition is harmless.
        sb.reset(PartitionId(99));
    }

    #[test]
    fn decay_halves_everything() {
        let mut sb = ScoreBoard::new();
        sb.bump(PartitionId(1), 9);
        sb.bump(PartitionId(2), 2);
        sb.decay_all();
        assert_eq!(sb.score(PartitionId(1)), 4);
        assert_eq!(sb.score(PartitionId(2)), 1);
        sb.decay_all();
        assert_eq!(sb.score(PartitionId(2)), 0);
    }

    #[test]
    fn select_max_picks_highest_and_skips_empty_partition() {
        let db = db_with_two_partitions();
        let empty = db.empty_partition();
        let mut sb = ScoreBoard::new();
        sb.bump(empty, 1_000_000); // must be ignored
        sb.bump(PartitionId(1), 10);
        sb.bump(PartitionId(2), 20);
        assert_eq!(sb.select_max(&db), Some(PartitionId(2)));
    }

    #[test]
    fn select_max_ties_break_low() {
        let db = db_with_two_partitions();
        let mut sb = ScoreBoard::new();
        sb.bump(PartitionId(1), 10);
        sb.bump(PartitionId(2), 10);
        assert_eq!(sb.select_max(&db), Some(PartitionId(1)));
    }

    #[test]
    fn select_max_falls_back_when_all_zero() {
        let db = db_with_two_partitions();
        let sb = ScoreBoard::new();
        // Fallback picks the fullest used partition (P2 holds 4000 bytes).
        assert_eq!(sb.select_max(&db), Some(PartitionId(2)));
    }
}
