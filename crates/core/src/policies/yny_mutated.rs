//! `YNY-Mutated`: the original Yong/Naughton/Yu selection policy.
//!
//! The policy the paper's `MutatedPartition` *enhances*: it "selects the
//! partition that had been mutated the most, without regard to whether the
//! mutations were to the partition's pointers or to its data". Including
//! it lets the ablation benches quantify exactly what the paper's
//! enhancement (ignoring pure data mutations, which "cannot create
//! garbage") buys.

use crate::derive::{DeriveStats, Engine, InputId, InputKind, QueryId, QueryKind};
use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The all-mutations-count policy.
#[derive(Debug, Clone)]
pub struct YnyMutated {
    engine: Engine,
    input: InputId,
    query: QueryId,
}

impl Default for YnyMutated {
    fn default() -> Self {
        Self::new()
    }
}

impl YnyMutated {
    /// Creates the policy: an [`InputKind::Mutations`] table — the
    /// distinguishing feature is that data mutations count too — and the
    /// memoized arg-max over it.
    pub fn new() -> Self {
        let mut engine = Engine::new();
        let input = engine.input(InputKind::Mutations);
        let query = engine.query(QueryKind::MaxInput(input));
        Self {
            engine,
            input,
            query,
        }
    }

    /// Current score of a partition (for tests and diagnostics).
    pub fn score(&self, p: PartitionId) -> u64 {
        self.engine.value(self.input, p)
    }
}

impl BarrierObserver for YnyMutated {
    fn on_event(&mut self, event: &BarrierEvent) {
        self.engine.apply(event);
    }
}

impl SelectionPolicy for YnyMutated {
    fn kind(&self) -> PolicyKind {
        PolicyKind::YnyMutated
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        self.engine.select(self.query, db)
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        self.engine.select_excluding(self.query, db, exclude)
    }

    fn victim_score(&self, partition: PartitionId) -> Option<f64> {
        Some(self.score(partition) as f64)
    }

    fn derive_stats(&self) -> Option<DeriveStats> {
        Some(self.engine.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::PointerWriteInfo;
    use pgc_types::{Bytes, DbConfig, Oid, SlotId};

    fn pointer_write(owner_partition: u32) -> BarrierEvent {
        BarrierEvent::PointerWrite(PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(owner_partition),
            slot: SlotId(0),
            old: None,
            new: None,
            during_creation: false,
        })
    }

    fn data_write(partition: u32) -> BarrierEvent {
        BarrierEvent::DataWrite {
            oid: Oid(1),
            partition: PartitionId(partition),
        }
    }

    #[test]
    fn data_writes_count_unlike_the_enhanced_policy() {
        let mut yny = YnyMutated::new();
        let mut enhanced = crate::policies::MutatedPartition::new();
        yny.on_event(&data_write(1));
        enhanced.on_event(&data_write(1)); // ignored: the enhancement
        assert_eq!(yny.score(PartitionId(1)), 1);
        assert_eq!(enhanced.score(PartitionId(1)), 0);
    }

    #[test]
    fn pointer_writes_count_for_both() {
        let mut yny = YnyMutated::new();
        yny.on_event(&pointer_write(2));
        assert_eq!(yny.score(PartitionId(2)), 1);
    }

    #[test]
    fn data_heavy_partition_wins_selection() {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        let mut p = YnyMutated::new();
        p.on_event(&pointer_write(2));
        for _ in 0..5 {
            p.on_event(&data_write(1));
        }
        // Data-mutation-heavy P1 outranks pointer-mutated P2 — exactly the
        // mistake the paper's enhancement avoids.
        assert_eq!(p.select(&db), Some(PartitionId(1)));
    }
}
