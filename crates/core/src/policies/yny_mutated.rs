//! `YNY-Mutated`: the original Yong/Naughton/Yu selection policy.
//!
//! The policy the paper's `MutatedPartition` *enhances*: it "selects the
//! partition that had been mutated the most, without regard to whether the
//! mutations were to the partition's pointers or to its data". Including
//! it lets the ablation benches quantify exactly what the paper's
//! enhancement (ignoring pure data mutations, which "cannot create
//! garbage") buys.

use crate::policies::scoreboard::ScoreBoard;
use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{CollectionOutcome, Database, PointerWriteInfo};
use pgc_types::PartitionId;

/// The all-mutations-count policy.
#[derive(Debug, Clone, Default)]
pub struct YnyMutated {
    scores: ScoreBoard,
}

impl YnyMutated {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current score of a partition (for tests and diagnostics).
    pub fn score(&self, p: PartitionId) -> u64 {
        self.scores.score(p)
    }
}

impl SelectionPolicy for YnyMutated {
    fn kind(&self) -> PolicyKind {
        PolicyKind::YnyMutated
    }

    fn on_pointer_write(&mut self, info: &PointerWriteInfo) {
        self.scores.bump(info.owner_partition, 1);
    }

    fn on_data_write(&mut self, partition: PartitionId) {
        // The distinguishing feature: data mutations count too.
        self.scores.bump(partition, 1);
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        self.scores.select_max(db)
    }

    fn on_collection(&mut self, outcome: &CollectionOutcome) {
        self.scores.reset(outcome.victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, Oid, SlotId};

    fn pointer_write(owner_partition: u32) -> PointerWriteInfo {
        PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(owner_partition),
            slot: SlotId(0),
            old: None,
            new: None,
            during_creation: false,
        }
    }

    #[test]
    fn data_writes_count_unlike_the_enhanced_policy() {
        let mut yny = YnyMutated::new();
        let mut enhanced = crate::policies::MutatedPartition::new();
        yny.on_data_write(PartitionId(1));
        enhanced.on_data_write(PartitionId(1)); // default no-op
        assert_eq!(yny.score(PartitionId(1)), 1);
        assert_eq!(enhanced.score(PartitionId(1)), 0);
    }

    #[test]
    fn pointer_writes_count_for_both() {
        let mut yny = YnyMutated::new();
        yny.on_pointer_write(&pointer_write(2));
        assert_eq!(yny.score(PartitionId(2)), 1);
    }

    #[test]
    fn data_heavy_partition_wins_selection() {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        let mut p = YnyMutated::new();
        p.on_pointer_write(&pointer_write(2));
        for _ in 0..5 {
            p.on_data_write(PartitionId(1));
        }
        // Data-mutation-heavy P1 outranks pointer-mutated P2 — exactly the
        // mistake the paper's enhancement avoids.
        assert_eq!(p.select(&db), Some(PartitionId(1)));
    }
}
