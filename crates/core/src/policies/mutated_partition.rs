//! `MutatedPartition`: most pointer writes into it since its last
//! collection (Sec. 3.1).
//!
//! The paper's *enhancement* of the Yong/Naughton/Yu policy: only pointer
//! mutations count ("pure data mutations, which do not affect object
//! connectivity and, hence, cannot create garbage, are not considered").
//! The event stream this policy sees already excludes data writes — the
//! write barrier only fires for pointer stores — so its counter is bumped
//! on every event, *including* creation-time initialization. That inclusion
//! is deliberate: the paper identifies it as the policy's key weakness
//! ("it is influenced by the creation of new objects, which is not
//! correlated to the creation of garbage").

use crate::derive::{DeriveStats, Engine, InputId, InputKind, QueryId, QueryKind};
use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The mutation-count policy.
#[derive(Debug, Clone)]
pub struct MutatedPartition {
    engine: Engine,
    input: InputId,
    query: QueryId,
}

impl Default for MutatedPartition {
    fn default() -> Self {
        Self::new()
    }
}

impl MutatedPartition {
    /// Creates the policy: an [`InputKind::PointerWrites`] table —
    /// "increment the counter associated with the partition being written
    /// into" — and the memoized arg-max over it.
    pub fn new() -> Self {
        let mut engine = Engine::new();
        let input = engine.input(InputKind::PointerWrites);
        let query = engine.query(QueryKind::MaxInput(input));
        Self {
            engine,
            input,
            query,
        }
    }

    /// Current score of a partition (for tests and diagnostics).
    pub fn score(&self, p: PartitionId) -> u64 {
        self.engine.value(self.input, p)
    }
}

impl BarrierObserver for MutatedPartition {
    fn on_event(&mut self, event: &BarrierEvent) {
        self.engine.apply(event);
    }
}

impl SelectionPolicy for MutatedPartition {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MutatedPartition
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        self.engine.select(self.query, db)
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        self.engine.select_excluding(self.query, db, exclude)
    }

    fn victim_score(&self, partition: PartitionId) -> Option<f64> {
        Some(self.score(partition) as f64)
    }

    fn derive_stats(&self) -> Option<DeriveStats> {
        Some(self.engine.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::{CollectionOutcome, PointerTarget, PointerWriteInfo};
    use pgc_types::{Bytes, DbConfig, Oid, SlotId};

    fn info(owner_partition: u32, old: Option<u32>, during_creation: bool) -> BarrierEvent {
        BarrierEvent::PointerWrite(PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(owner_partition),
            slot: SlotId(0),
            old: old.map(|p| PointerTarget {
                oid: Oid(2),
                partition: PartitionId(p),
                weight: 3,
            }),
            new: None,
            during_creation,
        })
    }

    fn db() -> Database {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        db
    }

    #[test]
    fn counts_writes_by_owner_partition() {
        let mut p = MutatedPartition::new();
        p.on_event(&info(1, None, false));
        p.on_event(&info(1, Some(2), false));
        p.on_event(&info(2, None, false));
        assert_eq!(p.score(PartitionId(1)), 2);
        assert_eq!(p.score(PartitionId(2)), 1);
    }

    #[test]
    fn creation_time_stores_count_too() {
        // The documented weakness: creation inflates the counter.
        let mut p = MutatedPartition::new();
        p.on_event(&info(1, None, true));
        assert_eq!(p.score(PartitionId(1)), 1);
    }

    #[test]
    fn allocations_alone_do_not_score() {
        let mut p = MutatedPartition::new();
        p.on_event(&BarrierEvent::Allocation {
            oid: Oid(1),
            partition: PartitionId(1),
            size: Bytes(100),
            grew: false,
        });
        assert_eq!(p.score(PartitionId(1)), 0);
    }

    #[test]
    fn selects_most_mutated_and_resets_after_collection() {
        let d = db();
        let mut p = MutatedPartition::new();
        for _ in 0..5 {
            p.on_event(&info(1, None, false));
        }
        for _ in 0..3 {
            p.on_event(&info(2, None, false));
        }
        assert_eq!(p.select(&d), Some(PartitionId(1)));
        p.on_event(&BarrierEvent::CollectionCompleted(CollectionOutcome {
            victim: PartitionId(1),
            target: PartitionId(0),
            live_objects: 0,
            live_bytes: Bytes::ZERO,
            garbage_objects: 0,
            garbage_bytes: Bytes::ZERO,
            forwarded_pointers: 0,
            gc_reads: 0,
            gc_writes: 0,
        }));
        assert_eq!(p.score(PartitionId(1)), 0);
        assert_eq!(p.select(&d), Some(PartitionId(2)));
    }
}
