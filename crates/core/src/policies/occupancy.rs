//! `Occupancy` (extension, not in the paper): collect the partition with
//! the most allocated bytes.
//!
//! A cheap structural heuristic needing no write barrier at all: the
//! fullest partition has the most *potential* garbage. The ablation benches
//! use it to separate "knowing where writes happen" from "knowing where
//! data is".

use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The fullest-partition policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Occupancy;

impl Occupancy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl BarrierObserver for Occupancy {
    // Purely structural: everything it needs is in the `select`-time view.
    fn on_event(&mut self, _event: &BarrierEvent) {}
}

impl SelectionPolicy for Occupancy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Occupancy
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        // fallback_victim is exactly "most used bytes, ties low".
        crate::policy::fallback_victim(db)
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        crate::policy::fallback_victim_excluding(db, exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, SlotId};

    #[test]
    fn picks_fullest_partition() {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        let (spill, _) = db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        let spill_p = db.objects().get(spill).unwrap().addr.partition;
        let mut p = Occupancy::new();
        assert_eq!(p.select(&db), Some(spill_p));
    }
}
