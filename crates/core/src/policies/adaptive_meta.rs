//! `AdaptiveMeta` (extension): switch the driving policy mid-run.
//!
//! The 1994 paper compares fixed policies; its own shadow-scoreboard idea
//! (every policy can score the same barrier stream) begs the online
//! question: *which policy is earning its picks right now?* This
//! meta-policy runs a slate of candidate policies in-process — all observe
//! every bus event, all select at every activation — and keeps a
//! retrospective **garbage credit** per candidate: when partition `p` is
//! collected yielding `g` garbage bytes, every candidate with an
//! outstanding pick of `p` is credited (once; its pending picks of `p`
//! are cleared, and picks expire after `2·window` activations so stale
//! nominations cannot ride forever). Credit is split by timeliness — the
//! **early-bird rule**: the candidate(s) whose outstanding pick of `p` is
//! oldest earn the full `g`, later nominators earn `g/2`. The incumbent's
//! pick is always realized the moment it is made (age zero), so a
//! challenger that keeps identifying garbage-rich partitions *before* the
//! incumbent gets to them out-earns it roughly two-to-one — exactly the
//! evidence that switching would have held space lower. A challenger that
//! merely agrees with the incumbent ties on age, earns the same credit,
//! and never displaces it.
//!
//! Every `window` activations the slate is re-scored: if the best
//! challenger's credit beats the incumbent's by `margin_pct` (default
//! 150%), the challenger becomes the driver from the next activation on,
//! all credits are halved (old evidence fades), and a
//! [`PolicySwitch`] is recorded for the collector to broadcast as
//! [`pgc_odb::BarrierEvent::PolicySwitched`].

use crate::derive::DeriveStats;
use crate::policies::build_policy;
use crate::policy::{PolicyKind, PolicySwitch, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;
use std::fmt;

/// Default candidate slate: the paper's implementable counter policies
/// plus the structural baseline. Deliberately excludes `Random` (a shadow
/// of it would not replay its independent run) and the oracle.
pub const DEFAULT_CANDIDATES: [PolicyKind; 5] = [
    PolicyKind::UpdatedPointer,
    PolicyKind::MutatedPartition,
    PolicyKind::WeightedPointer,
    PolicyKind::UpdatedDecay,
    PolicyKind::Occupancy,
];

/// Default re-scoring window, in activations.
pub const DEFAULT_WINDOW: u64 = 8;

/// Default switch margin: a challenger needs `150%` of the incumbent's
/// credit to take over.
pub const DEFAULT_MARGIN_PCT: u64 = 150;

/// The adaptive meta-policy.
pub struct AdaptiveMeta {
    candidates: Vec<Box<dyn SelectionPolicy>>,
    /// Retrospective garbage credit per candidate, in bytes.
    credit: Vec<u64>,
    /// Outstanding picks per candidate: `(partition, activation picked)`.
    pending: Vec<Vec<(PartitionId, u64)>>,
    incumbent: usize,
    activation: u64,
    last_switch_at: u64,
    window: u64,
    margin_pct: u64,
    switches: Vec<PolicySwitch>,
}

impl AdaptiveMeta {
    /// Creates the meta-policy over [`DEFAULT_CANDIDATES`] with the
    /// default window and margin. `max_weight` parameterizes the
    /// `WeightedPointer` candidate.
    pub fn new(max_weight: u8) -> Self {
        Self::with_config(
            &DEFAULT_CANDIDATES,
            DEFAULT_WINDOW,
            DEFAULT_MARGIN_PCT,
            max_weight,
        )
    }

    /// Creates the meta-policy over an explicit candidate slate. The first
    /// candidate starts as incumbent. Candidates must be deterministic
    /// (no `Random`) and must not be `AdaptiveMeta` itself.
    pub fn with_config(
        candidates: &[PolicyKind],
        window: u64,
        margin_pct: u64,
        max_weight: u8,
    ) -> Self {
        assert!(!candidates.is_empty(), "meta-policy needs candidates");
        assert!(window >= 1, "window must be at least one activation");
        assert!(
            !candidates.contains(&PolicyKind::AdaptiveMeta),
            "meta-policy cannot nest itself"
        );
        let candidates: Vec<_> = candidates
            .iter()
            .map(|&k| build_policy(k, 0, max_weight))
            .collect();
        let n = candidates.len();
        Self {
            candidates,
            credit: vec![0; n],
            pending: vec![Vec::new(); n],
            incumbent: 0,
            activation: 0,
            last_switch_at: 0,
            window,
            margin_pct,
            switches: Vec::new(),
        }
    }

    /// The currently driving candidate.
    pub fn incumbent(&self) -> PolicyKind {
        self.candidates[self.incumbent].kind()
    }

    /// Garbage credit (bytes) accumulated by each candidate since the last
    /// credit halving.
    pub fn credits(&self) -> Vec<(PolicyKind, u64)> {
        self.candidates
            .iter()
            .zip(&self.credit)
            .map(|(c, &g)| (c.kind(), g))
            .collect()
    }

    fn settle_collection(&mut self, victim: PartitionId, garbage: u64) {
        let horizon = self.activation.saturating_sub(2 * self.window);
        // Early-bird credit: the candidate(s) whose outstanding pick of
        // the victim is oldest called it first and earn the full garbage;
        // later nominators — typically the incumbent, whose pick is always
        // realized at age zero — earn half. Without the timeliness split a
        // challenger's credit could never strictly exceed the incumbent's
        // (the incumbent nominates every realized victim), and the switch
        // rule would be unreachable in driver mode.
        let earliest = (0..self.candidates.len())
            .filter_map(|i| {
                self.pending[i]
                    .iter()
                    .filter(|&&(p, _)| p == victim)
                    .map(|&(_, a)| a)
                    .min()
            })
            .min();
        for i in 0..self.candidates.len() {
            let first_pick = self.pending[i]
                .iter()
                .filter(|&&(p, _)| p == victim)
                .map(|&(_, a)| a)
                .min();
            self.pending[i].retain(|&(p, a)| p != victim && a >= horizon);
            if let Some(a) = first_pick {
                self.credit[i] += if Some(a) == earliest {
                    garbage
                } else {
                    garbage / 2
                };
            }
        }
        self.maybe_switch();
    }

    fn maybe_switch(&mut self) {
        if self.activation.saturating_sub(self.last_switch_at) < self.window {
            return;
        }
        // Best challenger, ties toward the lowest slate index.
        let best = (0..self.candidates.len())
            .max_by_key(|&i| (self.credit[i], std::cmp::Reverse(i)))
            .expect("non-empty slate");
        if best == self.incumbent || self.credit[best] == 0 {
            return;
        }
        if self.credit[best] * 100 < self.credit[self.incumbent] * self.margin_pct {
            return;
        }
        self.switches.push(PolicySwitch {
            activation: self.activation,
            from: self.candidates[self.incumbent].kind(),
            to: self.candidates[best].kind(),
        });
        self.incumbent = best;
        self.last_switch_at = self.activation;
        // Old evidence fades; the new incumbent must keep earning.
        for c in &mut self.credit {
            *c /= 2;
        }
    }
}

impl fmt::Debug for AdaptiveMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveMeta")
            .field("incumbent", &self.incumbent())
            .field("activation", &self.activation)
            .field("credits", &self.credits())
            .field("window", &self.window)
            .field("margin_pct", &self.margin_pct)
            .finish()
    }
}

impl BarrierObserver for AdaptiveMeta {
    fn on_event(&mut self, event: &BarrierEvent) {
        for c in &mut self.candidates {
            c.on_event(event);
        }
        match *event {
            BarrierEvent::TriggerTick { activation } => self.activation = activation,
            BarrierEvent::CollectionCompleted(outcome) => {
                self.settle_collection(outcome.victim, outcome.garbage_bytes.get());
            }
            _ => {}
        }
    }
}

impl SelectionPolicy for AdaptiveMeta {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AdaptiveMeta
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        // Every candidate nominates; the incumbent's pick is realized.
        let activation = self.activation;
        let mut chosen = None;
        for (i, c) in self.candidates.iter_mut().enumerate() {
            let pick = c.select(db);
            if let Some(p) = pick {
                self.pending[i].push((p, activation));
            }
            if i == self.incumbent {
                chosen = pick;
            }
        }
        chosen
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        // Follow-up picks inside a zone batch: only the incumbent re-ranks.
        // Nominations happen once per activation, in `select` — letting
        // every candidate nominate again here would double-credit them.
        self.candidates[self.incumbent].select_excluding(db, exclude)
    }

    fn victim_score(&self, partition: PartitionId) -> Option<f64> {
        self.candidates[self.incumbent].victim_score(partition)
    }

    fn take_switches(&mut self) -> Vec<PolicySwitch> {
        std::mem::take(&mut self.switches)
    }

    fn derive_stats(&self) -> Option<DeriveStats> {
        let mut out: Option<DeriveStats> = None;
        for c in &self.candidates {
            if let Some(s) = c.derive_stats() {
                out.get_or_insert_with(DeriveStats::default).absorb(&s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::CollectionOutcome;
    use pgc_types::{Bytes, DbConfig, Oid, SlotId};

    fn tick(activation: u64) -> BarrierEvent {
        BarrierEvent::TriggerTick { activation }
    }

    fn collected(victim: u32, garbage: u64) -> BarrierEvent {
        BarrierEvent::CollectionCompleted(CollectionOutcome {
            victim: PartitionId(victim),
            target: PartitionId(0),
            live_objects: 0,
            live_bytes: Bytes::ZERO,
            garbage_objects: 1,
            garbage_bytes: Bytes(garbage),
            forwarded_pointers: 0,
            gc_reads: 0,
            gc_writes: 0,
        })
    }

    fn overwrite(old_partition: u32) -> BarrierEvent {
        BarrierEvent::PointerWrite(pgc_odb::PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(3),
            slot: SlotId(0),
            old: Some(pgc_odb::PointerTarget {
                oid: Oid(2),
                partition: PartitionId(old_partition),
                weight: 3,
            }),
            new: None,
            during_creation: false,
        })
    }

    fn db() -> Database {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        db
    }

    #[test]
    fn starts_on_the_first_candidate() {
        let p = AdaptiveMeta::new(16);
        assert_eq!(p.incumbent(), PolicyKind::UpdatedPointer);
        assert_eq!(p.credits().len(), DEFAULT_CANDIDATES.len());
    }

    #[test]
    fn realized_picks_earn_credit() {
        let d = db();
        let mut p = AdaptiveMeta::new(16);
        p.on_event(&overwrite(2));
        p.on_event(&tick(1));
        assert_eq!(p.select(&d), Some(PartitionId(2)));
        p.on_event(&collected(2, 1000));
        let credits = p.credits();
        // Every candidate that nominated P2 (they all do here: overwrite
        // hints or fallback-to-fullest) is credited the same 1000 bytes.
        assert!(credits
            .iter()
            .any(|&(k, g)| k == PolicyKind::UpdatedPointer && g == 1000));
    }

    #[test]
    fn switches_when_a_challenger_outearns_the_incumbent() {
        let d = db();
        let mut p = AdaptiveMeta::with_config(
            &[PolicyKind::UpdatedPointer, PolicyKind::Occupancy],
            2,
            150,
            16,
        );
        // The incumbent (UpdatedPointer) keeps nominating P1 (overwrite
        // hints), but the realized collections of P1 yield nothing, while
        // Occupancy's nominations of P2 pay off when P2 is collected.
        for a in 1..=4u64 {
            p.on_event(&overwrite(1));
            p.on_event(&tick(a));
            let _ = p.select(&d);
            // Driver collects P1 (incumbent's pick): zero garbage.
            p.on_event(&collected(1, 0));
            // A later collection reaches P2 with real garbage.
            p.on_event(&collected(2, 5000));
        }
        assert_eq!(p.incumbent(), PolicyKind::Occupancy);
        let switches = p.take_switches();
        assert_eq!(switches.len(), 1, "{switches:?}");
        assert_eq!(switches[0].from, PolicyKind::UpdatedPointer);
        assert_eq!(switches[0].to, PolicyKind::Occupancy);
        assert!(p.take_switches().is_empty(), "drain empties the log");
    }

    fn write_owned_by(owner_partition: u32, old_partition: Option<u32>) -> BarrierEvent {
        BarrierEvent::PointerWrite(pgc_odb::PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(owner_partition),
            slot: SlotId(0),
            old: old_partition.map(|p| pgc_odb::PointerTarget {
                oid: Oid(2),
                partition: PartitionId(p),
                weight: 3,
            }),
            new: None,
            during_creation: false,
        })
    }

    #[test]
    fn early_bird_earns_full_credit_late_nominators_half() {
        let d = db();
        // Window 100: no switch can interfere with the credit arithmetic.
        let mut p = AdaptiveMeta::with_config(
            &[PolicyKind::MutatedPartition, PolicyKind::UpdatedPointer],
            100,
            150,
            16,
        );
        // Activation 1: the overwrite's old target is in P2 (UpdatedPointer
        // nominates P2) but its owner sits in P1 (MutatedPartition
        // nominates P1).
        p.on_event(&write_owned_by(1, Some(2)));
        p.on_event(&tick(1));
        let _ = p.select(&d);
        // Activation 2: two writes owned by P2 flip MutatedPartition's
        // argmax (P2:2 over P1:1) — it now nominates P2 too, one
        // activation after UpdatedPointer called it.
        p.on_event(&write_owned_by(2, None));
        p.on_event(&write_owned_by(2, None));
        p.on_event(&tick(2));
        let _ = p.select(&d);
        p.on_event(&collected(2, 4000));
        let credits = p.credits();
        assert!(
            credits.contains(&(PolicyKind::UpdatedPointer, 4000)),
            "earliest nominator earns the full garbage: {credits:?}"
        );
        assert!(
            credits.contains(&(PolicyKind::MutatedPartition, 2000)),
            "late nominator earns half: {credits:?}"
        );
    }

    #[test]
    fn early_bird_outearns_the_incumbent_and_takes_over() {
        let d = db();
        let mut p = AdaptiveMeta::with_config(
            &[PolicyKind::Occupancy, PolicyKind::UpdatedPointer],
            2,
            150,
            16,
        );
        // The incumbent (Occupancy) keeps realizing its fullest-partition
        // pick of P2 for trickle garbage, while UpdatedPointer's overwrite
        // hints flag P1 — and P1's collections pay 8x more. The challenger
        // out-earns the incumbent past the 150% margin and takes over.
        for a in 1..=4u64 {
            p.on_event(&overwrite(1));
            p.on_event(&tick(a));
            let _ = p.select(&d);
            p.on_event(&collected(2, 500));
            p.on_event(&collected(1, 4000));
        }
        assert_eq!(p.incumbent(), PolicyKind::UpdatedPointer, "{p:?}");
        let switches = p.take_switches();
        assert!(!switches.is_empty());
        assert_eq!(switches[0].from, PolicyKind::Occupancy);
        assert_eq!(switches[0].to, PolicyKind::UpdatedPointer);
    }

    #[test]
    fn no_switch_inside_the_window_or_below_margin() {
        let d = db();
        let mut p = AdaptiveMeta::with_config(
            &[PolicyKind::UpdatedPointer, PolicyKind::Occupancy],
            100,
            150,
            16,
        );
        for a in 1..=5u64 {
            p.on_event(&tick(a));
            let _ = p.select(&d);
            p.on_event(&collected(2, 5000));
        }
        assert_eq!(
            p.incumbent(),
            PolicyKind::UpdatedPointer,
            "window not reached"
        );
        assert!(p.take_switches().is_empty());
    }

    #[test]
    fn aggregates_candidate_derive_stats() {
        let d = db();
        let mut p = AdaptiveMeta::new(16);
        p.on_event(&overwrite(1));
        p.on_event(&tick(1));
        let _ = p.select(&d);
        let s = p.derive_stats().unwrap();
        // Four of the five default candidates are engine-backed.
        assert_eq!(s.queries, 4);
        assert_eq!(s.selections(), 4);
    }
}
