//! The concrete selection policies.
//!
//! Paper policies (Sec. 3.1): [`NoCollection`], [`Random`],
//! [`MutatedPartition`], [`UpdatedPointer`], [`WeightedPointer`],
//! [`MostGarbage`]. Baseline from related work: [`YnyMutated`] (the
//! unenhanced Yong/Naughton/Yu policy). Extensions for ablation studies:
//! [`RoundRobin`], [`Occupancy`], [`Generational`], [`UpdatedDecay`].
//! Extensions built on the [`crate::derive`] layer: [`Composite`] (blended
//! score, one pass) and [`AdaptiveMeta`] (online policy switching).
//!
//! The counter policies all keep their per-partition state in a
//! [`crate::derive::Engine`] — revision-stamped inputs plus a memoized
//! arg-max — so each policy body is just an input registration and a
//! scoring rule.

mod adaptive_meta;
mod composite;
mod generational;
mod most_garbage;
mod mutated_partition;
mod no_collection;
mod occupancy;
mod random;
mod round_robin;
mod updated_decay;
mod updated_pointer;
mod weighted_pointer;
mod yny_mutated;

pub use adaptive_meta::{AdaptiveMeta, DEFAULT_CANDIDATES, DEFAULT_MARGIN_PCT, DEFAULT_WINDOW};
pub use composite::Composite;
pub use generational::Generational;
pub use most_garbage::MostGarbage;
pub use mutated_partition::MutatedPartition;
pub use no_collection::NoCollection;
pub use occupancy::Occupancy;
pub use random::Random;
pub use round_robin::RoundRobin;
pub use updated_decay::UpdatedDecay;
pub use updated_pointer::UpdatedPointer;
pub use weighted_pointer::WeightedPointer;
pub use yny_mutated::YnyMutated;

use crate::policy::{PolicyKind, SelectionPolicy};

/// Constructs a boxed policy of the given kind.
///
/// `seed` feeds the `Random` policy's generator (other policies are
/// deterministic and ignore it); `max_weight` parameterizes
/// `WeightedPointer`'s exponential scoring and should match the database's
/// [`pgc_types::DbConfig::max_weight`].
pub fn build_policy(kind: PolicyKind, seed: u64, max_weight: u8) -> Box<dyn SelectionPolicy> {
    match kind {
        PolicyKind::NoCollection => Box::new(NoCollection::new()),
        PolicyKind::Random => Box::new(Random::new(seed)),
        PolicyKind::MutatedPartition => Box::new(MutatedPartition::new()),
        PolicyKind::UpdatedPointer => Box::new(UpdatedPointer::new()),
        PolicyKind::WeightedPointer => Box::new(WeightedPointer::new(max_weight)),
        PolicyKind::MostGarbage => Box::new(MostGarbage::new()),
        PolicyKind::RoundRobin => Box::new(RoundRobin::new()),
        PolicyKind::Occupancy => Box::new(Occupancy::new()),
        PolicyKind::YnyMutated => Box::new(YnyMutated::new()),
        PolicyKind::Generational => Box::new(Generational::new()),
        PolicyKind::UpdatedDecay => Box::new(UpdatedDecay::new()),
        PolicyKind::Composite => Box::new(Composite::new()),
        PolicyKind::AdaptiveMeta => Box::new(AdaptiveMeta::new(max_weight)),
    }
}

/// Like [`build_policy`], additionally configuring intra-run parallelism
/// for policies with parallel kernels.
///
/// Today only the oracle-backed `MostGarbage` has one (its reachability
/// pass); every other policy is scoreboard-driven with no hot kernel, so
/// the knob is ignored — which is also why `Deterministic(n)` is trivially
/// bit-identical to `Serial` for them.
pub fn build_policy_with(
    kind: PolicyKind,
    seed: u64,
    max_weight: u8,
    parallelism: pgc_types::Parallelism,
) -> Box<dyn SelectionPolicy> {
    match kind {
        PolicyKind::MostGarbage => Box::new(MostGarbage::new().with_parallelism(parallelism)),
        _ => build_policy(kind, seed, max_weight),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_matching_kinds() {
        for kind in PolicyKind::ALL {
            let p = build_policy(kind, 7, 16);
            assert_eq!(p.kind(), kind);
            assert_eq!(p.name(), kind.name());
        }
    }
}
