//! `Composite` (extension): a weighted blend of overwrite evidence,
//! occupancy, and allocation recency.
//!
//! The paper evaluates its policies one signal at a time; the derive layer
//! makes combining them cheap: three shared input tables, one memoized
//! ranking, no extra scans at selection time. The blend is
//! `w₁·overwrites + w₂·occupancy_kib + w₃·recency` with defaults that make
//! the signals hierarchical — overwrite hints (the paper's best signal)
//! dominate, resident bytes break ties among similarly-hinted partitions
//! (more bytes = more potential garbage), and allocation recency breaks
//! the rest. Like every counter policy it zeroes the victim's counters on
//! collection and falls back to the fullest partition when all scores are
//! zero.

use crate::derive::{
    CompositeWeights, DeriveStats, Engine, InputId, InputKind, QueryId, QueryKind,
};
use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The blended-score policy.
#[derive(Debug, Clone)]
pub struct Composite {
    engine: Engine,
    query: QueryId,
    overwrites: InputId,
}

impl Default for Composite {
    fn default() -> Self {
        Self::new()
    }
}

impl Composite {
    /// Creates the policy with [`CompositeWeights::default`].
    pub fn new() -> Self {
        Self::with_weights(CompositeWeights::default())
    }

    /// Creates the policy with explicit blend weights.
    pub fn with_weights(weights: CompositeWeights) -> Self {
        let mut engine = Engine::new();
        let overwrites = engine.input(InputKind::Overwrites);
        let occupancy = engine.input(InputKind::OccupancyBytes);
        let recency = engine.input(InputKind::LastAllocation);
        let query = engine.query(QueryKind::Composite {
            overwrites,
            occupancy,
            recency,
            weights,
        });
        Self {
            engine,
            query,
            overwrites,
        }
    }

    /// The blended score of a partition (for tests and diagnostics).
    pub fn score(&self, p: PartitionId) -> u128 {
        self.engine.score(self.query, p)
    }

    /// The raw overwrite count feeding the blend (for tests).
    pub fn overwrites(&self, p: PartitionId) -> u64 {
        self.engine.value(self.overwrites, p)
    }
}

impl BarrierObserver for Composite {
    fn on_event(&mut self, event: &BarrierEvent) {
        self.engine.apply(event);
    }
}

impl SelectionPolicy for Composite {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Composite
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        self.engine.select(self.query, db)
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        self.engine.select_excluding(self.query, db, exclude)
    }

    fn victim_score(&self, partition: PartitionId) -> Option<f64> {
        Some(self.score(partition) as f64)
    }

    fn derive_stats(&self) -> Option<DeriveStats> {
        Some(self.engine.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::{PointerTarget, PointerWriteInfo};
    use pgc_types::{Bytes, DbConfig, Oid, SlotId};

    fn overwrite(old_partition: u32) -> BarrierEvent {
        BarrierEvent::PointerWrite(PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(0),
            slot: SlotId(0),
            old: Some(PointerTarget {
                oid: Oid(2),
                partition: PartitionId(old_partition),
                weight: 3,
            }),
            new: None,
            during_creation: false,
        })
    }

    fn alloc(partition: u32, size: u64) -> BarrierEvent {
        BarrierEvent::Allocation {
            oid: Oid(7),
            partition: PartitionId(partition),
            size: Bytes(size),
            grew: false,
        }
    }

    fn db() -> Database {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        db
    }

    #[test]
    fn overwrite_evidence_dominates_occupancy() {
        let d = db();
        let mut p = Composite::new();
        // 200 KiB resident in P2 vs. a single overwrite hint on P1: the
        // default weights put the hint on top (4096 > 200·16).
        p.on_event(&alloc(2, 200 * 1024));
        p.on_event(&overwrite(1));
        assert_eq!(p.overwrites(PartitionId(1)), 1);
        assert!(p.score(PartitionId(1)) > p.score(PartitionId(2)));
        assert_eq!(p.select(&d), Some(PartitionId(1)));
    }

    #[test]
    fn occupancy_breaks_overwrite_ties() {
        let d = db();
        let mut p = Composite::new();
        p.on_event(&overwrite(1));
        p.on_event(&overwrite(2));
        p.on_event(&alloc(2, 64 * 1024));
        assert_eq!(p.select(&d), Some(PartitionId(2)));
    }

    #[test]
    fn no_signal_falls_back_to_fullest() {
        let d = db();
        let mut p = Composite::new();
        // P2 holds the 4000-byte spill.
        assert_eq!(p.select(&d), Some(PartitionId(2)));
    }

    #[test]
    fn custom_weights_flip_the_blend() {
        let d = db();
        let mut p = Composite::with_weights(CompositeWeights {
            overwrites: 1,
            occupancy_kib: 1_000_000,
            recency: 0,
        });
        p.on_event(&alloc(2, 64 * 1024));
        for _ in 0..100 {
            p.on_event(&overwrite(1));
        }
        assert_eq!(
            p.select(&d),
            Some(PartitionId(2)),
            "occupancy-first weights"
        );
    }

    #[test]
    fn exposes_derive_stats() {
        let d = db();
        let mut p = Composite::new();
        p.on_event(&overwrite(1));
        p.select(&d);
        p.select(&d);
        let s = p.derive_stats().unwrap();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.queries, 1);
        assert_eq!(s.selections(), 2);
        assert!(s.hits >= 1, "{s:?}");
    }
}
