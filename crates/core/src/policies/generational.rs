//! `Generational` (extension): the language-system heuristic transplanted.
//!
//! Programming-language collectors overwhelmingly segregate by age and
//! collect the *youngest* objects, because "objects of similar age usually
//! exhibit similar lifetimes" and most die young. The paper's background
//! section argues no such universal criterion has emerged for object
//! databases; this policy lets the benches test that argument directly:
//! collect the partition whose resident objects have the youngest mean
//! allocation time.
//!
//! Implementability note: a real system would keep a per-partition running
//! sum of allocation stamps (two counters per partition, maintained at
//! allocation and collection time). The simulation computes the mean from
//! the object table, which is equivalent in outcome.

use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The youngest-partition policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Generational;

impl Generational {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl BarrierObserver for Generational {
    // Mean birth is recomputed from the object table at `select`; a real
    // system would instead maintain two counters per partition from
    // `Allocation`/`ObjectCopied`/`ObjectReclaimed` events.
    fn on_event(&mut self, _event: &BarrierEvent) {}
}

impl SelectionPolicy for Generational {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Generational
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        self.select_excluding(db, &[])
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        let objects = db.objects();
        let mut best: Option<(PartitionId, f64)> = None;
        for id in db.collectable_partitions() {
            if exclude.contains(&id) {
                continue;
            }
            let mut count = 0u64;
            let mut sum = 0u128;
            for oid in objects.members(id) {
                if let Ok(rec) = objects.get(oid) {
                    sum += rec.birth as u128;
                    count += 1;
                }
            }
            if count == 0 {
                continue;
            }
            let mean_birth = sum as f64 / count as f64;
            match best {
                // Higher mean birth = younger partition.
                Some((_, b)) if b >= mean_birth => {}
                _ => best = Some((id, mean_birth)),
            }
        }
        best.map(|(p, _)| p)
            .or_else(|| crate::policy::fallback_victim_excluding(db, exclude))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, SlotId};

    #[test]
    fn picks_the_partition_with_youngest_mean_allocation() {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        // Old objects fill P1 first...
        let r = db.create_root(Bytes(100), 3).unwrap();
        db.create_object(Bytes(1500), 2, r, SlotId(0)).unwrap();
        db.create_object(Bytes(1500), 2, r, SlotId(1)).unwrap();
        // ...then a young spill lands in P2.
        let (young, _) = db.create_object(Bytes(3000), 2, r, SlotId(2)).unwrap();
        let young_p = db.objects().get(young).unwrap().addr.partition;
        assert_ne!(young_p, PartitionId(1));
        let mut p = Generational::new();
        assert_eq!(p.select(&db), Some(young_p));
    }

    #[test]
    fn empty_database_yields_none() {
        let db = Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(4),
        )
        .unwrap();
        let mut p = Generational::new();
        assert_eq!(p.select(&db), None);
    }
}
