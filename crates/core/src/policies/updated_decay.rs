//! `UpdatedDecay` (extension): `UpdatedPointer` with score decay.
//!
//! The paper's counter policies zero only the *collected* partition's
//! score, so hints accumulated long ago keep steering selection even after
//! the garbage they pointed at has been reclaimed elsewhere or the
//! objects have moved (evacuation relocates survivors without touching
//! the counters — a staleness the paper acknowledges by omission). This
//! variant halves **every** partition's score at each collection, so old
//! hints fade geometrically while fresh overwrites dominate.
//!
//! Cost is unchanged (one small array); the ablation benches measure
//! whether recency-weighting the hints buys anything on the paper's
//! workload.

use crate::derive::{DeriveStats, Engine, InputId, InputKind, QueryId, QueryKind};
use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The recency-weighted overwritten-pointer policy.
#[derive(Debug, Clone)]
pub struct UpdatedDecay {
    engine: Engine,
    input: InputId,
    query: QueryId,
}

impl Default for UpdatedDecay {
    fn default() -> Self {
        Self::new()
    }
}

impl UpdatedDecay {
    /// Creates the policy: an [`InputKind::DecayedOverwrites`] table —
    /// bumps are doubled relative to `UpdatedPointer` so one round of
    /// decay still leaves integer resolution — and the memoized arg-max
    /// over it.
    pub fn new() -> Self {
        let mut engine = Engine::new();
        let input = engine.input(InputKind::DecayedOverwrites);
        let query = engine.query(QueryKind::MaxInput(input));
        Self {
            engine,
            input,
            query,
        }
    }

    /// Current score of a partition (for tests and diagnostics).
    pub fn score(&self, p: PartitionId) -> u64 {
        self.engine.value(self.input, p)
    }
}

impl BarrierObserver for UpdatedDecay {
    fn on_event(&mut self, event: &BarrierEvent) {
        self.engine.apply(event);
    }
}

impl SelectionPolicy for UpdatedDecay {
    fn kind(&self) -> PolicyKind {
        PolicyKind::UpdatedDecay
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        self.engine.select(self.query, db)
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        self.engine.select_excluding(self.query, db, exclude)
    }

    fn victim_score(&self, partition: PartitionId) -> Option<f64> {
        Some(self.score(partition) as f64)
    }

    fn derive_stats(&self) -> Option<DeriveStats> {
        Some(self.engine.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::{CollectionOutcome, PointerTarget, PointerWriteInfo};
    use pgc_types::{Bytes, Oid, SlotId};

    fn overwrite(old_partition: u32) -> BarrierEvent {
        BarrierEvent::PointerWrite(PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(0),
            slot: SlotId(0),
            old: Some(PointerTarget {
                oid: Oid(2),
                partition: PartitionId(old_partition),
                weight: 3,
            }),
            new: None,
            during_creation: false,
        })
    }

    fn collected(victim: u32) -> BarrierEvent {
        BarrierEvent::CollectionCompleted(CollectionOutcome {
            victim: PartitionId(victim),
            target: PartitionId(0),
            live_objects: 0,
            live_bytes: Bytes::ZERO,
            garbage_objects: 0,
            garbage_bytes: Bytes::ZERO,
            forwarded_pointers: 0,
            gc_reads: 0,
            gc_writes: 0,
        })
    }

    #[test]
    fn scores_decay_across_collections() {
        let mut p = UpdatedDecay::new();
        for _ in 0..8 {
            p.on_event(&overwrite(1));
        }
        assert_eq!(p.score(PartitionId(1)), 16);
        p.on_event(&collected(9));
        assert_eq!(p.score(PartitionId(1)), 8, "halved");
        p.on_event(&collected(9));
        assert_eq!(p.score(PartitionId(1)), 4);
    }

    #[test]
    fn victim_is_zeroed_not_just_decayed() {
        let mut p = UpdatedDecay::new();
        p.on_event(&overwrite(1));
        p.on_event(&overwrite(2));
        p.on_event(&collected(1));
        assert_eq!(p.score(PartitionId(1)), 0);
        assert_eq!(p.score(PartitionId(2)), 1);
    }

    #[test]
    fn fresh_hints_dominate_stale_ones() {
        let mut p = UpdatedDecay::new();
        // Old burst into partition 1.
        for _ in 0..10 {
            p.on_event(&overwrite(1));
        }
        // Several collections of other partitions pass...
        for _ in 0..4 {
            p.on_event(&collected(9));
        }
        // ...then a modest fresh burst into partition 2 wins.
        for _ in 0..3 {
            p.on_event(&overwrite(2));
        }
        assert!(p.score(PartitionId(2)) > p.score(PartitionId(1)));
    }
}
