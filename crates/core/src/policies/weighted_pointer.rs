//! `WeightedPointer`: overwrites weighted by root distance (Sec. 3.1).
//!
//! A refinement of `UpdatedPointer` "based on the observation that not all
//! pointers are equal": losing a pointer near the roots of a tree-like
//! database tends to kill a whole subtree, while losing a leaf pointer
//! kills little. Each overwrite credits the old target's partition with
//! `2^(max_weight − w)` where `w` is the old target's weight (its
//! approximate distance from the roots, 4 bits, cap 16). The paper's
//! example: overwriting a pointer to a weight-2 object scores
//! `2^(16−2) = 16384`.
//!
//! The paper finds the heuristic fragile: it "assumes a tree-like database"
//! and degrades quickly as dense edges are added (Table 5), so its extra
//! cost is usually not warranted.

use crate::derive::{DeriveStats, Engine, InputId, InputKind, QueryId, QueryKind};
use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The weight-scored overwrite policy.
#[derive(Debug, Clone)]
pub struct WeightedPointer {
    engine: Engine,
    input: InputId,
    query: QueryId,
    max_weight: u8,
}

impl WeightedPointer {
    /// Creates the policy; `max_weight` must match the database
    /// configuration (16 in the paper). Its table is an
    /// [`InputKind::WeightedOverwrites`] input with the memoized arg-max
    /// over it.
    pub fn new(max_weight: u8) -> Self {
        let mut engine = Engine::new();
        let input = engine.input(InputKind::WeightedOverwrites { max_weight });
        let query = engine.query(QueryKind::MaxInput(input));
        Self {
            engine,
            input,
            query,
            max_weight,
        }
    }

    /// The exponential score of overwriting a pointer to an object of
    /// weight `w`.
    pub fn score_for_weight(&self, w: u8) -> u64 {
        let exp = self.max_weight.saturating_sub(w.min(self.max_weight)) as u32;
        1u64 << exp
    }

    /// Current score of a partition (for tests and diagnostics).
    pub fn score(&self, p: PartitionId) -> u64 {
        self.engine.value(self.input, p)
    }
}

impl BarrierObserver for WeightedPointer {
    fn on_event(&mut self, event: &BarrierEvent) {
        self.engine.apply(event);
    }
}

impl SelectionPolicy for WeightedPointer {
    fn kind(&self) -> PolicyKind {
        PolicyKind::WeightedPointer
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        self.engine.select(self.query, db)
    }

    fn select_excluding(&mut self, db: &Database, exclude: &[PartitionId]) -> Option<PartitionId> {
        self.engine.select_excluding(self.query, db, exclude)
    }

    fn victim_score(&self, partition: PartitionId) -> Option<f64> {
        Some(self.score(partition) as f64)
    }

    fn derive_stats(&self) -> Option<DeriveStats> {
        Some(self.engine.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::{PointerTarget, PointerWriteInfo};
    use pgc_types::{Bytes, DbConfig, Oid, SlotId};

    fn overwrite(old_partition: u32, weight: u8) -> BarrierEvent {
        BarrierEvent::PointerWrite(PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(0),
            slot: SlotId(0),
            old: Some(PointerTarget {
                oid: Oid(2),
                partition: PartitionId(old_partition),
                weight,
            }),
            new: None,
            during_creation: false,
        })
    }

    #[test]
    fn paper_example_scores_16384() {
        let p = WeightedPointer::new(16);
        assert_eq!(p.score_for_weight(2), 16384);
        assert_eq!(p.score_for_weight(1), 32768);
        assert_eq!(p.score_for_weight(16), 1);
        // Out-of-range weights clamp instead of overflowing.
        assert_eq!(p.score_for_weight(200), 1);
    }

    #[test]
    fn near_root_overwrites_dominate() {
        let mut p = WeightedPointer::new(16);
        // 1000 leaf overwrites into partition 1...
        for _ in 0..1000 {
            p.on_event(&overwrite(1, 16));
        }
        // ...lose to a single depth-2 overwrite into partition 2.
        p.on_event(&overwrite(2, 2));
        assert!(p.score(PartitionId(2)) > p.score(PartitionId(1)));
    }

    #[test]
    fn selection_uses_weighted_sum() {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        let mut p = WeightedPointer::new(16);
        p.on_event(&overwrite(1, 10));
        p.on_event(&overwrite(2, 3));
        assert_eq!(p.select(&db), Some(PartitionId(2)));
    }

    #[test]
    fn non_overwrites_score_nothing() {
        let mut p = WeightedPointer::new(16);
        p.on_event(&BarrierEvent::PointerWrite(PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(1),
            slot: SlotId(0),
            old: None,
            new: Some(PointerTarget {
                oid: Oid(2),
                partition: PartitionId(2),
                weight: 1,
            }),
            during_creation: true,
        }));
        assert_eq!(p.score(PartitionId(1)), 0);
        assert_eq!(p.score(PartitionId(2)), 0);
    }
}
