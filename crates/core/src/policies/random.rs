//! `Random`: pick a uniformly random partition (Sec. 3.1).
//!
//! Included "to determine the extent to which clever heuristics improve or
//! degrade the performance of garbage collection". Selection is uniform
//! over collectable partitions that have ever been allocated into; picking
//! a fresh partition would be a guaranteed no-op collection.

use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::{PartitionId, SimRng};

/// The random-selection baseline.
#[derive(Debug, Clone)]
pub struct Random {
    rng: SimRng,
}

impl Random {
    /// Creates the policy with its own seeded generator.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SimRng::new(seed),
        }
    }
}

impl BarrierObserver for Random {
    // Random consumes no hints; its generator advances only at `select`.
    fn on_event(&mut self, _event: &BarrierEvent) {}
}

impl SelectionPolicy for Random {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Random
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        let candidates: Vec<PartitionId> = db
            .collectable_partitions()
            .into_iter()
            .filter(|&id| {
                db.partitions()
                    .partition(id)
                    .map(|p| !p.is_fresh())
                    .unwrap_or(false)
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        Some(*self.rng.pick(&candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, SlotId};

    fn populated_db() -> Database {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(1)).unwrap();
        db
    }

    #[test]
    fn empty_database_yields_none() {
        let db = Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(4),
        )
        .unwrap();
        let mut p = Random::new(1);
        assert_eq!(p.select(&db), None);
    }

    #[test]
    fn never_picks_the_empty_partition_and_eventually_covers_all() {
        let db = populated_db();
        let mut p = Random::new(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = p.select(&db).unwrap();
            assert_ne!(v, db.empty_partition());
            seen.insert(v);
        }
        // Three used partitions exist; uniform sampling hits all of them.
        assert!(seen.len() >= 2, "saw {seen:?}");
    }

    #[test]
    fn same_seed_same_choices() {
        let db = populated_db();
        let mut a = Random::new(7);
        let mut b = Random::new(7);
        for _ in 0..20 {
            assert_eq!(a.select(&db), b.select(&db));
        }
    }
}
