//! `RoundRobin` (extension, not in the paper): collect partitions in
//! cyclic order.
//!
//! A natural "fair" baseline between `Random` and the counter policies:
//! every partition is eventually collected, none twice before the others.
//! Used by the ablation benches to ask how much of `Random`'s performance
//! is just coverage.

use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The cyclic-order policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: u32,
}

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BarrierObserver for RoundRobin {
    // Position advances only at `select`; barrier traffic is irrelevant.
    fn on_event(&mut self, _event: &BarrierEvent) {}
}

impl SelectionPolicy for RoundRobin {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RoundRobin
    }

    fn select(&mut self, db: &Database) -> Option<PartitionId> {
        let n = db.partition_count() as u32;
        if n == 0 {
            return None;
        }
        // Scan at most one full cycle for a collectable, non-fresh victim.
        for _ in 0..n {
            let candidate = PartitionId(self.next % n);
            self.next = (self.next + 1) % n;
            if candidate == db.empty_partition() {
                continue;
            }
            let fresh = db
                .partitions()
                .partition(candidate)
                .map(|p| p.is_fresh())
                .unwrap_or(true);
            if !fresh {
                return Some(candidate);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, SlotId};

    #[test]
    fn cycles_through_used_partitions() {
        let cfg = DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4);
        let mut db = Database::new(cfg).unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(0)).unwrap();
        db.create_object(Bytes(4000), 2, r, SlotId(1)).unwrap();
        // Partitions now: P0 empty, P1..P3 used.
        let mut p = RoundRobin::new();
        let picks: Vec<_> = (0..6).map(|_| p.select(&db).unwrap().index()).collect();
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn empty_database_yields_none() {
        let db = Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(4),
        )
        .unwrap();
        let mut p = RoundRobin::new();
        assert_eq!(p.select(&db), None);
    }
}
