//! `NoCollection`: never collect (Sec. 3.1).
//!
//! Establishes the space upper bound: when more room is needed the database
//! simply grows. The paper also uses it to measure how much garbage
//! collection improves locality — and to show that a *bad* selection policy
//! can cost more total I/O than collecting nothing at all.

use crate::policy::{PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_types::PartitionId;

/// The never-collect policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCollection;

impl NoCollection {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl BarrierObserver for NoCollection {
    // Ignores everything — including `CollectionCompleted` events, which
    // it can legitimately receive as a *shadow* scoreboard riding a
    // collecting driver policy's event stream.
    fn on_event(&mut self, _event: &BarrierEvent) {}
}

impl SelectionPolicy for NoCollection {
    fn kind(&self) -> PolicyKind {
        PolicyKind::NoCollection
    }

    fn select(&mut self, _db: &Database) -> Option<PartitionId> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::DbConfig;

    #[test]
    fn never_selects() {
        let db = Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(4),
        )
        .unwrap();
        let mut p = NoCollection::new();
        assert_eq!(p.select(&db), None);
        assert_eq!(p.kind(), PolicyKind::NoCollection);
    }
}
