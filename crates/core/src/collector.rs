//! The policy + scheduler bundle that pumps the barrier event bus.
//!
//! [`Collector`] is what a simulation (or an embedding application) holds:
//! it drains the [`Database`]'s event log and broadcasts every
//! [`BarrierEvent`] to the selection policy, to any registered shadow
//! observers, and to the trigger scheduler. When the trigger fires it asks
//! the policy for a victim, runs the copying collection, and pumps the
//! resulting collection events back through the same bus so every listener
//! sees one consistent stream.

use crate::policies::build_policy;
use crate::policy::{PolicyKind, SelectionPolicy};
use crate::scheduler::{GcScheduler, Trigger};
use pgc_odb::{
    BarrierEvent, BarrierObserver, CollectionOutcome, CollectionPlan, Database, ObserverRegistry,
};
use pgc_types::{Parallelism, PartitionId, Result};

/// A complete partitioned garbage collector: selection policy + trigger.
///
/// ```
/// use pgc_core::{Collector, PolicyKind};
/// use pgc_odb::Database;
/// use pgc_types::{Bytes, DbConfig, SlotId};
///
/// let mut db = Database::new(DbConfig::default()).unwrap();
/// let mut gc = Collector::with_kind(PolicyKind::UpdatedPointer, 1, 0, 16);
///
/// let root = db.create_root(Bytes(100), 1).unwrap();
/// db.create_object(Bytes(100), 1, root, SlotId(0)).unwrap();
/// assert!(!gc.sync(&mut db), "creation stores are no overwrites");
///
/// db.write_slot(root, SlotId(0), None).unwrap(); // the overwrite
/// assert!(gc.sync(&mut db), "threshold 1: due immediately");
/// let outcome = gc.maybe_collect(&mut db).unwrap().unwrap();
/// assert_eq!(outcome.garbage_objects, 1);
/// ```
pub struct Collector {
    policy: Box<dyn SelectionPolicy>,
    scheduler: GcScheduler,
    /// Bystanders on the bus: shadow scoreboards, tracers, metrics taps.
    /// They see the same stream as the policy but never pick the victim.
    observers: ObserverRegistry,
    /// Partitions collected per activation. The paper collects exactly one
    /// ("a full implementation might allow more than one partition to be
    /// collected at a time, if doing so was determined to be of
    /// importance") — values above 1 exist for that ablation.
    batch: u32,
    /// How much intra-run parallelism collection may use. Affects only
    /// *how* work is computed (zone plans fan out across threads), never
    /// *what* is computed: `Deterministic(n)` is bit-identical to
    /// `Serial`.
    parallelism: Parallelism,
    /// Reused drain buffer so the per-operation pump allocates nothing in
    /// steady state.
    scratch: Vec<BarrierEvent>,
}

impl Collector {
    /// Creates a collector with the given policy instance and the paper's
    /// overwrite-count trigger.
    pub fn new(policy: Box<dyn SelectionPolicy>, overwrite_threshold: u64) -> Self {
        Self {
            policy,
            scheduler: GcScheduler::new(overwrite_threshold),
            observers: ObserverRegistry::new(),
            batch: 1,
            parallelism: Parallelism::Serial,
            scratch: Vec::new(),
        }
    }

    /// Creates a collector with an explicit trigger.
    pub fn with_trigger(policy: Box<dyn SelectionPolicy>, trigger: Trigger) -> Self {
        Self {
            policy,
            scheduler: GcScheduler::with_trigger(trigger),
            observers: ObserverRegistry::new(),
            batch: 1,
            parallelism: Parallelism::Serial,
            scratch: Vec::new(),
        }
    }

    /// Sets how many partitions each activation collects (min 1).
    #[must_use]
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets how much intra-run parallelism collection work may use.
    ///
    /// Under [`Parallelism::Deterministic`], batched activations compute
    /// their zone plans on worker threads; results are bit-identical to
    /// [`Parallelism::Serial`] because plans are read-only and are applied
    /// on the coordinating thread in canonical partition-id order.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The collector's parallelism mode.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Convenience constructor from a [`PolicyKind`]; `seed` feeds the
    /// `Random` policy, `max_weight` parameterizes `WeightedPointer`.
    pub fn with_kind(
        kind: PolicyKind,
        overwrite_threshold: u64,
        seed: u64,
        max_weight: u8,
    ) -> Self {
        Self::new(build_policy(kind, seed, max_weight), overwrite_threshold)
    }

    /// Registers a bystander observer on the bus. It receives every event
    /// the driving policy receives — including the driver's own
    /// `CollectionCompleted` records — plus the [`BarrierObserver::on_trigger`]
    /// callback at each activation, but it never influences victim
    /// selection or trigger timing.
    pub fn add_observer(&mut self, observer: Box<dyn BarrierObserver>) {
        self.observers.register(observer);
    }

    /// Number of registered bystander observers.
    pub fn observer_count(&self) -> usize {
        self.observers.len()
    }

    /// Which policy this collector runs.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// The driving policy itself (for diagnostics such as
    /// [`SelectionPolicy::derive_stats`]).
    pub fn policy(&self) -> &dyn SelectionPolicy {
        self.policy.as_ref()
    }

    /// The trigger state.
    pub fn scheduler(&self) -> &GcScheduler {
        &self.scheduler
    }

    /// Delivers one event to the policy, the observers, and the trigger.
    /// Returns `true` if a collection is now due.
    ///
    /// Normally events arrive via [`Collector::sync`]; this entry point
    /// exists for tests and for embedders that fabricate their own stream.
    pub fn observe_event(&mut self, event: &BarrierEvent) -> bool {
        self.policy.on_event(event);
        self.observers.broadcast(event);
        match event {
            BarrierEvent::PointerWrite(info) if info.is_overwrite() => {
                self.scheduler.note_overwrite()
            }
            BarrierEvent::Allocation { size, grew, .. } => {
                // `PartitionGrowth` carries no trigger weight of its own:
                // the allocation that caused it already reports `grew`.
                self.scheduler.note_allocation(*size, *grew)
            }
            _ => self.scheduler.is_due(),
        }
    }

    /// Drains the database's pending barrier events through the bus.
    /// Returns `true` if a collection is now due.
    pub fn sync(&mut self, db: &mut Database) -> bool {
        // Fast path: reads (`visit`) and slot growth log nothing, and in a
        // traversal-heavy trace they dominate — skip the drain entirely.
        if db.events().is_empty() {
            return self.scheduler.is_due();
        }
        self.scratch.clear();
        db.drain_events_into(&mut self.scratch);
        // Events are `Copy`; an index loop lets `observe_event` borrow
        // `self` mutably without juggling the scratch buffer's ownership.
        for i in 0..self.scratch.len() {
            let event = self.scratch[i];
            self.observe_event(&event);
        }
        self.scratch.clear();
        self.scheduler.is_due()
    }

    /// If the trigger is due (after draining any pending events), selects a
    /// victim and collects it. Returns the outcome, or `None` when no
    /// collection happened (trigger not due, the policy declined, or there
    /// is nothing to collect).
    pub fn maybe_collect(&mut self, db: &mut Database) -> Result<Option<CollectionOutcome>> {
        if !self.sync(db) {
            return Ok(None);
        }
        self.force_collect(db)
    }

    /// Selects a victim and collects it immediately (resets the trigger
    /// window whether or not the policy declined, so `NoCollection` pays no
    /// compounding bookkeeping). With a batch size above 1, selection and
    /// collection repeat up to `batch` times per activation.
    ///
    /// Activation order on the bus: any pending events are drained first;
    /// then a [`BarrierEvent::TriggerTick`] marks the activation; then
    /// every observer's `on_trigger` sees the *pre-collection* database —
    /// this is where shadow scoreboards record the victim they would have
    /// picked — and only then does the driving policy select and collect.
    pub fn force_collect(&mut self, db: &mut Database) -> Result<Option<CollectionOutcome>> {
        self.sync(db);
        self.scheduler.collection_done();
        let tick = BarrierEvent::TriggerTick {
            activation: self.scheduler.triggers(),
        };
        self.policy.on_event(&tick);
        self.observers.broadcast(&tick);
        self.observers.notify_trigger(db);
        if self.batch > 1 {
            return self.zone_collect(db);
        }
        let mut last = None;
        for _ in 0..self.batch {
            let Some(victim) = self.policy.select(db) else {
                break;
            };
            // Announce the pick (with the policy's score for it) before
            // collecting, so bus taps can attribute the collection that
            // follows. Selection is already made; observers cannot
            // influence it.
            let selected = BarrierEvent::VictimSelected {
                victim,
                score_bits: self.policy.victim_score(victim).map(f64::to_bits),
            };
            self.policy.on_event(&selected);
            self.observers.broadcast(&selected);
            let outcome = db.collect_partition(victim)?;
            // Pump the collection's own events (copies, reclaims, the
            // completion record) so scoreboards reset before the next
            // batched selection.
            self.sync(db);
            // A meta-policy decides switches while digesting the
            // collection outcome; announce them on the bus immediately so
            // taps attribute each switch to the activation that caused it
            // (the new policy drives from the next activation on).
            self.broadcast_switches();
            last = Some(outcome);
        }
        Ok(last)
    }

    /// The batched ("zone") activation protocol: condemn up to `batch`
    /// remset-disjoint victims against the *pre-collection* database, plan
    /// each one's collection read-only (on worker threads under
    /// [`Parallelism::Deterministic`]), then apply the plans on this
    /// thread in canonical partition-id order — the safepoint between the
    /// planning fan-out and the apply sequence is the `thread::scope`
    /// join.
    ///
    /// Remset-disjointness (no remembered pointer between any two
    /// condemned partitions, in either direction) is what keeps every plan
    /// valid while earlier plans are applied: applying zone A only
    /// relocates A residents, re-keys remembered entries pointing into A,
    /// and removes edges from A's dead objects — none of which can touch
    /// zone B's roots, members, or remembered targets when no A↔B edges
    /// exist. Condemnation stops early at the first non-disjoint pick, so
    /// an activation may collect fewer than `batch` partitions.
    ///
    /// Bit-identity across parallelism modes holds by construction: the
    /// condemned set, the plans (pure functions of the shared
    /// pre-collection state), and the apply order are the same whether
    /// plans were computed serially or concurrently.
    fn zone_collect(&mut self, db: &mut Database) -> Result<Option<CollectionOutcome>> {
        // --- Condemn: every selection sees the pre-collection database. ---
        let mut victims: Vec<PartitionId> = Vec::new();
        let mut condemned: Vec<(PartitionId, Option<u64>)> = Vec::new();
        while condemned.len() < self.batch as usize {
            let pick = if victims.is_empty() {
                self.policy.select(db)
            } else {
                self.policy.select_excluding(db, &victims)
            };
            let Some(victim) = pick else { break };
            if victims.iter().any(|&v| zones_overlap(db, victim, v)) {
                break;
            }
            let score_bits = self.policy.victim_score(victim).map(f64::to_bits);
            victims.push(victim);
            condemned.push((victim, score_bits));
        }
        if condemned.is_empty() {
            return Ok(None);
        }
        // --- Canonical order: ascending partition id, for the whole
        // activation (plans, applies, and every bus event). ---
        condemned.sort_unstable_by_key(|&(p, _)| p);

        // --- Plan: read-only over `&Database`, fanned out when allowed. ---
        let plans: Vec<CollectionPlan> = if self.parallelism.is_parallel() && condemned.len() > 1 {
            let db_view: &Database = db;
            let mut slots: Vec<Option<Result<CollectionPlan>>> =
                condemned.iter().map(|_| None).collect();
            std::thread::scope(|s| {
                for (slot, &(victim, _)) in slots.iter_mut().zip(&condemned) {
                    s.spawn(move || *slot = Some(db_view.plan_collection(victim)));
                }
            });
            // The scope join above is the safepoint: all planning ends
            // before any state mutation begins.
            slots
                .into_iter()
                .map(|s| s.expect("planner thread completed"))
                .collect::<Result<_>>()?
        } else {
            condemned
                .iter()
                .map(|&(victim, _)| db.plan_collection(victim))
                .collect::<Result<_>>()?
        };

        // --- Apply: serially, in canonical order, pumping each
        // collection's events before the next so listeners observe the
        // same stream in every parallelism mode. ---
        let mut last = None;
        for (&(victim, score_bits), plan) in condemned.iter().zip(&plans) {
            let selected = BarrierEvent::VictimSelected { victim, score_bits };
            self.policy.on_event(&selected);
            self.observers.broadcast(&selected);
            let outcome = db.apply_plan(plan)?;
            self.sync(db);
            self.broadcast_switches();
            last = Some(outcome);
        }
        Ok(last)
    }

    fn broadcast_switches(&mut self) {
        for s in self.policy.take_switches() {
            let event = BarrierEvent::PolicySwitched {
                activation: s.activation,
                from: s.from.name(),
                to: s.to.name(),
            };
            self.policy.on_event(&event);
            self.observers.broadcast(&event);
        }
    }
}

/// True when a remembered inter-partition pointer connects `a` and `b` in
/// either direction — the zone-collection conflict test.
fn zones_overlap(db: &Database, a: PartitionId, b: PartitionId) -> bool {
    points_into(db, a, b) || points_into(db, b, a)
}

/// True when some object resident in `src` holds a remembered pointer to
/// an object in `dst`.
fn points_into(db: &Database, src: PartitionId, dst: PartitionId) -> bool {
    db.remsets().remembered_targets(dst).any(|target| {
        db.remsets().locations_of(dst, target).any(|loc| {
            db.objects()
                .get(loc.owner)
                .map(|rec| rec.addr.partition == src)
                .unwrap_or(false)
        })
    })
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("policy", &self.policy.name())
            .field("scheduler", &self.scheduler)
            .field("observers", &self.observers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, Oid, PartitionId, SlotId};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn db() -> Database {
        Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap()
    }

    #[test]
    fn collects_when_due_and_resets() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let mut c = Collector::with_kind(PolicyKind::UpdatedPointer, 1, 0, 16);
        assert!(!c.sync(&mut d), "creation stores are no overwrites");
        d.write_slot(r, SlotId(0), None).unwrap();
        assert!(c.sync(&mut d), "one overwrite hits threshold 1");
        let out = c.maybe_collect(&mut d).unwrap();
        let out = out.expect("collection happened");
        assert_eq!(out.garbage_objects, 1);
        assert_eq!(c.scheduler().triggers(), 1);
        // Not due any more.
        assert!(c.maybe_collect(&mut d).unwrap().is_none());
    }

    #[test]
    fn no_collection_policy_never_collects_but_resets_trigger() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let mut c = Collector::with_kind(PolicyKind::NoCollection, 1, 0, 16);
        d.write_slot(r, SlotId(0), None).unwrap();
        assert!(c.sync(&mut d));
        assert!(c.maybe_collect(&mut d).unwrap().is_none());
        assert_eq!(d.stats().collections, 0);
        assert!(!c.scheduler().is_due(), "window reset even when declining");
    }

    #[test]
    fn updated_pointer_collector_reclaims_targeted_garbage() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        // A subtree that will die.
        let (a, _) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        let mut c = Collector::with_kind(PolicyKind::UpdatedPointer, 1, 0, 16);
        d.write_slot(r, SlotId(0), None).unwrap();
        c.sync(&mut d);
        let out = c.maybe_collect(&mut d).unwrap().unwrap();
        assert_eq!(out.garbage_objects, 2, "a and b reclaimed");
        assert!(d.objects().contains(r));
    }

    #[test]
    fn batch_collects_multiple_partitions() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        // Fill several partitions with garbage-to-be.
        let (a, _) = d.create_object(Bytes(8100), 2, r, SlotId(0)).unwrap();
        d.write_slot(r, SlotId(0), None).unwrap();
        let (b, _) = d.create_object(Bytes(8100), 2, r, SlotId(1)).unwrap();
        d.write_slot(r, SlotId(1), None).unwrap();
        let mut c = Collector::with_kind(PolicyKind::MostGarbage, 1, 0, 16).with_batch(2);
        c.sync(&mut d);
        c.maybe_collect(&mut d).unwrap();
        assert_eq!(d.stats().collections, 2, "batch of two");
        assert!(!d.objects().contains(a));
        assert!(!d.objects().contains(b));
    }

    /// Garbage spread over several mutually unconnected partitions.
    fn db_with_disjoint_garbage() -> Database {
        let mut d = db();
        let r = d.create_root(Bytes(100), 3).unwrap();
        for slot in 0..3u16 {
            // Each spill lands in its own partition and immediately dies;
            // no pointers run between the spill partitions.
            d.create_object(Bytes(6000), 2, r, SlotId(slot)).unwrap();
            d.write_slot(r, SlotId(slot), None).unwrap();
        }
        d
    }

    #[test]
    fn zone_batch_is_parallelism_invariant() {
        // The same batched activation under Serial and Deterministic(4)
        // must produce identical victims, outcomes, and end states.
        let run = |par: Parallelism| {
            let mut d = db_with_disjoint_garbage();
            let mut c = Collector::with_kind(PolicyKind::MostGarbage, 1, 0, 16)
                .with_batch(3)
                .with_parallelism(par);
            c.sync(&mut d);
            let last = c.force_collect(&mut d).unwrap();
            d.check_invariants();
            (last, d.stats(), pgc_odb::oracle::analyze(&d))
        };
        let serial = run(Parallelism::Serial);
        assert_eq!(serial, run(Parallelism::deterministic(1)));
        assert_eq!(serial, run(Parallelism::deterministic(4)));
        let (_, stats, _) = &serial;
        assert_eq!(stats.collections, 3, "all three zones condemned");
    }

    #[test]
    fn zone_condemnation_stops_at_remset_overlap() {
        // Two garbage-bearing partitions connected by a remembered
        // pointer are not disjoint: a batch of 2 must collect only one.
        let mut d = db();
        let r = d.create_root(Bytes(100), 3).unwrap();
        let (spill, _) = d.create_object(Bytes(8100), 2, r, SlotId(0)).unwrap();
        let (small, _) = d.create_object(Bytes(100), 2, r, SlotId(1)).unwrap();
        let home = d.objects().get(small).unwrap().addr.partition;
        let foreign = d.objects().get(spill).unwrap().addr.partition;
        assert_ne!(home, foreign);
        // Cross-partition pointer foreign -> home, then kill both subtrees
        // so each partition holds garbage.
        d.write_slot(spill, SlotId(0), Some(small)).unwrap();
        d.write_slot(r, SlotId(0), None).unwrap();
        d.write_slot(r, SlotId(1), None).unwrap();
        assert!(points_into(&d, foreign, home));
        let mut c = Collector::with_kind(PolicyKind::MostGarbage, 1, 0, 16)
            .with_batch(2)
            .with_parallelism(Parallelism::deterministic(4));
        c.sync(&mut d);
        c.force_collect(&mut d).unwrap();
        assert_eq!(
            d.stats().collections,
            1,
            "overlapping zone must not be condemned in the same activation"
        );
        d.check_invariants();
    }

    #[test]
    fn zone_overlap_test_sees_both_directions() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 3).unwrap();
        let (spill, _) = d.create_object(Bytes(8100), 2, r, SlotId(0)).unwrap();
        let (small, _) = d.create_object(Bytes(100), 2, r, SlotId(1)).unwrap();
        let home = d.objects().get(small).unwrap().addr.partition;
        let foreign = d.objects().get(spill).unwrap().addr.partition;
        d.write_slot(spill, SlotId(0), Some(small)).unwrap();
        // Drop the root's own pointer into `foreign` so the only
        // cross-partition edge left is spill -> small.
        d.write_slot(r, SlotId(0), None).unwrap();
        assert!(zones_overlap(&d, home, foreign));
        assert!(zones_overlap(&d, foreign, home), "symmetric");
        assert!(points_into(&d, foreign, home));
        assert!(!points_into(&d, home, foreign));
    }

    #[test]
    fn allocation_trigger_fires_without_overwrites() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        d.clear_events();
        let mut c = Collector::with_trigger(
            build_policy(PolicyKind::Occupancy, 0, 16),
            Trigger::AllocationBytes(Bytes(1000)),
        );
        let alloc = |size| BarrierEvent::Allocation {
            oid: Oid(9),
            partition: PartitionId(1),
            size,
            grew: false,
        };
        assert!(!c.observe_event(&alloc(Bytes(500))));
        assert!(c.observe_event(&alloc(Bytes(600))));
        let out = c.maybe_collect(&mut d).unwrap();
        assert!(out.is_some());
        assert!(d.objects().contains(r), "live root survives");
    }

    #[test]
    fn growth_trigger_fires_on_partition_growth() {
        let mut d = db();
        d.create_root(Bytes(100), 2).unwrap();
        d.clear_events();
        let mut c = Collector::with_trigger(
            build_policy(PolicyKind::Occupancy, 0, 16),
            Trigger::PartitionGrowth,
        );
        let alloc = |size, grew| BarrierEvent::Allocation {
            oid: Oid(9),
            partition: PartitionId(1),
            size,
            grew,
        };
        assert!(!c.observe_event(&alloc(Bytes(100), false)));
        assert!(c.observe_event(&alloc(Bytes(8100), true)));
        assert!(c.maybe_collect(&mut d).unwrap().is_some());
    }

    #[test]
    fn data_writes_reach_only_the_yny_policy() {
        let mut d = db();
        d.create_root(Bytes(100), 2).unwrap();
        d.clear_events();
        let mut yny = Collector::with_kind(PolicyKind::YnyMutated, 100, 0, 16);
        let mut enhanced = Collector::with_kind(PolicyKind::MutatedPartition, 100, 0, 16);
        let dw = BarrierEvent::DataWrite {
            oid: Oid(1),
            partition: PartitionId(1),
        };
        for _ in 0..3 {
            yny.observe_event(&dw);
            enhanced.observe_event(&dw);
        }
        // Force a selection: YNY has a score for P1, enhanced does not
        // (falls back to fullest). Both should pick P1 here since it is
        // also the only used partition — so check the scores via policy
        // kind instead.
        assert_eq!(yny.policy_kind(), PolicyKind::YnyMutated);
        assert_eq!(enhanced.policy_kind(), PolicyKind::MutatedPartition);
        assert!(yny.force_collect(&mut d).unwrap().is_some());
    }

    /// A bystander that tallies what it sees on the bus.
    #[derive(Default)]
    struct Tap {
        state: Rc<RefCell<TapState>>,
    }

    #[derive(Default)]
    struct TapState {
        events: usize,
        ticks: u64,
        completions: usize,
        trigger_views: usize,
    }

    impl BarrierObserver for Tap {
        fn on_event(&mut self, event: &BarrierEvent) {
            let mut s = self.state.borrow_mut();
            s.events += 1;
            match event {
                BarrierEvent::TriggerTick { .. } => s.ticks += 1,
                BarrierEvent::CollectionCompleted(_) => s.completions += 1,
                _ => {}
            }
        }

        fn on_trigger(&mut self, db: &Database) {
            assert!(db.partition_count() > 0);
            self.state.borrow_mut().trigger_views += 1;
        }
    }

    #[test]
    fn observers_see_the_full_driver_stream() {
        let mut d = db();
        let tap = Tap::default();
        let state = Rc::clone(&tap.state);
        let mut c = Collector::with_kind(PolicyKind::UpdatedPointer, 1, 0, 16);
        c.add_observer(Box::new(tap));
        assert_eq!(c.observer_count(), 1);

        let r = d.create_root(Bytes(100), 2).unwrap();
        d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        d.write_slot(r, SlotId(0), None).unwrap();
        let out = c.maybe_collect(&mut d).unwrap();
        assert!(out.is_some());

        let s = state.borrow();
        assert_eq!(s.ticks, 1, "one activation, one tick");
        assert_eq!(s.trigger_views, 1, "on_trigger ran at the activation");
        assert_eq!(
            s.completions, 1,
            "the driver's collection record reached the bystander"
        );
        assert!(s.events > 3, "mutation events were broadcast too");
    }

    #[test]
    fn debug_format_names_policy() {
        let c = Collector::with_kind(PolicyKind::Random, 10, 1, 16);
        let s = format!("{c:?}");
        assert!(s.contains("Random"));
    }
}
