//! The policy + scheduler bundle that drives collections.
//!
//! [`Collector`] is what a simulation (or an embedding application) holds:
//! it forwards every write-barrier event to both the scheduler (counting
//! overwrites) and the policy (accumulating hints), and when the trigger
//! fires it asks the policy for a victim and runs the copying collection.

use crate::policies::build_policy;
use crate::policy::{PolicyKind, SelectionPolicy};
use crate::scheduler::{GcScheduler, Trigger};
use pgc_odb::{CollectionOutcome, Database, PointerWriteInfo};
use pgc_types::{Bytes, PartitionId, Result};

/// A complete partitioned garbage collector: selection policy + trigger.
///
/// ```
/// use pgc_core::{Collector, PolicyKind};
/// use pgc_odb::Database;
/// use pgc_types::{Bytes, DbConfig, SlotId};
///
/// let mut db = Database::new(DbConfig::default()).unwrap();
/// let mut gc = Collector::with_kind(PolicyKind::UpdatedPointer, 1, 0, 16);
///
/// let root = db.create_root(Bytes(100), 1).unwrap();
/// let (_child, info) = db.create_object(Bytes(100), 1, root, SlotId(0)).unwrap();
/// gc.observe_write(&info);
///
/// let info = db.write_slot(root, SlotId(0), None).unwrap(); // the overwrite
/// assert!(gc.observe_write(&info), "threshold 1: due immediately");
/// let outcome = gc.maybe_collect(&mut db).unwrap().unwrap();
/// assert_eq!(outcome.garbage_objects, 1);
/// ```
pub struct Collector {
    policy: Box<dyn SelectionPolicy>,
    scheduler: GcScheduler,
    /// Partitions collected per activation. The paper collects exactly one
    /// ("a full implementation might allow more than one partition to be
    /// collected at a time, if doing so was determined to be of
    /// importance") — values above 1 exist for that ablation.
    batch: u32,
}

impl Collector {
    /// Creates a collector with the given policy instance and the paper's
    /// overwrite-count trigger.
    pub fn new(policy: Box<dyn SelectionPolicy>, overwrite_threshold: u64) -> Self {
        Self {
            policy,
            scheduler: GcScheduler::new(overwrite_threshold),
            batch: 1,
        }
    }

    /// Creates a collector with an explicit trigger.
    pub fn with_trigger(policy: Box<dyn SelectionPolicy>, trigger: Trigger) -> Self {
        Self {
            policy,
            scheduler: GcScheduler::with_trigger(trigger),
            batch: 1,
        }
    }

    /// Sets how many partitions each activation collects (min 1).
    #[must_use]
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Convenience constructor from a [`PolicyKind`]; `seed` feeds the
    /// `Random` policy, `max_weight` parameterizes `WeightedPointer`.
    pub fn with_kind(
        kind: PolicyKind,
        overwrite_threshold: u64,
        seed: u64,
        max_weight: u8,
    ) -> Self {
        Self::new(build_policy(kind, seed, max_weight), overwrite_threshold)
    }

    /// Which policy this collector runs.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// The trigger state.
    pub fn scheduler(&self) -> &GcScheduler {
        &self.scheduler
    }

    /// Feeds one write-barrier event to the policy and the trigger.
    /// Returns `true` if a collection is now due.
    pub fn observe_write(&mut self, info: &PointerWriteInfo) -> bool {
        self.policy.on_pointer_write(info);
        if info.is_overwrite() {
            self.scheduler.note_overwrite()
        } else {
            self.scheduler.is_due()
        }
    }

    /// Feeds one data (non-pointer) write to the policy. Only the
    /// unenhanced YNY policy reacts; data writes never advance the paper's
    /// trigger.
    pub fn observe_data_write(&mut self, partition: PartitionId) -> bool {
        self.policy.on_data_write(partition);
        self.scheduler.is_due()
    }

    /// Feeds one allocation to the trigger (relevant for the
    /// allocation-bytes and partition-growth triggers). Returns `true` if
    /// a collection is now due.
    pub fn observe_allocation(&mut self, bytes: Bytes, grew: bool) -> bool {
        self.scheduler.note_allocation(bytes, grew)
    }

    /// If the trigger is due, selects a victim and collects it. Returns the
    /// outcome, or `None` when no collection happened (trigger not due, the
    /// policy declined, or there is nothing to collect).
    pub fn maybe_collect(&mut self, db: &mut Database) -> Result<Option<CollectionOutcome>> {
        if !self.scheduler.is_due() {
            return Ok(None);
        }
        self.force_collect(db)
    }

    /// Selects a victim and collects it immediately (resets the trigger
    /// window whether or not the policy declined, so `NoCollection` pays no
    /// compounding bookkeeping). With a batch size above 1, selection and
    /// collection repeat up to `batch` times per activation.
    pub fn force_collect(&mut self, db: &mut Database) -> Result<Option<CollectionOutcome>> {
        self.scheduler.collection_done();
        let mut last = None;
        for _ in 0..self.batch {
            let Some(victim) = self.policy.select(db) else {
                break;
            };
            let outcome = db.collect_partition(victim)?;
            self.policy.on_collection(&outcome);
            last = Some(outcome);
        }
        Ok(last)
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("policy", &self.policy.name())
            .field("scheduler", &self.scheduler)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, SlotId};

    fn db() -> Database {
        Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap()
    }

    #[test]
    fn collects_when_due_and_resets() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let (a, info_a) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let _ = a;
        let mut c = Collector::with_kind(PolicyKind::UpdatedPointer, 1, 0, 16);
        assert!(!c.observe_write(&info_a), "creation store is no overwrite");
        let info = d.write_slot(r, SlotId(0), None).unwrap();
        assert!(c.observe_write(&info), "one overwrite hits threshold 1");
        let out = c.maybe_collect(&mut d).unwrap();
        let out = out.expect("collection happened");
        assert_eq!(out.garbage_objects, 1);
        assert_eq!(c.scheduler().triggers(), 1);
        // Not due any more.
        assert!(c.maybe_collect(&mut d).unwrap().is_none());
    }

    #[test]
    fn no_collection_policy_never_collects_but_resets_trigger() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let mut c = Collector::with_kind(PolicyKind::NoCollection, 1, 0, 16);
        let info = d.write_slot(r, SlotId(0), None).unwrap();
        assert!(c.observe_write(&info));
        assert!(c.maybe_collect(&mut d).unwrap().is_none());
        assert_eq!(d.stats().collections, 0);
        assert!(!c.scheduler().is_due(), "window reset even when declining");
    }

    #[test]
    fn updated_pointer_collector_reclaims_targeted_garbage() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        // A subtree that will die.
        let (a, _) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let (_b, _) = d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        let mut c = Collector::with_kind(PolicyKind::UpdatedPointer, 1, 0, 16);
        let info = d.write_slot(r, SlotId(0), None).unwrap();
        c.observe_write(&info);
        let out = c.maybe_collect(&mut d).unwrap().unwrap();
        assert_eq!(out.garbage_objects, 2, "a and b reclaimed");
        assert!(d.objects().contains(r));
    }

    #[test]
    fn batch_collects_multiple_partitions() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        // Fill several partitions with garbage-to-be.
        let (a, _) = d.create_object(Bytes(8100), 2, r, SlotId(0)).unwrap();
        d.write_slot(r, SlotId(0), None).unwrap();
        let (b, _) = d.create_object(Bytes(8100), 2, r, SlotId(1)).unwrap();
        let info = d.write_slot(r, SlotId(1), None).unwrap();
        let mut c = Collector::with_kind(PolicyKind::MostGarbage, 1, 0, 16).with_batch(2);
        c.observe_write(&info);
        c.maybe_collect(&mut d).unwrap();
        assert_eq!(d.stats().collections, 2, "batch of two");
        assert!(!d.objects().contains(a));
        assert!(!d.objects().contains(b));
    }

    #[test]
    fn allocation_trigger_fires_without_overwrites() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let mut c = Collector::with_trigger(
            build_policy(PolicyKind::Occupancy, 0, 16),
            Trigger::AllocationBytes(Bytes(1000)),
        );
        assert!(!c.observe_allocation(Bytes(500), false));
        assert!(c.observe_allocation(Bytes(600), false));
        let out = c.maybe_collect(&mut d).unwrap();
        assert!(out.is_some());
        assert!(d.objects().contains(r), "live root survives");
    }

    #[test]
    fn growth_trigger_fires_on_partition_growth() {
        let mut d = db();
        d.create_root(Bytes(100), 2).unwrap();
        let mut c = Collector::with_trigger(
            build_policy(PolicyKind::Occupancy, 0, 16),
            Trigger::PartitionGrowth,
        );
        assert!(!c.observe_allocation(Bytes(100), false));
        assert!(c.observe_allocation(Bytes(8100), true));
        assert!(c.maybe_collect(&mut d).unwrap().is_some());
    }

    #[test]
    fn data_writes_reach_only_the_yny_policy() {
        let mut d = db();
        d.create_root(Bytes(100), 2).unwrap();
        let mut yny = Collector::with_kind(PolicyKind::YnyMutated, 100, 0, 16);
        let mut enhanced = Collector::with_kind(PolicyKind::MutatedPartition, 100, 0, 16);
        for _ in 0..3 {
            yny.observe_data_write(pgc_types::PartitionId(1));
            enhanced.observe_data_write(pgc_types::PartitionId(1));
        }
        // Force a selection: YNY has a score for P1, enhanced does not
        // (falls back to fullest). Both should pick P1 here since it is
        // also the only used partition — so check the scores via policy
        // kind instead.
        assert_eq!(yny.policy_kind(), PolicyKind::YnyMutated);
        assert_eq!(enhanced.policy_kind(), PolicyKind::MutatedPartition);
        assert!(yny.force_collect(&mut d).unwrap().is_some());
    }

    #[test]
    fn debug_format_names_policy() {
        let c = Collector::with_kind(PolicyKind::Random, 10, 1, 16);
        let s = format!("{c:?}");
        assert!(s.contains("Random"));
    }
}
