//! Complete (whole-database) collection — the paper's future work.
//!
//! Sec. 6.5 observes that single-partition collections can never reclaim
//! *distributed garbage*: dead structures whose cross-partition pointers
//! keep each fragment remembered-set-reachable from another dead fragment
//! (mutual nepotism, including cross-partition cycles), and closes with
//! *"ultimately, we feel that distributed garbage will need to be
//! addressed in a graceful and scalable manner"*. This module provides the
//! baseline such mechanisms are judged against: a stop-the-world global
//! mark-and-collect that traverses the whole database from the root set
//! and then copy-collects every partition against the *global* mark,
//! reclaiming everything unreachable — cycles and nepotism chains
//! included.
//!
//! Cost model: the marking phase reads every live object's pages (a full
//! reachability traversal is secondary-storage work, unlike the free
//! simulation oracle); the sweep phase then evacuates each partition
//! exactly like [`crate::collect`], except that remembered-set entries
//! sourced at globally-dead objects are ignored rather than treated as
//! roots. All traffic is charged to the collector context.

use crate::db::Database;
use pgc_buffer::{Access, IoContext};
use pgc_storage::ObjAddr;
use pgc_types::{Bytes, DenseBitSet, Oid, PartitionId, Result, SlotId};
use std::collections::VecDeque;

/// Result of one complete collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullCollectionOutcome {
    /// Partitions evacuated.
    pub partitions_collected: u32,
    /// Objects that survived.
    pub live_objects: u64,
    /// Bytes that survived.
    pub live_bytes: Bytes,
    /// Objects reclaimed (including distributed/cyclic garbage).
    pub garbage_objects: u64,
    /// Bytes reclaimed.
    pub garbage_bytes: Bytes,
    /// Collector disk reads.
    pub gc_reads: u64,
    /// Collector disk writes.
    pub gc_writes: u64,
}

impl Database {
    /// Performs a complete, whole-database collection: global mark from
    /// the root set, then a copy-collection of every non-empty partition
    /// keeping only globally-marked objects. Reclaims distributed cyclic
    /// garbage that no sequence of single-partition collections can.
    pub fn collect_full(&mut self) -> Result<FullCollectionOutcome> {
        let io_before = self.buffer.stats();
        self.buffer.set_context(IoContext::Collector);

        // --- Phase 1: global mark (reads every live object). ---
        // Membership-only bit set over dense oids; mark order is never
        // observed (the sweep sorts residents), so this is behavior-neutral.
        let mut marked = DenseBitSet::with_capacity(self.objects.oid_bound() as usize);
        let mut stack: Vec<Oid> = self.roots.iter().copied().collect();
        while let Some(oid) = stack.pop() {
            if !marked.insert(oid.index()) {
                continue;
            }
            let rec = self.objects.get(oid)?;
            let span = self.span_of(rec.addr, rec.size);
            let children: Vec<Oid> = rec.slots.iter().flatten().copied().collect();
            self.buffer.access_span(span, Access::Read);
            stack.extend(children);
        }

        // --- Phase 2: evacuate each partition against the global mark. ---
        // Collecting one partition at a time preserves the invariant that
        // survivors of a partition fit the designated empty partition.
        let mut live_objects = 0u64;
        let mut live_bytes = Bytes::ZERO;
        let mut garbage_objects = 0u64;
        let mut garbage_bytes = Bytes::ZERO;
        let mut partitions_collected = 0u32;

        let victims: Vec<PartitionId> = self.partitions.collectable_ids().collect();
        for victim in victims {
            if self.partitions.partition(victim)?.is_fresh() {
                continue;
            }
            let target = self.partitions.empty_partition();

            // Copy marked residents breadth-first (deterministic order).
            let mut residents: Vec<Oid> = self.objects.members(victim).collect();
            residents.sort_unstable();
            let mut queue: VecDeque<Oid> = residents
                .iter()
                .copied()
                .filter(|o| marked.contains(o.index()))
                .collect();
            while let Some(oid) = queue.pop_front() {
                let rec = self.objects.get(oid)?;
                if rec.addr.partition != victim {
                    continue;
                }
                let size = rec.size;
                let old_span = self.span_of(rec.addr, size);
                self.buffer.access_span(old_span, Access::Read);
                let offset = self
                    .partitions
                    .allocate_in(target, size)?
                    .expect("survivors fit the empty partition");
                let new_addr = ObjAddr::new(target, offset);
                self.charge_full_copy(new_addr, size);
                self.partitions.partition_mut(victim)?.note_departure(size);
                self.objects.relocate(oid, new_addr)?;
                // Forward remembered pointers (sources may be marked or
                // not; unmarked sources die this same pass, so their
                // entries are dropped rather than forwarded).
                let forwarded = self.remsets.relocate_object(oid, victim, target);
                for loc in &forwarded {
                    if !marked.contains(loc.owner.index()) {
                        continue;
                    }
                    let src = self.objects.get(loc.owner)?;
                    let span = self.span_of(src.addr, src.size);
                    self.buffer.access_span(span, Access::Write);
                }
                live_objects += 1;
                live_bytes += size;
            }

            // Reclaim the unmarked remainder.
            let mut dead: Vec<Oid> = self.objects.members(victim).collect();
            dead.sort_unstable();
            for oid in dead {
                debug_assert!(!marked.contains(oid.index()), "marked object left behind");
                // Remove this dead object's cross-partition pointers from
                // the remembered sets they target.
                let slots: Vec<(SlotId, Oid)> = {
                    let rec = self.objects.get(oid)?;
                    rec.slots
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.map(|t| (SlotId(i as u16), t)))
                        .collect()
                };
                for (slot, t) in slots {
                    let Ok(trec) = self.objects.get(t) else {
                        continue; // reclaimed earlier in this pass
                    };
                    if trec.addr.partition != victim {
                        self.remsets.remove_edge(
                            pgc_types::PointerLoc::new(oid, slot),
                            victim,
                            t,
                            trec.addr.partition,
                        );
                    }
                }
                self.remsets.purge_source(victim, oid);
                // The dead object may itself be a remembered target (its
                // rememberers are dead too — that is exactly distributed
                // garbage); drop those entries wholesale.
                self.remsets.purge_target(victim, oid);
                let rec = self.objects.remove(oid)?;
                self.partitions
                    .partition_mut(victim)?
                    .note_departure(rec.size);
                garbage_objects += 1;
                garbage_bytes += rec.size;
            }

            let victim_pages: Vec<_> = self.partitions.partition_pages_span(victim).collect();
            self.buffer.invalidate(victim_pages);
            self.partitions.rotate_empty(victim)?;
            partitions_collected += 1;
        }

        self.buffer.set_context(IoContext::Application);
        self.stats.collections += 1;
        self.stats.reclaimed_bytes += garbage_bytes;
        self.stats.reclaimed_objects += garbage_objects;

        let io_after = self.buffer.stats();
        Ok(FullCollectionOutcome {
            partitions_collected,
            live_objects,
            live_bytes,
            garbage_objects,
            garbage_bytes,
            gc_reads: io_after.disk.gc_disk_reads - io_before.disk.gc_disk_reads,
            gc_writes: io_after.disk.gc_disk_writes - io_before.disk.gc_disk_writes,
        })
    }

    fn charge_full_copy(&mut self, addr: ObjAddr, size: Bytes) {
        let mut first = !addr.offset.is_multiple_of(self.cfg.page_size as u64);
        for page in self.span_of(addr, size) {
            let kind = if first {
                Access::Write
            } else {
                Access::WriteNew
            };
            self.buffer.access(page, kind);
            first = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use pgc_types::DbConfig;

    fn db() -> Database {
        Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap()
    }

    /// Builds two mutually-referencing garbage objects in *different*
    /// partitions: the distributed cycle single-partition collection
    /// cannot reclaim.
    fn distributed_cycle(d: &mut Database) -> (Oid, Oid) {
        let root = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        let (b, _) = d.create_object(Bytes(8100), 2, a, SlotId(0)).unwrap();
        let pa = d.objects().get(a).unwrap().addr.partition;
        let pb = d.objects().get(b).unwrap().addr.partition;
        assert_ne!(pa, pb, "b must spill to another partition");
        d.write_slot(b, SlotId(0), Some(a)).unwrap(); // close the cycle
        d.write_slot(root, SlotId(0), None).unwrap(); // orphan both
        (a, b)
    }

    #[test]
    fn single_partition_collections_cannot_reclaim_distributed_cycles() {
        let mut d = db();
        let (a, b) = distributed_cycle(&mut d);
        // Collect every collectable partition twice over.
        for _ in 0..2 {
            for p in d.collectable_partitions() {
                d.collect_partition(p).unwrap();
            }
        }
        assert!(
            d.objects().contains(a) && d.objects().contains(b),
            "distributed cyclic garbage survives partitioned collection"
        );
        let report = oracle::analyze(&d);
        assert!(report.garbage_bytes >= Bytes(8200));
        d.check_invariants();
    }

    #[test]
    fn full_collection_reclaims_distributed_cycles() {
        let mut d = db();
        let (a, b) = distributed_cycle(&mut d);
        let out = d.collect_full().unwrap();
        assert!(!d.objects().contains(a));
        assert!(!d.objects().contains(b));
        assert!(out.garbage_bytes >= Bytes(8200));
        assert_eq!(out.live_objects, 1, "only the root survives");
        let report = oracle::analyze(&d);
        assert_eq!(report.garbage_bytes, Bytes::ZERO);
        d.check_invariants();
    }

    #[test]
    fn full_collection_preserves_all_reachable_objects() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 2).unwrap();
        let (x, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        let (y, _) = d.create_object(Bytes(8100), 2, x, SlotId(0)).unwrap();
        let (z, _) = d.create_object(Bytes(100), 2, x, SlotId(1)).unwrap();
        let out = d.collect_full().unwrap();
        assert_eq!(out.garbage_objects, 0);
        for oid in [root, x, y, z] {
            assert!(d.objects().contains(oid));
        }
        d.check_invariants();
    }

    #[test]
    fn full_collection_charges_collector_io() {
        let mut d = db();
        distributed_cycle(&mut d);
        let out = d.collect_full().unwrap();
        let io = d.io_stats();
        assert_eq!(io.gc_disk_reads, out.gc_reads);
        assert_eq!(io.gc_disk_writes, out.gc_writes);
        assert!(out.gc_reads + out.gc_writes > 0 || io.hits > 0);
    }

    #[test]
    fn full_collection_compacts_every_partition() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 2).unwrap();
        // Two subtrees, one dies.
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        d.write_slot(root, SlotId(0), None).unwrap();
        d.collect_full().unwrap();
        // Exactly one partition holds data now; the rest are fresh.
        let used = d
            .partitions()
            .iter()
            .filter(|p| !p.is_fresh() && p.id() != d.empty_partition())
            .count();
        assert_eq!(used, 1);
        assert_eq!(d.resident_bytes(), Bytes(100));
        d.check_invariants();
    }

    #[test]
    fn full_collection_on_empty_database_is_a_noop() {
        let mut d = db();
        let out = d.collect_full().unwrap();
        assert_eq!(out.partitions_collected, 0);
        assert_eq!(out.live_objects, 0);
        assert_eq!(out.garbage_objects, 0);
    }
}
