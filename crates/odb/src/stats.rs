//! Database counters and the write-barrier event record.

use pgc_types::{Bytes, Oid, PartitionId, SlotId};

/// One side of a pointer as seen by the write barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerTarget {
    /// The target object.
    pub oid: Oid,
    /// The partition the target resides in at barrier time.
    pub partition: PartitionId,
    /// The target's root-distance weight at barrier time (used by the
    /// `WeightedPointer` policy).
    pub weight: u8,
}

/// Everything a selection policy may observe about one pointer store.
///
/// This is the paper's write barrier viewed as an event: the owner and its
/// partition (what `MutatedPartition` counts), the overwritten target if any
/// (what `UpdatedPointer` counts), that target's weight (what
/// `WeightedPointer` weighs), and whether the store initialized a slot of a
/// brand-new object (the creation-time stores whose inclusion the paper
/// identifies as `MutatedPartition`'s weakness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerWriteInfo {
    /// The object whose slot was written.
    pub owner: Oid,
    /// The partition containing the owner.
    pub owner_partition: PartitionId,
    /// The slot written.
    pub slot: SlotId,
    /// The pointer value that was overwritten, if the slot was non-null.
    pub old: Option<PointerTarget>,
    /// The pointer value stored, if non-null.
    pub new: Option<PointerTarget>,
    /// True when this store initializes a slot of an object being created.
    pub during_creation: bool,
}

impl PointerWriteInfo {
    /// True if the store overwrote an existing pointer (the paper's trigger
    /// event and `UpdatedPointer`'s hint).
    #[inline]
    pub fn is_overwrite(&self) -> bool {
        self.old.is_some()
    }
}

/// Cumulative semantic counters for one database.
///
/// These count *logical* events; the physical page I/O they induce is
/// accounted separately by the buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DbStats {
    /// Objects created.
    pub objects_created: u64,
    /// Cumulative bytes ever allocated (the paper's "maximum allocated"
    /// axis in Figure 6 is driven by this).
    pub bytes_allocated: Bytes,
    /// Pointer stores through the write barrier (including creation-time
    /// slot initialization).
    pub pointer_writes: u64,
    /// Pointer stores that replaced a non-null pointer.
    pub pointer_overwrites: u64,
    /// Non-pointer (data) writes.
    pub data_writes: u64,
    /// Object visits (reads).
    pub reads: u64,
    /// Partition collections performed.
    pub collections: u64,
    /// Bytes reclaimed by collections.
    pub reclaimed_bytes: Bytes,
    /// Objects reclaimed by collections.
    pub reclaimed_objects: u64,
}

impl DbStats {
    /// Edge read/write ratio so far (reads per pointer write); `None` until
    /// at least one pointer write happened. The paper's workloads sit
    /// around 15–20.
    pub fn read_write_ratio(&self) -> Option<f64> {
        (self.pointer_writes > 0).then(|| self.reads as f64 / self.pointer_writes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_overwrite_tracks_old() {
        let base = PointerWriteInfo {
            owner: Oid(1),
            owner_partition: PartitionId(0),
            slot: SlotId(0),
            old: None,
            new: None,
            during_creation: false,
        };
        assert!(!base.is_overwrite());
        let over = PointerWriteInfo {
            old: Some(PointerTarget {
                oid: Oid(2),
                partition: PartitionId(1),
                weight: 3,
            }),
            ..base
        };
        assert!(over.is_overwrite());
    }

    #[test]
    fn read_write_ratio() {
        let mut s = DbStats::default();
        assert!(s.read_write_ratio().is_none());
        s.reads = 30;
        s.pointer_writes = 2;
        assert!((s.read_write_ratio().unwrap() - 15.0).abs() < 1e-12);
    }
}
