//! Exact reachability analysis — the simulation's omniscient oracle.
//!
//! The paper's `MostGarbage` policy "always correctly selects the partition
//! that contains the most garbage" using "an oracle (provided by our
//! simulation system)". This module is that oracle: a full transitive
//! traversal from the root set, attributing every unreachable resident
//! object to its partition. It is also how the evaluation computes the
//! "Actual Garbage" row of Table 4 and the unreclaimed-garbage time series
//! of Figure 4.
//!
//! The oracle performs **no** simulated I/O: it inspects simulator state
//! directly, modeling information an implementable system cannot have.
//!
//! # Dense representation
//!
//! `MostGarbage` runs this analysis at **every** collection trigger, which
//! makes it the simulator's single hottest code path. Because oids are
//! dense and never reused, the live/garbage/seen sets are
//! [`DenseBitSet`]s indexed by `Oid::index()` rather than hash sets, and
//! all of them live in an [`OracleScratch`] that callers can reuse across
//! passes: after the first pass on a given database size, an oracle pass
//! performs no heap allocation. The original hash-set implementation is
//! retained verbatim in [`mod@reference`] as the correctness baseline for
//! equivalence tests and for the perf-regression harness
//! (`perf_report`).

use crate::db::Database;
use pgc_types::{Bytes, DenseBitSet, Oid, PartitionId};
use std::collections::HashSet;

#[path = "oracle_par.rs"]
pub mod parallel;

/// The oracle's view of the database at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Bytes of objects reachable from the root set.
    pub live_bytes: Bytes,
    /// Count of reachable objects.
    pub live_objects: u64,
    /// Bytes of unreachable (garbage) resident objects.
    pub garbage_bytes: Bytes,
    /// Count of unreachable resident objects.
    pub garbage_objects: u64,
    /// Per-partition garbage bytes, indexed by partition id.
    pub garbage_bytes_by_partition: Vec<Bytes>,
    /// Per-partition garbage object counts, indexed by partition id.
    pub garbage_objects_by_partition: Vec<u64>,
    /// Bytes of garbage that a *single-partition* collection could not
    /// reclaim anyway because the garbage is retained by remembered
    /// pointers from garbage in other partitions (nepotism / distributed
    /// garbage, Sec. 6.5).
    pub nepotism_bytes: Bytes,
}

impl OracleReport {
    /// Garbage bytes in one partition (0 for unknown partitions).
    pub fn garbage_in(&self, p: PartitionId) -> Bytes {
        self.garbage_bytes_by_partition
            .get(p.as_usize())
            .copied()
            .unwrap_or(Bytes::ZERO)
    }

    /// The partition with the most garbage bytes, excluding `exclude` (the
    /// designated empty partition). Ties break toward the lowest id so the
    /// policy is deterministic. Returns `None` if every eligible partition
    /// has zero garbage.
    pub fn most_garbage_partition(&self, exclude: PartitionId) -> Option<PartitionId> {
        let mut best: Option<(PartitionId, Bytes)> = None;
        for (idx, &bytes) in self.garbage_bytes_by_partition.iter().enumerate() {
            let p = PartitionId(idx as u32);
            if p == exclude || bytes.is_zero() {
                continue;
            }
            match best {
                Some((_, b)) if b >= bytes => {}
                _ => best = Some((p, bytes)),
            }
        }
        best.map(|(p, _)| p)
    }

    /// Like [`OracleReport::most_garbage_partition`], additionally
    /// skipping every partition in `exclude` — used by zone-parallel
    /// condemnation, where one oracle pass picks several disjoint victims
    /// in descending garbage order.
    pub fn most_garbage_partition_excluding(
        &self,
        empty: PartitionId,
        exclude: &[PartitionId],
    ) -> Option<PartitionId> {
        let mut best: Option<(PartitionId, Bytes)> = None;
        for (idx, &bytes) in self.garbage_bytes_by_partition.iter().enumerate() {
            let p = PartitionId(idx as u32);
            if p == empty || bytes.is_zero() || exclude.contains(&p) {
                continue;
            }
            match best {
                Some((_, b)) if b >= bytes => {}
                _ => best = Some((p, bytes)),
            }
        }
        best.map(|(p, _)| p)
    }
}

/// Reusable working memory for oracle passes.
///
/// All sets are cleared (allocation kept) at the start of each pass, so one
/// scratch amortizes every traversal a policy or sampler performs over the
/// life of a run.
#[derive(Debug, Default, Clone)]
pub struct OracleScratch {
    /// Objects reachable from the roots, by `Oid::index()`.
    live: DenseBitSet,
    /// Unreachable resident objects, by `Oid::index()`.
    garbage: DenseBitSet,
    /// Visited markers for the nepotism traversal.
    seen: DenseBitSet,
    /// Shared DFS stack.
    stack: Vec<Oid>,
}

impl OracleScratch {
    /// Creates empty scratch; it grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes the oracle report for the current database state.
///
/// Convenience wrapper that allocates fresh scratch; callers on a hot path
/// (policies, the sampler) should hold an [`OracleScratch`] and call
/// [`analyze_with`] instead.
pub fn analyze(db: &Database) -> OracleReport {
    analyze_with(db, &mut OracleScratch::new())
}

/// Computes the oracle report using caller-owned scratch memory.
///
/// Equivalent to [`analyze`] (and bit-identical to
/// [`reference::analyze`]) but performs no allocation once `scratch` has
/// grown to the database's oid bound.
pub fn analyze_with(db: &Database, scratch: &mut OracleScratch) -> OracleReport {
    let objects = db.objects();
    let bound = objects.oid_bound() as usize;
    scratch.live.clear();
    scratch.live.reserve(bound);
    scratch.garbage.clear();
    scratch.garbage.reserve(bound);
    scratch.seen.clear();
    scratch.seen.reserve(bound);
    scratch.stack.clear();

    // Phase 1: mark everything reachable from the roots.
    scratch.stack.extend(db.roots());
    while let Some(oid) = scratch.stack.pop() {
        if !scratch.live.insert(oid.index()) {
            continue;
        }
        let rec = objects
            .get(oid)
            .expect("reachable object missing from table");
        for t in rec.slots.iter().flatten() {
            scratch.stack.push(*t);
        }
    }

    // Phase 2: everything resident but unmarked is garbage; attribute it.
    let partition_count = db.partition_count();
    let mut garbage_bytes_by_partition = vec![Bytes::ZERO; partition_count];
    let mut garbage_objects_by_partition = vec![0u64; partition_count];
    let mut live_bytes = Bytes::ZERO;
    let mut garbage_bytes = Bytes::ZERO;
    let mut garbage_objects = 0u64;

    for (oid, rec) in objects.iter() {
        if scratch.live.contains(oid.index()) {
            live_bytes += rec.size;
        } else {
            let p = rec.addr.partition.as_usize();
            garbage_bytes_by_partition[p] += rec.size;
            garbage_objects_by_partition[p] += 1;
            garbage_bytes += rec.size;
            garbage_objects += 1;
            scratch.garbage.insert(oid.index());
        }
    }

    // Phase 3 — nepotism: garbage reachable from a remembered pointer whose
    // source is itself garbage in another partition. A per-partition
    // collection seeds its trace with remembered targets, so such garbage
    // survives any sequence of single-partition collections until the
    // garbage source is reclaimed first.
    for p in 0..partition_count as u32 {
        let pid = PartitionId(p);
        for target in db.remsets().remembered_targets(pid) {
            if scratch.garbage.contains(target.index()) {
                scratch.stack.push(target);
            }
        }
    }
    let mut nepotism_bytes = Bytes::ZERO;
    while let Some(oid) = scratch.stack.pop() {
        if !scratch.seen.insert(oid.index()) {
            continue;
        }
        let Ok(rec) = objects.get(oid) else { continue };
        if !scratch.garbage.contains(oid.index()) {
            continue;
        }
        nepotism_bytes += rec.size;
        for t in rec.slots.iter().flatten() {
            scratch.stack.push(*t);
        }
    }

    OracleReport {
        live_bytes,
        live_objects: scratch.live.len() as u64,
        garbage_bytes,
        garbage_objects,
        garbage_bytes_by_partition,
        garbage_objects_by_partition,
        nepotism_bytes,
    }
}

/// The set of objects reachable from the database roots.
///
/// Retained for callers that want the set itself rather than the report;
/// built via the dense traversal and materialized into a `HashSet` at the
/// end, so it is not on the zero-allocation path.
pub fn reachable_set(db: &Database) -> HashSet<Oid> {
    let objects = db.objects();
    let mut live = DenseBitSet::with_capacity(objects.oid_bound() as usize);
    let mut stack: Vec<Oid> = db.roots().collect();
    while let Some(oid) = stack.pop() {
        if !live.insert(oid.index()) {
            continue;
        }
        let rec = objects
            .get(oid)
            .expect("reachable object missing from table");
        for t in rec.slots.iter().flatten() {
            stack.push(*t);
        }
    }
    live.iter().map(Oid).collect()
}

/// The original hash-set oracle, kept as a correctness and performance
/// baseline.
///
/// This is the pre-dense implementation, byte for byte: three `HashSet`s
/// allocated per pass. The equivalence test below and the seeded-loop
/// property test in `tests/` hold [`analyze`] to producing
/// identical [`OracleReport`]s, and `perf_report` measures the speedup
/// against it.
pub mod reference {
    use super::{Database, OracleReport};
    use pgc_types::{Bytes, Oid, PartitionId};
    use std::collections::HashSet;

    /// Computes the oracle report with hash-set working memory.
    pub fn analyze(db: &Database) -> OracleReport {
        let objects = db.objects();
        let live = reachable_set(db);

        let partition_count = db.partition_count();
        let mut garbage_bytes_by_partition = vec![Bytes::ZERO; partition_count];
        let mut garbage_objects_by_partition = vec![0u64; partition_count];
        let mut live_bytes = Bytes::ZERO;
        let mut garbage_bytes = Bytes::ZERO;
        let mut garbage_objects = 0u64;
        let mut garbage_set: HashSet<Oid> = HashSet::new();

        for (oid, rec) in objects.iter() {
            if live.contains(&oid) {
                live_bytes += rec.size;
            } else {
                let p = rec.addr.partition.as_usize();
                garbage_bytes_by_partition[p] += rec.size;
                garbage_objects_by_partition[p] += 1;
                garbage_bytes += rec.size;
                garbage_objects += 1;
                garbage_set.insert(oid);
            }
        }

        let mut retained_roots: Vec<Oid> = Vec::new();
        for p in 0..partition_count as u32 {
            let pid = PartitionId(p);
            for target in db.remsets().remembered_targets(pid) {
                if garbage_set.contains(&target) {
                    retained_roots.push(target);
                }
            }
        }
        let mut nepotism_bytes = Bytes::ZERO;
        let mut seen: HashSet<Oid> = HashSet::new();
        let mut stack = retained_roots;
        while let Some(oid) = stack.pop() {
            if !seen.insert(oid) {
                continue;
            }
            let Ok(rec) = objects.get(oid) else { continue };
            if !garbage_set.contains(&oid) {
                continue;
            }
            nepotism_bytes += rec.size;
            for t in rec.slots.iter().flatten() {
                stack.push(*t);
            }
        }

        OracleReport {
            live_bytes,
            live_objects: live.len() as u64,
            garbage_bytes,
            garbage_objects,
            garbage_bytes_by_partition,
            garbage_objects_by_partition,
            nepotism_bytes,
        }
    }

    /// Hash-set reachability, as originally implemented.
    pub fn reachable_set(db: &Database) -> HashSet<Oid> {
        let objects = db.objects();
        let mut live: HashSet<Oid> = HashSet::new();
        let mut stack: Vec<Oid> = db.roots().collect();
        while let Some(oid) = stack.pop() {
            if !live.insert(oid) {
                continue;
            }
            let rec = objects
                .get(oid)
                .expect("reachable object missing from table");
            for t in rec.slots.iter().flatten() {
                stack.push(*t);
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, SimRng, SlotId};

    fn db() -> Database {
        Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap()
    }

    #[test]
    fn empty_database_has_no_garbage() {
        let d = db();
        let r = analyze(&d);
        assert_eq!(r.live_objects, 0);
        assert_eq!(r.garbage_objects, 0);
        assert_eq!(r.most_garbage_partition(d.empty_partition()), None);
    }

    #[test]
    fn fully_live_database() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        let r = analyze(&d);
        assert_eq!(r.live_objects, 3);
        assert_eq!(r.live_bytes, Bytes(300));
        assert_eq!(r.garbage_objects, 0);
    }

    #[test]
    fn cut_edge_creates_garbage_subtree() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        let (b, _) = d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        d.create_object(Bytes(100), 2, b, SlotId(0)).unwrap();
        // Cut root -> a: a, b, c all die.
        d.write_slot(root, SlotId(0), None).unwrap();
        let r = analyze(&d);
        assert_eq!(r.live_objects, 1);
        assert_eq!(r.garbage_objects, 3);
        assert_eq!(r.garbage_bytes, Bytes(300));
        let p = d.objects().get(a).unwrap().addr.partition;
        assert_eq!(r.garbage_in(p), Bytes(300));
        assert_eq!(r.most_garbage_partition(d.empty_partition()), Some(p));
    }

    #[test]
    fn dense_edge_keeps_subtree_alive() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 3).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        let (b, _) = d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        // Dense edge root -> b.
        d.write_slot(root, SlotId(2), Some(b)).unwrap();
        // Cut root -> a: only a dies; b survives via the dense edge.
        d.write_slot(root, SlotId(0), None).unwrap();
        let r = analyze(&d);
        assert_eq!(r.live_objects, 2);
        assert_eq!(r.garbage_objects, 1);
    }

    #[test]
    fn cycles_do_not_hang_and_die_together() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        let (b, _) = d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        // b -> a closes a cycle.
        d.write_slot(b, SlotId(0), Some(a)).unwrap();
        d.write_slot(root, SlotId(0), None).unwrap();
        let r = analyze(&d);
        assert_eq!(r.garbage_objects, 2, "cyclic garbage is still garbage");
        assert_eq!(r.live_objects, 1);
    }

    #[test]
    fn most_garbage_excludes_empty_partition_and_breaks_ties_low() {
        let report = OracleReport {
            live_bytes: Bytes::ZERO,
            live_objects: 0,
            garbage_bytes: Bytes(300),
            garbage_objects: 3,
            garbage_bytes_by_partition: vec![Bytes(100), Bytes(100), Bytes(100)],
            garbage_objects_by_partition: vec![1, 1, 1],
            nepotism_bytes: Bytes::ZERO,
        };
        assert_eq!(
            report.most_garbage_partition(PartitionId(0)),
            Some(PartitionId(1))
        );
        assert_eq!(
            report.most_garbage_partition(PartitionId(1)),
            Some(PartitionId(0))
        );
    }

    #[test]
    fn garbage_in_unknown_partition_is_zero() {
        let d = db();
        let r = analyze(&d);
        assert_eq!(r.garbage_in(PartitionId(99)), Bytes::ZERO);
    }

    #[test]
    fn scratch_is_reusable_across_passes() {
        let mut d = db();
        let mut scratch = OracleScratch::new();
        let root = d.create_root(Bytes(100), 2).unwrap();
        let first = analyze_with(&d, &mut scratch);
        assert_eq!(first.live_objects, 1);
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        d.write_slot(root, SlotId(0), None).unwrap();
        let second = analyze_with(&d, &mut scratch);
        assert_eq!(second.live_objects, 1);
        assert_eq!(second.garbage_objects, 2);
        assert_eq!(second, analyze(&d), "stale scratch state leaked");
    }

    #[test]
    fn dense_matches_reference_on_randomized_databases() {
        // Seeded-loop equivalence: build small random object graphs
        // (including unlink-created garbage and cross-partition pointers
        // that exercise the nepotism pass) and require the dense analysis
        // to reproduce the reference report exactly.
        let mut scratch = OracleScratch::new();
        for seed in 0..20u64 {
            let mut rng = SimRng::new(seed);
            let mut d = db();
            let mut oids = Vec::new();
            for _ in 0..rng.range_inclusive(1, 4) {
                oids.push(
                    d.create_root(Bytes(rng.range_inclusive(40, 200)), 3)
                        .unwrap(),
                );
            }
            for _ in 0..rng.range_inclusive(20, 120) {
                let parent = *rng.pick(&oids);
                let slot = SlotId(rng.below(3) as u16);
                match rng.below(10) {
                    // Mostly allocate.
                    0..=6 => {
                        if let Ok((o, _)) =
                            d.create_object(Bytes(rng.range_inclusive(40, 200)), 3, parent, slot)
                        {
                            oids.push(o);
                        }
                    }
                    // Rewire an existing edge (may orphan a subtree).
                    7..=8 => {
                        let target = *rng.pick(&oids);
                        let _ = d.write_slot(parent, slot, Some(target));
                    }
                    // Cut an edge.
                    _ => {
                        let _ = d.write_slot(parent, slot, None);
                    }
                }
            }
            let expected = reference::analyze(&d);
            let got = analyze_with(&d, &mut scratch);
            assert_eq!(got, expected, "seed {seed} diverged");
            assert_eq!(analyze(&d), expected, "convenience wrapper diverged");
        }
    }
}
