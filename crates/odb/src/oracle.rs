//! Exact reachability analysis — the simulation's omniscient oracle.
//!
//! The paper's `MostGarbage` policy "always correctly selects the partition
//! that contains the most garbage" using "an oracle (provided by our
//! simulation system)". This module is that oracle: a full transitive
//! traversal from the root set, attributing every unreachable resident
//! object to its partition. It is also how the evaluation computes the
//! "Actual Garbage" row of Table 4 and the unreclaimed-garbage time series
//! of Figure 4.
//!
//! The oracle performs **no** simulated I/O: it inspects simulator state
//! directly, modeling information an implementable system cannot have.

use crate::db::Database;
use pgc_types::{Bytes, Oid, PartitionId};
use std::collections::HashSet;

/// The oracle's view of the database at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Bytes of objects reachable from the root set.
    pub live_bytes: Bytes,
    /// Count of reachable objects.
    pub live_objects: u64,
    /// Bytes of unreachable (garbage) resident objects.
    pub garbage_bytes: Bytes,
    /// Count of unreachable resident objects.
    pub garbage_objects: u64,
    /// Per-partition garbage bytes, indexed by partition id.
    pub garbage_bytes_by_partition: Vec<Bytes>,
    /// Per-partition garbage object counts, indexed by partition id.
    pub garbage_objects_by_partition: Vec<u64>,
    /// Bytes of garbage that a *single-partition* collection could not
    /// reclaim anyway because the garbage is retained by remembered
    /// pointers from garbage in other partitions (nepotism / distributed
    /// garbage, Sec. 6.5).
    pub nepotism_bytes: Bytes,
}

impl OracleReport {
    /// Garbage bytes in one partition (0 for unknown partitions).
    pub fn garbage_in(&self, p: PartitionId) -> Bytes {
        self.garbage_bytes_by_partition
            .get(p.as_usize())
            .copied()
            .unwrap_or(Bytes::ZERO)
    }

    /// The partition with the most garbage bytes, excluding `exclude` (the
    /// designated empty partition). Ties break toward the lowest id so the
    /// policy is deterministic. Returns `None` if every eligible partition
    /// has zero garbage.
    pub fn most_garbage_partition(&self, exclude: PartitionId) -> Option<PartitionId> {
        let mut best: Option<(PartitionId, Bytes)> = None;
        for (idx, &bytes) in self.garbage_bytes_by_partition.iter().enumerate() {
            let p = PartitionId(idx as u32);
            if p == exclude || bytes.is_zero() {
                continue;
            }
            match best {
                Some((_, b)) if b >= bytes => {}
                _ => best = Some((p, bytes)),
            }
        }
        best.map(|(p, _)| p)
    }
}

/// Computes the oracle report for the current database state.
pub fn analyze(db: &Database) -> OracleReport {
    let objects = db.objects();
    let live = reachable_set(db);

    let partition_count = db.partition_count();
    let mut garbage_bytes_by_partition = vec![Bytes::ZERO; partition_count];
    let mut garbage_objects_by_partition = vec![0u64; partition_count];
    let mut live_bytes = Bytes::ZERO;
    let mut garbage_bytes = Bytes::ZERO;
    let mut garbage_objects = 0u64;
    let mut garbage_set: HashSet<Oid> = HashSet::new();

    for (oid, rec) in objects.iter() {
        if live.contains(&oid) {
            live_bytes += rec.size;
        } else {
            let p = rec.addr.partition.as_usize();
            garbage_bytes_by_partition[p] += rec.size;
            garbage_objects_by_partition[p] += 1;
            garbage_bytes += rec.size;
            garbage_objects += 1;
            garbage_set.insert(oid);
        }
    }

    // Nepotism: garbage reachable from a remembered pointer whose source is
    // itself garbage in another partition. A per-partition collection seeds
    // its trace with remembered targets, so such garbage survives any
    // sequence of single-partition collections until the garbage source is
    // reclaimed first.
    let mut retained_roots: Vec<Oid> = Vec::new();
    for p in 0..partition_count as u32 {
        let pid = PartitionId(p);
        for target in db.remsets().remembered_targets(pid) {
            if garbage_set.contains(&target) {
                retained_roots.push(target);
            }
        }
    }
    let mut nepotism_bytes = Bytes::ZERO;
    let mut seen: HashSet<Oid> = HashSet::new();
    let mut stack = retained_roots;
    while let Some(oid) = stack.pop() {
        if !seen.insert(oid) {
            continue;
        }
        let Ok(rec) = objects.get(oid) else { continue };
        if !garbage_set.contains(&oid) {
            continue;
        }
        nepotism_bytes += rec.size;
        for t in rec.slots.iter().flatten() {
            stack.push(*t);
        }
    }

    OracleReport {
        live_bytes,
        live_objects: live.len() as u64,
        garbage_bytes,
        garbage_objects,
        garbage_bytes_by_partition,
        garbage_objects_by_partition,
        nepotism_bytes,
    }
}

/// The set of objects reachable from the database roots.
pub fn reachable_set(db: &Database) -> HashSet<Oid> {
    let objects = db.objects();
    let mut live: HashSet<Oid> = HashSet::new();
    let mut stack: Vec<Oid> = db.roots().collect();
    while let Some(oid) = stack.pop() {
        if !live.insert(oid) {
            continue;
        }
        let rec = objects
            .get(oid)
            .expect("reachable object missing from table");
        for t in rec.slots.iter().flatten() {
            stack.push(*t);
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{Bytes, DbConfig, SlotId};

    fn db() -> Database {
        Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap()
    }

    #[test]
    fn empty_database_has_no_garbage() {
        let d = db();
        let r = analyze(&d);
        assert_eq!(r.live_objects, 0);
        assert_eq!(r.garbage_objects, 0);
        assert_eq!(r.most_garbage_partition(d.empty_partition()), None);
    }

    #[test]
    fn fully_live_database() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        let r = analyze(&d);
        assert_eq!(r.live_objects, 3);
        assert_eq!(r.live_bytes, Bytes(300));
        assert_eq!(r.garbage_objects, 0);
    }

    #[test]
    fn cut_edge_creates_garbage_subtree() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        let (b, _) = d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        d.create_object(Bytes(100), 2, b, SlotId(0)).unwrap();
        // Cut root -> a: a, b, c all die.
        d.write_slot(root, SlotId(0), None).unwrap();
        let r = analyze(&d);
        assert_eq!(r.live_objects, 1);
        assert_eq!(r.garbage_objects, 3);
        assert_eq!(r.garbage_bytes, Bytes(300));
        let p = d.objects().get(a).unwrap().addr.partition;
        assert_eq!(r.garbage_in(p), Bytes(300));
        assert_eq!(r.most_garbage_partition(d.empty_partition()), Some(p));
    }

    #[test]
    fn dense_edge_keeps_subtree_alive() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 3).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        let (b, _) = d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        // Dense edge root -> b.
        d.write_slot(root, SlotId(2), Some(b)).unwrap();
        // Cut root -> a: only a dies; b survives via the dense edge.
        d.write_slot(root, SlotId(0), None).unwrap();
        let r = analyze(&d);
        assert_eq!(r.live_objects, 2);
        assert_eq!(r.garbage_objects, 1);
    }

    #[test]
    fn cycles_do_not_hang_and_die_together() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        let (b, _) = d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        // b -> a closes a cycle.
        d.write_slot(b, SlotId(0), Some(a)).unwrap();
        d.write_slot(root, SlotId(0), None).unwrap();
        let r = analyze(&d);
        assert_eq!(r.garbage_objects, 2, "cyclic garbage is still garbage");
        assert_eq!(r.live_objects, 1);
    }

    #[test]
    fn most_garbage_excludes_empty_partition_and_breaks_ties_low() {
        let report = OracleReport {
            live_bytes: Bytes::ZERO,
            live_objects: 0,
            garbage_bytes: Bytes(300),
            garbage_objects: 3,
            garbage_bytes_by_partition: vec![Bytes(100), Bytes(100), Bytes(100)],
            garbage_objects_by_partition: vec![1, 1, 1],
            nepotism_bytes: Bytes::ZERO,
        };
        assert_eq!(
            report.most_garbage_partition(PartitionId(0)),
            Some(PartitionId(1))
        );
        assert_eq!(
            report.most_garbage_partition(PartitionId(1)),
            Some(PartitionId(0))
        );
    }

    #[test]
    fn garbage_in_unknown_partition_is_zero() {
        let d = db();
        let r = analyze(&d);
        assert_eq!(r.garbage_in(PartitionId(99)), Bytes::ZERO);
    }
}
