//! Parallel reachability marking — the multi-threaded twin of
//! [`analyze_with`](super::analyze_with).
//!
//! `MostGarbage` runs a full oracle pass at every collection trigger, which
//! makes the pass the hottest serial section of a paper-config run. This
//! module fans the pass out over a small pool of scoped worker threads
//! (`std::thread::scope`, no extra dependencies) while producing an
//! [`OracleReport`] that is **bit-identical** to the serial analysis:
//!
//! * **Mark** — workers share an [`AtomicBitSet`] of live marks and trade
//!   frontier chunks through per-worker deques (owner pushes/pops its own
//!   back, idle workers steal from the front of the others). Marking is
//!   confluent — the reachable set is the least fixed point of "roots plus
//!   successors", so any interleaving of test-and-set marks computes the
//!   same set. Termination is detected exactly under a single mutex: a
//!   worker only retires when no deque holds work *and* every other worker
//!   is idle, so no thread can race ahead to the sweep while marking is
//!   still in flight.
//! * **Sweep** — the oid space is split into one contiguous range per
//!   worker; each worker tallies live/garbage bytes for its range into
//!   private scratch, and the ranges are merged in ascending order.
//!   Integer sums over the same index sets in any grouping are exact, so
//!   the totals match the serial sweep bit for bit.
//! * **Nepotism** — runs serially on the calling thread (it is a tiny
//!   traversal seeded from remembered sets), reading the shared garbage
//!   bits the sweep produced.
//!
//! With one worker the same code runs inline on the calling thread — no
//! threads are spawned — so `Deterministic(1)` costs only the atomic
//! test-and-set over the serial path.

use super::OracleReport;
use crate::db::Database;
use pgc_storage::ObjectTable;
use pgc_types::{AtomicBitSet, Bytes, DenseBitSet, Oid, PartitionId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Spill half the local frontier to the shared deque once it grows past
/// this many entries. Low enough that a single hot root tree gets shared,
/// high enough that a chunk amortizes its hand-off.
const SPILL_AT: usize = 256;

/// Roots are dealt into the worker deques in chunks of this size so the
/// initial frontier is balanced before any stealing happens.
const ROOT_CHUNK: usize = 16;

/// Reusable working memory for [`analyze_parallel`] passes.
///
/// Like [`OracleScratch`](super::OracleScratch), everything is cleared
/// (allocations kept) at the start of each pass: after the first pass at a
/// given database size the steady state performs no heap allocation beyond
/// the transient deque headers.
#[derive(Debug, Default)]
pub struct ParallelScratch {
    /// Shared live marks, by `Oid::index()`.
    live: AtomicBitSet,
    /// Shared garbage marks, by `Oid::index()` (written by the sweep,
    /// read by the nepotism traversal).
    garbage: AtomicBitSet,
    /// Visited markers for the serial nepotism traversal.
    seen: DenseBitSet,
    /// Serial nepotism stack.
    stack: Vec<Oid>,
    /// Per-worker private state (local frontier + sweep tallies).
    workers: Vec<WorkerScratch>,
    /// Recycled frontier chunk buffers, kept across passes.
    chunk_pool: Vec<Vec<Oid>>,
}

impl ParallelScratch {
    /// Creates empty scratch; it grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One worker's private half of the pass.
#[derive(Debug, Default)]
struct WorkerScratch {
    /// Local mark frontier (LIFO, like the serial DFS stack).
    local: Vec<Oid>,
    live_bytes: Bytes,
    garbage_bytes: Bytes,
    garbage_objects: u64,
    garbage_bytes_by_partition: Vec<Bytes>,
    garbage_objects_by_partition: Vec<u64>,
}

impl WorkerScratch {
    fn reset(&mut self, partition_count: usize) {
        self.local.clear();
        self.live_bytes = Bytes::ZERO;
        self.garbage_bytes = Bytes::ZERO;
        self.garbage_objects = 0;
        self.garbage_bytes_by_partition.clear();
        self.garbage_bytes_by_partition
            .resize(partition_count, Bytes::ZERO);
        self.garbage_objects_by_partition.clear();
        self.garbage_objects_by_partition.resize(partition_count, 0);
    }
}

/// State every worker can reach: the work-stealing deques plus the exact
/// active-worker count, all under one mutex so "no work anywhere and
/// nobody active" is a single atomic observation.
struct Shared {
    /// Per-worker chunk deques: owner pushes and pops at the back, thieves
    /// steal from the front.
    deques: Vec<VecDeque<Vec<Oid>>>,
    /// Recycled chunk buffers.
    spares: Vec<Vec<Oid>>,
    /// Workers currently holding local work (or hunting for it outside the
    /// lock). Marking is complete exactly when this hits zero with every
    /// deque empty.
    active: usize,
}

impl Shared {
    fn steal(&mut self, me: usize) -> Option<Vec<Oid>> {
        if let Some(chunk) = self.deques[me].pop_back() {
            return Some(chunk);
        }
        let n = self.deques.len();
        for i in 1..n {
            if let Some(chunk) = self.deques[(me + i) % n].pop_front() {
                return Some(chunk);
            }
        }
        None
    }
}

/// Everything the marking workers share by reference.
struct MarkCtx<'a> {
    objects: &'a ObjectTable,
    live: &'a AtomicBitSet,
    shared: Mutex<Shared>,
    /// Chunks currently sitting in the deques, maintained under the lock
    /// but readable without it: idle workers spin on this instead of the
    /// mutex, so spills from busy workers stay uncontended.
    queued: AtomicUsize,
    /// Set (under the lock) by the worker that observes global
    /// termination; idle spinners exit on it without touching the mutex.
    done: AtomicBool,
    workers: usize,
}

/// Drains local work, spilling surplus to the shared deque; steals when
/// dry; retires only when every worker is idle and every deque is empty.
///
/// A marking pass is short (single-digit milliseconds), so idle workers
/// spin off-lock rather than park on a condvar — the wakeup syscalls would
/// cost more than the remaining marking. Termination stays exact: the
/// retiring decision ("steal failed and I was the last active worker") is
/// made under the same mutex that guards every chunk push.
fn mark_worker(ctx: &MarkCtx<'_>, me: usize, local: &mut Vec<Oid>) {
    loop {
        while let Some(oid) = local.pop() {
            if !ctx.live.insert(oid.index()) {
                continue;
            }
            let rec = ctx
                .objects
                .get(oid)
                .expect("reachable object missing from table");
            for t in rec.slots.iter().flatten() {
                // Pre-filter marked children: cheaper than queueing them
                // and harmless to skip (insert re-checks at pop).
                if !ctx.live.contains(t.index()) {
                    local.push(*t);
                }
            }
            if ctx.workers > 1 && local.len() >= SPILL_AT {
                // Spilling only redistributes work the owner would drain
                // anyway, so a contended lock skips the spill instead of
                // stalling the mark loop.
                if let Ok(mut sh) = ctx.shared.try_lock() {
                    let mut chunk = sh.spares.pop().unwrap_or_default();
                    chunk.extend(local.drain(local.len() / 2..));
                    sh.deques[me].push_back(chunk);
                    ctx.queued.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mut sh = ctx.shared.lock().unwrap();
        loop {
            if let Some(mut chunk) = sh.steal(me) {
                ctx.queued.fetch_sub(1, Ordering::Relaxed);
                local.append(&mut chunk);
                sh.spares.push(chunk);
                break;
            }
            sh.active -= 1;
            if sh.active == 0 {
                // Exact termination: observed under the same lock that
                // guards every push, so no chunk can be in flight.
                ctx.done.store(true, Ordering::Release);
                return;
            }
            drop(sh);
            let mut spins = 0u32;
            loop {
                std::hint::spin_loop();
                if ctx.done.load(Ordering::Acquire) {
                    return;
                }
                if ctx.queued.load(Ordering::Relaxed) > 0 {
                    break;
                }
                spins += 1;
                if spins.is_multiple_of(1024) {
                    // Stay live when workers outnumber cores.
                    std::thread::yield_now();
                }
            }
            sh = ctx.shared.lock().unwrap();
            sh.active += 1;
        }
    }
}

/// Tallies one contiguous oid range of the sweep into worker scratch,
/// publishing garbage marks to the shared set.
fn sweep_range(
    objects: &ObjectTable,
    live: &AtomicBitSet,
    garbage: &AtomicBitSet,
    ws: &mut WorkerScratch,
    range: std::ops::Range<u64>,
) {
    for idx in range {
        let Ok(rec) = objects.get(Oid(idx)) else {
            continue;
        };
        if live.contains(idx) {
            ws.live_bytes += rec.size;
        } else {
            let p = rec.addr.partition.as_usize();
            ws.garbage_bytes_by_partition[p] += rec.size;
            ws.garbage_objects_by_partition[p] += 1;
            ws.garbage_bytes += rec.size;
            ws.garbage_objects += 1;
            garbage.insert(idx);
        }
    }
}

/// Computes the oracle report with up to `threads` worker threads.
///
/// Bit-identical to [`analyze_with`](super::analyze_with) for every
/// `threads >= 1` — the equivalence tests below and the
/// `Deterministic(n)` invariance tests in `pgc-sim` hold it to that. With
/// `threads <= 1` no threads are spawned.
pub fn analyze_parallel(
    db: &Database,
    scratch: &mut ParallelScratch,
    threads: usize,
) -> OracleReport {
    let objects = db.objects();
    let bound = objects.oid_bound();
    let partition_count = db.partition_count();
    let n = threads.max(1);

    scratch.live.reset(bound as usize);
    scratch.garbage.reset(bound as usize);
    scratch.seen.clear();
    scratch.seen.reserve(bound as usize);
    scratch.stack.clear();
    if scratch.workers.len() < n {
        scratch.workers.resize_with(n, WorkerScratch::default);
    }
    for ws in &mut scratch.workers[..n] {
        ws.reset(partition_count);
    }

    let ParallelScratch {
        live,
        garbage,
        seen,
        stack,
        workers,
        chunk_pool,
    } = scratch;
    let live = &*live;
    let garbage = &*garbage;

    // Deal the roots into the deques in chunks so the initial frontier is
    // spread across workers.
    let mut deques: Vec<VecDeque<Vec<Oid>>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut root_chunks = 0usize;
    {
        let mut next = 0usize;
        let mut chunk = chunk_pool.pop().unwrap_or_default();
        for root in db.roots() {
            chunk.push(root);
            if chunk.len() >= ROOT_CHUNK {
                deques[next].push_back(std::mem::replace(
                    &mut chunk,
                    chunk_pool.pop().unwrap_or_default(),
                ));
                root_chunks += 1;
                next = (next + 1) % n;
            }
        }
        if chunk.is_empty() {
            chunk_pool.push(chunk);
        } else {
            deques[next].push_back(chunk);
            root_chunks += 1;
        }
    }

    let ctx = MarkCtx {
        objects,
        live,
        shared: Mutex::new(Shared {
            deques,
            spares: std::mem::take(chunk_pool),
            active: n,
        }),
        queued: AtomicUsize::new(root_chunks),
        done: AtomicBool::new(false),
        workers: n,
    };

    // Mark + sweep. Each worker marks until global termination (exact,
    // lock-protected), then sweeps its own contiguous oid range; the
    // termination protocol is the safepoint between the phases.
    let per = bound.div_ceil(n as u64);
    let range_of = |w: u64| (w * per).min(bound)..((w + 1) * per).min(bound);
    let (w0, rest) = workers[..n].split_at_mut(1);
    if n == 1 {
        mark_worker(&ctx, 0, &mut w0[0].local);
        sweep_range(objects, live, garbage, &mut w0[0], range_of(0));
    } else {
        std::thread::scope(|s| {
            for (i, ws) in rest.iter_mut().enumerate() {
                let me = i + 1;
                let ctx = &ctx;
                s.spawn(move || {
                    let mut local = std::mem::take(&mut ws.local);
                    mark_worker(ctx, me, &mut local);
                    ws.local = local;
                    // `mark_worker` returns only at global mark termination,
                    // so every live bit is published before any sweep reads.
                    sweep_range(ctx.objects, ctx.live, garbage, ws, range_of(me as u64));
                });
            }
            mark_worker(&ctx, 0, &mut w0[0].local);
            sweep_range(objects, live, garbage, &mut w0[0], range_of(0));
        });
    }

    // Reclaim the chunk buffers for the next pass.
    let mut sh = ctx.shared.into_inner().unwrap();
    *chunk_pool = std::mem::take(&mut sh.spares);
    for mut dq in sh.deques {
        chunk_pool.extend(dq.drain(..));
    }

    // Merge the per-range tallies in ascending range order.
    let mut garbage_bytes_by_partition = vec![Bytes::ZERO; partition_count];
    let mut garbage_objects_by_partition = vec![0u64; partition_count];
    let mut live_bytes = Bytes::ZERO;
    let mut garbage_bytes = Bytes::ZERO;
    let mut garbage_objects = 0u64;
    for ws in &workers[..n] {
        live_bytes += ws.live_bytes;
        garbage_bytes += ws.garbage_bytes;
        garbage_objects += ws.garbage_objects;
        for (acc, &b) in garbage_bytes_by_partition
            .iter_mut()
            .zip(&ws.garbage_bytes_by_partition)
        {
            *acc += b;
        }
        for (acc, &c) in garbage_objects_by_partition
            .iter_mut()
            .zip(&ws.garbage_objects_by_partition)
        {
            *acc += c;
        }
    }

    // Nepotism: identical to the serial phase 3, reading the shared
    // garbage marks. Small enough that parallelism would not pay.
    for p in 0..partition_count as u32 {
        let pid = PartitionId(p);
        for target in db.remsets().remembered_targets(pid) {
            if garbage.contains(target.index()) {
                stack.push(target);
            }
        }
    }
    let mut nepotism_bytes = Bytes::ZERO;
    while let Some(oid) = stack.pop() {
        if !seen.insert(oid.index()) {
            continue;
        }
        let Ok(rec) = objects.get(oid) else { continue };
        if !garbage.contains(oid.index()) {
            continue;
        }
        nepotism_bytes += rec.size;
        for t in rec.slots.iter().flatten() {
            stack.push(*t);
        }
    }

    OracleReport {
        live_bytes,
        live_objects: live.count(),
        garbage_bytes,
        garbage_objects,
        garbage_bytes_by_partition,
        garbage_objects_by_partition,
        nepotism_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::{DbConfig, SimRng, SlotId};

    fn db() -> Database {
        Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap()
    }

    /// Random graph recipe shared with the serial oracle's equivalence
    /// test: allocations, rewires (orphaning subtrees), and cuts.
    fn random_db(seed: u64) -> Database {
        let mut rng = SimRng::new(seed);
        let mut d = db();
        let mut oids = Vec::new();
        for _ in 0..rng.range_inclusive(1, 4) {
            oids.push(
                d.create_root(Bytes(rng.range_inclusive(40, 200)), 3)
                    .unwrap(),
            );
        }
        for _ in 0..rng.range_inclusive(20, 120) {
            let parent = *rng.pick(&oids);
            let slot = SlotId(rng.below(3) as u16);
            match rng.below(10) {
                0..=6 => {
                    if let Ok((o, _)) =
                        d.create_object(Bytes(rng.range_inclusive(40, 200)), 3, parent, slot)
                    {
                        oids.push(o);
                    }
                }
                7..=8 => {
                    let target = *rng.pick(&oids);
                    let _ = d.write_slot(parent, slot, Some(target));
                }
                _ => {
                    let _ = d.write_slot(parent, slot, None);
                }
            }
        }
        d
    }

    #[test]
    fn empty_database_has_no_garbage() {
        let d = db();
        let r = analyze_parallel(&d, &mut ParallelScratch::new(), 4);
        assert_eq!(r.live_objects, 0);
        assert_eq!(r.garbage_objects, 0);
        assert_eq!(r, super::super::analyze(&d));
    }

    #[test]
    fn parallel_matches_serial_on_randomized_databases() {
        // Same recipe as the dense-vs-reference equivalence test, held to
        // bit-identical reports at 1, 2, and 4 workers with scratch reuse
        // across every pass.
        let mut scratches = [
            ParallelScratch::new(),
            ParallelScratch::new(),
            ParallelScratch::new(),
        ];
        for seed in 0..20u64 {
            let d = random_db(seed);
            let expected = super::super::analyze(&d);
            for (scratch, threads) in scratches.iter_mut().zip([1usize, 2, 4]) {
                let got = analyze_parallel(&d, scratch, threads);
                assert_eq!(got, expected, "seed {seed} at {threads} threads diverged");
            }
        }
    }

    #[test]
    fn oversubscribed_workers_terminate_and_agree() {
        // More workers than work: most threads never see a chunk and must
        // retire cleanly through the termination protocol.
        let d = random_db(3);
        let expected = super::super::analyze(&d);
        let got = analyze_parallel(&d, &mut ParallelScratch::new(), 16);
        assert_eq!(got, expected);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let d = random_db(5);
        let expected = super::super::analyze(&d);
        assert_eq!(
            analyze_parallel(&d, &mut ParallelScratch::new(), 0),
            expected
        );
    }
}
