//! # pgc-odb
//!
//! The simulated object database the paper's collectors run against. It
//! combines the physical model from `pgc-storage` with the I/O cost model
//! from `pgc-buffer` and adds the semantic machinery of Sec. 4.1:
//!
//! * [`db`] — the [`Database`] facade: state ownership, read-only views,
//!   and access to the barrier event log.
//! * [`engine`] — the mutation engine behind the facade: object creation
//!   with near-parent placement, pointer stores through the **write
//!   barrier**, visits and data writes, all charged page I/O through the
//!   buffer pool and all reported on the event bus.
//! * [`events`] — the typed **barrier event bus**: the [`BarrierEvent`]
//!   enum (every signal an implementable policy may observe), the
//!   [`BarrierObserver`] trait, and the [`ObserverRegistry`] that
//!   delivers drained events to any number of taps.
//! * [`remset`] — remembered sets (locations of inter-partition pointers
//!   *into* each partition) and out-of-partition sets (objects *with*
//!   pointers out of each partition), maintained exactly at the write
//!   barrier and cleaned when garbage sources are reclaimed.
//! * [`weights`] — per-object 4-bit root-distance weights for the
//!   `WeightedPointer` policy (1 at a root, `min+1` along edges, capped,
//!   propagated transitively on decrease).
//! * [`collect`] — the breadth-first **copying collection** of one
//!   partition into the designated empty partition, with remembered-set
//!   forwarding and cleanup; this is the fixed mechanism every selection
//!   policy shares.
//! * [`global`] — **extension** (the paper's future work): a complete
//!   stop-the-world mark-and-collect over the whole database, reclaiming
//!   the distributed cyclic garbage single-partition collections cannot.
//! * [`oracle`] — exact reachability analysis over the whole database,
//!   backing the `MostGarbage` policy and the "actual garbage" rows of the
//!   evaluation. The oracle is free (no I/O): it models the simulator's
//!   omniscience, not an implementable system.
//! * [`stats`] — database counters and the [`PointerWriteInfo`] record the
//!   write barrier emits for the selection policies to observe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod db;
pub mod engine;
pub mod events;
pub mod global;
pub mod oracle;
pub mod remset;
pub mod stats;
pub mod weights;

pub use collect::{CollectionOutcome, CollectionPlan};
pub use db::{Database, PartitionProfile};
pub use events::{BarrierEvent, BarrierObserver, EventLog, ObserverRegistry};
pub use global::FullCollectionOutcome;
pub use oracle::OracleReport;
pub use remset::RemsetTable;
pub use stats::{DbStats, PointerTarget, PointerWriteInfo};
