//! The [`Database`] facade: construction, read-only views, event-log
//! access, and invariant checks.
//!
//! The database is layered:
//!
//! * **This module** owns the state (`partitions`, `objects`, `buffer`,
//!   `remsets`, `roots`, `stats`, and the barrier [`EventLog`]) and the
//!   read-only surface.
//! * [`crate::engine`] is the **mutation engine**: object creation, the
//!   write barrier ([`Database::write_slot`]), visits and data writes —
//!   every state change, with full I/O charging and
//!   [`crate::events::BarrierEvent`] emission.
//! * [`crate::collect`] is the **collector mechanism**: breadth-first
//!   copying collection of one partition, emitting per-object copy/reclaim
//!   events and a completion event on the same bus.
//!
//! Events accumulate in the internal log until a pump (the `pgc_core`
//! collector wrapper or the `pgc_sim` replayer) drains them with
//! [`Database::drain_events_into`]; standalone users can inspect them via
//! [`Database::events`] or discard them with [`Database::clear_events`].

use crate::events::{BarrierEvent, EventLog};
use crate::remset::RemsetTable;
use crate::stats::DbStats;
use pgc_buffer::{IoStats, NetStats, PageStore};
use pgc_storage::{page_span, ObjAddr, ObjectTable, PageSpan, PartitionSet};
use pgc_types::{Bytes, DbConfig, Oid, PartitionId, Result, SlotId};
use std::collections::BTreeSet;

/// Occupancy snapshot of one partition (see
/// [`Database::partition_profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionProfile {
    /// Which partition.
    pub partition: PartitionId,
    /// True for the designated empty (copy-target) partition.
    pub is_empty_designated: bool,
    /// Byte capacity.
    pub capacity: Bytes,
    /// Bytes handed out by the bump allocator (live + dead + holes).
    pub used: Bytes,
    /// Bytes of resident (not yet reclaimed) objects.
    pub resident: Bytes,
    /// Resident object count.
    pub objects: u64,
    /// Remembered inter-partition pointers into this partition.
    pub remembered_pointers: u64,
    /// Resident objects holding pointers out of this partition.
    pub out_of_partition_objects: u64,
}

/// The simulated object database.
///
/// ```
/// use pgc_odb::Database;
/// use pgc_types::{Bytes, DbConfig, SlotId};
///
/// let mut db = Database::new(DbConfig::default()).unwrap();
/// let root = db.create_root(Bytes(100), 2).unwrap();
/// let (child, info) = db.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
/// assert!(info.during_creation);
///
/// // Overwriting the pointer orphans the child...
/// let info = db.write_slot(root, SlotId(0), None).unwrap();
/// assert!(info.is_overwrite());
///
/// // ...and collecting the partition reclaims it.
/// let home = db.objects().get(child).unwrap().addr.partition;
/// let outcome = db.collect_partition(home).unwrap();
/// assert_eq!(outcome.garbage_objects, 1);
/// assert!(!db.objects().contains(child));
///
/// // Every mutation above also landed on the barrier event bus.
/// assert!(!db.events().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    pub(crate) cfg: DbConfig,
    pub(crate) partitions: PartitionSet,
    pub(crate) objects: ObjectTable,
    pub(crate) buffer: PageStore,
    pub(crate) remsets: RemsetTable,
    pub(crate) roots: BTreeSet<Oid>,
    pub(crate) stats: DbStats,
    pub(crate) events: EventLog,
}

impl Database {
    /// Creates an empty database under `cfg` (validated).
    pub fn new(cfg: DbConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            partitions: PartitionSet::new(cfg.page_size, cfg.partition_pages)
                .with_placement(cfg.placement),
            objects: ObjectTable::new(),
            buffer: match cfg.client_cache_pages {
                Some(client) => PageStore::tiered(client as usize, cfg.buffer_pages as usize),
                None => PageStore::single(cfg.buffer_pages as usize),
            },
            remsets: RemsetTable::new(),
            roots: BTreeSet::new(),
            stats: DbStats::default(),
            events: EventLog::new(),
            cfg,
        })
    }

    // ---------------------------------------------------------------
    // The barrier event bus
    // ---------------------------------------------------------------

    /// Shared view of the buffered (undrained) barrier events.
    #[inline]
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Moves all buffered barrier events to the end of `sink`, leaving the
    /// log empty. The pump calls this after every operation and broadcasts
    /// the drained events to its observer registry.
    #[inline]
    pub fn drain_events_into(&mut self, sink: &mut Vec<BarrierEvent>) {
        self.events.drain_into(sink);
    }

    /// Discards all buffered barrier events (for standalone users that do
    /// not pump the bus).
    #[inline]
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    // ---------------------------------------------------------------
    // Views
    // ---------------------------------------------------------------

    /// The configuration this database was created with.
    #[inline]
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// Semantic event counters.
    #[inline]
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Physical disk I/O counters from the page store.
    #[inline]
    pub fn io_stats(&self) -> IoStats {
        self.buffer.stats().disk
    }

    /// Network message counters (all zero unless the database was
    /// configured with a client cache; see
    /// [`pgc_types::DbConfig::with_client_cache_pages`]).
    #[inline]
    pub fn net_stats(&self) -> NetStats {
        self.buffer.stats().net
    }

    /// The root set.
    pub fn roots(&self) -> impl Iterator<Item = Oid> + '_ {
        self.roots.iter().copied()
    }

    /// True if `oid` is a database root.
    #[inline]
    pub fn is_root(&self, oid: Oid) -> bool {
        self.roots.contains(&oid)
    }

    /// Shared view of the object table.
    #[inline]
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// True while `oid` is resident (registered and not yet reclaimed).
    #[inline]
    pub fn contains_object(&self, oid: Oid) -> bool {
        self.objects.contains(oid)
    }

    /// The partition currently holding `oid` (`None` once reclaimed).
    /// Tracks relocations: after a collection copies the object, this is
    /// the copy target, not the collected victim. External bookkeeping —
    /// a sharded runtime's inter-shard remset, for one — keys on this.
    #[inline]
    pub fn partition_of(&self, oid: Oid) -> Option<PartitionId> {
        self.objects.get(oid).ok().map(|rec| rec.addr.partition)
    }

    /// Shared view of the partition set.
    #[inline]
    pub fn partitions(&self) -> &PartitionSet {
        &self.partitions
    }

    /// Shared view of the remembered sets.
    #[inline]
    pub fn remsets(&self) -> &RemsetTable {
        &self.remsets
    }

    /// Number of partitions in existence (including the empty one).
    #[inline]
    pub fn partition_count(&self) -> usize {
        self.partitions.partition_count()
    }

    /// The designated empty partition (the copy target).
    #[inline]
    pub fn empty_partition(&self) -> PartitionId {
        self.partitions.empty_partition()
    }

    /// Partitions eligible for collection (everything but the empty one).
    pub fn collectable_partitions(&self) -> Vec<PartitionId> {
        self.partitions.collectable_ids().collect()
    }

    /// Total storage footprint (all partitions at full width) — the
    /// paper's "storage required".
    #[inline]
    pub fn total_footprint(&self) -> Bytes {
        self.partitions.total_footprint()
    }

    /// Bytes of resident (not yet reclaimed) objects — live data plus
    /// unreclaimed garbage, the paper's "database size" (Figure 5).
    #[inline]
    pub fn resident_bytes(&self) -> Bytes {
        self.objects.total_bytes()
    }

    /// Per-partition occupancy snapshot (diagnostics; no simulated I/O).
    pub fn partition_profile(&self) -> Vec<PartitionProfile> {
        let empty = self.empty_partition();
        self.partitions
            .iter()
            .map(|p| PartitionProfile {
                partition: p.id(),
                is_empty_designated: p.id() == empty,
                capacity: p.capacity(),
                used: p.used_bytes(),
                resident: p.resident_bytes(),
                objects: self.objects.member_count(p.id()) as u64,
                remembered_pointers: self.remsets.remembered_pointer_count(p.id()) as u64,
                out_of_partition_objects: self.remsets.out_set(p.id()).count() as u64,
            })
            .collect()
    }

    /// Page span of an extent under this database's geometry.
    #[inline]
    pub(crate) fn span_of(&self, addr: ObjAddr, size: Bytes) -> PageSpan {
        page_span(addr, size, self.cfg.page_size, self.cfg.partition_pages)
    }

    /// Page span of a registered object.
    pub fn object_pages(&self, oid: Oid) -> Result<PageSpan> {
        let rec = self.objects.get(oid)?;
        Ok(self.span_of(rec.addr, rec.size))
    }

    /// Debug invariant check across all subsystems (object table,
    /// remembered sets, buffer). Used by tests; O(database size).
    pub fn check_invariants(&self) {
        self.objects.check_invariants();
        self.remsets.check_invariants();
        self.buffer.check_invariants();
        // Remsets must mirror the actual cross-partition edges.
        let mut expected = 0usize;
        for (oid, rec) in self.objects.iter() {
            for (i, slot) in rec.slots.iter().enumerate() {
                if let Some(target) = slot {
                    let trec = self.objects.get(*target).expect("dangling pointer");
                    if trec.addr.partition != rec.addr.partition {
                        expected += 1;
                        let loc = pgc_types::PointerLoc::new(oid, SlotId(i as u16));
                        assert!(
                            self.remsets
                                .locations_of(trec.addr.partition, *target)
                                .any(|l| l == loc),
                            "missing remset entry for {loc}"
                        );
                    }
                }
            }
        }
        let recorded: usize = (0..self.partitions.partition_count())
            .map(|p| self.remsets.remembered_pointer_count(PartitionId(p as u32)))
            .sum();
        assert_eq!(expected, recorded, "remset has stale or missing entries");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> DbConfig {
        // 4 pages of 1 KB per partition => 4 KB partitions.
        DbConfig::default()
            .with_page_size(1024)
            .with_partition_pages(4)
    }

    fn db() -> Database {
        Database::new(tiny_cfg()).unwrap()
    }

    #[test]
    fn create_root_registers_and_charges_io() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        assert!(d.is_root(r));
        assert_eq!(d.stats().objects_created, 1);
        assert_eq!(d.stats().bytes_allocated, Bytes(100));
        // The first object materializes a fresh page: no disk read.
        assert_eq!(d.io_stats().app_disk_reads, 0);
        assert_eq!(d.objects().get(r).unwrap().weight, 1);
        d.check_invariants();
    }

    #[test]
    fn create_object_links_parent_and_sets_weight() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let (c, info) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        assert_eq!(d.objects().get(r).unwrap().slots[0], Some(c));
        assert_eq!(d.objects().get(c).unwrap().weight, 2);
        assert!(info.during_creation);
        assert!(!info.is_overwrite());
        assert_eq!(info.owner, r);
        assert_eq!(d.stats().pointer_writes, 1);
        assert_eq!(d.stats().pointer_overwrites, 0);
        d.check_invariants();
    }

    #[test]
    fn children_are_placed_near_parents() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let (c, _) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let rp = d.objects().get(r).unwrap().addr.partition;
        let cp = d.objects().get(c).unwrap().addr.partition;
        assert_eq!(rp, cp);
    }

    #[test]
    fn overwrite_is_counted_and_reported() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let (_b, _) = d.create_object(Bytes(100), 2, r, SlotId(1)).unwrap();
        let info = d.write_slot(r, SlotId(0), None).unwrap();
        assert!(info.is_overwrite());
        assert_eq!(info.old.unwrap().oid, a);
        assert_eq!(info.new, None);
        assert_eq!(d.stats().pointer_overwrites, 1);
        assert_eq!(d.objects().get(r).unwrap().slots[0], None);
        d.check_invariants();
    }

    #[test]
    fn cross_partition_pointer_maintains_remset() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        // Fill partition 1 so the next object spills elsewhere.
        let mut filler;
        loop {
            let (nxt, _) = d.create_object(Bytes(1000), 2, r, SlotId(1)).unwrap();
            filler = nxt;
            let p = d.objects().get(nxt).unwrap().addr.partition;
            if p != d.objects().get(r).unwrap().addr.partition {
                break;
            }
        }
        let rp = d.objects().get(r).unwrap().addr.partition;
        let fp = d.objects().get(filler).unwrap().addr.partition;
        assert_ne!(rp, fp);
        // r.slot1 -> filler crosses partitions: remset must know.
        assert!(d.remsets().remembered_targets(fp).any(|t| t == filler));
        assert!(d.remsets().in_out_set(rp, r));
        d.check_invariants();
        // Clearing the slot removes the entry.
        d.write_slot(r, SlotId(1), None).unwrap();
        assert!(!d.remsets().remembered_targets(fp).any(|t| t == filler));
        d.check_invariants();
    }

    #[test]
    fn database_grows_when_full() {
        let mut d = db();
        let r = d.create_root(Bytes(2048), 2).unwrap();
        let before = d.partition_count();
        // Another 2 KB object fills P1; the next must grow the database.
        d.create_object(Bytes(2048), 2, r, SlotId(0)).unwrap();
        d.create_object(Bytes(2048), 2, r, SlotId(1)).unwrap();
        assert!(d.partition_count() > before);
        // The empty partition is never allocated into.
        for (_, rec) in d.objects().iter() {
            assert_ne!(rec.addr.partition, d.empty_partition());
        }
    }

    #[test]
    fn visit_and_data_write_charge_page_traffic() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let io0 = d.io_stats();
        d.visit(r).unwrap();
        // Page already buffered from creation: a hit, no disk I/O.
        assert_eq!(d.io_stats().total_ios(), io0.total_ios());
        assert_eq!(d.stats().reads, 1);
        d.data_write(r).unwrap();
        assert_eq!(d.stats().data_writes, 1);
        assert_eq!(
            d.stats().pointer_writes,
            0,
            "data write is not a barrier event"
        );
    }

    #[test]
    fn read_slot_returns_value() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let (c, _) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        assert_eq!(d.read_slot(r, SlotId(0)).unwrap(), Some(c));
        assert_eq!(d.read_slot(r, SlotId(1)).unwrap(), None);
        assert!(d.read_slot(r, SlotId(9)).is_err());
    }

    #[test]
    fn add_slot_extends_object() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let s = d.add_slot(r).unwrap();
        assert_eq!(s, SlotId(2));
        let (c, _) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        d.write_slot(r, s, Some(c)).unwrap();
        assert_eq!(d.read_slot(r, s).unwrap(), Some(c));
        d.check_invariants();
    }

    #[test]
    fn weight_updates_flow_through_barrier() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let (b, _) = d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        assert_eq!(d.objects().get(b).unwrap().weight, 3);
        // Root points directly at b: weight drops to 2.
        d.write_slot(r, SlotId(1), Some(b)).unwrap();
        assert_eq!(d.objects().get(b).unwrap().weight, 2);
    }

    #[test]
    fn unknown_object_operations_error() {
        let mut d = db();
        assert!(d.visit(Oid(99)).is_err());
        assert!(d.write_slot(Oid(99), SlotId(0), None).is_err());
        assert!(d.data_write(Oid(99)).is_err());
        assert!(d.object_pages(Oid(99)).is_err());
    }

    #[test]
    fn resident_bytes_tracks_allocation() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        d.create_object(Bytes(200), 2, r, SlotId(0)).unwrap();
        assert_eq!(d.resident_bytes(), Bytes(300));
        assert_eq!(d.total_footprint(), Bytes(2 * 4096));
    }

    #[test]
    fn failed_operations_log_no_events() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        d.clear_events();
        assert!(d.write_slot(r, SlotId(9), None).is_err());
        assert!(d.data_write(Oid(99)).is_err());
        assert!(d.events().is_empty());
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    #[test]
    fn partition_profile_reflects_state() {
        let mut d = Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let (spill, _) = d.create_object(Bytes(8100), 2, r, SlotId(0)).unwrap();
        let _ = spill;
        let profile = d.partition_profile();
        assert_eq!(profile.len(), d.partition_count());
        let empty_rows: Vec<_> = profile.iter().filter(|p| p.is_empty_designated).collect();
        assert_eq!(empty_rows.len(), 1);
        assert_eq!(empty_rows[0].objects, 0);
        let total_objects: u64 = profile.iter().map(|p| p.objects).sum();
        assert_eq!(total_objects, d.objects().len() as u64);
        let total_resident: u64 = profile.iter().map(|p| p.resident.get()).sum();
        assert_eq!(total_resident, d.resident_bytes().get());
        // The root's partition has an out-of-partition pointer (to spill)
        // and spill's partition has one remembered pointer.
        let home = d.objects().get(r).unwrap().addr.partition;
        let home_row = profile.iter().find(|p| p.partition == home).unwrap();
        assert_eq!(home_row.out_of_partition_objects, 1);
        let foreign: Vec<_> = profile
            .iter()
            .filter(|p| p.remembered_pointers > 0)
            .collect();
        assert_eq!(foreign.len(), 1);
        assert_eq!(foreign[0].remembered_pointers, 1);
    }
}
