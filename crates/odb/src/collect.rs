//! Breadth-first copying collection of one partition (Sec. 4.1).
//!
//! The mechanism, identical for every selection policy:
//!
//! 1. The *victim* partition's roots are gathered: database roots resident
//!    in the victim, then every target of a remembered inter-partition
//!    pointer into the victim. Remembered targets are treated as live even
//!    if their rememberers are garbage elsewhere — that conservatism is the
//!    *nepotism* the paper measures in Sec. 6.5.
//! 2. Iterating over the roots one at a time, live objects are copied
//!    breadth-first into the designated empty partition. Intra-partition
//!    edges are traversed; pointers leaving the victim are not. Copying
//!    compacts: internal fragmentation in the victim is eliminated.
//! 3. Remembered pointers to each evacuated object are *forwarded*: the
//!    remembered-set entries are re-keyed to the target partition and the
//!    pages holding the source pointers are dirtied (collector I/O).
//! 4. Whatever remains in the victim is garbage. For each dead object in
//!    the victim's out-of-partition set, the locations of its pointers are
//!    removed from the remembered sets they point into — the cleanup rule
//!    that stops dead pointers from unnecessarily preserving objects in
//!    later collections of other partitions.
//! 5. The victim's buffered pages are dropped without write-back (their
//!    contents are dead), the victim is reset, and it becomes the next
//!    designated empty partition.
//!
//! All page traffic in here is charged to [`IoContext::Collector`].

use crate::db::Database;
use crate::events::BarrierEvent;
use pgc_buffer::{Access, IoContext};
use pgc_storage::ObjAddr;
use pgc_types::{Bytes, DenseBitSet, Oid, PartitionId, PgcError, Result, SlotId};
use std::collections::VecDeque;

/// What one partition collection accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectionOutcome {
    /// The partition that was collected (now the designated empty one).
    pub victim: PartitionId,
    /// The partition the survivors were copied into.
    pub target: PartitionId,
    /// Objects copied (survivors).
    pub live_objects: u64,
    /// Bytes copied.
    pub live_bytes: Bytes,
    /// Objects reclaimed.
    pub garbage_objects: u64,
    /// Bytes reclaimed.
    pub garbage_bytes: Bytes,
    /// Remembered inter-partition pointers forwarded to moved objects.
    pub forwarded_pointers: u64,
    /// Collector disk reads performed by this collection.
    pub gc_reads: u64,
    /// Collector disk writes performed by this collection.
    pub gc_writes: u64,
}

/// A precomputed single-partition collection: the exact evacuation order
/// and death list [`Database::collect_partition`] would produce, derived
/// without mutating anything.
///
/// Plans exist for zone-parallel collection: because they are computed
/// through `&Database`, several worker threads can plan disjoint victims
/// concurrently (`std::thread::scope`), after which the coordinating
/// thread replays each plan with [`Database::apply_plan`] in canonical
/// partition-id order. A plan deliberately stores **no addresses** — only
/// oids — so applying an earlier plan (which relocates objects and re-keys
/// remembered sets) cannot invalidate a later one, provided the victims'
/// remembered sets are disjoint (see `DESIGN.md` §12).
#[derive(Debug, Clone)]
pub struct CollectionPlan {
    victim: PartitionId,
    /// Survivors, in the exact breadth-first copy order of
    /// [`Database::collect_partition`] (deduplicated).
    evac: Vec<Oid>,
    /// Dead victim residents, ascending.
    dead: Vec<Oid>,
}

impl CollectionPlan {
    /// The partition this plan condemns.
    pub fn victim(&self) -> PartitionId {
        self.victim
    }

    /// How many objects the plan will copy out.
    pub fn survivor_count(&self) -> usize {
        self.evac.len()
    }

    /// How many objects the plan will reclaim.
    pub fn dead_count(&self) -> usize {
        self.dead.len()
    }
}

impl Database {
    /// Computes the collection plan for `victim` without touching the
    /// database: the breadth-first evacuation order and the sorted death
    /// list, exactly as [`Database::collect_partition`] would discover
    /// them. Performs no simulated I/O (planning reads simulator state the
    /// way the oracle does; the copies are charged at apply time).
    pub fn plan_collection(&self, victim: PartitionId) -> Result<CollectionPlan> {
        let target = self.partitions.empty_partition();
        if victim == target {
            return Err(PgcError::CollectEmptyPartition(victim));
        }
        let _ = self.partitions.partition(victim)?;

        // Roots, in collect_partition's order: database roots resident in
        // the victim (BTreeSet order), then sorted remembered targets.
        let mut partition_roots: Vec<Oid> = Vec::new();
        for oid in self.roots.iter().copied() {
            if self.objects.get(oid)?.addr.partition == victim {
                partition_roots.push(oid);
            }
        }
        let mut remembered: Vec<Oid> = self.remsets.remembered_targets(victim).collect();
        remembered.sort_unstable();
        partition_roots.extend(remembered);

        // The same BFS as collect_partition, with "already planned"
        // standing in for "already evacuated" — the two predicates flip in
        // the same order, so the queue contents (and thus the evacuation
        // order) are identical.
        let mut planned = DenseBitSet::with_capacity(self.objects.oid_bound() as usize);
        let mut evac: Vec<Oid> = Vec::new();
        let mut queue: VecDeque<Oid> = VecDeque::new();
        for root in partition_roots {
            queue.push_back(root);
            while let Some(oid) = queue.pop_front() {
                if planned.contains(oid.index()) {
                    continue;
                }
                planned.insert(oid.index());
                evac.push(oid);
                let rec = self.objects.get(oid)?;
                for child in rec.slots.iter().flatten() {
                    if !planned.contains(child.index())
                        && self.objects.get(*child)?.addr.partition == victim
                    {
                        queue.push_back(*child);
                    }
                }
            }
        }

        let mut dead: Vec<Oid> = self
            .objects
            .members(victim)
            .filter(|o| !planned.contains(o.index()))
            .collect();
        dead.sort_unstable();

        Ok(CollectionPlan { victim, evac, dead })
    }

    /// Executes a plan produced by [`Database::plan_collection`],
    /// producing exactly the state, I/O charges, and barrier events of
    /// [`Database::collect_partition`] on the plan's victim.
    ///
    /// The plan must still describe the database — nothing may have
    /// mutated the victim (or relocated its objects) since planning.
    /// Collections of *remset-disjoint* partitions keep each other's plans
    /// valid; that is the zone-collection safety condition.
    pub fn apply_plan(&mut self, plan: &CollectionPlan) -> Result<CollectionOutcome> {
        let victim = plan.victim;
        let target = self.partitions.empty_partition();
        if victim == target {
            return Err(PgcError::CollectEmptyPartition(victim));
        }
        let _ = self.partitions.partition(victim)?;

        let io_before = self.buffer.stats();
        self.buffer.set_context(IoContext::Collector);

        let mut live_objects = 0u64;
        let mut live_bytes = Bytes::ZERO;
        let mut forwarded_pointers = 0u64;
        for &oid in &plan.evac {
            let rec = self.objects.get(oid)?;
            debug_assert_eq!(rec.addr.partition, victim, "stale collection plan");
            let size = rec.size;
            let old_addr = rec.addr;

            let old_span = self.span_of(old_addr, size);
            self.buffer.access_span(old_span, Access::Read);

            let offset = self
                .partitions
                .allocate_in(target, size)?
                .expect("survivors of one partition always fit the empty partition");
            let new_addr = ObjAddr::new(target, offset);
            self.charge_copy_write(new_addr, size);

            self.partitions.partition_mut(victim)?.note_departure(size);
            self.objects.relocate(oid, new_addr)?;

            let forwarded = self.remsets.relocate_object(oid, victim, target);
            for loc in &forwarded {
                let src = self.objects.get(loc.owner)?;
                let span = self.span_of(src.addr, src.size);
                self.buffer.access_span(span, Access::Write);
            }
            forwarded_pointers += forwarded.len() as u64;

            live_objects += 1;
            live_bytes += size;
            self.events.push(BarrierEvent::ObjectCopied {
                oid,
                from: victim,
                to: target,
                size,
            });
        }

        debug_assert_eq!(
            self.remsets.remembered_target_count(victim),
            0,
            "all remembered targets must have been evacuated"
        );

        let mut garbage_objects = 0u64;
        let mut garbage_bytes = Bytes::ZERO;
        for &oid in &plan.dead {
            if self.remsets.in_out_set(victim, oid) {
                let slots: Vec<(SlotId, Oid)> = {
                    let rec = self.objects.get(oid)?;
                    rec.slots
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.map(|t| (SlotId(i as u16), t)))
                        .collect()
                };
                for (slot, t) in slots {
                    let Ok(target_rec) = self.objects.get(t) else {
                        continue;
                    };
                    let tp = target_rec.addr.partition;
                    if tp != victim {
                        self.remsets.remove_edge(
                            pgc_types::PointerLoc::new(oid, slot),
                            victim,
                            t,
                            tp,
                        );
                    }
                }
                self.remsets.purge_source(victim, oid);
            }
            let rec = self.objects.remove(oid)?;
            self.partitions
                .partition_mut(victim)?
                .note_departure(rec.size);
            garbage_objects += 1;
            garbage_bytes += rec.size;
            self.events.push(BarrierEvent::ObjectReclaimed {
                oid,
                partition: victim,
                size: rec.size,
            });
        }

        let victim_pages: Vec<_> = self.partitions.partition_pages_span(victim).collect();
        self.buffer.invalidate(victim_pages);
        self.partitions.rotate_empty(victim)?;

        self.buffer.set_context(IoContext::Application);

        self.stats.collections += 1;
        self.stats.reclaimed_bytes += garbage_bytes;
        self.stats.reclaimed_objects += garbage_objects;

        let io_after = self.buffer.stats();
        let outcome = CollectionOutcome {
            victim,
            target,
            live_objects,
            live_bytes,
            garbage_objects,
            garbage_bytes,
            forwarded_pointers,
            gc_reads: io_after.disk.gc_disk_reads - io_before.disk.gc_disk_reads,
            gc_writes: io_after.disk.gc_disk_writes - io_before.disk.gc_disk_writes,
        };
        self.events.push(BarrierEvent::CollectionCompleted(outcome));
        Ok(outcome)
    }

    /// Collects `victim`, copying its live objects into the designated
    /// empty partition. See the module docs for the full algorithm.
    pub fn collect_partition(&mut self, victim: PartitionId) -> Result<CollectionOutcome> {
        let target = self.partitions.empty_partition();
        if victim == target {
            return Err(PgcError::CollectEmptyPartition(victim));
        }
        // Fail early on unknown partitions.
        let _ = self.partitions.partition(victim)?;

        let io_before = self.buffer.stats();
        self.buffer.set_context(IoContext::Collector);

        // --- 1. Gather the victim's roots, deterministically ordered. ---
        // Database roots first (BTreeSet iteration is sorted), then
        // remembered targets (sorted explicitly: the remset is hash-based).
        let mut partition_roots: Vec<Oid> = Vec::new();
        for oid in self.roots.iter().copied() {
            if self.objects.get(oid)?.addr.partition == victim {
                partition_roots.push(oid);
            }
        }
        let mut remembered: Vec<Oid> = self.remsets.remembered_targets(victim).collect();
        remembered.sort_unstable();
        partition_roots.extend(remembered);

        // --- 2. Breadth-first evacuation, one root at a time. ---
        let mut live_objects = 0u64;
        let mut live_bytes = Bytes::ZERO;
        let mut forwarded_pointers = 0u64;
        let mut queue: VecDeque<Oid> = VecDeque::new();
        for root in partition_roots {
            queue.push_back(root);
            while let Some(oid) = queue.pop_front() {
                let rec = self.objects.get(oid)?;
                if rec.addr.partition != victim {
                    // Already evacuated via another path (or a root that a
                    // previous root's trace reached first).
                    continue;
                }
                let size = rec.size;
                let old_addr = rec.addr;
                let children: Vec<Oid> = rec.slots.iter().flatten().copied().collect();

                // Read the object from the victim...
                let old_span = self.span_of(old_addr, size);
                self.buffer.access_span(old_span, Access::Read);

                // ...copy it into the target...
                let offset = self
                    .partitions
                    .allocate_in(target, size)?
                    .expect("survivors of one partition always fit the empty partition");
                let new_addr = ObjAddr::new(target, offset);
                self.charge_copy_write(new_addr, size);

                self.partitions.partition_mut(victim)?.note_departure(size);
                self.objects.relocate(oid, new_addr)?;

                // ...and forward every remembered pointer at it.
                let forwarded = self.remsets.relocate_object(oid, victim, target);
                for loc in &forwarded {
                    // The source object's page holds the pointer; updating
                    // it is a read-modify-write of that page.
                    let src = self.objects.get(loc.owner)?;
                    let span = self.span_of(src.addr, src.size);
                    self.buffer.access_span(span, Access::Write);
                }
                forwarded_pointers += forwarded.len() as u64;

                live_objects += 1;
                live_bytes += size;
                self.events.push(BarrierEvent::ObjectCopied {
                    oid,
                    from: victim,
                    to: target,
                    size,
                });

                for child in children {
                    if self.objects.get(child)?.addr.partition == victim {
                        queue.push_back(child);
                    }
                }
            }
        }

        debug_assert_eq!(
            self.remsets.remembered_target_count(victim),
            0,
            "all remembered targets must have been evacuated"
        );

        // --- 3. Reclaim the stragglers: everything left is garbage. ---
        let mut dead: Vec<Oid> = self.objects.members(victim).collect();
        dead.sort_unstable();
        let mut garbage_objects = 0u64;
        let mut garbage_bytes = Bytes::ZERO;
        for oid in dead {
            // Out-of-partition set cleanup: drop this dead object's
            // pointers from the remembered sets they point into. The
            // auxiliary structures live in primary memory, so this costs no
            // page I/O (Sec. 4.1 keeps them "explicitly in auxiliary data
            // structures").
            if self.remsets.in_out_set(victim, oid) {
                let slots: Vec<(SlotId, Oid)> = {
                    let rec = self.objects.get(oid)?;
                    rec.slots
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.map(|t| (SlotId(i as u16), t)))
                        .collect()
                };
                for (slot, t) in slots {
                    // A dangling target here can only be a fellow victim
                    // resident reclaimed earlier in this sweep: cross-
                    // partition targets of any recorded pointer are
                    // remset-protected (they get evacuated, never dropped),
                    // so only intra-partition edges can dangle.
                    let Ok(target_rec) = self.objects.get(t) else {
                        continue;
                    };
                    let tp = target_rec.addr.partition;
                    if tp != victim {
                        self.remsets.remove_edge(
                            pgc_types::PointerLoc::new(oid, slot),
                            victim,
                            t,
                            tp,
                        );
                    }
                }
                self.remsets.purge_source(victim, oid);
            }
            let rec = self.objects.remove(oid)?;
            self.partitions
                .partition_mut(victim)?
                .note_departure(rec.size);
            garbage_objects += 1;
            garbage_bytes += rec.size;
            self.events.push(BarrierEvent::ObjectReclaimed {
                oid,
                partition: victim,
                size: rec.size,
            });
        }

        // --- 4. Retire the victim: its pages hold only dead data. ---
        let victim_pages: Vec<_> = self.partitions.partition_pages_span(victim).collect();
        self.buffer.invalidate(victim_pages);
        self.partitions.rotate_empty(victim)?;

        self.buffer.set_context(IoContext::Application);

        self.stats.collections += 1;
        self.stats.reclaimed_bytes += garbage_bytes;
        self.stats.reclaimed_objects += garbage_objects;

        let io_after = self.buffer.stats();
        let outcome = CollectionOutcome {
            victim,
            target,
            live_objects,
            live_bytes,
            garbage_objects,
            garbage_bytes,
            forwarded_pointers,
            gc_reads: io_after.disk.gc_disk_reads - io_before.disk.gc_disk_reads,
            gc_writes: io_after.disk.gc_disk_writes - io_before.disk.gc_disk_writes,
        };
        self.events.push(BarrierEvent::CollectionCompleted(outcome));
        Ok(outcome)
    }

    /// Charges collector writes for copying an object to `addr`: the first
    /// page is a plain write when the copy lands mid-page, pages beginning
    /// inside the extent are brand new.
    fn charge_copy_write(&mut self, addr: ObjAddr, size: Bytes) {
        let mut first = !addr.offset.is_multiple_of(self.cfg.page_size as u64);
        let span = self.span_of(addr, size);
        for page in span {
            let kind = if first {
                Access::Write
            } else {
                Access::WriteNew
            };
            self.buffer.access(page, kind);
            first = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use pgc_types::DbConfig;

    fn db() -> Database {
        Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap()
    }

    /// Builds a root with a chain of `n` children in the root's partition
    /// (sizes small enough to stay put).
    fn chain(d: &mut Database, n: usize) -> (Oid, Vec<Oid>) {
        let root = d.create_root(Bytes(100), 2).unwrap();
        let mut prev = root;
        let mut all = Vec::new();
        for _ in 0..n {
            let (c, _) = d.create_object(Bytes(100), 2, prev, SlotId(0)).unwrap();
            all.push(c);
            prev = c;
        }
        (root, all)
    }

    #[test]
    fn collecting_live_partition_preserves_everything() {
        let mut d = db();
        let (root, chain) = chain(&mut d, 5);
        let victim = d.objects().get(root).unwrap().addr.partition;
        let out = d.collect_partition(victim).unwrap();
        assert_eq!(out.live_objects, 6);
        assert_eq!(out.garbage_objects, 0);
        assert_eq!(out.live_bytes, Bytes(600));
        // Everything moved to the old empty partition, fully reachable.
        for oid in std::iter::once(root).chain(chain) {
            assert_eq!(d.objects().get(oid).unwrap().addr.partition, out.target);
        }
        assert_eq!(d.empty_partition(), victim);
        let rep = oracle::analyze(&d);
        assert_eq!(rep.live_objects, 6);
        d.check_invariants();
    }

    #[test]
    fn collecting_reclaims_unreachable_subtree() {
        let mut d = db();
        let (root, nodes) = chain(&mut d, 4);
        let victim = d.objects().get(root).unwrap().addr.partition;
        // Cut root -> first child: 4 objects die.
        d.write_slot(root, SlotId(0), None).unwrap();
        let out = d.collect_partition(victim).unwrap();
        assert_eq!(out.garbage_objects, 4);
        assert_eq!(out.garbage_bytes, Bytes(400));
        assert_eq!(out.live_objects, 1);
        for oid in nodes {
            assert!(!d.objects().contains(oid));
        }
        assert_eq!(d.stats().reclaimed_objects, 4);
        d.check_invariants();
    }

    #[test]
    fn remembered_targets_survive_even_from_dead_sources() {
        // Nepotism: a garbage object in another partition points into the
        // victim; the pointee survives the victim's collection.
        let mut d = db();
        let root = d.create_root(Bytes(100), 3).unwrap();
        let home = d.objects().get(root).unwrap().addr.partition;
        // Spill a big object into a second partition.
        let (spill, _) = d.create_object(Bytes(8100), 2, root, SlotId(0)).unwrap();
        let foreign = d.objects().get(spill).unwrap().addr.partition;
        assert_ne!(home, foreign);
        // A small object in the home partition, pointed at by `spill`.
        let (victim_obj, _) = d.create_object(Bytes(100), 2, root, SlotId(1)).unwrap();
        assert_eq!(d.objects().get(victim_obj).unwrap().addr.partition, home);
        d.write_slot(spill, SlotId(0), Some(victim_obj)).unwrap();
        // Kill both paths from the root; spill becomes garbage but its
        // pointer into `home` remains remembered.
        d.write_slot(root, SlotId(0), None).unwrap();
        d.write_slot(root, SlotId(1), None).unwrap();
        let out = d.collect_partition(home).unwrap();
        // victim_obj survives via nepotism.
        assert!(d.objects().contains(victim_obj));
        assert!(out.live_objects >= 1);
        let rep = oracle::analyze(&d);
        assert!(rep.garbage_objects >= 2, "spill and victim_obj are garbage");
        assert!(rep.nepotism_bytes >= Bytes(100));
        d.check_invariants();
        // Collecting the foreign partition reclaims `spill` and cleans its
        // remembered pointer, so a second collection of the survivor's
        // partition reclaims victim_obj.
        d.collect_partition(foreign).unwrap();
        assert!(!d.objects().contains(spill));
        let survivor_partition = d.objects().get(victim_obj).unwrap().addr.partition;
        d.collect_partition(survivor_partition).unwrap();
        assert!(!d.objects().contains(victim_obj));
        d.check_invariants();
    }

    #[test]
    fn forwarding_rewrites_remembered_entries() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 3).unwrap();
        let home = d.objects().get(root).unwrap().addr.partition;
        let (spill, _) = d.create_object(Bytes(8100), 2, root, SlotId(0)).unwrap();
        let foreign = d.objects().get(spill).unwrap().addr.partition;
        let (small, _) = d.create_object(Bytes(100), 2, root, SlotId(1)).unwrap();
        d.write_slot(spill, SlotId(0), Some(small)).unwrap();
        // Collect home: `small` moves; spill's pointer must follow it.
        let out = d.collect_partition(home).unwrap();
        assert!(out.forwarded_pointers >= 1);
        let new_home = d.objects().get(small).unwrap().addr.partition;
        assert_ne!(new_home, home);
        assert!(d.remsets().remembered_targets(new_home).any(|t| t == small));
        assert_eq!(d.remsets().remembered_target_count(home), 0);
        assert!(d.remsets().in_out_set(foreign, spill));
        d.check_invariants();
    }

    #[test]
    fn dead_out_pointers_are_cleaned_from_remote_remsets() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 3).unwrap();
        let home = d.objects().get(root).unwrap().addr.partition;
        let (spill, _) = d.create_object(Bytes(8100), 2, root, SlotId(0)).unwrap();
        let foreign = d.objects().get(spill).unwrap().addr.partition;
        // An object in home that points into foreign, then dies.
        let (pointer_holder, _) = d.create_object(Bytes(100), 2, root, SlotId(1)).unwrap();
        d.write_slot(pointer_holder, SlotId(0), Some(spill))
            .unwrap();
        assert!(d.remsets().remembered_targets(foreign).any(|t| t == spill));
        d.write_slot(root, SlotId(1), None).unwrap(); // pointer_holder dies
        d.collect_partition(home).unwrap();
        assert!(!d.objects().contains(pointer_holder));
        // The dead holder's pointer into foreign must be gone from
        // foreign's remset; the root's own (live) cross-partition pointer
        // to spill must remain.
        let locs: Vec<_> = d.remsets().locations_of(foreign, spill).collect();
        assert!(
            locs.iter().all(|l| l.owner != pointer_holder),
            "dead holder's entry lingers"
        );
        assert!(locs.iter().any(|l| l.owner == root));
        d.check_invariants();
    }

    #[test]
    fn collection_compacts_fragmentation() {
        let mut d = db();
        let (root, _) = chain(&mut d, 10);
        let victim = d.objects().get(root).unwrap().addr.partition;
        d.write_slot(root, SlotId(0), None).unwrap();
        let used_before = d.partitions().partition(victim).unwrap().used_bytes();
        let out = d.collect_partition(victim).unwrap();
        let target_used = d.partitions().partition(out.target).unwrap().used_bytes();
        assert_eq!(target_used, Bytes(100), "only the root survives, compacted");
        assert!(used_before > target_used);
        assert!(d.partitions().partition(victim).unwrap().is_fresh());
    }

    #[test]
    fn collecting_empty_designated_partition_is_an_error() {
        let mut d = db();
        let empty = d.empty_partition();
        assert!(matches!(
            d.collect_partition(empty),
            Err(PgcError::CollectEmptyPartition(_))
        ));
    }

    #[test]
    fn collecting_unknown_partition_is_an_error() {
        let mut d = db();
        assert!(matches!(
            d.collect_partition(PartitionId(42)),
            Err(PgcError::UnknownPartition(_))
        ));
    }

    #[test]
    fn collection_charges_collector_io() {
        let mut d = db();
        let (root, _) = chain(&mut d, 10);
        let victim = d.objects().get(root).unwrap().addr.partition;
        // Evict everything from the buffer by touching another partition.
        let (big, _) = d.create_object(Bytes(7000), 0, root, SlotId(1)).unwrap();
        for _ in 0..4 {
            d.visit(big).unwrap();
        }
        let out = d.collect_partition(victim).unwrap();
        assert!(out.gc_reads > 0, "cold victim pages require disk reads");
        let io = d.io_stats();
        assert_eq!(io.gc_disk_reads, out.gc_reads);
        assert_eq!(io.gc_disk_writes, out.gc_writes);
    }

    #[test]
    fn two_roots_in_one_partition_both_survive() {
        let mut d = db();
        let r1 = d.create_root(Bytes(100), 2).unwrap();
        let r2 = d.create_root(Bytes(100), 2).unwrap();
        let p1 = d.objects().get(r1).unwrap().addr.partition;
        assert_eq!(p1, d.objects().get(r2).unwrap().addr.partition);
        let out = d.collect_partition(p1).unwrap();
        assert_eq!(out.live_objects, 2);
        assert!(d.objects().contains(r1));
        assert!(d.objects().contains(r2));
    }

    #[test]
    fn collection_emits_copy_reclaim_and_completion_events() {
        let mut d = db();
        let (root, _) = chain(&mut d, 4);
        let victim = d.objects().get(root).unwrap().addr.partition;
        d.write_slot(root, SlotId(0), None).unwrap();
        d.clear_events();
        let out = d.collect_partition(victim).unwrap();
        let events = d.events().events();
        let copied = events
            .iter()
            .filter(|e| {
                matches!(e, BarrierEvent::ObjectCopied { from, to, .. }
                if *from == victim && *to == out.target)
            })
            .count() as u64;
        let reclaimed = events
            .iter()
            .filter(|e| {
                matches!(e, BarrierEvent::ObjectReclaimed { partition, .. }
                if *partition == victim)
            })
            .count() as u64;
        assert_eq!(copied, out.live_objects);
        assert_eq!(reclaimed, out.garbage_objects);
        assert_eq!(
            events.last(),
            Some(&BarrierEvent::CollectionCompleted(out)),
            "completion event is logged last"
        );
    }

    /// Deterministically builds a randomized database (allocations,
    /// rewires, cuts) so two builds from one seed are identical.
    fn random_db(seed: u64) -> Database {
        use pgc_types::SimRng;
        let mut rng = SimRng::new(seed);
        let mut d = db();
        let mut oids = Vec::new();
        for _ in 0..rng.range_inclusive(1, 4) {
            oids.push(
                d.create_root(Bytes(rng.range_inclusive(40, 300)), 3)
                    .unwrap(),
            );
        }
        for _ in 0..rng.range_inclusive(30, 150) {
            let parent = *rng.pick(&oids);
            let slot = SlotId(rng.below(3) as u16);
            match rng.below(10) {
                0..=6 => {
                    if let Ok((o, _)) =
                        d.create_object(Bytes(rng.range_inclusive(40, 2000)), 3, parent, slot)
                    {
                        oids.push(o);
                    }
                }
                7..=8 => {
                    let target = *rng.pick(&oids);
                    let _ = d.write_slot(parent, slot, Some(target));
                }
                _ => {
                    let _ = d.write_slot(parent, slot, None);
                }
            }
        }
        d
    }

    #[test]
    fn plan_apply_is_bit_identical_to_collect_partition() {
        // Two databases built from the same seed; one collects directly,
        // the other through plan + apply. Outcomes, barrier events, stats,
        // I/O counters, and the post-state oracle report must all match.
        for seed in 0..15u64 {
            let mut direct = random_db(seed);
            let mut planned = random_db(seed);
            for round in 0..3 {
                let Some(victim) = direct.collectable_partitions().into_iter().find(|&p| {
                    direct.partitions().partition(p).unwrap().used_bytes() > Bytes::ZERO
                }) else {
                    break;
                };
                let plan = planned.plan_collection(victim).unwrap();
                let out_direct = direct.collect_partition(victim).unwrap();
                assert_eq!(
                    plan.survivor_count() as u64,
                    out_direct.live_objects,
                    "seed {seed} round {round}: planned survivors"
                );
                assert_eq!(
                    plan.dead_count() as u64,
                    out_direct.garbage_objects,
                    "seed {seed} round {round}: planned deaths"
                );
                let out_planned = planned.apply_plan(&plan).unwrap();
                assert_eq!(
                    out_direct, out_planned,
                    "seed {seed} round {round}: outcome diverged"
                );
                assert_eq!(
                    direct.events().events(),
                    planned.events().events(),
                    "seed {seed} round {round}: event stream diverged"
                );
                direct.check_invariants();
                planned.check_invariants();
            }
            assert_eq!(
                oracle::analyze(&direct),
                oracle::analyze(&planned),
                "seed {seed}: post-state diverged"
            );
            assert_eq!(direct.stats(), planned.stats(), "seed {seed}: stats");
        }
    }

    #[test]
    fn stale_plan_is_rejected_by_empty_partition_check() {
        let mut d = db();
        let (root, _) = chain(&mut d, 3);
        let victim = d.objects().get(root).unwrap().addr.partition;
        let plan = d.plan_collection(victim).unwrap();
        // Applying once is fine; the victim then becomes the designated
        // empty partition, so replaying the same plan must be refused.
        d.apply_plan(&plan).unwrap();
        assert!(matches!(
            d.apply_plan(&plan),
            Err(PgcError::CollectEmptyPartition(_))
        ));
    }

    #[test]
    fn planning_the_empty_partition_is_an_error() {
        let d = db();
        let empty = d.empty_partition();
        assert!(matches!(
            d.plan_collection(empty),
            Err(PgcError::CollectEmptyPartition(_))
        ));
    }

    #[test]
    fn plan_is_read_only() {
        let mut d = db();
        let (root, _) = chain(&mut d, 5);
        d.write_slot(root, SlotId(0), None).unwrap();
        let victim = d.objects().get(root).unwrap().addr.partition;
        let stats_before = d.stats();
        let io_before = d.io_stats();
        d.clear_events();
        let plan = d.plan_collection(victim).unwrap();
        assert!(plan.survivor_count() >= 1);
        assert!(plan.dead_count() >= 1);
        assert_eq!(plan.victim(), victim);
        assert_eq!(d.stats(), stats_before, "planning mutated stats");
        assert_eq!(d.io_stats(), io_before, "planning performed I/O");
        assert!(d.events().is_empty(), "planning emitted events");
    }

    #[test]
    fn shared_child_is_copied_once() {
        let mut d = db();
        let root = d.create_root(Bytes(100), 2).unwrap();
        let (a, _) = d.create_object(Bytes(100), 2, root, SlotId(0)).unwrap();
        let (b, _) = d.create_object(Bytes(100), 2, root, SlotId(1)).unwrap();
        let (shared, _) = d.create_object(Bytes(100), 2, a, SlotId(0)).unwrap();
        d.write_slot(b, SlotId(0), Some(shared)).unwrap();
        let victim = d.objects().get(root).unwrap().addr.partition;
        let out = d.collect_partition(victim).unwrap();
        assert_eq!(out.live_objects, 4, "shared child copied exactly once");
        d.check_invariants();
    }
}
