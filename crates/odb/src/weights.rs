//! Object weights for the `WeightedPointer` policy (Sec. 3.1).
//!
//! Each object carries a small weight approximating its distance from the
//! database roots: *"an object's weight is one plus the minimum of the
//! weights of the edges pointing to it"*, with roots at weight 1 and a cap
//! of 16 (4 bits in the paper). When a pointer store gives an object a
//! shorter path from a root, the improvement is propagated transitively to
//! its descendants.
//!
//! Matching the paper, weights only ever *decrease*: deleting the edge that
//! justified a weight does not restore a larger one. The weight is a cheap,
//! monotone approximation — exactly the property the paper's cost argument
//! relies on (bounded propagation, 4 bits of state).

use pgc_storage::ObjectTable;
use pgc_types::{Oid, Result};
use std::collections::VecDeque;

/// The weight assigned to database root objects.
pub const ROOT_WEIGHT: u8 = 1;

/// Clamps a tentative weight to the configured maximum.
#[inline]
pub fn cap(weight: u16, max_weight: u8) -> u8 {
    weight.min(max_weight as u16) as u8
}

/// The weight a new child reached through `parent_weight` should get.
#[inline]
pub fn child_weight(parent_weight: u8, max_weight: u8) -> u8 {
    cap(parent_weight as u16 + 1, max_weight)
}

/// Applies the weight rule for a newly stored edge `from -> to` and
/// propagates any decrease transitively. Returns the number of objects
/// whose weight changed.
///
/// Propagation terminates because weights are positive integers that only
/// decrease; each object can be improved at most `max_weight - 1` times
/// over its lifetime.
pub fn note_edge(table: &mut ObjectTable, from: Oid, to: Oid, max_weight: u8) -> Result<usize> {
    let from_weight = table.get(from)?.weight;
    let candidate = child_weight(from_weight, max_weight);
    let to_rec = table.get(to)?;
    if candidate >= to_rec.weight {
        return Ok(0);
    }
    table.get_mut(to)?.weight = candidate;
    let mut changed = 1usize;
    let mut queue: VecDeque<Oid> = VecDeque::new();
    queue.push_back(to);
    while let Some(o) = queue.pop_front() {
        let (w, slots) = {
            let rec = table.get(o)?;
            (rec.weight, rec.slots.clone())
        };
        let cand = child_weight(w, max_weight);
        for target in slots.into_iter().flatten() {
            // Targets can have died between enqueue and visit only if the
            // caller mutates the table mid-propagation, which it does not;
            // still, skip unknown targets defensively.
            let Ok(rec) = table.get_mut(target) else {
                continue;
            };
            if cand < rec.weight {
                rec.weight = cand;
                changed += 1;
                queue.push_back(target);
            }
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_storage::{ObjAddr, ObjectRecord};
    use pgc_types::{Bytes, PartitionId};

    const MAX: u8 = 16;

    /// Builds a table of `n` objects with 3 slots each, all weight `w`.
    fn table(n: u64, w: u8) -> (ObjectTable, Vec<Oid>) {
        let mut t = ObjectTable::new();
        let mut oids = Vec::new();
        for i in 0..n {
            let oid = t.reserve_oid();
            t.register(
                oid,
                ObjectRecord {
                    addr: ObjAddr::new(PartitionId(0), i * 100),
                    size: Bytes(100),
                    slots: vec![None; 3],
                    weight: w,
                    birth: 0,
                },
            );
            oids.push(oid);
        }
        (t, oids)
    }

    fn link(t: &mut ObjectTable, from: Oid, slot: usize, to: Oid) {
        t.get_mut(from).unwrap().slots[slot] = Some(to);
    }

    #[test]
    fn helpers_cap_at_max() {
        assert_eq!(child_weight(1, MAX), 2);
        assert_eq!(child_weight(15, MAX), 16);
        assert_eq!(child_weight(16, MAX), 16);
        assert_eq!(cap(100, MAX), 16);
    }

    #[test]
    fn edge_from_light_parent_lowers_target() {
        let (mut t, o) = table(2, 10);
        t.get_mut(o[0]).unwrap().weight = ROOT_WEIGHT;
        link(&mut t, o[0], 0, o[1]);
        let changed = note_edge(&mut t, o[0], o[1], MAX).unwrap();
        assert_eq!(changed, 1);
        assert_eq!(t.get(o[1]).unwrap().weight, 2);
    }

    #[test]
    fn edge_from_heavy_parent_changes_nothing() {
        let (mut t, o) = table(2, 3);
        link(&mut t, o[0], 0, o[1]);
        // candidate = 4 >= current 3
        assert_eq!(note_edge(&mut t, o[0], o[1], MAX).unwrap(), 0);
        assert_eq!(t.get(o[1]).unwrap().weight, 3);
    }

    #[test]
    fn decrease_propagates_down_a_chain() {
        // o0(w=1) -> o1(w=9) -> o2(w=10) -> o3(w=11)
        let (mut t, o) = table(4, 0);
        for (i, w) in [1u8, 9, 10, 11].into_iter().enumerate() {
            t.get_mut(o[i]).unwrap().weight = w;
        }
        link(&mut t, o[0], 0, o[1]);
        link(&mut t, o[1], 0, o[2]);
        link(&mut t, o[2], 0, o[3]);
        let changed = note_edge(&mut t, o[0], o[1], MAX).unwrap();
        assert_eq!(changed, 3);
        assert_eq!(t.get(o[1]).unwrap().weight, 2);
        assert_eq!(t.get(o[2]).unwrap().weight, 3);
        assert_eq!(t.get(o[3]).unwrap().weight, 4);
    }

    #[test]
    fn propagation_stops_where_no_improvement() {
        // o0(1) -> o1(9) -> o2(2): o2 already better than 3.
        let (mut t, o) = table(3, 0);
        for (i, w) in [1u8, 9, 2].into_iter().enumerate() {
            t.get_mut(o[i]).unwrap().weight = w;
        }
        link(&mut t, o[0], 0, o[1]);
        link(&mut t, o[1], 0, o[2]);
        let changed = note_edge(&mut t, o[0], o[1], MAX).unwrap();
        assert_eq!(changed, 1);
        assert_eq!(t.get(o[2]).unwrap().weight, 2);
    }

    #[test]
    fn cycles_terminate() {
        // o0(1) -> o1(9) -> o2(9) -> o1 (cycle between 1 and 2).
        let (mut t, o) = table(3, 9);
        t.get_mut(o[0]).unwrap().weight = 1;
        link(&mut t, o[0], 0, o[1]);
        link(&mut t, o[1], 0, o[2]);
        link(&mut t, o[2], 0, o[1]);
        let changed = note_edge(&mut t, o[0], o[1], MAX).unwrap();
        assert_eq!(changed, 2);
        assert_eq!(t.get(o[1]).unwrap().weight, 2);
        assert_eq!(t.get(o[2]).unwrap().weight, 3);
    }

    #[test]
    fn weights_saturate_at_max() {
        let (mut t, o) = table(2, 16);
        t.get_mut(o[0]).unwrap().weight = 16;
        link(&mut t, o[0], 0, o[1]);
        assert_eq!(note_edge(&mut t, o[0], o[1], MAX).unwrap(), 0);
        assert_eq!(t.get(o[1]).unwrap().weight, 16);
    }

    #[test]
    fn paper_figure_3_example() {
        // Figure 3: A(w=1) -> B(w=2) -> C(w=3); A -> E? The figure shows a
        // small DAG; we reproduce the chain part: after linking a root to a
        // fresh subtree, weights are 1, 2, 3 along the path.
        let (mut t, o) = table(3, 16);
        t.get_mut(o[0]).unwrap().weight = ROOT_WEIGHT;
        link(&mut t, o[0], 0, o[1]);
        link(&mut t, o[1], 0, o[2]);
        note_edge(&mut t, o[0], o[1], MAX).unwrap();
        assert_eq!(t.get(o[0]).unwrap().weight, 1);
        assert_eq!(t.get(o[1]).unwrap().weight, 2);
        assert_eq!(t.get(o[2]).unwrap().weight, 3);
        // The exponential score of overwriting the A->B pointer is 2^(16-2).
        let w = t.get(o[1]).unwrap().weight;
        assert_eq!(1u64 << (16 - w as u32), 16384);
    }

    #[test]
    fn unknown_objects_error() {
        let (mut t, o) = table(1, 5);
        assert!(note_edge(&mut t, o[0], Oid(999), MAX).is_err());
        assert!(note_edge(&mut t, Oid(999), o[0], MAX).is_err());
    }
}
