//! The typed **barrier event bus**: every mutator- and collector-side
//! signal a selection policy (or any future subsystem) is allowed to see,
//! as one small `Copy` enum delivered to a registry of observers.
//!
//! The paper's central constraint is that an *implementable* policy
//! observes nothing but the write barrier (Sec. 4.1). This module makes
//! that constraint a type: the mutation engine ([`crate::engine`]) and the
//! collector ([`crate::collect`]) log [`BarrierEvent`]s into the database's
//! internal [`EventLog`]; a pump (the collector wrapper in `pgc_core`, or
//! the replayer in `pgc_sim`) drains the log and broadcasts each event to
//! every registered [`BarrierObserver`]. Comparing N policies no longer
//! requires N replays — N scoreboards can ride one event stream — and
//! metrics, tracing, or clustering subsystems can tap the same bus without
//! touching the engine.
//!
//! Ordering guarantees: events are logged in mutation order. An object
//! creation that also stores a parent pointer logs its
//! [`BarrierEvent::Allocation`] before the [`BarrierEvent::PointerWrite`]
//! (allocation happens first); a collection logs one
//! [`BarrierEvent::ObjectCopied`]/[`BarrierEvent::ObjectReclaimed`] per
//! object, then exactly one [`BarrierEvent::CollectionCompleted`].

use crate::collect::CollectionOutcome;
use crate::db::Database;
use crate::stats::PointerWriteInfo;
use pgc_types::{Bytes, Oid, PartitionId};
use std::fmt;

/// One event on the barrier bus.
///
/// All payloads are `Copy`: buffering events in the database's log keeps
/// `Database: Clone`, and observers receive them by shared reference with
/// no lifetime entanglement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierEvent {
    /// A pointer store went through the write barrier. Subsumes
    /// overwrites: `info.is_overwrite()` distinguishes the paper's GC
    /// trigger signal from first-time stores.
    PointerWrite(PointerWriteInfo),
    /// A non-pointer mutation dirtied an object's pages. *Not* a pointer
    /// barrier event — only the (rejected) naive `YnyMutated` policy
    /// counts these.
    DataWrite {
        /// The mutated object.
        oid: Oid,
        /// Its resident partition.
        partition: PartitionId,
    },
    /// An object was allocated and registered.
    Allocation {
        /// The new object.
        oid: Oid,
        /// The partition it was placed in.
        partition: PartitionId,
        /// Its size.
        size: Bytes,
        /// True if satisfying this allocation grew the partition set.
        grew: bool,
    },
    /// The partition set grew while satisfying an allocation.
    PartitionGrowth {
        /// Partition count after growth (including the designated empty
        /// partition).
        partitions: usize,
    },
    /// A collection copied one live object out of the victim.
    ObjectCopied {
        /// The surviving object.
        oid: Oid,
        /// The victim partition it was evacuated from.
        from: PartitionId,
        /// The target partition it now lives in.
        to: PartitionId,
        /// Its size.
        size: Bytes,
    },
    /// A collection reclaimed one dead object.
    ObjectReclaimed {
        /// The reclaimed object (its id is dead after this event).
        oid: Oid,
        /// The victim partition it died in.
        partition: PartitionId,
        /// Its size.
        size: Bytes,
    },
    /// The driving policy chose a victim for the activation in progress.
    /// Emitted by the collector wrapper between selection and collection,
    /// so taps can pair the pick (and the policy's score for it) with the
    /// [`BarrierEvent::CollectionCompleted`] record that follows.
    VictimSelected {
        /// The partition about to be collected.
        victim: PartitionId,
        /// The driving policy's numeric score for the victim as
        /// `f64::to_bits` (`None` when the policy exposes no score —
        /// bit form keeps this enum `Eq`).
        score_bits: Option<u64>,
    },
    /// One partition collection finished.
    CollectionCompleted(CollectionOutcome),
    /// The GC trigger fired: a collection decision is about to be made.
    /// Emitted by the collector wrapper, not the database engine.
    TriggerTick {
        /// 1-based count of trigger activations so far in this run.
        activation: u64,
    },
    /// A meta-policy handed the driver's seat to a different policy.
    /// Emitted by the collector wrapper after the activation whose
    /// collection outcome triggered the switch; the new policy drives
    /// selection from the next activation on. Names are the policies'
    /// stable display names (static strings keep this enum `Copy`).
    PolicySwitched {
        /// The activation whose outcome triggered the switch.
        activation: u64,
        /// Display name of the policy that was driving.
        from: &'static str,
        /// Display name of the policy now driving.
        to: &'static str,
    },
}

/// An observer of the barrier event stream.
///
/// Implemented by every honest selection policy (scoreboard maintenance is
/// event handling) and by diagnostic taps such as the shadow scoreboards
/// in `pgc_sim`.
pub trait BarrierObserver {
    /// Receives one event, in stream order.
    fn on_event(&mut self, event: &BarrierEvent);

    /// Called when the GC trigger fires, after all pending events have
    /// been delivered and *before* the driving policy selects a victim.
    /// The database reference is the pre-collection state — this is where
    /// a shadow scoreboard records the partition it *would* have picked.
    fn on_trigger(&mut self, db: &Database) {
        let _ = db;
    }
}

/// An ordered registry of boxed [`BarrierObserver`]s.
///
/// Observers are notified in registration order. The registry is the
/// delivery mechanism of the bus: the pump drains the database's
/// [`EventLog`] and broadcasts each event here.
#[derive(Default)]
pub struct ObserverRegistry {
    observers: Vec<Box<dyn BarrierObserver>>,
}

impl ObserverRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an observer; it receives every subsequent broadcast.
    pub fn register(&mut self, observer: Box<dyn BarrierObserver>) {
        self.observers.push(observer);
    }

    /// Delivers one event to every observer, in registration order.
    #[inline]
    pub fn broadcast(&mut self, event: &BarrierEvent) {
        for obs in &mut self.observers {
            obs.on_event(event);
        }
    }

    /// Notifies every observer that the trigger fired (see
    /// [`BarrierObserver::on_trigger`]).
    pub fn notify_trigger(&mut self, db: &Database) {
        for obs in &mut self.observers {
            obs.on_trigger(db);
        }
    }

    /// Number of registered observers.
    #[inline]
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// True if no observers are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl fmt::Debug for ObserverRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverRegistry")
            .field("observers", &self.observers.len())
            .finish()
    }
}

/// The database's internal event buffer.
///
/// The mutation engine and collector push into it; a pump periodically
/// drains it via [`Database::drain_events_into`]. Standalone `Database`
/// users that never drain can ignore or [`EventLog::clear`] it — events
/// are plain `Copy` values with no side effects of their own.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<BarrierEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn push(&mut self, event: BarrierEvent) {
        self.events.push(event);
    }

    /// Number of buffered (undrained) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Shared view of the buffered events, oldest first.
    #[inline]
    pub fn events(&self) -> &[BarrierEvent] {
        &self.events
    }

    /// Moves all buffered events to the end of `sink`, leaving the log
    /// empty (capacity retained). Appending to a caller-owned vector lets
    /// the pump reuse one scratch buffer across the whole run.
    #[inline]
    pub fn drain_into(&mut self, sink: &mut Vec<BarrierEvent>) {
        sink.append(&mut self.events);
    }

    /// Discards all buffered events.
    #[inline]
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        events: usize,
        triggers: usize,
    }

    impl BarrierObserver for Counter {
        fn on_event(&mut self, _event: &BarrierEvent) {
            self.events += 1;
        }
        fn on_trigger(&mut self, _db: &Database) {
            self.triggers += 1;
        }
    }

    struct Tap(std::rc::Rc<std::cell::RefCell<Counter>>);
    impl BarrierObserver for Tap {
        fn on_event(&mut self, event: &BarrierEvent) {
            self.0.borrow_mut().on_event(event);
        }
        fn on_trigger(&mut self, db: &Database) {
            self.0.borrow_mut().on_trigger(db);
        }
    }

    #[test]
    fn registry_broadcasts_in_order_to_all() {
        let a = std::rc::Rc::new(std::cell::RefCell::new(Counter::default()));
        let b = std::rc::Rc::new(std::cell::RefCell::new(Counter::default()));
        let mut reg = ObserverRegistry::new();
        assert!(reg.is_empty());
        reg.register(Box::new(Tap(a.clone())));
        reg.register(Box::new(Tap(b.clone())));
        assert_eq!(reg.len(), 2);
        reg.broadcast(&BarrierEvent::PartitionGrowth { partitions: 3 });
        reg.broadcast(&BarrierEvent::TriggerTick { activation: 1 });
        assert_eq!(a.borrow().events, 2);
        assert_eq!(b.borrow().events, 2);
        let db = Database::new(pgc_types::DbConfig::default()).unwrap();
        reg.notify_trigger(&db);
        assert_eq!(a.borrow().triggers, 1);
        assert_eq!(b.borrow().triggers, 1);
    }

    #[test]
    fn event_log_drains_preserving_order() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.push(BarrierEvent::PartitionGrowth { partitions: 2 });
        log.push(BarrierEvent::TriggerTick { activation: 7 });
        assert_eq!(log.len(), 2);
        let mut sink = Vec::new();
        log.drain_into(&mut sink);
        assert!(log.is_empty());
        assert_eq!(
            sink,
            vec![
                BarrierEvent::PartitionGrowth { partitions: 2 },
                BarrierEvent::TriggerTick { activation: 7 },
            ]
        );
    }
}
