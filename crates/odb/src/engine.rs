//! The **mutation engine**: every state-changing application operation,
//! with full I/O charging and barrier event emission.
//!
//! This is the layer below the [`Database`] facade in `db.rs` (which keeps
//! construction, read-only views, and invariant checks). Every operation
//! here both performs its storage-model side effects *and* logs the
//! corresponding [`crate::events::BarrierEvent`]s into the database's
//! event log, in mutation order:
//!
//! * [`Database::create_root`] / [`Database::create_object`] — allocate
//!   storage (near the parent when possible, growing the database when
//!   nothing fits), register the object
//!   ([`crate::events::BarrierEvent::Allocation`], plus
//!   [`crate::events::BarrierEvent::PartitionGrowth`] when the partition
//!   set grew), and — for non-roots — store the parent's pointer through
//!   the write barrier.
//! * [`Database::write_slot`] — the **write barrier** (Sec. 4.1): charges
//!   the page write, maintains remembered sets and out-of-partition sets
//!   for pointers crossing partition boundaries, maintains object weights,
//!   counts overwrites (the GC trigger), and emits a
//!   [`crate::events::BarrierEvent::PointerWrite`] carrying the
//!   [`PointerWriteInfo`] for the selection policies to observe. The info
//!   is also returned directly for callers that drive the database by
//!   hand.
//! * [`Database::visit`] / [`Database::data_write`] /
//!   [`Database::read_slot`] — reads and non-pointer mutations, charged at
//!   page granularity; only [`Database::data_write`] emits an event
//!   ([`crate::events::BarrierEvent::DataWrite`]).

use crate::db::Database;
use crate::events::BarrierEvent;
use crate::stats::{PointerTarget, PointerWriteInfo};
use crate::weights;
use pgc_buffer::Access;
use pgc_storage::{ObjAddr, ObjectRecord};
use pgc_types::{Bytes, Oid, PartitionId, Result, SlotId};

impl Database {
    // ---------------------------------------------------------------
    // Creation
    // ---------------------------------------------------------------

    /// Creates a database root object (a tree root in the synthetic
    /// workload). Roots are the entree into the database: they are never
    /// garbage.
    pub fn create_root(&mut self, size: Bytes, slot_count: usize) -> Result<Oid> {
        let oid = self.create_unlinked(size, slot_count, None, weights::ROOT_WEIGHT)?;
        self.roots.insert(oid);
        Ok(oid)
    }

    /// Creates an object placed near `parent` and stores the pointer
    /// `parent.slot := new` through the write barrier. Returns the new oid
    /// and the barrier event (with `during_creation = true`).
    pub fn create_object(
        &mut self,
        size: Bytes,
        slot_count: usize,
        parent: Oid,
        parent_slot: SlotId,
    ) -> Result<(Oid, PointerWriteInfo)> {
        let parent_rec = self.objects.get(parent)?;
        let preferred = parent_rec.addr.partition;
        let weight = weights::child_weight(parent_rec.weight, self.cfg.max_weight);
        let oid = self.create_unlinked(size, slot_count, Some(preferred), weight)?;
        let info = self.store_pointer(parent, parent_slot, Some(oid), true)?;
        Ok((oid, info))
    }

    fn create_unlinked(
        &mut self,
        size: Bytes,
        slot_count: usize,
        preferred: Option<PartitionId>,
        weight: u8,
    ) -> Result<Oid> {
        let partitions_before = self.partitions.partition_count();
        let placement = self.partitions.allocate(size, preferred)?;
        let partitions_after = self.partitions.partition_count();
        let grew = partitions_after > partitions_before;
        let addr = ObjAddr::new(placement.partition, placement.offset);
        self.charge_new_extent(addr, size);
        let oid = self.objects.reserve_oid();
        self.objects.register(
            oid,
            ObjectRecord {
                addr,
                size,
                slots: vec![None; slot_count],
                weight,
                birth: 0, // stamped by the table's allocation clock
            },
        );
        self.stats.objects_created += 1;
        self.stats.bytes_allocated += size;
        self.events.push(BarrierEvent::Allocation {
            oid,
            partition: placement.partition,
            size,
            grew,
        });
        if grew {
            self.events.push(BarrierEvent::PartitionGrowth {
                partitions: partitions_after,
            });
        }
        Ok(oid)
    }

    /// Charges buffer traffic for materializing a freshly allocated extent:
    /// the first page is a plain write when the extent begins mid-page
    /// (other objects already live there), and every page that *begins*
    /// inside the extent is brand new.
    fn charge_new_extent(&mut self, addr: ObjAddr, size: Bytes) {
        let mut first = !addr.offset.is_multiple_of(self.cfg.page_size as u64);
        let span = self.span_of(addr, size);
        for page in span {
            let kind = if first {
                Access::Write
            } else {
                Access::WriteNew
            };
            self.buffer.access(page, kind);
            first = false;
        }
    }

    // ---------------------------------------------------------------
    // The write barrier
    // ---------------------------------------------------------------

    /// Stores `new` into `owner.slot` through the write barrier.
    pub fn write_slot(
        &mut self,
        owner: Oid,
        slot: SlotId,
        new: Option<Oid>,
    ) -> Result<PointerWriteInfo> {
        self.store_pointer(owner, slot, new, false)
    }

    fn store_pointer(
        &mut self,
        owner: Oid,
        slot: SlotId,
        new: Option<Oid>,
        during_creation: bool,
    ) -> Result<PointerWriteInfo> {
        let (owner_addr, owner_size, old) = {
            let rec = self.objects.get(owner)?;
            (rec.addr, rec.size, rec.slot(owner, slot)?)
        };
        let owner_partition = owner_addr.partition;

        // The store dirties the owner's page(s). Reading the overwritten
        // value (UpdatedPointer's hint) touches the same pages, so it costs
        // nothing extra — the paper makes the same observation.
        let span = self.span_of(owner_addr, owner_size);
        self.buffer.access_span(span, Access::Write);

        let old_target = match old {
            Some(t) => {
                let rec = self.objects.get(t)?;
                Some(PointerTarget {
                    oid: t,
                    partition: rec.addr.partition,
                    weight: rec.weight,
                })
            }
            None => None,
        };
        let new_target = match new {
            Some(t) => {
                let rec = self.objects.get(t)?;
                Some(PointerTarget {
                    oid: t,
                    partition: rec.addr.partition,
                    weight: rec.weight,
                })
            }
            None => None,
        };

        let loc = pgc_types::PointerLoc::new(owner, slot);
        if let Some(t) = old_target {
            if t.partition != owner_partition {
                self.remsets
                    .remove_edge(loc, owner_partition, t.oid, t.partition);
            }
        }
        if let Some(t) = new_target {
            if t.partition != owner_partition {
                self.remsets
                    .add_edge(loc, owner_partition, t.oid, t.partition);
            }
        }

        self.objects.get_mut(owner)?.slots[slot.as_usize()] = new;

        if let Some(t) = new_target {
            weights::note_edge(&mut self.objects, owner, t.oid, self.cfg.max_weight)?;
        }

        self.stats.pointer_writes += 1;
        if old_target.is_some() {
            self.stats.pointer_overwrites += 1;
        }

        let info = PointerWriteInfo {
            owner,
            owner_partition,
            slot,
            old: old_target,
            new: new_target,
            during_creation,
        };
        self.events.push(BarrierEvent::PointerWrite(info));
        Ok(info)
    }

    /// Appends a new (initially null) pointer slot to an object — how the
    /// workload threads dense edges through existing tree nodes. Charges a
    /// page write (the object's header/slot area changes). Returns the new
    /// slot's id.
    pub fn add_slot(&mut self, owner: Oid) -> Result<SlotId> {
        let (addr, size, n) = {
            let rec = self.objects.get(owner)?;
            (rec.addr, rec.size, rec.slots.len())
        };
        let span = self.span_of(addr, size);
        self.buffer.access_span(span, Access::Write);
        self.objects.get_mut(owner)?.slots.push(None);
        Ok(SlotId(n as u16))
    }

    // ---------------------------------------------------------------
    // Reads and data writes
    // ---------------------------------------------------------------

    /// Visits (reads) an object: faults in its pages.
    pub fn visit(&mut self, oid: Oid) -> Result<()> {
        let rec = self.objects.get(oid)?;
        let span = self.span_of(rec.addr, rec.size);
        self.buffer.access_span(span, Access::Read);
        self.stats.reads += 1;
        Ok(())
    }

    /// Reads one pointer slot (faults in the object's pages).
    pub fn read_slot(&mut self, oid: Oid, slot: SlotId) -> Result<Option<Oid>> {
        let rec = self.objects.get(oid)?;
        let value = rec.slot(oid, slot)?;
        let span = self.span_of(rec.addr, rec.size);
        self.buffer.access_span(span, Access::Read);
        Ok(value)
    }

    /// Mutates an object's non-pointer data. Dirties its pages but does not
    /// go through the pointer write barrier — the enhancement the paper
    /// makes to `MutatedPartition` is precisely that such writes are *not*
    /// counted.
    pub fn data_write(&mut self, oid: Oid) -> Result<()> {
        let rec = self.objects.get(oid)?;
        let partition = rec.addr.partition;
        let span = self.span_of(rec.addr, rec.size);
        self.buffer.access_span(span, Access::Write);
        self.stats.data_writes += 1;
        self.events.push(BarrierEvent::DataWrite { oid, partition });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::db::Database;
    use crate::events::BarrierEvent;
    use pgc_types::{Bytes, DbConfig, SlotId};

    fn db() -> Database {
        Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(4),
        )
        .unwrap()
    }

    #[test]
    fn mutations_log_events_in_order() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let (c, _) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        d.data_write(c).unwrap();
        let events = d.events().events().to_vec();
        assert_eq!(events.len(), 4, "alloc, alloc, pointer write, data write");
        assert!(matches!(events[0], BarrierEvent::Allocation { oid, .. } if oid == r));
        assert!(matches!(events[1], BarrierEvent::Allocation { oid, .. } if oid == c));
        assert!(matches!(
            events[2],
            BarrierEvent::PointerWrite(info) if info.during_creation && info.new.unwrap().oid == c
        ));
        assert!(matches!(events[3], BarrierEvent::DataWrite { oid, .. } if oid == c));
    }

    #[test]
    fn growth_is_reported_on_the_bus() {
        let mut d = db();
        let r = d.create_root(Bytes(2048), 2).unwrap();
        d.create_object(Bytes(2048), 2, r, SlotId(0)).unwrap();
        d.clear_events();
        // This allocation cannot fit in P1: the database grows.
        let before = d.partition_count();
        d.create_object(Bytes(2048), 2, r, SlotId(1)).unwrap();
        assert!(d.partition_count() > before);
        let events = d.events().events();
        assert!(events
            .iter()
            .any(|e| matches!(e, BarrierEvent::Allocation { grew, .. } if *grew)));
        assert!(events.iter().any(|e| matches!(
            e,
            BarrierEvent::PartitionGrowth { partitions } if *partitions == d.partition_count()
        )));
    }

    #[test]
    fn drained_events_match_returned_infos() {
        let mut d = db();
        let r = d.create_root(Bytes(100), 2).unwrap();
        let (_, info) = d.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let overwrite = d.write_slot(r, SlotId(0), None).unwrap();
        let mut sink = Vec::new();
        d.drain_events_into(&mut sink);
        assert!(d.events().is_empty());
        let writes: Vec<_> = sink
            .iter()
            .filter_map(|e| match e {
                BarrierEvent::PointerWrite(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(writes, vec![info, overwrite]);
    }
}
