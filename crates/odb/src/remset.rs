//! Remembered sets and out-of-partition sets (Sec. 4.1 of the paper).
//!
//! For each partition `T` the **remembered set** `into[T]` records the
//! locations of every pointer stored in some *other* partition whose target
//! lies in `T`. Collecting `T` treats the targets of those pointers as
//! roots, so `T` can be collected without scanning the rest of the database.
//!
//! For each partition `F` the **out-of-partition set** `out[F]` records
//! which objects in `F` currently hold pointers that leave `F`. When a
//! collection of `F` finds such an object to be garbage, the locations of
//! its pointers are removed from the remembered sets they point into —
//! otherwise later collections of those partitions would "unnecessarily
//! preserve objects pointed to by garbage" (the paper's words).
//!
//! Both structures live in primary memory (the paper keeps them "explicitly
//! in auxiliary data structures"), so maintaining them costs no page I/O in
//! the simulation; the write barrier that drives them piggybacks on page
//! writes the application performs anyway.
//!
//! The remembered set is keyed by *target object* within each partition:
//! `into[T] : Oid -> {PointerLoc}`. The extra level (compared to a flat set
//! of locations) is what lets the collector (a) seed its trace with the
//! remembered targets and (b) re-key entries when it relocates a target,
//! both in O(entries touched).

use pgc_types::{FastHashMap, FastHashSet, Oid, PartitionId, PointerLoc};

/// Remembered sets (`into`) and out-of-partition pointer counts (`out`) for
/// every partition.
#[derive(Debug, Clone, Default)]
pub struct RemsetTable {
    /// `into[t]`: for each target partition, target object → locations of
    /// cross-partition pointers at it. These maps are genuinely sparse
    /// (most objects are never remembered), so they stay hash maps — but
    /// with the unkeyed [`pgc_types::FxHasher`], which is much cheaper than
    /// SipHash on `u64`-shaped keys and gives iteration order that is
    /// stable across processes.
    into: Vec<FastHashMap<Oid, FastHashSet<PointerLoc>>>,
    /// `out[f]`: for each source partition, object → number of its slots
    /// currently holding cross-partition pointers.
    out: Vec<FastHashMap<Oid, u32>>,
}

impl RemsetTable {
    /// Creates empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, p: PartitionId) {
        let need = p.as_usize() + 1;
        if self.into.len() < need {
            self.into.resize_with(need, FastHashMap::default);
        }
        if self.out.len() < need {
            self.out.resize_with(need, FastHashMap::default);
        }
    }

    /// Records creation of a cross-partition pointer at `loc` (an object in
    /// `from`) targeting `target` (an object in `to`).
    pub fn add_edge(&mut self, loc: PointerLoc, from: PartitionId, target: Oid, to: PartitionId) {
        debug_assert_ne!(from, to, "intra-partition edge recorded in remset");
        self.ensure(from);
        self.ensure(to);
        self.into[to.as_usize()]
            .entry(target)
            .or_default()
            .insert(loc);
        *self.out[from.as_usize()].entry(loc.owner).or_insert(0) += 1;
    }

    /// Records destruction of the cross-partition pointer at `loc` that
    /// targeted `target` in partition `to`.
    pub fn remove_edge(
        &mut self,
        loc: PointerLoc,
        from: PartitionId,
        target: Oid,
        to: PartitionId,
    ) {
        self.ensure(from);
        self.ensure(to);
        if let Some(locs) = self.into[to.as_usize()].get_mut(&target) {
            locs.remove(&loc);
            if locs.is_empty() {
                self.into[to.as_usize()].remove(&target);
            }
        }
        if let Some(count) = self.out[from.as_usize()].get_mut(&loc.owner) {
            *count -= 1;
            if *count == 0 {
                self.out[from.as_usize()].remove(&loc.owner);
            }
        }
    }

    /// The remembered targets in partition `t`: objects that some other
    /// partition points at, i.e. the remset roots for a collection of `t`.
    pub fn remembered_targets(&self, t: PartitionId) -> impl Iterator<Item = Oid> + '_ {
        self.into
            .get(t.as_usize())
            .into_iter()
            .flat_map(|m| m.keys().copied())
    }

    /// The recorded locations of cross-partition pointers at `target`
    /// (which resides in partition `t`).
    pub fn locations_of(
        &self,
        t: PartitionId,
        target: Oid,
    ) -> impl Iterator<Item = PointerLoc> + '_ {
        self.into
            .get(t.as_usize())
            .and_then(|m| m.get(&target))
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of remembered (pointed-into) objects in partition `t`.
    pub fn remembered_target_count(&self, t: PartitionId) -> usize {
        self.into.get(t.as_usize()).map_or(0, |m| m.len())
    }

    /// Total number of remembered pointer locations into partition `t`.
    pub fn remembered_pointer_count(&self, t: PartitionId) -> usize {
        self.into
            .get(t.as_usize())
            .map_or(0, |m| m.values().map(|s| s.len()).sum())
    }

    /// True if object `oid` in partition `f` holds any cross-partition
    /// pointers (is in the out-of-partition set of `f`).
    pub fn in_out_set(&self, f: PartitionId, oid: Oid) -> bool {
        self.out
            .get(f.as_usize())
            .is_some_and(|m| m.contains_key(&oid))
    }

    /// The out-of-partition set of `f`.
    pub fn out_set(&self, f: PartitionId) -> impl Iterator<Item = Oid> + '_ {
        self.out
            .get(f.as_usize())
            .into_iter()
            .flat_map(|m| m.keys().copied())
    }

    /// Re-keys all bookkeeping for `oid` after the collector moves it from
    /// partition `from` to partition `to`:
    ///
    /// * entries in `into[from]` targeting `oid` move to `into[to]`
    ///   (returning the affected source locations so the collector can
    ///   charge pointer-forwarding I/O);
    /// * `oid`'s out-count moves from `out[from]` to `out[to]`.
    pub fn relocate_object(
        &mut self,
        oid: Oid,
        from: PartitionId,
        to: PartitionId,
    ) -> Vec<PointerLoc> {
        self.ensure(from);
        self.ensure(to);
        let mut forwarded = Vec::new();
        if let Some(locs) = self.into[from.as_usize()].remove(&oid) {
            forwarded.extend(locs.iter().copied());
            self.into[to.as_usize()].insert(oid, locs);
        }
        if let Some(count) = self.out[from.as_usize()].remove(&oid) {
            self.out[to.as_usize()].insert(oid, count);
        }
        forwarded
    }

    /// Forgets everything recorded about dead object `oid` as a *target* in
    /// partition `t` (used when a remembered object turns out to be garbage
    /// because its only rememberers died first).
    pub fn purge_target(&mut self, t: PartitionId, oid: Oid) {
        if let Some(m) = self.into.get_mut(t.as_usize()) {
            m.remove(&oid);
        }
    }

    /// Forgets the out-count of dead object `oid` in partition `f`.
    /// The per-target `into` entries sourced at `oid` must be removed via
    /// [`RemsetTable::remove_edge`] by the caller, which knows the dead
    /// object's slots.
    pub fn purge_source(&mut self, f: PartitionId, oid: Oid) {
        if let Some(m) = self.out.get_mut(f.as_usize()) {
            m.remove(&oid);
        }
    }

    /// Debug invariant check: every out-count equals the number of `into`
    /// locations owned by that object, and no empty inner sets linger.
    pub fn check_invariants(&self) {
        let mut counted: FastHashMap<Oid, u32> = FastHashMap::default();
        for per_target in &self.into {
            for (target, locs) in per_target {
                assert!(!locs.is_empty(), "empty location set for {target}");
                for loc in locs {
                    *counted.entry(loc.owner).or_insert(0) += 1;
                }
            }
        }
        let mut from_out: FastHashMap<Oid, u32> = FastHashMap::default();
        for per_source in &self.out {
            for (&oid, &count) in per_source {
                assert!(count > 0, "zero out-count for {oid}");
                *from_out.entry(oid).or_insert(0) += count;
            }
        }
        assert_eq!(counted, from_out, "out-counts disagree with into-locations");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::SlotId;

    fn loc(owner: u64, slot: u16) -> PointerLoc {
        PointerLoc::new(Oid(owner), SlotId(slot))
    }

    const P0: PartitionId = PartitionId(0);
    const P1: PartitionId = PartitionId(1);
    const P2: PartitionId = PartitionId(2);

    #[test]
    fn add_then_query() {
        let mut r = RemsetTable::new();
        r.add_edge(loc(1, 0), P0, Oid(10), P1);
        r.add_edge(loc(1, 1), P0, Oid(11), P1);
        r.add_edge(loc(2, 0), P2, Oid(10), P1);
        assert_eq!(r.remembered_target_count(P1), 2);
        assert_eq!(r.remembered_pointer_count(P1), 3);
        let mut targets: Vec<Oid> = r.remembered_targets(P1).collect();
        targets.sort();
        assert_eq!(targets, vec![Oid(10), Oid(11)]);
        assert!(r.in_out_set(P0, Oid(1)));
        assert!(r.in_out_set(P2, Oid(2)));
        assert!(!r.in_out_set(P1, Oid(10)));
        r.check_invariants();
    }

    #[test]
    fn remove_edge_cleans_up_fully() {
        let mut r = RemsetTable::new();
        r.add_edge(loc(1, 0), P0, Oid(10), P1);
        r.remove_edge(loc(1, 0), P0, Oid(10), P1);
        assert_eq!(r.remembered_target_count(P1), 0);
        assert!(!r.in_out_set(P0, Oid(1)));
        r.check_invariants();
    }

    #[test]
    fn out_count_tracks_multiple_pointers_per_object() {
        let mut r = RemsetTable::new();
        r.add_edge(loc(1, 0), P0, Oid(10), P1);
        r.add_edge(loc(1, 1), P0, Oid(20), P2);
        assert!(r.in_out_set(P0, Oid(1)));
        r.remove_edge(loc(1, 0), P0, Oid(10), P1);
        assert!(r.in_out_set(P0, Oid(1)), "one pointer still out");
        r.remove_edge(loc(1, 1), P0, Oid(20), P2);
        assert!(!r.in_out_set(P0, Oid(1)));
        r.check_invariants();
    }

    #[test]
    fn relocate_moves_into_entries_and_out_counts() {
        let mut r = RemsetTable::new();
        // Oid(10) lives in P1, pointed at from P0 twice; it also points out
        // to P2.
        r.add_edge(loc(1, 0), P0, Oid(10), P1);
        r.add_edge(loc(2, 0), P0, Oid(10), P1);
        r.add_edge(loc(10, 0), P1, Oid(30), P2);
        let forwarded = r.relocate_object(Oid(10), P1, P2);
        assert_eq!(forwarded.len(), 2);
        assert_eq!(r.remembered_target_count(P1), 0);
        assert_eq!(r.remembered_pointer_count(P2), 3); // 2 moved + Oid(30)'s
        assert!(r.in_out_set(P2, Oid(10)), "out-count moved with the object");
        assert!(!r.in_out_set(P1, Oid(10)));
        r.check_invariants();
    }

    #[test]
    fn relocate_object_with_no_entries_is_a_noop() {
        let mut r = RemsetTable::new();
        assert!(r.relocate_object(Oid(5), P0, P1).is_empty());
        r.check_invariants();
    }

    #[test]
    fn purge_source_and_target() {
        let mut r = RemsetTable::new();
        r.add_edge(loc(1, 0), P0, Oid(10), P1);
        // Dead target: collector discards its remembered entries wholesale.
        r.purge_target(P1, Oid(10));
        assert_eq!(r.remembered_target_count(P1), 0);
        // Out-count still present until the source is purged.
        assert!(r.in_out_set(P0, Oid(1)));
        r.purge_source(P0, Oid(1));
        assert!(!r.in_out_set(P0, Oid(1)));
    }

    #[test]
    fn locations_of_returns_sources() {
        let mut r = RemsetTable::new();
        r.add_edge(loc(1, 0), P0, Oid(10), P1);
        r.add_edge(loc(2, 3), P2, Oid(10), P1);
        let mut locs: Vec<PointerLoc> = r.locations_of(P1, Oid(10)).collect();
        locs.sort();
        assert_eq!(locs, vec![loc(1, 0), loc(2, 3)]);
        assert_eq!(r.locations_of(P1, Oid(99)).count(), 0);
    }

    #[test]
    fn idempotent_double_remove_is_harmless() {
        let mut r = RemsetTable::new();
        r.add_edge(loc(1, 0), P0, Oid(10), P1);
        r.remove_edge(loc(1, 0), P0, Oid(10), P1);
        // A second remove of the same edge must not underflow or panic.
        r.remove_edge(loc(9, 9), P0, Oid(10), P1);
        r.check_invariants();
    }
}
