//! Lock-free metric cells: [`Counter`], [`Gauge`], and a fixed-bucket
//! log2 [`Histogram`].
//!
//! All cells are plain `AtomicU64`s updated with relaxed ordering: each
//! cell is an independent statistical aggregate, so no cross-cell ordering
//! is required, and a reader that races an update merely sees a value that
//! was true a moment ago. Within one simulation the recording observer is
//! single-threaded anyway; the atomic representation is what lets a future
//! multi-threaded embedding share the same cells without a lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins cell that also tracks its running maximum via
/// [`Gauge::record_max`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two,
/// covering the full `u64` range with no overflow bucket.
pub const BUCKET_COUNT: usize = 65;

/// Upper bound (inclusive) of bucket `i`: 0 for bucket 0, `2^i - 1` for
/// the rest (saturating at `u64::MAX`).
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The bucket a value lands in: 0 holds exactly zero; bucket `i >= 1`
/// holds `[2^(i-1), 2^i)`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Bucket 0 counts zeros; bucket `i` counts values in `[2^(i-1), 2^i)`.
/// Exact count, sum, and max ride along, so means are exact and only
/// percentiles are quantized to bucket upper bounds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: Counter,
    sum: Counter,
    max: Gauge,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: Counter::new(),
            sum: Counter::new(),
            max: Gauge::new(),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.inc();
        self.sum.add(v);
        self.max.record_max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (b, src) in buckets.iter_mut().zip(&self.buckets) {
            *b = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.get(),
            sum: self.sum.get(),
            max: self.max.get(),
        }
    }
}

/// A plain-data copy of a [`Histogram`], mergeable across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram`] for the bucket layout).
    pub buckets: [u64; BUCKET_COUNT],
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket upper bound at or below which fraction `q` (in `[0, 1]`)
    /// of the samples fall — a quantized percentile. Returns the exact max
    /// for the final populated bucket, 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        let mut last = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            last = i;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        bucket_upper_bound(last).min(self.max)
    }

    /// Adds another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7, "record_max never lowers");
        g.record_max(10);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn bucket_layout_is_log2_with_zero_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_counts_sums_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 1106.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.quantile(0.0), 0);
        assert!(s.quantile(0.5) <= 3);
        assert_eq!(s.quantile(1.0), 1000, "top quantile reports exact max");
        assert!(HistogramSnapshot::default().is_empty());
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshots_merge_additively() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(4);
        a.record(5);
        b.record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 1_000_009);
        assert_eq!(m.max, 1_000_000);
    }
}
