//! Fleet-wide telemetry: per-shard snapshots plus a deterministic merge.
//!
//! A sharded runtime hosts many sessions (each with its own database,
//! collector, and telemetry tap) spread over several shard workers. Each
//! worker folds its sessions' [`TelemetrySnapshot`]s into one per-shard
//! snapshot; the [`FleetSnapshot`] collects those and exposes the
//! fleet-wide merge. Shards are kept in ascending shard-id order and the
//! merge folds them in that order, so the aggregate is independent of the
//! wall-clock order workers finished in — the fleet numbers for the same
//! sessions are bit-identical at any shard count.

use crate::snapshot::TelemetrySnapshot;

/// One shard's telemetry contribution to a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTelemetry {
    /// The shard's index in the server's shard array.
    pub shard: usize,
    /// Client streams whose sessions the shard hosted.
    pub streams: u32,
    /// Peak occupancy of the shard's ring inbox over the run, in
    /// messages — how close the shard ran to throttling its producers.
    pub ring_high_water: u64,
    /// The shard's snapshot: every hosted session folded together (so
    /// `snapshot.runs` counts sessions, and per-activation records are
    /// already dropped by [`TelemetrySnapshot::merge`]).
    pub snapshot: TelemetrySnapshot,
}

/// Per-shard telemetry snapshots and their fleet-wide merge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetSnapshot {
    shards: Vec<ShardTelemetry>,
}

impl FleetSnapshot {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one shard's merged snapshot, keeping the fleet ordered by
    /// ascending shard id regardless of insertion order.
    pub fn add_shard(
        &mut self,
        shard: usize,
        streams: u32,
        ring_high_water: u64,
        snapshot: TelemetrySnapshot,
    ) {
        let entry = ShardTelemetry {
            shard,
            streams,
            ring_high_water,
            snapshot,
        };
        let at = self.shards.partition_point(|s| s.shard < shard);
        self.shards.insert(at, entry);
    }

    /// The per-shard snapshots, in ascending shard-id order.
    pub fn shards(&self) -> &[ShardTelemetry] {
        &self.shards
    }

    /// Total client streams across the fleet.
    pub fn streams(&self) -> u32 {
        self.shards.iter().map(|s| s.streams).sum()
    }

    /// True when no shard has reported.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The fleet-wide aggregate: every shard's snapshot folded together in
    /// ascending shard-id order (`None` for an empty fleet). Counters add,
    /// histograms merge bucket-wise, and `runs` counts sessions across the
    /// whole fleet.
    pub fn merged(&self) -> Option<TelemetrySnapshot> {
        let mut iter = self.shards.iter();
        let mut out = iter.next()?.snapshot.clone();
        for s in iter {
            out.merge(&s.snapshot);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TriggerReason;
    use crate::TelemetryLevel;

    fn shard_snapshot(activations: u64) -> TelemetrySnapshot {
        let mut s =
            TelemetrySnapshot::empty(TelemetryLevel::Metrics, TriggerReason::OverwriteCount(50));
        s.runs = 1;
        s.counters.activations = activations;
        s.counters.events = 10 * activations;
        s
    }

    #[test]
    fn merge_is_insertion_order_independent() {
        let mut a = FleetSnapshot::new();
        a.add_shard(0, 2, 7, shard_snapshot(3));
        a.add_shard(1, 1, 4, shard_snapshot(5));

        let mut b = FleetSnapshot::new();
        b.add_shard(1, 1, 4, shard_snapshot(5));
        b.add_shard(0, 2, 7, shard_snapshot(3));

        assert_eq!(a, b, "shards sort by id regardless of arrival order");
        assert_eq!(a.streams(), 3);
        assert_eq!(a.shards()[0].ring_high_water, 7);
        assert_eq!(a.shards()[1].ring_high_water, 4);
        let merged = a.merged().expect("non-empty fleet");
        assert_eq!(merged, b.merged().unwrap());
        assert_eq!(merged.runs, 2);
        assert_eq!(merged.counters.activations, 8);
        assert_eq!(merged.counters.events, 80);
    }

    #[test]
    fn empty_fleet_has_no_merge() {
        let fleet = FleetSnapshot::new();
        assert!(fleet.is_empty());
        assert_eq!(fleet.streams(), 0);
        assert!(fleet.merged().is_none());
    }
}
