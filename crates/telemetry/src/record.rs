//! Per-activation structured records: the evidence trail behind the
//! paper's tables. One [`ActivationRecord`] is produced per collector
//! activation (trigger firing), capturing what was picked, why the
//! trigger fired, what the collection accomplished, and what it cost in
//! page I/O — attributed to that activation.

use pgc_types::{Bytes, PartitionId};

/// Why the GC trigger fires for a run — the telemetry-side mirror of the
/// scheduler's trigger configuration, carried so every JSONL line is
/// self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerReason {
    /// Collection every N pointer overwrites (the paper's trigger).
    OverwriteCount(u64),
    /// Collection every N allocated bytes.
    AllocationBytes(u64),
    /// Collection whenever the partition set grows.
    PartitionGrowth,
    /// Collections forced by an embedder outside any scheduler.
    External,
}

impl TriggerReason {
    /// Compact token used in the JSONL schema (`overwrites:200`,
    /// `alloc-bytes:393216`, `partition-growth`, `external`).
    pub fn token(&self) -> String {
        match self {
            TriggerReason::OverwriteCount(n) => format!("overwrites:{n}"),
            TriggerReason::AllocationBytes(n) => format!("alloc-bytes:{n}"),
            TriggerReason::PartitionGrowth => "partition-growth".to_string(),
            TriggerReason::External => "external".to_string(),
        }
    }

    /// Parses a [`TriggerReason::token`] back.
    pub fn parse_token(s: &str) -> Result<Self, String> {
        if let Some(n) = s.strip_prefix("overwrites:") {
            return n
                .parse()
                .map(TriggerReason::OverwriteCount)
                .map_err(|e| format!("bad overwrite count '{n}': {e}"));
        }
        if let Some(n) = s.strip_prefix("alloc-bytes:") {
            return n
                .parse()
                .map(TriggerReason::AllocationBytes)
                .map_err(|e| format!("bad allocation byte count '{n}': {e}"));
        }
        match s {
            "partition-growth" => Ok(TriggerReason::PartitionGrowth),
            "external" => Ok(TriggerReason::External),
            other => Err(format!("unknown trigger token '{other}'")),
        }
    }
}

/// One driving-policy switch observed on the bus
/// ([`pgc_odb::BarrierEvent::PolicySwitched`]): a meta-policy handed the
/// driver's seat to a different candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicySwitchNote {
    /// The activation whose collection outcome triggered the switch.
    pub activation: u64,
    /// Display name of the policy that was driving.
    pub from: String,
    /// Display name of the policy now driving.
    pub to: String,
}

/// A shadow scoreboard's counterfactual pick, attached to an activation
/// record by the simulator's shadow-race harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowPickNote {
    /// Display name of the shadow policy.
    pub policy: String,
    /// The partition it would have collected (`None` = it declined).
    pub victim: Option<PartitionId>,
}

/// Everything telemetry knows about one collector activation.
///
/// Event-clock fields count *bus events observed by the telemetry tap*,
/// which is a deterministic logical clock: two runs of the same
/// configuration produce identical clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationRecord {
    /// 1-based activation number (the scheduler's trigger count).
    pub activation: u64,
    /// Bus-event clock when the trigger ticked.
    pub event_clock: u64,
    /// Bus events since the previous activation's tick (inter-collection
    /// gap; for the first activation, since the start of the run).
    pub gap_events: u64,
    /// The partition the driving policy selected first (`None` = it
    /// declined, e.g. `NoCollection`).
    pub victim: Option<PartitionId>,
    /// The driver's numeric score for that victim, if the policy exposes
    /// one (scoreboard policies do; `Random` and the oracle do not).
    pub victim_score: Option<f64>,
    /// Partition collections performed this activation (the batch size,
    /// usually 1).
    pub collections: u32,
    /// Live objects copied out of the victims (summed over the batch).
    pub live_objects: u64,
    /// Bytes copied.
    pub live_bytes: Bytes,
    /// Dead objects reclaimed.
    pub garbage_objects: u64,
    /// Bytes reclaimed.
    pub garbage_bytes: Bytes,
    /// Remembered inter-partition pointers forwarded.
    pub forwarded_pointers: u64,
    /// Collector page reads performed by this activation's collections.
    pub gc_reads: u64,
    /// Collector page writes performed by this activation's collections.
    pub gc_writes: u64,
    /// Cumulative application page I/O at the moment the trigger fired.
    pub app_ios_before: u64,
    /// Application page I/O in the mutator window leading up to this
    /// activation (since the previous trigger).
    pub app_ios_delta: u64,
    /// Driving-policy switches announced during this activation (empty
    /// unless a meta-policy drives the run and decided to switch here).
    pub policy_switches: Vec<PolicySwitchNote>,
    /// Shadow scoreboards' counterfactual picks (empty unless a shadow
    /// race annotated this run).
    pub shadow_picks: Vec<ShadowPickNote>,
}

impl ActivationRecord {
    /// A zeroed record opened at trigger time; the recorder fills it in as
    /// the activation's events stream past.
    pub fn open(activation: u64, event_clock: u64, gap_events: u64) -> Self {
        Self {
            activation,
            event_clock,
            gap_events,
            victim: None,
            victim_score: None,
            collections: 0,
            live_objects: 0,
            live_bytes: Bytes::ZERO,
            garbage_objects: 0,
            garbage_bytes: Bytes::ZERO,
            forwarded_pointers: 0,
            gc_reads: 0,
            gc_writes: 0,
            app_ios_before: 0,
            app_ios_delta: 0,
            policy_switches: Vec::new(),
            shadow_picks: Vec::new(),
        }
    }

    /// Total collector page I/O attributed to this activation.
    pub fn gc_ios(&self) -> u64 {
        self.gc_reads + self.gc_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_tokens_round_trip() {
        for reason in [
            TriggerReason::OverwriteCount(200),
            TriggerReason::AllocationBytes(393_216),
            TriggerReason::PartitionGrowth,
            TriggerReason::External,
        ] {
            assert_eq!(TriggerReason::parse_token(&reason.token()), Ok(reason));
        }
        assert!(TriggerReason::parse_token("bogus").is_err());
        assert!(TriggerReason::parse_token("overwrites:x").is_err());
    }

    #[test]
    fn open_record_is_zeroed() {
        let r = ActivationRecord::open(3, 1000, 400);
        assert_eq!(r.activation, 3);
        assert_eq!(r.event_clock, 1000);
        assert_eq!(r.gap_events, 400);
        assert_eq!(r.victim, None);
        assert_eq!(r.gc_ios(), 0);
        assert!(r.policy_switches.is_empty());
        assert!(r.shadow_picks.is_empty());
    }
}
