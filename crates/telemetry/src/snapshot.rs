//! The in-memory sink: everything one run's telemetry tap observed,
//! condensed to plain data that can ride on a `RunOutcome`, merge across
//! seeds, or serialize to JSONL.

use crate::cells::HistogramSnapshot;
use crate::record::{ActivationRecord, PolicySwitchNote, TriggerReason};
use crate::TelemetryLevel;

/// Plain-data totals of every bus-event counter the tap maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Bus events observed (the telemetry event clock at end of run).
    pub events: u64,
    /// Pointer stores through the write barrier.
    pub pointer_writes: u64,
    /// Pointer stores that overwrote an existing pointer (the paper's
    /// trigger signal).
    pub overwrites: u64,
    /// Non-pointer mutations.
    pub data_writes: u64,
    /// Object allocations.
    pub allocations: u64,
    /// Bytes allocated.
    pub allocated_bytes: u64,
    /// Times the partition set grew.
    pub partition_growths: u64,
    /// Live objects evacuated by collections.
    pub objects_copied: u64,
    /// Bytes evacuated.
    pub copied_bytes: u64,
    /// Dead objects reclaimed.
    pub objects_reclaimed: u64,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Partition collections completed.
    pub collections: u64,
    /// Trigger activations.
    pub activations: u64,
    /// Driving-policy switches announced by a meta-policy.
    pub policy_switches: u64,
    /// Largest partition count observed at any activation.
    pub max_partitions: u64,
}

impl CounterSnapshot {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: &CounterSnapshot) {
        self.events += other.events;
        self.pointer_writes += other.pointer_writes;
        self.overwrites += other.overwrites;
        self.data_writes += other.data_writes;
        self.allocations += other.allocations;
        self.allocated_bytes += other.allocated_bytes;
        self.partition_growths += other.partition_growths;
        self.objects_copied += other.objects_copied;
        self.copied_bytes += other.copied_bytes;
        self.objects_reclaimed += other.objects_reclaimed;
        self.reclaimed_bytes += other.reclaimed_bytes;
        self.collections += other.collections;
        self.activations += other.activations;
        self.policy_switches += other.policy_switches;
        self.max_partitions = self.max_partitions.max(other.max_partitions);
    }
}

/// Aggregated recompute counters from the driving policy's derived-state
/// engine (`pgc-core`'s derive layer), mirrored here as plain integers so
/// telemetry stays dependency-free. Attached by the simulator after a run;
/// absent when the driving policy keeps no derived state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeriveSummary {
    /// Registered base inputs.
    pub inputs: u64,
    /// Registered derived queries.
    pub queries: u64,
    /// Final input revision (events that changed at least one input).
    pub revision: u64,
    /// Selections answered from an unchanged memo.
    pub hits: u64,
    /// Selections answered by rescanning only dirty partitions.
    pub partial: u64,
    /// Selections that rescanned every partition.
    pub full: u64,
}

impl DeriveSummary {
    /// Adds another run's recompute counters into this one.
    pub fn merge(&mut self, other: &DeriveSummary) {
        self.inputs += other.inputs;
        self.queries += other.queries;
        self.revision += other.revision;
        self.hits += other.hits;
        self.partial += other.partial;
        self.full += other.full;
    }

    /// Total selections answered (memo hits + partial + full rescans).
    pub fn selections(&self) -> u64 {
        self.hits + self.partial + self.full
    }
}

/// Durable-storage counters mirrored from the run's `DurableStore` as
/// plain integers so telemetry stays dependency-free. Attached by the
/// simulator after a run; absent when the run did not persist (including
/// recovery replays, which run with durability off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageSummary {
    /// Bytes appended to the change log.
    pub log_bytes: u64,
    /// Frames appended to the change log.
    pub log_frames: u64,
    /// Log segment files written.
    pub log_segments: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Snapshot files written.
    pub snapshots: u64,
    /// Bytes written into snapshot files.
    pub snapshot_bytes: u64,
    /// Collection safepoints persisted.
    pub safepoints: u64,
}

impl StorageSummary {
    /// Adds another run's storage counters into this one.
    pub fn merge(&mut self, other: &StorageSummary) {
        self.log_bytes += other.log_bytes;
        self.log_frames += other.log_frames;
        self.log_segments += other.log_segments;
        self.fsyncs += other.fsyncs;
        self.snapshots += other.snapshots;
        self.snapshot_bytes += other.snapshot_bytes;
        self.safepoints += other.safepoints;
    }
}

/// Everything telemetry captured for one run (or, after [`merge`], for a
/// set of same-configuration runs).
///
/// [`merge`]: TelemetrySnapshot::merge
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// The level the run recorded at.
    pub level: TelemetryLevel,
    /// The trigger configuration the run collected under.
    pub trigger: TriggerReason,
    /// Number of runs folded into this snapshot (1 until merged).
    pub runs: u32,
    /// Whole-run bus-event counters.
    pub counters: CounterSnapshot,
    /// Bytes reclaimed per activation.
    pub reclaimed_per_activation: HistogramSnapshot,
    /// Collector page I/O per activation.
    pub gc_io_per_activation: HistogramSnapshot,
    /// Bus events between consecutive activations.
    pub activation_gap_events: HistogramSnapshot,
    /// One record per activation, in order ([`TelemetryLevel::Full`] only;
    /// empty at `Metrics` level and after a merge).
    pub records: Vec<ActivationRecord>,
    /// Every driving-policy switch observed, in order (recorded at all
    /// levels; dropped on merge like `records`).
    pub switches: Vec<PolicySwitchNote>,
    /// Recompute counters from the driving policy's derive engine, when it
    /// has one (attached by the simulator; summed on merge).
    pub derive: Option<DeriveSummary>,
    /// Durable-storage counters, when the run persisted (attached by the
    /// simulator; summed on merge).
    pub storage: Option<StorageSummary>,
}

impl TelemetrySnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty(level: TelemetryLevel, trigger: TriggerReason) -> Self {
        Self {
            level,
            trigger,
            runs: 0,
            counters: CounterSnapshot::default(),
            reclaimed_per_activation: HistogramSnapshot::default(),
            gc_io_per_activation: HistogramSnapshot::default(),
            activation_gap_events: HistogramSnapshot::default(),
            records: Vec::new(),
            switches: Vec::new(),
            derive: None,
            storage: None,
        }
    }

    /// Folds another run's snapshot into this aggregate: counters add,
    /// histograms merge bucket-wise, `runs` accumulates. Per-activation
    /// records do not concatenate meaningfully across runs, so the merged
    /// snapshot drops them.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.runs += other.runs;
        self.counters.merge(&other.counters);
        self.reclaimed_per_activation
            .merge(&other.reclaimed_per_activation);
        self.gc_io_per_activation.merge(&other.gc_io_per_activation);
        self.activation_gap_events
            .merge(&other.activation_gap_events);
        self.records.clear();
        self.switches.clear();
        if let Some(theirs) = &other.derive {
            self.derive
                .get_or_insert_with(DeriveSummary::default)
                .merge(theirs);
        }
        if let Some(theirs) = &other.storage {
            self.storage
                .get_or_insert_with(StorageSummary::default)
                .merge(theirs);
        }
    }

    /// Mean activations per merged run.
    pub fn activations_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.counters.activations as f64 / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(activations: u64) -> TelemetrySnapshot {
        let mut s =
            TelemetrySnapshot::empty(TelemetryLevel::Metrics, TriggerReason::OverwriteCount(200));
        s.runs = 1;
        s.counters.activations = activations;
        s.counters.events = 100 * activations;
        for i in 0..activations {
            s.reclaimed_per_activation.merge(&{
                let h = crate::cells::Histogram::new();
                h.record(1024 * (i + 1));
                h.snapshot()
            });
        }
        s
    }

    #[test]
    fn merge_accumulates_counters_and_drops_records() {
        let mut a = sample(3);
        a.records
            .push(crate::record::ActivationRecord::open(1, 10, 10));
        a.switches.push(PolicySwitchNote {
            activation: 2,
            from: "UpdatedPointer".to_string(),
            to: "Occupancy".to_string(),
        });
        let b = sample(5);
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.counters.activations, 8);
        assert_eq!(a.counters.events, 800);
        assert_eq!(a.reclaimed_per_activation.count, 8);
        assert!(a.records.is_empty(), "records drop on merge");
        assert!(a.switches.is_empty(), "switch traces drop on merge");
        assert!((a.activations_per_run() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_derive_summaries() {
        let mut a = sample(1);
        let mut b = sample(1);
        b.derive = Some(DeriveSummary {
            inputs: 1,
            queries: 1,
            revision: 100,
            hits: 2,
            partial: 3,
            full: 5,
        });
        a.merge(&b);
        let d = a.derive.expect("derive summary adopted from other");
        assert_eq!(d.selections(), 10);
        a.merge(&b);
        let d = a.derive.unwrap();
        assert_eq!(d.revision, 200);
        assert_eq!(d.selections(), 20);
    }
}
