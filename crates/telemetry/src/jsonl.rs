//! The JSONL sink: one schema-versioned line per activation record.
//!
//! The workspace carries no serde, so both directions are hand-rolled
//! against the fixed, flat schema below. Every line is self-describing —
//! schema tag, run identity (policy + seed), and trigger configuration
//! ride on each record — so files from different runs can be concatenated
//! and still parsed line by line.
//!
//! Schema `pgc-telemetry/v1`, keys in fixed order:
//!
//! ```json
//! {"schema":"pgc-telemetry/v1","policy":"UpdatedPointer","seed":3,
//!  "trigger":"overwrites:200","activation":1,"clock":5321,"gap":5321,
//!  "victim":4,"victim_score":12.0,"victim_score_bits":4622945017495814144,
//!  "collections":1,"live_objects":10,"live_bytes":1000,
//!  "garbage_objects":5,"garbage_bytes":500,"forwarded_pointers":2,
//!  "gc_reads":3,"gc_writes":4,"app_ios_before":100,"app_ios_delta":42,
//!  "policy_switches":[{"activation":1,"from":"UpdatedPointer","to":"Occupancy"}],
//!  "shadow_picks":[{"policy":"Random","victim":2}]}
//! ```
//!
//! `victim`, `victim_score`, and `victim_score_bits` are `null` when
//! absent. `victim_score` is human-readable only; the round-trippable
//! value is `victim_score_bits` (`f64::to_bits`), so parsing is exact.

use crate::record::{ActivationRecord, PolicySwitchNote, ShadowPickNote, TriggerReason};
use crate::snapshot::TelemetrySnapshot;
use pgc_types::{Bytes, PartitionId};
use std::fmt::Write as _;
use std::io;

/// The schema tag written on (and required of) every line.
pub const SCHEMA: &str = "pgc-telemetry/v1";

/// One parsed JSONL line: run identity plus the record.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLine {
    /// Display name of the policy that drove the run.
    pub policy: String,
    /// Workload seed of the run.
    pub seed: u64,
    /// The run's trigger configuration.
    pub trigger: TriggerReason,
    /// The activation record itself.
    pub record: ActivationRecord,
}

fn push_opt_u64(out: &mut String, key: &str, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "\"{key}\":{v},");
        }
        None => {
            let _ = write!(out, "\"{key}\":null,");
        }
    }
}

/// Renders one record as a single JSONL line (no trailing newline).
pub fn record_line(
    policy: &str,
    seed: u64,
    trigger: TriggerReason,
    rec: &ActivationRecord,
) -> String {
    let mut out = String::with_capacity(384);
    let _ = write!(
        out,
        "{{\"schema\":\"{SCHEMA}\",\"policy\":\"{policy}\",\"seed\":{seed},\
         \"trigger\":\"{}\",\"activation\":{},\"clock\":{},\"gap\":{},",
        trigger.token(),
        rec.activation,
        rec.event_clock,
        rec.gap_events
    );
    push_opt_u64(&mut out, "victim", rec.victim.map(|p| u64::from(p.0)));
    match rec.victim_score {
        // The human-readable field is valid JSON only for finite scores;
        // the bits field is always the authoritative value.
        Some(score) if score.is_finite() => {
            let _ = write!(
                out,
                "\"victim_score\":{score},\"victim_score_bits\":{},",
                score.to_bits()
            );
        }
        Some(score) => {
            let _ = write!(
                out,
                "\"victim_score\":null,\"victim_score_bits\":{},",
                score.to_bits()
            );
        }
        None => out.push_str("\"victim_score\":null,\"victim_score_bits\":null,"),
    }
    let _ = write!(
        out,
        "\"collections\":{},\"live_objects\":{},\"live_bytes\":{},\
         \"garbage_objects\":{},\"garbage_bytes\":{},\"forwarded_pointers\":{},\
         \"gc_reads\":{},\"gc_writes\":{},\"app_ios_before\":{},\"app_ios_delta\":{},\
         \"policy_switches\":[",
        rec.collections,
        rec.live_objects,
        rec.live_bytes.get(),
        rec.garbage_objects,
        rec.garbage_bytes.get(),
        rec.forwarded_pointers,
        rec.gc_reads,
        rec.gc_writes,
        rec.app_ios_before,
        rec.app_ios_delta,
    );
    for (i, sw) in rec.policy_switches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"activation\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
            sw.activation, sw.from, sw.to
        );
    }
    out.push_str("],\"shadow_picks\":[");
    for (i, pick) in rec.shadow_picks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"policy\":\"{}\",\"victim\":", pick.policy);
        match pick.victim {
            Some(p) => {
                let _ = write!(out, "{}", p.0);
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Writes every record of `snapshot` to `w`, one line per activation.
/// Snapshots recorded below [`crate::TelemetryLevel::Full`] carry no
/// records and write nothing.
pub fn write_snapshot<W: io::Write>(
    w: &mut W,
    policy: &str,
    seed: u64,
    snapshot: &TelemetrySnapshot,
) -> io::Result<()> {
    for rec in &snapshot.records {
        writeln!(w, "{}", record_line(policy, seed, snapshot.trigger, rec))?;
    }
    Ok(())
}

fn scalar<'a>(body: &'a str, key: &str) -> Result<&'a str, String> {
    let tag = format!("\"{key}\":");
    let start = body
        .find(&tag)
        .ok_or_else(|| format!("missing key '{key}'"))?
        + tag.len();
    let rest = &body[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated value for '{key}'"))?;
    Ok(&rest[..end])
}

fn scalar_u64(body: &str, key: &str) -> Result<u64, String> {
    let raw = scalar(body, key)?;
    raw.parse()
        .map_err(|e| format!("bad integer for '{key}' ({raw}): {e}"))
}

fn scalar_opt_u64(body: &str, key: &str) -> Result<Option<u64>, String> {
    let raw = scalar(body, key)?;
    if raw == "null" {
        return Ok(None);
    }
    raw.parse()
        .map(Some)
        .map_err(|e| format!("bad integer for '{key}' ({raw}): {e}"))
}

fn scalar_str(body: &str, key: &str) -> Result<String, String> {
    let raw = scalar(body, key)?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected string for '{key}', got {raw}"))
}

fn parse_switches(body: &str) -> Result<Vec<PolicySwitchNote>, String> {
    let tag = "\"policy_switches\":[";
    // Lenient: lines written before the key existed parse as no switches.
    let Some(start) = body.find(tag).map(|i| i + tag.len()) else {
        return Ok(Vec::new());
    };
    let rest = &body[start..];
    let end = rest.find(']').ok_or("unterminated policy_switches array")?;
    let inner = &rest[..end];
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split("},{")
        .map(|entry| {
            let entry = entry.trim_start_matches('{').trim_end_matches('}');
            // Re-wrap so the scalar helpers see terminated values.
            let entry = format!("{entry}}}");
            Ok(PolicySwitchNote {
                activation: scalar_u64(&entry, "activation")?,
                from: scalar_str(&entry, "from")?,
                to: scalar_str(&entry, "to")?,
            })
        })
        .collect()
}

fn parse_picks(body: &str) -> Result<Vec<ShadowPickNote>, String> {
    let tag = "\"shadow_picks\":[";
    let start = body.find(tag).ok_or("missing key 'shadow_picks'")? + tag.len();
    let rest = &body[start..];
    let end = rest.find(']').ok_or("unterminated shadow_picks array")?;
    let inner = &rest[..end];
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split("},{")
        .map(|entry| {
            let entry = entry.trim_start_matches('{').trim_end_matches('}');
            // Re-wrap so the scalar helpers see terminated values.
            let entry = format!("{entry}}}");
            Ok(ShadowPickNote {
                policy: scalar_str(&entry, "policy")?,
                victim: scalar_opt_u64(&entry, "victim")?.map(|v| PartitionId(v as u32)),
            })
        })
        .collect()
}

/// Parses one line written by [`record_line`]. Rejects lines with a
/// missing or unexpected schema tag.
pub fn parse_line(line: &str) -> Result<ParsedLine, String> {
    let schema = scalar_str(line, "schema")?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (expected '{SCHEMA}')"
        ));
    }
    // Scalar keys all precede the two trailing arrays (fixed key order), so
    // restricting scalar searches to that prefix keeps the arrays' own
    // "policy"/"victim"/"activation" keys out of scope.
    let head_end = [
        line.find("\"policy_switches\""),
        line.find("\"shadow_picks\""),
    ]
    .into_iter()
    .flatten()
    .min()
    .unwrap_or(line.len());
    let head = &line[..head_end];
    let record = ActivationRecord {
        activation: scalar_u64(head, "activation")?,
        event_clock: scalar_u64(head, "clock")?,
        gap_events: scalar_u64(head, "gap")?,
        victim: scalar_opt_u64(head, "victim")?.map(|v| PartitionId(v as u32)),
        victim_score: scalar_opt_u64(head, "victim_score_bits")?.map(f64::from_bits),
        collections: scalar_u64(head, "collections")? as u32,
        live_objects: scalar_u64(head, "live_objects")?,
        live_bytes: Bytes(scalar_u64(head, "live_bytes")?),
        garbage_objects: scalar_u64(head, "garbage_objects")?,
        garbage_bytes: Bytes(scalar_u64(head, "garbage_bytes")?),
        forwarded_pointers: scalar_u64(head, "forwarded_pointers")?,
        gc_reads: scalar_u64(head, "gc_reads")?,
        gc_writes: scalar_u64(head, "gc_writes")?,
        app_ios_before: scalar_u64(head, "app_ios_before")?,
        app_ios_delta: scalar_u64(head, "app_ios_delta")?,
        policy_switches: parse_switches(line)?,
        shadow_picks: parse_picks(line)?,
    };
    Ok(ParsedLine {
        policy: scalar_str(head, "policy")?,
        seed: scalar_u64(head, "seed")?,
        trigger: TriggerReason::parse_token(&scalar_str(head, "trigger")?)?,
        record,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ActivationRecord {
        let mut rec = ActivationRecord::open(7, 12_345, 900);
        rec.victim = Some(PartitionId(4));
        rec.victim_score = Some(12.5);
        rec.collections = 1;
        rec.live_objects = 10;
        rec.live_bytes = Bytes(1000);
        rec.garbage_objects = 5;
        rec.garbage_bytes = Bytes(512);
        rec.forwarded_pointers = 2;
        rec.gc_reads = 3;
        rec.gc_writes = 4;
        rec.app_ios_before = 100;
        rec.app_ios_delta = 42;
        rec.policy_switches = vec![PolicySwitchNote {
            activation: 7,
            from: "UpdatedPointer".to_string(),
            to: "Occupancy".to_string(),
        }];
        rec.shadow_picks = vec![
            ShadowPickNote {
                policy: "Random".to_string(),
                victim: Some(PartitionId(2)),
            },
            ShadowPickNote {
                policy: "MostGarbage".to_string(),
                victim: None,
            },
        ];
        rec
    }

    #[test]
    fn line_round_trips_exactly() {
        let rec = sample_record();
        let line = record_line(
            "UpdatedPointer",
            3,
            TriggerReason::OverwriteCount(200),
            &rec,
        );
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.policy, "UpdatedPointer");
        assert_eq!(parsed.seed, 3);
        assert_eq!(parsed.trigger, TriggerReason::OverwriteCount(200));
        assert_eq!(parsed.record, rec);
    }

    #[test]
    fn null_victim_and_empty_picks_round_trip() {
        let rec = ActivationRecord::open(1, 10, 10);
        let line = record_line("NoCollection", 1, TriggerReason::PartitionGrowth, &rec);
        assert!(line.contains("\"victim\":null"));
        assert!(line.contains("\"policy_switches\":[]"));
        assert!(line.contains("\"shadow_picks\":[]"));
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.record, rec);
    }

    #[test]
    fn lines_without_policy_switches_still_parse() {
        // Files written before the key existed must keep parsing (as
        // no switches).
        let rec = sample_record();
        let line = record_line("X", 1, TriggerReason::External, &rec).replace(
            "\"policy_switches\":[{\"activation\":7,\"from\":\"UpdatedPointer\",\
             \"to\":\"Occupancy\"}],",
            "",
        );
        assert!(!line.contains("policy_switches"));
        let parsed = parse_line(&line).unwrap();
        assert!(parsed.record.policy_switches.is_empty());
        assert_eq!(parsed.record.shadow_picks, rec.shadow_picks);
        assert_eq!(parsed.record.activation, rec.activation);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let rec = ActivationRecord::open(1, 10, 10);
        let line = record_line("X", 1, TriggerReason::External, &rec)
            .replace("pgc-telemetry/v1", "pgc-telemetry/v0");
        assert!(parse_line(&line).is_err());
        assert!(parse_line("{}").is_err());
    }

    #[test]
    fn nan_scores_round_trip_through_bits() {
        let mut rec = ActivationRecord::open(1, 10, 10);
        rec.victim_score = Some(f64::NAN);
        let line = record_line("X", 1, TriggerReason::External, &rec);
        let parsed = parse_line(&line).unwrap();
        assert!(parsed.record.victim_score.unwrap().is_nan());
    }
}
