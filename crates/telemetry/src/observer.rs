//! The recorder: a [`BarrierObserver`] bystander that turns the barrier
//! event stream into counters, histograms, and per-activation records.
//!
//! Construction hands back an observer/handle pair sharing one state cell:
//! the observer is registered on the collector's bus (which consumes it),
//! and the handle survives the run to extract the finished
//! [`TelemetrySnapshot`]. The observer only *reads* the stream every
//! registered policy already sees — it never mutates the database, selects
//! a victim, or charges I/O, which is what makes it non-perturbing (the
//! simulator's test suite pins totals and victim sequences bit-identical
//! with telemetry off and on).

use crate::cells::{Counter, Gauge, Histogram};
use crate::record::{ActivationRecord, PolicySwitchNote, TriggerReason};
use crate::snapshot::{CounterSnapshot, TelemetrySnapshot};
use crate::TelemetryLevel;
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Default)]
struct BusCounters {
    events: Counter,
    pointer_writes: Counter,
    overwrites: Counter,
    data_writes: Counter,
    allocations: Counter,
    allocated_bytes: Counter,
    partition_growths: Counter,
    objects_copied: Counter,
    copied_bytes: Counter,
    objects_reclaimed: Counter,
    reclaimed_bytes: Counter,
    collections: Counter,
    activations: Counter,
    policy_switches: Counter,
    max_partitions: Gauge,
}

impl BusCounters {
    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            events: self.events.get(),
            pointer_writes: self.pointer_writes.get(),
            overwrites: self.overwrites.get(),
            data_writes: self.data_writes.get(),
            allocations: self.allocations.get(),
            allocated_bytes: self.allocated_bytes.get(),
            partition_growths: self.partition_growths.get(),
            objects_copied: self.objects_copied.get(),
            copied_bytes: self.copied_bytes.get(),
            objects_reclaimed: self.objects_reclaimed.get(),
            reclaimed_bytes: self.reclaimed_bytes.get(),
            collections: self.collections.get(),
            activations: self.activations.get(),
            policy_switches: self.policy_switches.get(),
            max_partitions: self.max_partitions.get(),
        }
    }
}

struct TelemetryState {
    level: TelemetryLevel,
    trigger: TriggerReason,
    counters: BusCounters,
    reclaimed_hist: Histogram,
    gc_io_hist: Histogram,
    gap_hist: Histogram,
    records: Vec<ActivationRecord>,
    /// Whole-run policy-switch trace (recorded at every level).
    switches: Vec<PolicySwitchNote>,
    /// The record being built for the current activation (opened at
    /// `TriggerTick`, closed at the next tick or at end of run).
    open: Option<ActivationRecord>,
    /// Deterministic logical clock: bus events observed so far.
    clock: u64,
    last_tick_clock: u64,
    last_app_ios: u64,
}

impl TelemetryState {
    fn close_open(&mut self) {
        let Some(rec) = self.open.take() else {
            return;
        };
        self.reclaimed_hist.record(rec.garbage_bytes.get());
        self.gc_io_hist.record(rec.gc_ios());
        self.gap_hist.record(rec.gap_events);
        if self.level == TelemetryLevel::Full {
            self.records.push(rec);
        }
    }

    fn into_snapshot(mut self) -> TelemetrySnapshot {
        self.close_open();
        TelemetrySnapshot {
            level: self.level,
            trigger: self.trigger,
            runs: 1,
            counters: self.counters.snapshot(),
            reclaimed_per_activation: self.reclaimed_hist.snapshot(),
            gc_io_per_activation: self.gc_io_hist.snapshot(),
            activation_gap_events: self.gap_hist.snapshot(),
            records: self.records,
            switches: self.switches,
            derive: None,
            storage: None,
        }
    }
}

/// The bus-riding recorder half of a telemetry pair.
pub struct TelemetryObserver {
    state: Rc<RefCell<TelemetryState>>,
}

/// The surviving half: extracts the snapshot after the run.
pub struct TelemetryHandle {
    state: Rc<RefCell<TelemetryState>>,
}

impl TelemetryObserver {
    /// Creates an observer/handle pair recording at `level` under the
    /// given trigger configuration. Register the observer on the
    /// collector's bus; call [`TelemetryHandle::finish`] when the run
    /// ends.
    pub fn new(level: TelemetryLevel, trigger: TriggerReason) -> (Self, TelemetryHandle) {
        let state = Rc::new(RefCell::new(TelemetryState {
            level,
            trigger,
            counters: BusCounters::default(),
            reclaimed_hist: Histogram::new(),
            gc_io_hist: Histogram::new(),
            gap_hist: Histogram::new(),
            records: Vec::new(),
            switches: Vec::new(),
            open: None,
            clock: 0,
            last_tick_clock: 0,
            last_app_ios: 0,
        }));
        (
            Self {
                state: Rc::clone(&state),
            },
            TelemetryHandle { state },
        )
    }
}

impl BarrierObserver for TelemetryObserver {
    fn on_event(&mut self, event: &BarrierEvent) {
        let mut s = self.state.borrow_mut();
        s.clock += 1;
        s.counters.events.inc();
        match *event {
            BarrierEvent::PointerWrite(info) => {
                s.counters.pointer_writes.inc();
                if info.is_overwrite() {
                    s.counters.overwrites.inc();
                }
            }
            BarrierEvent::DataWrite { .. } => s.counters.data_writes.inc(),
            BarrierEvent::Allocation { size, .. } => {
                s.counters.allocations.inc();
                s.counters.allocated_bytes.add(size.get());
            }
            BarrierEvent::PartitionGrowth { partitions } => {
                s.counters.partition_growths.inc();
                s.counters.max_partitions.record_max(partitions as u64);
            }
            BarrierEvent::ObjectCopied { size, .. } => {
                s.counters.objects_copied.inc();
                s.counters.copied_bytes.add(size.get());
            }
            BarrierEvent::ObjectReclaimed { size, .. } => {
                s.counters.objects_reclaimed.inc();
                s.counters.reclaimed_bytes.add(size.get());
            }
            BarrierEvent::VictimSelected { victim, score_bits } => {
                if let Some(open) = s.open.as_mut() {
                    // First selection of the activation is the driver's
                    // headline pick; batch extras only add to the totals.
                    if open.victim.is_none() {
                        open.victim = Some(victim);
                        open.victim_score = score_bits.map(f64::from_bits);
                    }
                }
            }
            BarrierEvent::CollectionCompleted(outcome) => {
                s.counters.collections.inc();
                if let Some(open) = s.open.as_mut() {
                    open.collections += 1;
                    open.live_objects += outcome.live_objects;
                    open.live_bytes += outcome.live_bytes;
                    open.garbage_objects += outcome.garbage_objects;
                    open.garbage_bytes += outcome.garbage_bytes;
                    open.forwarded_pointers += outcome.forwarded_pointers;
                    open.gc_reads += outcome.gc_reads;
                    open.gc_writes += outcome.gc_writes;
                }
            }
            BarrierEvent::TriggerTick { activation } => {
                s.close_open();
                s.counters.activations.inc();
                let gap = s.clock - s.last_tick_clock;
                let clock = s.clock;
                s.open = Some(ActivationRecord::open(activation, clock, gap));
                s.last_tick_clock = clock;
            }
            BarrierEvent::PolicySwitched {
                activation,
                from,
                to,
            } => {
                s.counters.policy_switches.inc();
                let note = PolicySwitchNote {
                    activation,
                    from: from.to_string(),
                    to: to.to_string(),
                };
                if let Some(open) = s.open.as_mut() {
                    open.policy_switches.push(note.clone());
                }
                s.switches.push(note);
            }
        }
    }

    fn on_trigger(&mut self, db: &Database) {
        let mut s = self.state.borrow_mut();
        let app = db.io_stats().app_ios();
        let delta = app - s.last_app_ios;
        s.last_app_ios = app;
        s.counters
            .max_partitions
            .record_max(db.partition_count() as u64);
        if let Some(open) = s.open.as_mut() {
            open.app_ios_before = app;
            open.app_ios_delta = delta;
        }
    }
}

impl TelemetryHandle {
    /// Closes any in-flight activation record and returns the finished
    /// snapshot. Call after the run, once the observer has been dropped
    /// with the collector. If the observer is somehow still alive (a
    /// mid-run peek), the snapshot is taken as-is with the in-flight
    /// activation still open and excluded.
    pub fn finish(self) -> TelemetrySnapshot {
        match Rc::try_unwrap(self.state) {
            Ok(cell) => cell.into_inner().into_snapshot(),
            Err(rc) => {
                let s = rc.borrow();
                TelemetrySnapshot {
                    level: s.level,
                    trigger: s.trigger,
                    runs: 1,
                    counters: s.counters.snapshot(),
                    reclaimed_per_activation: s.reclaimed_hist.snapshot(),
                    gc_io_per_activation: s.gc_io_hist.snapshot(),
                    activation_gap_events: s.gap_hist.snapshot(),
                    records: s.records.clone(),
                    switches: s.switches.clone(),
                    derive: None,
                    storage: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::CollectionOutcome;
    use pgc_types::{Bytes, Oid, PartitionId};

    fn tick(n: u64) -> BarrierEvent {
        BarrierEvent::TriggerTick { activation: n }
    }

    fn completed(garbage: u64) -> BarrierEvent {
        BarrierEvent::CollectionCompleted(CollectionOutcome {
            victim: PartitionId(1),
            target: PartitionId(0),
            live_objects: 2,
            live_bytes: Bytes(200),
            garbage_objects: 3,
            garbage_bytes: Bytes(garbage),
            forwarded_pointers: 1,
            gc_reads: 4,
            gc_writes: 5,
        })
    }

    #[test]
    fn records_one_activation_per_tick() {
        let (mut obs, handle) =
            TelemetryObserver::new(TelemetryLevel::Full, TriggerReason::OverwriteCount(50));
        obs.on_event(&BarrierEvent::Allocation {
            oid: Oid(1),
            partition: PartitionId(1),
            size: Bytes(100),
            grew: false,
        });
        obs.on_event(&tick(1));
        obs.on_event(&BarrierEvent::VictimSelected {
            victim: PartitionId(1),
            score_bits: Some(7.0f64.to_bits()),
        });
        obs.on_event(&completed(500));
        obs.on_event(&tick(2));
        obs.on_event(&BarrierEvent::VictimSelected {
            victim: PartitionId(2),
            score_bits: None,
        });
        obs.on_event(&completed(900));
        drop(obs);
        let snap = handle.finish();
        assert_eq!(snap.counters.activations, 2);
        assert_eq!(snap.counters.collections, 2);
        assert_eq!(snap.counters.allocations, 1);
        assert_eq!(snap.records.len(), 2, "finish closes the open record");
        let first = &snap.records[0];
        assert_eq!(first.activation, 1);
        assert_eq!(first.victim, Some(PartitionId(1)));
        assert_eq!(first.victim_score, Some(7.0));
        assert_eq!(first.garbage_bytes, Bytes(500));
        assert_eq!(first.gc_ios(), 9);
        let second = &snap.records[1];
        assert_eq!(second.victim, Some(PartitionId(2)));
        assert_eq!(second.victim_score, None);
        assert_eq!(snap.reclaimed_per_activation.count, 2);
        assert_eq!(snap.reclaimed_per_activation.sum, 1400);
    }

    #[test]
    fn metrics_level_keeps_histograms_but_no_records() {
        let (mut obs, handle) =
            TelemetryObserver::new(TelemetryLevel::Metrics, TriggerReason::PartitionGrowth);
        obs.on_event(&tick(1));
        obs.on_event(&completed(100));
        drop(obs);
        let snap = handle.finish();
        assert_eq!(snap.counters.activations, 1);
        assert!(snap.records.is_empty());
        assert_eq!(snap.reclaimed_per_activation.count, 1);
    }

    #[test]
    fn policy_switches_land_on_the_open_record_and_the_run_trace() {
        let (mut obs, handle) =
            TelemetryObserver::new(TelemetryLevel::Full, TriggerReason::OverwriteCount(50));
        obs.on_event(&tick(1));
        obs.on_event(&completed(100));
        obs.on_event(&BarrierEvent::PolicySwitched {
            activation: 1,
            from: "UpdatedPointer",
            to: "Occupancy",
        });
        obs.on_event(&tick(2));
        obs.on_event(&completed(200));
        drop(obs);
        let snap = handle.finish();
        assert_eq!(snap.counters.policy_switches, 1);
        assert_eq!(snap.switches.len(), 1);
        assert_eq!(snap.switches[0].activation, 1);
        assert_eq!(snap.switches[0].from, "UpdatedPointer");
        assert_eq!(snap.switches[0].to, "Occupancy");
        assert_eq!(snap.records[0].policy_switches.len(), 1);
        assert!(snap.records[1].policy_switches.is_empty());
    }

    #[test]
    fn batch_collections_accumulate_into_one_record() {
        let (mut obs, handle) =
            TelemetryObserver::new(TelemetryLevel::Full, TriggerReason::OverwriteCount(1));
        obs.on_event(&tick(1));
        obs.on_event(&BarrierEvent::VictimSelected {
            victim: PartitionId(3),
            score_bits: None,
        });
        obs.on_event(&completed(100));
        obs.on_event(&BarrierEvent::VictimSelected {
            victim: PartitionId(4),
            score_bits: None,
        });
        obs.on_event(&completed(200));
        drop(obs);
        let snap = handle.finish();
        assert_eq!(snap.records.len(), 1);
        let rec = &snap.records[0];
        assert_eq!(rec.collections, 2);
        assert_eq!(rec.victim, Some(PartitionId(3)), "first pick wins");
        assert_eq!(rec.garbage_bytes, Bytes(300));
    }
}
