//! # pgc-telemetry
//!
//! Sampling-gated observability for the barrier event bus: the layer that
//! turns a run's event stream into per-activation evidence (which
//! partition was picked, what it reclaimed, what it cost in page I/O)
//! without perturbing the run.
//!
//! * [`cells`] — lock-free [`cells::Counter`] / [`cells::Gauge`] cells and
//!   a fixed-bucket log2 [`cells::Histogram`]; no dependencies, no unsafe.
//! * [`record`] — [`record::ActivationRecord`]: one structured record per
//!   collector activation, plus the trigger-reason vocabulary.
//! * [`observer`] — [`observer::TelemetryObserver`]: the
//!   [`pgc_odb::BarrierObserver`] bystander that does the recording, and
//!   the [`observer::TelemetryHandle`] that survives the run to extract
//!   the snapshot.
//! * [`snapshot`] — [`snapshot::TelemetrySnapshot`]: the in-memory sink
//!   (counters, run-level histograms, records), mergeable across seeds.
//! * [`fleet`] — [`fleet::FleetSnapshot`]: per-shard snapshots from a
//!   sharded runtime plus the deterministic fleet-wide merge.
//! * [`jsonl`] — the schema-versioned JSONL sink and its parser.
//!
//! The recorder is a pure bystander on the bus built in PR 3: it reads
//! the same stream every selection policy sees and touches nothing else,
//! so totals and victim sequences are bit-identical with telemetry off or
//! on — the simulator's test suite pins this, and `perf_report` gates the
//! disabled path at <2% overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod fleet;
pub mod jsonl;
pub mod observer;
pub mod record;
pub mod snapshot;

pub use cells::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use fleet::{FleetSnapshot, ShardTelemetry};
pub use jsonl::{parse_line, record_line, write_snapshot, ParsedLine, SCHEMA};
pub use observer::{TelemetryHandle, TelemetryObserver};
pub use record::{ActivationRecord, PolicySwitchNote, ShadowPickNote, TriggerReason};
pub use snapshot::{CounterSnapshot, DeriveSummary, StorageSummary, TelemetrySnapshot};

/// How much the telemetry layer records.
///
/// `Off` registers nothing on the bus — the disabled path is the exact
/// code path of a run without telemetry. `Metrics` maintains counters and
/// run-level histograms. `Full` additionally keeps one
/// [`ActivationRecord`] per collector activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TelemetryLevel {
    /// Record nothing; no observer rides the bus.
    #[default]
    Off,
    /// Counters and run-level histograms only.
    Metrics,
    /// Counters, histograms, and per-activation records.
    Full,
}

impl TelemetryLevel {
    /// True unless the level is [`TelemetryLevel::Off`].
    pub fn is_enabled(self) -> bool {
        self != TelemetryLevel::Off
    }
}
