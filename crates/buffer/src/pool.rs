//! The write-back buffer pool and its disk-cost semantics.
//!
//! Cost rules (matching the paper's simulator):
//!
//! * **Read hit / write hit** — no disk traffic; the page is promoted to
//!   most-recently-used (a write hit also sets the dirty bit).
//! * **Read miss / write miss** — one disk read to fault the page in; if the
//!   buffer is full, the LRU page is evicted first, and *if it is dirty*
//!   that costs one disk write (write-back).
//! * **[`Access::WriteNew`]** — materializing a freshly allocated page (the
//!   first object placed on a page, or a collector copy target). No disk
//!   read is needed because the page has no prior contents; the frame is
//!   installed dirty. Eviction costs still apply.
//! * **Invalidation** — after a partition is collected its old pages hold
//!   only garbage; [`BufferPool::invalidate`] drops such frames without
//!   write-back, since their contents will never be read again.
//!
//! All disk operations are charged to the currently active [`IoContext`].

use crate::lru::{Inserted, LruCache};
use crate::stats::{IoContext, IoStats};
use pgc_types::PageId;

/// The kind of page access being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read the page's current contents (faults it in on a miss).
    Read,
    /// Modify the page's current contents (faults it in on a miss, then
    /// dirties it).
    Write,
    /// Materialize the page with entirely new contents (no fault-in read;
    /// dirties it).
    WriteNew,
}

/// An LRU write-back page buffer with context-attributed disk accounting.
///
/// ```
/// use pgc_buffer::{Access, BufferPool, IoContext};
/// use pgc_types::PageId;
///
/// let mut pool = BufferPool::new(2);
/// pool.access(PageId(0), Access::Read);     // miss: 1 app read
/// pool.access(PageId(0), Access::Write);    // hit, dirties page 0
/// pool.set_context(IoContext::Collector);
/// pool.access(PageId(1), Access::Read);     // miss: 1 gc read
/// pool.access(PageId(2), Access::Read);     // miss: evicts dirty page 0
///                                           //   => 1 gc write + 1 gc read
/// let s = pool.stats();
/// assert_eq!(s.app_disk_reads, 1);
/// assert_eq!(s.gc_disk_reads, 2);
/// assert_eq!(s.gc_disk_writes, 1);
/// ```
#[derive(Debug, Clone)]
pub struct BufferPool {
    cache: LruCache,
    stats: IoStats,
    context: IoContext,
}

impl BufferPool {
    /// Creates a pool with `frames` page frames (must be positive).
    pub fn new(frames: usize) -> Self {
        Self {
            cache: LruCache::new(frames),
            stats: IoStats::default(),
            context: IoContext::Application,
        }
    }

    /// The currently active accounting context.
    #[inline]
    pub fn context(&self) -> IoContext {
        self.context
    }

    /// Switches the accounting context (application vs collector).
    #[inline]
    pub fn set_context(&mut self, ctx: IoContext) {
        self.context = ctx;
    }

    /// Runs `f` with the context temporarily switched to `ctx`.
    pub fn with_context<R>(&mut self, ctx: IoContext, f: impl FnOnce(&mut Self) -> R) -> R {
        let saved = self.context;
        self.context = ctx;
        let out = f(self);
        self.context = saved;
        out
    }

    /// Performs one page access, charging any disk traffic it implies.
    pub fn access(&mut self, page: PageId, kind: Access) {
        let dirty = !matches!(kind, Access::Read);
        if self.cache.touch(page, dirty) {
            self.stats.hits += 1;
            return;
        }
        self.stats.misses += 1;
        // Fault-in read, except for freshly materialized pages.
        if !matches!(kind, Access::WriteNew) {
            self.stats.count_disk_read(self.context);
        }
        if let Inserted::Evicted { dirty: true, .. } = self.cache.insert(page, dirty) {
            self.stats.count_disk_write(self.context);
        }
    }

    /// Accesses every page in `pages` (an object's page span) with the same
    /// access kind.
    pub fn access_span(&mut self, pages: impl IntoIterator<Item = PageId>, kind: Access) {
        for p in pages {
            self.access(p, kind);
        }
    }

    /// Drops frames for the given pages without write-back. Used when a
    /// partition has been collected and its old pages can never be read
    /// again. Costs no disk traffic.
    pub fn invalidate(&mut self, pages: impl IntoIterator<Item = PageId>) {
        for p in pages {
            self.cache.remove(p);
        }
    }

    /// Writes back every dirty page (one disk write each, charged to the
    /// current context) and cleans it. Returns the number of pages written.
    /// The paper's runs never flush mid-simulation; this exists for
    /// completeness and shutdown.
    pub fn flush_all(&mut self) -> u64 {
        let dirty = self.cache.dirty_pages();
        for &p in &dirty {
            self.stats.count_disk_write(self.context);
            self.cache.clean(p);
        }
        dirty.len() as u64
    }

    /// True if `page` is currently buffered.
    #[inline]
    pub fn is_resident(&self, page: PageId) -> bool {
        self.cache.contains(page)
    }

    /// Number of resident pages.
    #[inline]
    pub fn resident_pages(&self) -> usize {
        self.cache.len()
    }

    /// Frame capacity of the pool.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Snapshot of the cumulative statistics.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Debug invariant check (delegates to the LRU structure).
    pub fn check_invariants(&self) {
        self.cache.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_miss_then_hit() {
        let mut pool = BufferPool::new(4);
        pool.access(PageId(1), Access::Read);
        pool.access(PageId(1), Access::Read);
        let s = pool.stats();
        assert_eq!(s.app_disk_reads, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.total_ios(), 1);
    }

    #[test]
    fn write_miss_faults_in_page() {
        let mut pool = BufferPool::new(4);
        pool.access(PageId(1), Access::Write);
        let s = pool.stats();
        // Write-back cache must read the page before modifying part of it.
        assert_eq!(s.app_disk_reads, 1);
        assert_eq!(s.app_disk_writes, 0);
    }

    #[test]
    fn write_new_skips_fault_in() {
        let mut pool = BufferPool::new(4);
        pool.access(PageId(1), Access::WriteNew);
        let s = pool.stats();
        assert_eq!(s.app_disk_reads, 0);
        assert_eq!(s.app_disk_writes, 0);
        assert_eq!(s.misses, 1);
        // The page is resident and dirty: evicting it costs a write.
        pool.access(PageId(2), Access::Read);
        pool.access(PageId(3), Access::Read);
        pool.access(PageId(4), Access::Read);
        pool.access(PageId(5), Access::Read); // evicts dirty page 1
        assert_eq!(pool.stats().app_disk_writes, 1);
    }

    #[test]
    fn dirty_eviction_costs_a_write_clean_does_not() {
        let mut pool = BufferPool::new(2);
        pool.access(PageId(1), Access::Read); // clean
        pool.access(PageId(2), Access::Write); // dirty
        pool.access(PageId(3), Access::Read); // evicts 1 (clean): no write
        assert_eq!(pool.stats().app_disk_writes, 0);
        pool.access(PageId(4), Access::Read); // evicts 2 (dirty): 1 write
        assert_eq!(pool.stats().app_disk_writes, 1);
    }

    #[test]
    fn eviction_charged_to_current_context() {
        let mut pool = BufferPool::new(1);
        pool.access(PageId(1), Access::Write); // app: 1 read, page dirty
        pool.set_context(IoContext::Collector);
        pool.access(PageId(2), Access::Read); // gc: evicts dirty page 1
        let s = pool.stats();
        assert_eq!(s.app_disk_reads, 1);
        assert_eq!(s.app_disk_writes, 0);
        assert_eq!(s.gc_disk_reads, 1);
        assert_eq!(s.gc_disk_writes, 1);
    }

    #[test]
    fn with_context_restores() {
        let mut pool = BufferPool::new(2);
        pool.with_context(IoContext::Collector, |p| {
            p.access(PageId(1), Access::Read);
        });
        assert_eq!(pool.context(), IoContext::Application);
        assert_eq!(pool.stats().gc_disk_reads, 1);
        assert_eq!(pool.stats().app_disk_reads, 0);
    }

    #[test]
    fn invalidate_avoids_write_back() {
        let mut pool = BufferPool::new(2);
        pool.access(PageId(1), Access::Write);
        pool.invalidate([PageId(1)]);
        assert!(!pool.is_resident(PageId(1)));
        // Filling the buffer now evicts nothing dirty.
        pool.access(PageId(2), Access::Read);
        pool.access(PageId(3), Access::Read);
        pool.access(PageId(4), Access::Read);
        assert_eq!(pool.stats().app_disk_writes, 0);
    }

    #[test]
    fn flush_all_writes_each_dirty_page_once() {
        let mut pool = BufferPool::new(4);
        pool.access(PageId(1), Access::Write);
        pool.access(PageId(2), Access::WriteNew);
        pool.access(PageId(3), Access::Read);
        assert_eq!(pool.flush_all(), 2);
        assert_eq!(pool.stats().app_disk_writes, 2);
        // Second flush is a no-op: pages were cleaned.
        assert_eq!(pool.flush_all(), 0);
        assert_eq!(pool.stats().app_disk_writes, 2);
    }

    #[test]
    fn access_span_touches_every_page() {
        let mut pool = BufferPool::new(16);
        pool.access_span((0..8).map(PageId), Access::WriteNew);
        assert_eq!(pool.resident_pages(), 8);
        assert_eq!(pool.stats().misses, 8);
        pool.access_span((0..8).map(PageId), Access::Read);
        assert_eq!(pool.stats().hits, 8);
    }

    #[test]
    fn locality_reduces_io() {
        // Sequential re-scans of a working set that fits: only cold misses.
        let mut pool = BufferPool::new(8);
        for _ in 0..10 {
            pool.access_span((0..8).map(PageId), Access::Read);
        }
        assert_eq!(pool.stats().app_disk_reads, 8);
        // Working set larger than the buffer: LRU thrashes on every access.
        let mut pool = BufferPool::new(8);
        for _ in 0..10 {
            pool.access_span((0..9).map(PageId), Access::Read);
        }
        assert_eq!(pool.stats().app_disk_reads, 90);
    }
}
