//! Translating page I/O counts into estimated wall-clock time.
//!
//! The paper's metric is the *count* of disk operations, and it notes that
//! "more detailed cost models can be built that would derive actual disk
//! costs in terms of head seek, rotational delay, and transfer times".
//! This module is that refinement: a parameterized disk model that prices
//! an [`IoStats`] in seconds, with presets for a circa-1993 drive (the
//! paper's DECstation era) and a modern 7200 RPM disk.
//!
//! The model deliberately stays simple — every page I/O pays an average
//! seek, half a rotation, and the transfer of one page — because the
//! simulator does not track on-disk adjacency. It is an estimator for
//! comparing policies in time units, not a disk simulator.

use crate::stats::IoStats;

/// A disk characterized by seek, rotation, and transfer parameters.
///
/// ```
/// use pgc_buffer::DiskModel;
///
/// let disk = DiskModel::circa_1993(8192);
/// // The paper's MostGarbage run performed ~34k page I/Os: roughly
/// // twelve minutes of raw disk time on period hardware.
/// let minutes = disk.seconds_for(34_370) / 60.0;
/// assert!(minutes > 5.0 && minutes < 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average seek time in milliseconds.
    pub avg_seek_ms: f64,
    /// Full-rotation time in milliseconds (average rotational latency is
    /// half of this).
    pub rotation_ms: f64,
    /// Sustained transfer rate in megabytes per second.
    pub transfer_mb_per_s: f64,
    /// Page size in bytes (what one I/O transfers).
    pub page_size: usize,
}

impl DiskModel {
    /// A drive of the paper's era (~1993, e.g. a DEC RZ-series SCSI disk):
    /// ~12 ms average seek, 5400 RPM, ~2.5 MB/s sustained.
    pub fn circa_1993(page_size: usize) -> Self {
        Self {
            avg_seek_ms: 12.0,
            rotation_ms: 60_000.0 / 5_400.0,
            transfer_mb_per_s: 2.5,
            page_size,
        }
    }

    /// A modern 7200 RPM hard disk: ~8.5 ms average seek, ~160 MB/s.
    pub fn modern_hdd(page_size: usize) -> Self {
        Self {
            avg_seek_ms: 8.5,
            rotation_ms: 60_000.0 / 7_200.0,
            transfer_mb_per_s: 160.0,
            page_size,
        }
    }

    /// Average cost of one page I/O in milliseconds.
    pub fn ms_per_io(&self) -> f64 {
        let positioning = self.avg_seek_ms + self.rotation_ms / 2.0;
        let transfer = self.page_size as f64 / (self.transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0;
        positioning + transfer
    }

    /// Estimated seconds for `ios` page I/Os.
    pub fn seconds_for(&self, ios: u64) -> f64 {
        ios as f64 * self.ms_per_io() / 1000.0
    }

    /// Estimated seconds to perform all the disk traffic in `stats`,
    /// split `(application, collector)`.
    pub fn seconds_split(&self, stats: &IoStats) -> (f64, f64) {
        (
            self.seconds_for(stats.app_ios()),
            self.seconds_for(stats.gc_ios()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_presets_are_ordered_sensibly() {
        let old = DiskModel::circa_1993(8192);
        let new = DiskModel::modern_hdd(8192);
        assert!(old.ms_per_io() > new.ms_per_io());
        // 1993: ~12 + 5.6 + 3.1 ≈ 21 ms per 8 KB page I/O.
        assert!(
            (15.0..30.0).contains(&old.ms_per_io()),
            "{}",
            old.ms_per_io()
        );
        // Modern HDD: ~8.5 + 4.2 + 0.05 ≈ 13 ms.
        assert!(
            (10.0..16.0).contains(&new.ms_per_io()),
            "{}",
            new.ms_per_io()
        );
    }

    #[test]
    fn seconds_scale_linearly() {
        let d = DiskModel::circa_1993(8192);
        let one = d.seconds_for(1);
        assert!((d.seconds_for(1000) - 1000.0 * one).abs() < 1e-9);
        assert_eq!(d.seconds_for(0), 0.0);
    }

    #[test]
    fn split_partitions_app_and_gc() {
        let d = DiskModel::modern_hdd(8192);
        let stats = IoStats {
            app_disk_reads: 80,
            app_disk_writes: 20,
            gc_disk_reads: 30,
            gc_disk_writes: 20,
            hits: 0,
            misses: 0,
        };
        let (app, gc) = d.seconds_split(&stats);
        assert!((app - d.seconds_for(100)).abs() < 1e-12);
        assert!((gc - d.seconds_for(50)).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_run_takes_minutes_on_1993_hardware() {
        // The paper's MostGarbage run: ~34k total I/Os. On a 1993 disk
        // that is ~12 minutes of pure I/O — consistent with simulation
        // being the only affordable methodology at the time.
        let d = DiskModel::circa_1993(8192);
        let secs = d.seconds_for(34_370);
        assert!((300.0..1500.0).contains(&secs), "{secs}");
    }
}
