//! Disk I/O accounting, attributed by context.
//!
//! Table 2 of the paper reports application I/Os, collector I/Os, and their
//! total; the buffer pool therefore tags every disk read and write with the
//! [`IoContext`] active when it happened. Evictions are charged to the
//! context that *triggered* them — if the collector faults in a page and
//! thereby evicts a dirty application page, the resulting disk write is
//! collector work, exactly as it would be in a real system.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Who is performing I/O right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IoContext {
    /// The application (object creation, traversal, mutation).
    #[default]
    Application,
    /// The garbage collector (copying, remembered-set forwarding).
    Collector,
}

impl fmt::Display for IoContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoContext::Application => write!(f, "application"),
            IoContext::Collector => write!(f, "collector"),
        }
    }
}

/// Cumulative disk and cache statistics for one buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Disk page reads performed while the application was running.
    pub app_disk_reads: u64,
    /// Disk page writes (evictions of dirty pages, flushes) charged to the
    /// application.
    pub app_disk_writes: u64,
    /// Disk page reads performed by the collector.
    pub gc_disk_reads: u64,
    /// Disk page writes charged to the collector.
    pub gc_disk_writes: u64,
    /// Buffer hits (no disk traffic), all contexts.
    pub hits: u64,
    /// Buffer misses (each implies one disk read), all contexts.
    pub misses: u64,
}

impl IoStats {
    /// Total disk operations attributed to the application.
    #[inline]
    pub fn app_ios(&self) -> u64 {
        self.app_disk_reads + self.app_disk_writes
    }

    /// Total disk operations attributed to the collector.
    #[inline]
    pub fn gc_ios(&self) -> u64 {
        self.gc_disk_reads + self.gc_disk_writes
    }

    /// Grand total of disk operations (the paper's "Total I/Os").
    #[inline]
    pub fn total_ios(&self) -> u64 {
        self.app_ios() + self.gc_ios()
    }

    /// Total disk operations for one context.
    #[inline]
    pub fn ios(&self, ctx: IoContext) -> u64 {
        match ctx {
            IoContext::Application => self.app_ios(),
            IoContext::Collector => self.gc_ios(),
        }
    }

    /// Buffer hit rate in `[0, 1]`; `None` before any access.
    pub fn hit_rate(&self) -> Option<f64> {
        let accesses = self.hits + self.misses;
        (accesses > 0).then(|| self.hits as f64 / accesses as f64)
    }

    /// Records one disk read in the given context.
    #[inline]
    pub(crate) fn count_disk_read(&mut self, ctx: IoContext) {
        match ctx {
            IoContext::Application => self.app_disk_reads += 1,
            IoContext::Collector => self.gc_disk_reads += 1,
        }
    }

    /// Records one disk write in the given context.
    #[inline]
    pub(crate) fn count_disk_write(&mut self, ctx: IoContext) {
        match ctx {
            IoContext::Application => self.app_disk_writes += 1,
            IoContext::Collector => self.gc_disk_writes += 1,
        }
    }
}

impl Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            app_disk_reads: self.app_disk_reads + rhs.app_disk_reads,
            app_disk_writes: self.app_disk_writes + rhs.app_disk_writes,
            gc_disk_reads: self.gc_disk_reads + rhs.gc_disk_reads,
            gc_disk_writes: self.gc_disk_writes + rhs.gc_disk_writes,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
        }
    }
}

impl AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "app r/w {}/{}, gc r/w {}/{}, total {} (hit rate {:.1}%)",
            self.app_disk_reads,
            self.app_disk_writes,
            self.gc_disk_reads,
            self.gc_disk_writes,
            self.total_ios(),
            self.hit_rate().unwrap_or(0.0) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_partition_by_context() {
        let mut s = IoStats::default();
        s.count_disk_read(IoContext::Application);
        s.count_disk_read(IoContext::Application);
        s.count_disk_write(IoContext::Application);
        s.count_disk_read(IoContext::Collector);
        s.count_disk_write(IoContext::Collector);
        s.count_disk_write(IoContext::Collector);
        assert_eq!(s.app_ios(), 3);
        assert_eq!(s.gc_ios(), 3);
        assert_eq!(s.total_ios(), 6);
        assert_eq!(s.ios(IoContext::Application), 3);
        assert_eq!(s.ios(IoContext::Collector), 3);
    }

    #[test]
    fn hit_rate_none_before_accesses() {
        assert!(IoStats::default().hit_rate().is_none());
        let s = IoStats {
            hits: 3,
            misses: 1,
            ..IoStats::default()
        };
        assert!((s.hit_rate().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn addition_is_fieldwise() {
        let a = IoStats {
            app_disk_reads: 1,
            app_disk_writes: 2,
            gc_disk_reads: 3,
            gc_disk_writes: 4,
            hits: 5,
            misses: 6,
        };
        let mut b = a;
        b += a;
        assert_eq!(b.app_disk_reads, 2);
        assert_eq!(b.gc_disk_writes, 8);
        assert_eq!(b.total_ios(), 2 * a.total_ios());
    }

    #[test]
    fn display_is_informative() {
        let s = IoStats {
            hits: 1,
            misses: 1,
            app_disk_reads: 1,
            ..IoStats::default()
        };
        let txt = s.to_string();
        assert!(txt.contains("total 1"));
        assert!(txt.contains("50.0%"));
    }
}
