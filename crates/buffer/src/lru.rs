//! A fixed-capacity O(1) LRU page table.
//!
//! Implemented as a slab of frames threaded onto an intrusive doubly-linked
//! recency list (head = most recently used) plus a `HashMap` from
//! [`PageId`] to frame index. All operations — lookup, touch, insert with
//! eviction, and removal — are O(1).
//!
//! This module knows nothing about disks or I/O accounting; it is the pure
//! replacement-policy data structure that [`crate::pool::BufferPool`] builds
//! on.

use pgc_types::PageId;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Frame {
    page: PageId,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// What `insert` did with the incoming page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inserted {
    /// There was a free frame; nothing was evicted.
    NoEviction,
    /// The least-recently-used page was evicted to make room. The flag is
    /// its dirty bit (a dirty eviction costs a disk write under write-back).
    Evicted {
        /// The page that was evicted.
        page: PageId,
        /// Whether the evicted page was dirty.
        dirty: bool,
    },
}

/// Fixed-capacity LRU set of pages with dirty bits.
#[derive(Debug, Clone)]
pub struct LruCache {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
    capacity: usize,
}

impl LruCache {
    /// Creates a cache with room for `capacity` pages. `capacity` must be
    /// positive.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Self {
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity * 2),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    /// Number of resident pages.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured frame count.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if `page` is resident.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// If `page` is resident, marks it most-recently-used, ORs in `dirty`,
    /// and returns `true`; otherwise returns `false`.
    pub fn touch(&mut self, page: PageId, dirty: bool) -> bool {
        let Some(&idx) = self.map.get(&page) else {
            return false;
        };
        self.frames[idx].dirty |= dirty;
        self.move_to_front(idx);
        true
    }

    /// Inserts a non-resident page as most-recently-used, evicting the LRU
    /// page if the cache is full.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `page` is already resident — callers must
    /// `touch` first.
    pub fn insert(&mut self, page: PageId, dirty: bool) -> Inserted {
        debug_assert!(
            !self.map.contains_key(&page),
            "insert of resident page {page}"
        );
        let evicted = if self.map.len() == self.capacity {
            let victim_idx = self.tail;
            let victim = self.frames[victim_idx].page;
            let was_dirty = self.frames[victim_idx].dirty;
            self.unlink(victim_idx);
            self.map.remove(&victim);
            self.free.push(victim_idx);
            Some((victim, was_dirty))
        } else {
            None
        };

        let idx = if let Some(free_idx) = self.free.pop() {
            self.frames[free_idx] = Frame {
                page,
                dirty,
                prev: NIL,
                next: NIL,
            };
            free_idx
        } else {
            self.frames.push(Frame {
                page,
                dirty,
                prev: NIL,
                next: NIL,
            });
            self.frames.len() - 1
        };
        self.map.insert(page, idx);
        self.link_front(idx);

        match evicted {
            Some((page, dirty)) => Inserted::Evicted { page, dirty },
            None => Inserted::NoEviction,
        }
    }

    /// Removes `page` if resident, returning its dirty bit.
    pub fn remove(&mut self, page: PageId) -> Option<bool> {
        let idx = self.map.remove(&page)?;
        let dirty = self.frames[idx].dirty;
        self.unlink(idx);
        self.free.push(idx);
        Some(dirty)
    }

    /// Clears `page`'s dirty bit (after an explicit write-back). Returns
    /// `true` if the page was resident.
    pub fn clean(&mut self, page: PageId) -> bool {
        match self.map.get(&page) {
            Some(&idx) => {
                self.frames[idx].dirty = false;
                true
            }
            None => false,
        }
    }

    /// Iterates over resident pages from most- to least-recently-used,
    /// yielding `(page, dirty)`.
    pub fn iter_mru(&self) -> impl Iterator<Item = (PageId, bool)> + '_ {
        MruIter {
            cache: self,
            cursor: self.head,
        }
    }

    /// All resident dirty pages, in MRU order.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        self.iter_mru()
            .filter_map(|(p, d)| d.then_some(p))
            .collect()
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.link_front(idx);
    }

    fn link_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    /// Debug invariant check: list and map agree, list is well-formed.
    /// Used by property tests.
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        let mut cursor = self.head;
        let mut prev = NIL;
        while cursor != NIL {
            let f = &self.frames[cursor];
            assert_eq!(f.prev, prev, "prev link broken at {}", f.page);
            assert_eq!(
                self.map.get(&f.page),
                Some(&cursor),
                "map does not point at frame for {}",
                f.page
            );
            prev = cursor;
            cursor = f.next;
            seen += 1;
            assert!(seen <= self.map.len(), "cycle in recency list");
        }
        assert_eq!(seen, self.map.len(), "list length != map length");
        assert_eq!(self.tail, prev, "tail does not match last node");
        assert!(self.map.len() <= self.capacity, "over capacity");
    }
}

struct MruIter<'a> {
    cache: &'a LruCache,
    cursor: usize,
}

impl Iterator for MruIter<'_> {
    type Item = (PageId, bool);
    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let f = &self.cache.frames[self.cursor];
        self.cursor = f.next;
        Some((f.page, f.dirty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(cache: &LruCache) -> Vec<u64> {
        cache.iter_mru().map(|(p, _)| p.index()).collect()
    }

    #[test]
    fn insert_until_full_then_evict_lru() {
        let mut c = LruCache::new(3);
        assert_eq!(c.insert(PageId(1), false), Inserted::NoEviction);
        assert_eq!(c.insert(PageId(2), false), Inserted::NoEviction);
        assert_eq!(c.insert(PageId(3), false), Inserted::NoEviction);
        assert_eq!(pages(&c), vec![3, 2, 1]);
        // Page 1 is LRU and clean.
        assert_eq!(
            c.insert(PageId(4), false),
            Inserted::Evicted {
                page: PageId(1),
                dirty: false
            }
        );
        assert_eq!(pages(&c), vec![4, 3, 2]);
        c.check_invariants();
    }

    #[test]
    fn touch_promotes_and_accumulates_dirty() {
        let mut c = LruCache::new(3);
        c.insert(PageId(1), false);
        c.insert(PageId(2), false);
        c.insert(PageId(3), false);
        assert!(c.touch(PageId(1), true));
        assert_eq!(pages(&c), vec![1, 3, 2]);
        // 2 is now LRU; it is clean, 1 is dirty.
        assert_eq!(
            c.insert(PageId(4), false),
            Inserted::Evicted {
                page: PageId(2),
                dirty: false
            }
        );
        // Dirty bit sticks even after a clean touch.
        assert!(c.touch(PageId(1), false));
        c.insert(PageId(5), false); // evicts 3
        c.insert(PageId(6), false); // evicts 4
        assert_eq!(
            c.insert(PageId(7), false),
            Inserted::Evicted {
                page: PageId(1),
                dirty: true
            }
        );
        c.check_invariants();
    }

    #[test]
    fn touch_missing_returns_false() {
        let mut c = LruCache::new(2);
        assert!(!c.touch(PageId(9), true));
        c.insert(PageId(9), false);
        assert!(c.touch(PageId(9), false));
    }

    #[test]
    fn remove_returns_dirty_bit_and_frees_slot() {
        let mut c = LruCache::new(2);
        c.insert(PageId(1), true);
        c.insert(PageId(2), false);
        assert_eq!(c.remove(PageId(1)), Some(true));
        assert_eq!(c.remove(PageId(1)), None);
        assert_eq!(c.len(), 1);
        // Freed slot is reused without eviction.
        assert_eq!(c.insert(PageId(3), false), Inserted::NoEviction);
        assert_eq!(pages(&c), vec![3, 2]);
        c.check_invariants();
    }

    #[test]
    fn clean_clears_dirty() {
        let mut c = LruCache::new(2);
        c.insert(PageId(1), true);
        assert!(c.clean(PageId(1)));
        assert!(!c.clean(PageId(99)));
        assert!(c.dirty_pages().is_empty());
        c.insert(PageId(2), false);
        assert_eq!(
            c.insert(PageId(3), false),
            Inserted::Evicted {
                page: PageId(1),
                dirty: false
            }
        );
    }

    #[test]
    fn dirty_pages_in_mru_order() {
        let mut c = LruCache::new(4);
        c.insert(PageId(1), true);
        c.insert(PageId(2), false);
        c.insert(PageId(3), true);
        assert_eq!(c.dirty_pages(), vec![PageId(3), PageId(1)]);
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruCache::new(1);
        c.insert(PageId(1), true);
        assert_eq!(
            c.insert(PageId(2), false),
            Inserted::Evicted {
                page: PageId(1),
                dirty: true
            }
        );
        assert_eq!(c.len(), 1);
        assert!(c.contains(PageId(2)));
        c.check_invariants();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::new(0);
    }

    #[test]
    fn long_mixed_sequence_keeps_invariants() {
        let mut c = LruCache::new(8);
        for i in 0..1000u64 {
            let p = PageId(i % 23);
            if !c.touch(p, i % 3 == 0) {
                c.insert(p, i % 3 == 0);
            }
            if i % 7 == 0 {
                c.remove(PageId((i + 5) % 23));
            }
            c.check_invariants();
        }
        assert!(c.len() <= 8);
    }
}
