//! # pgc-buffer
//!
//! The paper's I/O cost model (Sec. 4.2): *"we simulate a database I/O
//! buffer of a particular size, using an LRU policy for page replacement and
//! a write-back scheme for updating pages"*, and the performance metric is
//! the number of disk page I/O operations.
//!
//! [`BufferPool`] implements exactly that: a fixed number of page frames
//! managed with true O(1) LRU replacement, dirty bits, and write-back on
//! eviction. Every disk operation is attributed to the *context* in which it
//! occurred — [`IoContext::Application`] or [`IoContext::Collector`] — which
//! is how Table 2 separates "Application I/Os" from "Collector I/Os".
//!
//! The pool tracks page *identity* only; the simulation never moves actual
//! bytes. That is sufficient because the paper's metric is the count of disk
//! operations, not their contents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod lru;
pub mod pool;
pub mod stats;
pub mod store;
pub mod tiered;

pub use cost::DiskModel;
pub use pool::{Access, BufferPool};
pub use stats::{IoContext, IoStats};
pub use store::{NetStats, PageStore, StoreStats};
pub use tiered::{NetworkModel, TieredPool, TieredStats};
