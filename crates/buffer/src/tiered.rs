//! Two-tier (client/server) page caching — the paper's client/server note.
//!
//! The paper positions itself against Yong/Naughton/Yu's evaluation in
//! *client/server persistent object stores* and notes its cost model
//! "might model network costs for a distributed or client/server
//! database". [`TieredPool`] is that model: a page-server architecture in
//! which the application (and collector) run against a **client cache**,
//! misses are served over the network from the **server buffer**, and
//! server misses go to disk.
//!
//! Cost events:
//!
//! * client hit — free;
//! * client miss — one network transfer (server → client), plus a disk
//!   read if the server buffer misses too;
//! * eviction of a dirty client page — one network write-back (client →
//!   server), dirtying the server copy *without* disk traffic (a whole
//!   page travels, so no read-modify-write is needed);
//! * eviction of a dirty server page — one disk write;
//! * [`Access::WriteNew`] — materializes the page in the client cache with
//!   no fetch.
//!
//! Both tiers are plain LRU. The single-tier [`crate::pool::BufferPool`]
//! remains the paper-faithful model; this one exists for the client/server
//! experiment binary and keeps its own statistics type.

use crate::lru::{Inserted, LruCache};
use crate::pool::Access;
use crate::stats::IoContext;
use pgc_types::PageId;

/// Cumulative costs of a two-tier pool, split by context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TieredStats {
    /// Client-cache hits (free).
    pub client_hits: u64,
    /// Pages fetched server → client (network transfers), per context.
    pub net_reads_app: u64,
    /// Collector-context network fetches.
    pub net_reads_gc: u64,
    /// Dirty client pages written back client → server, per context.
    pub net_writebacks_app: u64,
    /// Collector-context network write-backs.
    pub net_writebacks_gc: u64,
    /// Server-buffer disk reads, per context.
    pub disk_reads_app: u64,
    /// Collector-context disk reads.
    pub disk_reads_gc: u64,
    /// Server-buffer disk writes (dirty server evictions), per context.
    pub disk_writes_app: u64,
    /// Collector-context disk writes.
    pub disk_writes_gc: u64,
}

impl TieredStats {
    /// Total network messages (fetches + write-backs).
    pub fn net_total(&self) -> u64 {
        self.net_reads_app + self.net_reads_gc + self.net_writebacks_app + self.net_writebacks_gc
    }

    /// Total disk operations.
    pub fn disk_total(&self) -> u64 {
        self.disk_reads_app + self.disk_reads_gc + self.disk_writes_app + self.disk_writes_gc
    }

    /// Network messages attributed to one context.
    pub fn net(&self, ctx: IoContext) -> u64 {
        match ctx {
            IoContext::Application => self.net_reads_app + self.net_writebacks_app,
            IoContext::Collector => self.net_reads_gc + self.net_writebacks_gc,
        }
    }

    /// Disk operations attributed to one context.
    pub fn disk(&self, ctx: IoContext) -> u64 {
        match ctx {
            IoContext::Application => self.disk_reads_app + self.disk_writes_app,
            IoContext::Collector => self.disk_reads_gc + self.disk_writes_gc,
        }
    }
}

/// A network link characterized by per-message latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Round-trip latency per page message, milliseconds.
    pub latency_ms: f64,
    /// Throughput in megabytes per second.
    pub mb_per_s: f64,
    /// Page size in bytes.
    pub page_size: usize,
}

impl NetworkModel {
    /// 10 Mbit Ethernet of the paper's era: ~2 ms RPC latency, ~1 MB/s.
    pub fn ethernet_1993(page_size: usize) -> Self {
        Self {
            latency_ms: 2.0,
            mb_per_s: 1.0,
            page_size,
        }
    }

    /// Modern datacenter link: 0.1 ms, ~1 GB/s.
    pub fn datacenter(page_size: usize) -> Self {
        Self {
            latency_ms: 0.1,
            mb_per_s: 1024.0,
            page_size,
        }
    }

    /// Milliseconds per one-page message.
    pub fn ms_per_page(&self) -> f64 {
        self.latency_ms + self.page_size as f64 / (self.mb_per_s * 1024.0 * 1024.0) * 1000.0
    }

    /// Estimated seconds for `messages` page transfers.
    pub fn seconds_for(&self, messages: u64) -> f64 {
        messages as f64 * self.ms_per_page() / 1000.0
    }
}

/// A client cache in front of a server buffer (page-server architecture).
#[derive(Debug, Clone)]
pub struct TieredPool {
    client: LruCache,
    server: LruCache,
    stats: TieredStats,
    context: IoContext,
}

impl TieredPool {
    /// Creates a pool with the given client and server frame counts.
    pub fn new(client_frames: usize, server_frames: usize) -> Self {
        Self {
            client: LruCache::new(client_frames),
            server: LruCache::new(server_frames),
            stats: TieredStats::default(),
            context: IoContext::Application,
        }
    }

    /// The active accounting context.
    pub fn context(&self) -> IoContext {
        self.context
    }

    /// Switches the accounting context.
    pub fn set_context(&mut self, ctx: IoContext) {
        self.context = ctx;
    }

    /// Snapshot of cumulative statistics.
    pub fn stats(&self) -> TieredStats {
        self.stats
    }

    /// True if the page is resident in the client cache.
    pub fn client_resident(&self, page: PageId) -> bool {
        self.client.contains(page)
    }

    /// True if the page is resident in the server buffer.
    pub fn server_resident(&self, page: PageId) -> bool {
        self.server.contains(page)
    }

    fn count_net_read(&mut self) {
        match self.context {
            IoContext::Application => self.stats.net_reads_app += 1,
            IoContext::Collector => self.stats.net_reads_gc += 1,
        }
    }

    fn count_net_writeback(&mut self) {
        match self.context {
            IoContext::Application => self.stats.net_writebacks_app += 1,
            IoContext::Collector => self.stats.net_writebacks_gc += 1,
        }
    }

    fn count_disk_read(&mut self) {
        match self.context {
            IoContext::Application => self.stats.disk_reads_app += 1,
            IoContext::Collector => self.stats.disk_reads_gc += 1,
        }
    }

    fn count_disk_write(&mut self) {
        match self.context {
            IoContext::Application => self.stats.disk_writes_app += 1,
            IoContext::Collector => self.stats.disk_writes_gc += 1,
        }
    }

    /// Installs `page` into the server buffer (dirty or clean), paying a
    /// disk write if a dirty server page is evicted.
    fn server_install(&mut self, page: PageId, dirty: bool) {
        if self.server.touch(page, dirty) {
            return;
        }
        if let Inserted::Evicted { dirty: true, .. } = self.server.insert(page, dirty) {
            self.count_disk_write();
        }
    }

    /// Fetches `page` into the server buffer if absent (disk read), then
    /// returns (it is now server-resident and recently used).
    fn server_fetch(&mut self, page: PageId) {
        if self.server.touch(page, false) {
            return;
        }
        self.count_disk_read();
        if let Inserted::Evicted { dirty: true, .. } = self.server.insert(page, false) {
            self.count_disk_write();
        }
    }

    /// Installs `page` into the client cache, handling dirty eviction
    /// (network write-back to the server, dirtying the server copy).
    fn client_install(&mut self, page: PageId, dirty: bool) {
        if let Inserted::Evicted {
            page: victim,
            dirty: true,
        } = self.client.insert(page, dirty)
        {
            self.count_net_writeback();
            self.server_install(victim, true);
        }
    }

    /// Performs one page access.
    pub fn access(&mut self, page: PageId, kind: Access) {
        let dirty = !matches!(kind, Access::Read);
        if self.client.touch(page, dirty) {
            self.stats.client_hits += 1;
            return;
        }
        if matches!(kind, Access::WriteNew) {
            // Fresh page: materialized client-side, no fetch.
            self.client_install(page, true);
            return;
        }
        // Client miss: fetch from the server over the network.
        self.count_net_read();
        self.server_fetch(page);
        self.client_install(page, dirty);
    }

    /// Accesses every page of a span.
    pub fn access_span(&mut self, pages: impl IntoIterator<Item = PageId>, kind: Access) {
        for p in pages {
            self.access(p, kind);
        }
    }

    /// Drops pages from both tiers without write-back (collected-partition
    /// invalidation).
    pub fn invalidate(&mut self, pages: impl IntoIterator<Item = PageId>) {
        for p in pages {
            self.client.remove(p);
            self.server.remove(p);
        }
    }

    /// Debug invariants for both tiers.
    pub fn check_invariants(&self) {
        self.client.check_invariants();
        self.server.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> TieredPool {
        TieredPool::new(2, 4)
    }

    #[test]
    fn client_hit_is_free() {
        let mut p = pool();
        p.access(PageId(1), Access::Read); // miss: net + disk
        p.access(PageId(1), Access::Read); // hit
        let s = p.stats();
        assert_eq!(s.client_hits, 1);
        assert_eq!(s.net_reads_app, 1);
        assert_eq!(s.disk_reads_app, 1);
    }

    #[test]
    fn server_hit_avoids_disk() {
        let mut p = pool();
        p.access(PageId(1), Access::Read); // disk read, in both tiers
        p.access(PageId(2), Access::Read);
        p.access(PageId(3), Access::Read); // evicts 1 from client (clean), server keeps it
        assert!(!p.client_resident(PageId(1)));
        assert!(p.server_resident(PageId(1)));
        p.access(PageId(1), Access::Read); // client miss, server hit
        let s = p.stats();
        assert_eq!(s.net_reads_app, 4);
        assert_eq!(
            s.disk_reads_app, 3,
            "the re-fetch of page 1 hit the server buffer"
        );
    }

    #[test]
    fn write_new_skips_fetch_entirely() {
        let mut p = pool();
        p.access(PageId(7), Access::WriteNew);
        let s = p.stats();
        assert_eq!(s.net_total(), 0);
        assert_eq!(s.disk_total(), 0);
        assert!(p.client_resident(PageId(7)));
    }

    #[test]
    fn dirty_client_eviction_writes_back_over_network_not_disk() {
        let mut p = pool();
        p.access(PageId(1), Access::Write); // dirty in client
        p.access(PageId(2), Access::Read);
        p.access(PageId(3), Access::Read); // evicts dirty 1 -> net writeback
        let s = p.stats();
        assert_eq!(s.net_writebacks_app, 1);
        assert_eq!(s.disk_writes_app, 0, "server absorbed the page");
        assert!(p.server_resident(PageId(1)));
    }

    #[test]
    fn dirty_server_eviction_costs_a_disk_write() {
        let mut p = TieredPool::new(1, 2);
        p.access(PageId(1), Access::Write);
        p.access(PageId(2), Access::Read); // client evicts dirty 1 -> server dirty
        p.access(PageId(3), Access::Read); // server now holds {1(d),2,3}? cap 2:
                                           // inserting 3 evicts LRU
        p.access(PageId(4), Access::Read);
        let s = p.stats();
        assert!(
            s.disk_writes_app >= 1,
            "dirty page 1 eventually hit disk: {s:?}"
        );
    }

    #[test]
    fn invalidate_clears_both_tiers_without_cost() {
        let mut p = pool();
        p.access(PageId(1), Access::Write);
        let before = p.stats();
        p.invalidate([PageId(1)]);
        assert!(!p.client_resident(PageId(1)));
        assert!(!p.server_resident(PageId(1)));
        assert_eq!(p.stats(), before);
    }

    #[test]
    fn contexts_split_costs() {
        let mut p = pool();
        p.access(PageId(1), Access::Read);
        p.set_context(IoContext::Collector);
        p.access(PageId(2), Access::Read);
        let s = p.stats();
        assert_eq!(s.net(IoContext::Application), 1);
        assert_eq!(s.net(IoContext::Collector), 1);
        assert_eq!(s.disk(IoContext::Collector), 1);
    }

    #[test]
    fn network_model_prices_messages() {
        let old = NetworkModel::ethernet_1993(8192);
        let new = NetworkModel::datacenter(8192);
        assert!(old.ms_per_page() > new.ms_per_page());
        // 1993 Ethernet: ~2 + 7.8 ≈ 10 ms per 8 KB page.
        assert!((5.0..15.0).contains(&old.ms_per_page()));
        assert!((new.seconds_for(1000) - 1000.0 * new.ms_per_page() / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn invariants_hold_through_mixed_traffic() {
        let mut p = TieredPool::new(3, 5);
        for i in 0..500u64 {
            let kind = match i % 3 {
                0 => Access::Read,
                1 => Access::Write,
                _ => Access::WriteNew,
            };
            p.access(PageId(i % 11), kind);
            p.check_invariants();
        }
    }
}
