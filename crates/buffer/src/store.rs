//! A unified front over the single-tier and client/server page caches.
//!
//! The database takes a [`PageStore`] so a simulation can run either under
//! the paper's cost model (one LRU buffer, disk I/O only) or under the
//! client/server model ([`crate::tiered`]) without the object layer
//! knowing the difference. Statistics are reported uniformly as
//! [`StoreStats`]: disk traffic in the familiar [`IoStats`] shape plus
//! network counters that stay zero in single-tier mode.

use crate::pool::{Access, BufferPool};
use crate::stats::{IoContext, IoStats};
use crate::tiered::TieredPool;
use pgc_types::PageId;

/// Network message counters for the client/server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Server → client page fetches in application context.
    pub app_reads: u64,
    /// Client → server dirty-page write-backs in application context.
    pub app_writebacks: u64,
    /// Collector-context fetches.
    pub gc_reads: u64,
    /// Collector-context write-backs.
    pub gc_writebacks: u64,
}

impl NetStats {
    /// Total network messages.
    pub fn total(&self) -> u64 {
        self.app_reads + self.app_writebacks + self.gc_reads + self.gc_writebacks
    }

    /// Messages attributed to one context.
    pub fn ios(&self, ctx: IoContext) -> u64 {
        match ctx {
            IoContext::Application => self.app_reads + self.app_writebacks,
            IoContext::Collector => self.gc_reads + self.gc_writebacks,
        }
    }
}

/// Unified statistics: disk I/O plus (possibly zero) network traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Disk page operations (the paper's metric).
    pub disk: IoStats,
    /// Network page messages (zero for the single-tier store).
    pub net: NetStats,
}

/// Either the paper's single buffer or a client/server pair.
#[derive(Debug, Clone)]
pub enum PageStore {
    /// One LRU write-back buffer (the paper's model).
    Single(BufferPool),
    /// Client cache in front of a server buffer.
    Tiered(TieredPool),
}

impl PageStore {
    /// Creates the paper's single-tier store.
    pub fn single(frames: usize) -> Self {
        PageStore::Single(BufferPool::new(frames))
    }

    /// Creates a client/server store.
    pub fn tiered(client_frames: usize, server_frames: usize) -> Self {
        PageStore::Tiered(TieredPool::new(client_frames, server_frames))
    }

    /// The active accounting context.
    pub fn context(&self) -> IoContext {
        match self {
            PageStore::Single(p) => p.context(),
            PageStore::Tiered(p) => p.context(),
        }
    }

    /// Switches the accounting context.
    pub fn set_context(&mut self, ctx: IoContext) {
        match self {
            PageStore::Single(p) => p.set_context(ctx),
            PageStore::Tiered(p) => p.set_context(ctx),
        }
    }

    /// Performs one page access.
    pub fn access(&mut self, page: PageId, kind: Access) {
        match self {
            PageStore::Single(p) => p.access(page, kind),
            PageStore::Tiered(p) => p.access(page, kind),
        }
    }

    /// Accesses every page of a span.
    pub fn access_span(&mut self, pages: impl IntoIterator<Item = PageId>, kind: Access) {
        for p in pages {
            self.access(p, kind);
        }
    }

    /// Drops frames without write-back.
    pub fn invalidate(&mut self, pages: impl IntoIterator<Item = PageId>) {
        match self {
            PageStore::Single(p) => p.invalidate(pages),
            PageStore::Tiered(p) => p.invalidate(pages),
        }
    }

    /// Unified statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        match self {
            PageStore::Single(p) => StoreStats {
                disk: p.stats(),
                net: NetStats::default(),
            },
            PageStore::Tiered(p) => {
                let s = p.stats();
                StoreStats {
                    disk: IoStats {
                        app_disk_reads: s.disk_reads_app,
                        app_disk_writes: s.disk_writes_app,
                        gc_disk_reads: s.disk_reads_gc,
                        gc_disk_writes: s.disk_writes_gc,
                        hits: s.client_hits,
                        misses: s.net_reads_app + s.net_reads_gc,
                    },
                    net: NetStats {
                        app_reads: s.net_reads_app,
                        app_writebacks: s.net_writebacks_app,
                        gc_reads: s.net_reads_gc,
                        gc_writebacks: s.net_writebacks_gc,
                    },
                }
            }
        }
    }

    /// Debug invariant check.
    pub fn check_invariants(&self) {
        match self {
            PageStore::Single(p) => p.check_invariants(),
            PageStore::Tiered(p) => p.check_invariants(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_store_matches_buffer_pool_exactly() {
        let mut store = PageStore::single(2);
        let mut pool = BufferPool::new(2);
        for i in 0..40u64 {
            let kind = if i % 3 == 0 {
                Access::Write
            } else {
                Access::Read
            };
            store.access(PageId(i % 5), kind);
            pool.access(PageId(i % 5), kind);
        }
        let s = store.stats();
        assert_eq!(s.disk, pool.stats());
        assert_eq!(s.net.total(), 0);
    }

    #[test]
    fn tiered_store_reports_network_traffic() {
        let mut store = PageStore::tiered(1, 4);
        store.access(PageId(1), Access::Write);
        store.access(PageId(2), Access::Read); // evicts dirty 1 over the net
        let s = store.stats();
        assert_eq!(s.net.app_reads, 2);
        assert_eq!(s.net.app_writebacks, 1);
        assert_eq!(s.disk.app_disk_reads, 2);
        assert_eq!(s.disk.app_disk_writes, 0);
        assert_eq!(s.net.ios(IoContext::Application), 3);
    }

    #[test]
    fn context_switching_is_uniform() {
        for mut store in [PageStore::single(4), PageStore::tiered(2, 4)] {
            assert_eq!(store.context(), IoContext::Application);
            store.set_context(IoContext::Collector);
            store.access(PageId(9), Access::Read);
            assert_eq!(store.stats().disk.gc_disk_reads, 1);
            store.check_invariants();
        }
    }

    #[test]
    fn invalidate_works_for_both() {
        for mut store in [PageStore::single(4), PageStore::tiered(2, 4)] {
            store.access(PageId(3), Access::Write);
            store.invalidate([PageId(3)]);
            // No write-back cost appears later.
            for i in 10..20u64 {
                store.access(PageId(i), Access::Read);
            }
            let s = store.stats();
            assert_eq!(s.disk.app_disk_writes + s.net.app_writebacks, 0);
        }
    }
}
