//! The N-shard runtime: router + workers + fleet-wide shutdown fold.

use crate::remset::{InterShardRemset, RemsetStats};
use crate::ring::{RingInbox, SenderGuard, DEFAULT_INBOX_CAPACITY};
use crate::router::{Router, StreamId};
use crate::session::{DataPayload, ShardMsg, ShardReport, ShardWorker};
use pgc_durable::DurabilityMode;
use pgc_sim::{RunConfig, RunOutcome};
use pgc_telemetry::{FleetSnapshot, TelemetryLevel};
use pgc_types::{PgcError, Result};
use pgc_workload::{Event, NodeId, TraceSegment};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a [`Server`] is shaped: shard count, per-session telemetry, inbox
/// depth, and (optionally) where streams persist.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (and thus shard rings). Clamped to at least one.
    pub shards: usize,
    /// Telemetry level every session is opened with.
    pub telemetry: TelemetryLevel,
    /// Messages a shard's ring inbox holds before producers block — the
    /// backpressure knob. Clamped to at least one.
    pub inbox_capacity: usize,
    /// Root data directory for durability. Each stream persists into its
    /// own subdirectory `stream-NNNNNN/` (one recoverable data dir per
    /// stream); `None` keeps the fleet purely in-memory.
    pub data_dir: Option<PathBuf>,
    /// The durability mode streams persist under when [`ServerConfig::data_dir`]
    /// is set (ignored otherwise).
    pub durability: DurabilityMode,
}

impl ServerConfig {
    /// A server over `shards` shards with telemetry off, the default
    /// inbox depth, and no persistence.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            telemetry: TelemetryLevel::Off,
            inbox_capacity: DEFAULT_INBOX_CAPACITY,
            data_dir: None,
            durability: DurabilityMode::SnapshotAndLog,
        }
    }

    /// Sets the telemetry level sessions are opened with.
    #[must_use]
    pub fn with_telemetry(mut self, level: TelemetryLevel) -> Self {
        self.telemetry = level;
        self
    }

    /// Sets the per-shard ring inbox capacity, in messages.
    #[must_use]
    pub fn with_inbox_capacity(mut self, capacity: usize) -> Self {
        self.inbox_capacity = capacity.max(1);
        self
    }

    /// Persists every stream under `dir` (one recoverable data directory
    /// per stream: `dir/stream-NNNNNN/`), at the configured
    /// [`ServerConfig::durability`] mode (snapshots + change log unless
    /// overridden with [`ServerConfig::with_durability_mode`]).
    #[must_use]
    pub fn with_data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Overrides the durability mode used under
    /// [`ServerConfig::with_data_dir`] (e.g. [`DurabilityMode::LogOnly`]
    /// to skip snapshots).
    #[must_use]
    pub fn with_durability_mode(mut self, mode: DurabilityMode) -> Self {
        self.durability = mode;
        self
    }
}

/// Distinguishes server instances within a process, so a [`StreamHandle`]
/// can only address the server that issued it.
static SERVER_TAG: AtomicU64 = AtomicU64::new(1);

/// A typed handle to an open stream: the id, the home shard the router
/// pinned it to, and the issuing server. Returned by
/// [`Server::open_stream`] and accepted anywhere a [`StreamId`] is —
/// [`Server::submit_segment`], [`Server::submit_owned`], [`Server::link`]
/// — with the extra guarantee that a handle from another server instance
/// is rejected instead of silently addressing the wrong fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHandle {
    id: StreamId,
    shard: usize,
    server: u64,
}

impl StreamHandle {
    /// The raw stream id (for logs, maps, and the thin-delegate paths).
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// The home shard the router pinned this stream to.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// Anything that can address an open stream: a raw [`StreamId`] (thin
/// delegate, no provenance check) or a [`StreamHandle`] (validated
/// against the issuing server).
pub trait StreamRef {
    /// Resolves to the raw stream id, or errors when the reference was
    /// issued by a different server instance (`server_tag` identifies the
    /// server doing the resolving).
    fn resolve(&self, server_tag: u64) -> Result<StreamId>;
}

impl StreamRef for StreamId {
    fn resolve(&self, _server_tag: u64) -> Result<StreamId> {
        Ok(*self)
    }
}

impl StreamRef for StreamHandle {
    fn resolve(&self, server_tag: u64) -> Result<StreamId> {
        if self.server != server_tag {
            return Err(PgcError::Session(format!(
                "stream handle {} belongs to a different server",
                self.id
            )));
        }
        Ok(self.id)
    }
}

impl StreamRef for &StreamHandle {
    fn resolve(&self, server_tag: u64) -> Result<StreamId> {
        (*self).resolve(server_tag)
    }
}

/// Everything a finished fleet produced.
#[derive(Debug)]
pub struct FleetOutcome {
    /// One outcome per stream, in ascending stream-id order across the
    /// whole fleet. Each is bit-identical to the outcome of a dedicated
    /// single-`Simulation` run over the same stream's events.
    pub outcomes: Vec<(StreamId, RunOutcome)>,
    /// Per-shard telemetry and its deterministic fleet-wide merge (empty
    /// when the server ran with telemetry off).
    pub fleet: FleetSnapshot,
    /// Inter-shard remset counters at shutdown.
    pub remset: RemsetStats,
    /// How many shards the fleet ran on.
    pub shards: usize,
    /// Peak ring-inbox occupancy per shard, indexed by shard id — how
    /// close each shard ran to throttling its producers.
    pub ring_high_water: Vec<u64>,
    /// Events across every stream, folded once at shutdown.
    total_events: u64,
    /// Collections across every stream, folded once at shutdown.
    total_collections: u64,
}

impl FleetOutcome {
    /// The outcome for one stream.
    pub fn outcome(&self, stream: StreamId) -> Option<&RunOutcome> {
        self.outcomes
            .binary_search_by_key(&stream, |(s, _)| *s)
            .ok()
            .map(|i| &self.outcomes[i].1)
    }

    /// Events processed across every stream (cached at shutdown).
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Collections performed across every stream (cached at shutdown).
    pub fn total_collections(&self) -> u64 {
        self.total_collections
    }
}

/// A running sharded multi-tenant runtime.
///
/// Streams are opened against a [`RunConfig`], fed events in any
/// interleaving, optionally cross-linked, and folded into a
/// [`FleetOutcome`] at [`Server::shutdown`]. The deterministic router
/// pins each stream to a home shard; sessions never share mutable state,
/// so per-stream results do not depend on the shard count — only
/// wall-clock time does.
///
/// Three submit paths feed a stream, cheapest first:
///
/// * [`Server::submit_segment`] — the zero-copy data plane: ships a
///   [`TraceSegment`] (an `Arc` bump plus a byte range of a shared
///   encoded trace); nothing is allocated or copied per event.
/// * [`Server::submit_owned`] — moves an owned `Vec<Event>` into the
///   ring without cloning it.
/// * [`Server::submit`] — the **deprecated** compatibility wrapper for
///   borrowed slices: encodes the slice once (~12 bytes/event in flight
///   instead of a cloned `Vec`) and ships the result as a segment. New
///   code should encode once and use the segment path.
///
/// All three drain through the same block-stepped session path and are
/// bit-identical per stream; a full ring blocks the submitting thread
/// until the shard catches up (bounded memory, lossless). Each accepts a
/// raw [`StreamId`] or the [`StreamHandle`] that [`Server::open_stream`]
/// returned.
///
/// ```
/// use pgc_server::{Server, ServerConfig, StreamId};
/// use pgc_sim::RunConfig;
/// use pgc_workload::{EncodedTrace, TraceSegment};
/// use std::sync::Arc;
///
/// let cfg = RunConfig::small().with_seed(3);
/// let trace = Arc::new(EncodedTrace::record(cfg.workload.clone()).unwrap());
/// let mut server = Server::start(ServerConfig::new(2));
/// let stream = server.open_stream(StreamId(0), cfg).unwrap();
/// server
///     .submit_segment(&stream, TraceSegment::whole(Arc::clone(&trace)))
///     .unwrap();
/// let fleet = server.shutdown().unwrap();
/// assert_eq!(fleet.total_events(), trace.events());
/// ```
pub struct Server {
    router: Router,
    telemetry: TelemetryLevel,
    remset: Arc<InterShardRemset>,
    inboxes: Vec<SenderGuard<ShardMsg>>,
    workers: Vec<JoinHandle<Result<ShardReport>>>,
    streams: BTreeSet<StreamId>,
    tag: u64,
}

impl Server {
    /// Spawns the shard workers and returns the running server.
    pub fn start(cfg: ServerConfig) -> Self {
        let router = Router::new(cfg.shards);
        let remset = Arc::new(InterShardRemset::new());
        let persist = cfg.data_dir.map(|dir| (dir, cfg.durability));
        let mut inboxes = Vec::with_capacity(router.shards());
        let mut workers = Vec::with_capacity(router.shards());
        for shard in 0..router.shards() {
            let ring = RingInbox::with_capacity(cfg.inbox_capacity);
            let rx = Arc::clone(&ring);
            let remset = Arc::clone(&remset);
            let telemetry = cfg.telemetry;
            let persist = persist.clone();
            // Sessions hold thread-local state (Rc-based telemetry taps,
            // boxed policies), so the worker is built *on* its thread and
            // never crosses it — only the plain-data report comes back.
            workers.push(std::thread::spawn(move || {
                ShardWorker::new(shard, telemetry, remset, persist).run(rx)
            }));
            inboxes.push(SenderGuard(ring));
        }
        Self {
            router,
            telemetry: cfg.telemetry,
            remset,
            inboxes,
            workers,
            streams: BTreeSet::new(),
            tag: SERVER_TAG.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The shard count the fleet runs on.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The telemetry level sessions are opened with.
    pub fn telemetry(&self) -> TelemetryLevel {
        self.telemetry
    }

    /// Streams currently open.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The home shard the router pins `stream` to.
    pub fn home_shard(&self, stream: StreamId) -> usize {
        self.router.route(stream)
    }

    /// Current inter-shard remset counters.
    pub fn remset_stats(&self) -> RemsetStats {
        self.remset.stats()
    }

    /// Opens a session for `stream` under `cfg` on its home shard and
    /// returns its typed [`StreamHandle`] (stream id + pinned home shard),
    /// which the submit and link paths accept in place of a raw id.
    pub fn open_stream(&mut self, stream: StreamId, cfg: RunConfig) -> Result<StreamHandle> {
        if !self.streams.insert(stream) {
            return Err(PgcError::Session(format!("stream {stream} already open")));
        }
        let shard = self.router.route(stream);
        self.send(
            shard,
            ShardMsg::Open {
                stream,
                cfg: Box::new(cfg),
            },
        )?;
        Ok(StreamHandle {
            id: stream,
            shard,
            server: self.tag,
        })
    }

    /// Submits a segment of a shared encoded trace to `stream`'s session —
    /// the zero-copy path: the send is an `Arc` bump plus a byte range,
    /// however many events the segment spans, and the worker decodes
    /// straight from the shared buffer into its block scratch.
    ///
    /// Segments for the same stream apply in submission order; segments
    /// for different streams are independent. Blocks while the home
    /// shard's ring is full.
    pub fn submit_segment(&mut self, stream: impl StreamRef, segment: TraceSegment) -> Result<()> {
        let stream = stream.resolve(self.tag)?;
        self.submit_payload(stream, DataPayload::Segment(segment))
    }

    /// Submits an owned batch of events, moving it into the ring — for
    /// callers that already hold a `Vec<Event>` and would otherwise pay a
    /// pointless clone.
    pub fn submit_owned(&mut self, stream: impl StreamRef, events: Vec<Event>) -> Result<()> {
        let stream = stream.resolve(self.tag)?;
        self.submit_payload(stream, DataPayload::Owned(events))
    }

    /// Submits a borrowed batch of events — the compatibility wrapper:
    /// encodes the slice once into a fresh single-segment trace (~12
    /// bytes/event in flight, versus `size_of::<Event>()` for the deep
    /// clone this path used to take) and ships it through
    /// [`Server::submit_segment`].
    #[deprecated(
        note = "encode once and use `submit_segment`, or move the events via `submit_owned`"
    )]
    pub fn submit(&mut self, stream: impl StreamRef, events: &[Event]) -> Result<()> {
        let stream = stream.resolve(self.tag)?;
        self.submit_payload(stream, DataPayload::Segment(TraceSegment::encode(events)))
    }

    fn submit_payload(&mut self, stream: StreamId, payload: DataPayload) -> Result<()> {
        if !self.streams.contains(&stream) {
            return Err(PgcError::Session(format!("stream {stream} is not open")));
        }
        self.send(
            self.router.route(stream),
            ShardMsg::Data { stream, payload },
        )
    }

    /// Registers a cross-shard reference: `source`'s graph references
    /// `node` in `target`'s graph. Routed to the target's home shard,
    /// which resolves the node and records the link in the shared
    /// inter-shard remset (unresolvable targets count as dangling).
    ///
    /// The reference apply-point is the target session's state when the
    /// message drains — deterministic per stream because one server
    /// handle feeds each ring in program order, and batch coalescing
    /// never crosses a link message.
    pub fn link(
        &mut self,
        source: impl StreamRef,
        target: impl StreamRef,
        node: NodeId,
    ) -> Result<()> {
        let source = source.resolve(self.tag)?;
        let target = target.resolve(self.tag)?;
        if !self.streams.contains(&target) {
            return Err(PgcError::Session(format!("stream {target} is not open")));
        }
        self.send(
            self.router.route(target),
            ShardMsg::Link {
                source,
                target,
                node,
            },
        )
    }

    fn send(&self, shard: usize, msg: ShardMsg) -> Result<()> {
        self.inboxes[shard]
            .ring()
            .push(msg)
            .map_err(|_| PgcError::Session(format!("shard {shard} worker is gone")))
    }

    /// Closes every ring, joins the workers, and folds their reports into
    /// the fleet outcome. The fold is deterministic: outcomes sort by
    /// stream id and telemetry merges in ascending shard-id order, so the
    /// result is independent of worker completion order. A worker that
    /// panicked surfaces as a [`PgcError::Session`] carrying the panic
    /// payload — one poisoned shard reports instead of crashing the fold.
    pub fn shutdown(self) -> Result<FleetOutcome> {
        drop(self.inboxes);
        let mut outcomes = Vec::new();
        let mut fleet = FleetSnapshot::new();
        let mut ring_high_water = vec![0u64; self.router.shards()];
        let mut first_err = None;
        for worker in self.workers {
            let report = match worker.join() {
                Ok(result) => result,
                // `&*` reaches the payload inside the box — a bare `&`
                // would unsize the `Box` itself into the trait object and
                // every downcast would miss.
                Err(panic) => Err(PgcError::Session(format!(
                    "shard worker panicked: {}",
                    panic_message(&*panic)
                ))),
            };
            match report {
                Ok(report) => {
                    if let Some(slot) = ring_high_water.get_mut(report.shard) {
                        *slot = report.ring_high_water;
                    }
                    if let Some(snapshot) = report.telemetry {
                        fleet.add_shard(
                            report.shard,
                            report.outcomes.len() as u32,
                            report.ring_high_water,
                            snapshot,
                        );
                    }
                    outcomes.extend(report.outcomes);
                }
                Err(e) => first_err = Some(first_err.unwrap_or(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        outcomes.sort_by_key(|(stream, _)| *stream);
        let total_events = outcomes.iter().map(|(_, o)| o.totals.events).sum();
        let total_collections = outcomes.iter().map(|(_, o)| o.totals.collections).sum();
        Ok(FleetOutcome {
            outcomes,
            fleet,
            remset: self.remset.stats(),
            shards: self.router.shards(),
            ring_high_water,
            total_events,
            total_collections,
        })
    }
}

/// Renders a worker panic payload for the shutdown error (panics carry a
/// `&str` or `String` message in practice; anything else is opaque).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
