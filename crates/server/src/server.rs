//! The N-shard runtime: router + workers + fleet-wide shutdown fold.

use crate::remset::{InterShardRemset, RemsetStats};
use crate::router::{Router, StreamId};
use crate::session::{ShardMsg, ShardReport, ShardWorker};
use pgc_sim::{RunConfig, RunOutcome};
use pgc_telemetry::{FleetSnapshot, TelemetryLevel};
use pgc_types::{PgcError, Result};
use pgc_workload::{Event, NodeId};
use std::collections::BTreeSet;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a [`Server`] is shaped: shard count and per-session telemetry.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (and thus shard inboxes). Clamped to at least one.
    pub shards: usize,
    /// Telemetry level every session is opened with.
    pub telemetry: TelemetryLevel,
}

impl ServerConfig {
    /// A server over `shards` shards with telemetry off.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            telemetry: TelemetryLevel::Off,
        }
    }

    /// Sets the telemetry level sessions are opened with.
    #[must_use]
    pub fn with_telemetry(mut self, level: TelemetryLevel) -> Self {
        self.telemetry = level;
        self
    }
}

/// Everything a finished fleet produced.
#[derive(Debug)]
pub struct FleetOutcome {
    /// One outcome per stream, in ascending stream-id order across the
    /// whole fleet. Each is bit-identical to the outcome of a dedicated
    /// single-`Simulation` run over the same stream's events.
    pub outcomes: Vec<(StreamId, RunOutcome)>,
    /// Per-shard telemetry and its deterministic fleet-wide merge (empty
    /// when the server ran with telemetry off).
    pub fleet: FleetSnapshot,
    /// Inter-shard remset counters at shutdown.
    pub remset: RemsetStats,
    /// How many shards the fleet ran on.
    pub shards: usize,
}

impl FleetOutcome {
    /// The outcome for one stream.
    pub fn outcome(&self, stream: StreamId) -> Option<&RunOutcome> {
        self.outcomes
            .binary_search_by_key(&stream, |(s, _)| *s)
            .ok()
            .map(|i| &self.outcomes[i].1)
    }

    /// Events processed across every stream.
    pub fn total_events(&self) -> u64 {
        self.outcomes.iter().map(|(_, o)| o.totals.events).sum()
    }

    /// Collections performed across every stream.
    pub fn total_collections(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|(_, o)| o.totals.collections)
            .sum()
    }
}

/// A running sharded multi-tenant runtime.
///
/// Streams are opened against a [`RunConfig`], fed event batches in any
/// interleaving, optionally cross-linked, and folded into a
/// [`FleetOutcome`] at [`Server::shutdown`]. The deterministic router
/// pins each stream to a home shard; sessions never share mutable state,
/// so per-stream results do not depend on the shard count — only
/// wall-clock time does.
///
/// ```
/// use pgc_server::{Server, ServerConfig, StreamId};
/// use pgc_sim::RunConfig;
/// use pgc_workload::SyntheticWorkload;
///
/// let cfg = RunConfig::small().with_seed(3);
/// let events: Vec<_> = SyntheticWorkload::new(cfg.workload.clone())
///     .unwrap()
///     .collect();
/// let mut server = Server::start(ServerConfig::new(2));
/// server.open_stream(StreamId(0), cfg).unwrap();
/// server.submit(StreamId(0), &events).unwrap();
/// let fleet = server.shutdown().unwrap();
/// assert_eq!(fleet.total_events(), events.len() as u64);
/// ```
pub struct Server {
    router: Router,
    telemetry: TelemetryLevel,
    remset: Arc<InterShardRemset>,
    inboxes: Vec<Sender<ShardMsg>>,
    workers: Vec<JoinHandle<Result<ShardReport>>>,
    streams: BTreeSet<StreamId>,
}

impl Server {
    /// Spawns the shard workers and returns the running server.
    pub fn start(cfg: ServerConfig) -> Self {
        let router = Router::new(cfg.shards);
        let remset = Arc::new(InterShardRemset::new());
        let mut inboxes = Vec::with_capacity(router.shards());
        let mut workers = Vec::with_capacity(router.shards());
        for shard in 0..router.shards() {
            let (tx, rx) = mpsc::channel::<ShardMsg>();
            let remset = Arc::clone(&remset);
            let telemetry = cfg.telemetry;
            // Sessions hold thread-local state (Rc-based telemetry taps,
            // boxed policies), so the worker is built *on* its thread and
            // never crosses it — only the plain-data report comes back.
            workers.push(std::thread::spawn(move || {
                ShardWorker::new(shard, telemetry, remset).run(rx)
            }));
            inboxes.push(tx);
        }
        Self {
            router,
            telemetry: cfg.telemetry,
            remset,
            inboxes,
            workers,
            streams: BTreeSet::new(),
        }
    }

    /// The shard count the fleet runs on.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The telemetry level sessions are opened with.
    pub fn telemetry(&self) -> TelemetryLevel {
        self.telemetry
    }

    /// Streams currently open.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The home shard the router pins `stream` to.
    pub fn home_shard(&self, stream: StreamId) -> usize {
        self.router.route(stream)
    }

    /// Current inter-shard remset counters.
    pub fn remset_stats(&self) -> RemsetStats {
        self.remset.stats()
    }

    /// Opens a session for `stream` under `cfg` on its home shard.
    pub fn open_stream(&mut self, stream: StreamId, cfg: RunConfig) -> Result<()> {
        if !self.streams.insert(stream) {
            return Err(PgcError::Session(format!("stream {stream} already open")));
        }
        self.send(
            self.router.route(stream),
            ShardMsg::Open {
                stream,
                cfg: Box::new(cfg),
            },
        )
    }

    /// Submits a batch of events to `stream`'s session. Batches for the
    /// same stream apply in submission order; batches for different
    /// streams are independent.
    pub fn submit(&mut self, stream: StreamId, events: &[Event]) -> Result<()> {
        if !self.streams.contains(&stream) {
            return Err(PgcError::Session(format!("stream {stream} is not open")));
        }
        self.send(
            self.router.route(stream),
            ShardMsg::Batch {
                stream,
                events: events.to_vec(),
            },
        )
    }

    /// Registers a cross-shard reference: `source`'s graph references
    /// `node` in `target`'s graph. Routed to the target's home shard,
    /// which resolves the node and records the link in the shared
    /// inter-shard remset (unresolvable targets count as dangling).
    ///
    /// The reference apply-point is the target session's state when the
    /// message drains — deterministic per stream because one server
    /// handle feeds each inbox in program order.
    pub fn link(&mut self, source: StreamId, target: StreamId, node: NodeId) -> Result<()> {
        if !self.streams.contains(&target) {
            return Err(PgcError::Session(format!("stream {target} is not open")));
        }
        self.send(
            self.router.route(target),
            ShardMsg::Link {
                source,
                target,
                node,
            },
        )
    }

    fn send(&self, shard: usize, msg: ShardMsg) -> Result<()> {
        self.inboxes[shard]
            .send(msg)
            .map_err(|_| PgcError::Session(format!("shard {shard} worker is gone")))
    }

    /// Closes every inbox, joins the workers, and folds their reports
    /// into the fleet outcome. The fold is deterministic: outcomes sort
    /// by stream id and telemetry merges in ascending shard-id order, so
    /// the result is independent of worker completion order.
    pub fn shutdown(self) -> Result<FleetOutcome> {
        drop(self.inboxes);
        let mut outcomes = Vec::new();
        let mut fleet = FleetSnapshot::new();
        let mut first_err = None;
        for worker in self.workers {
            match worker.join().expect("shard worker panicked") {
                Ok(report) => {
                    if let Some(snapshot) = report.telemetry {
                        fleet.add_shard(report.shard, report.outcomes.len() as u32, snapshot);
                    }
                    outcomes.extend(report.outcomes);
                }
                Err(e) => first_err = Some(first_err.unwrap_or(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        outcomes.sort_by_key(|(stream, _)| *stream);
        Ok(FleetOutcome {
            outcomes,
            fleet,
            remset: self.remset.stats(),
            shards: self.router.shards(),
        })
    }
}
