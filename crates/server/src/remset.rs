//! The inter-shard remembered set: cross-shard references as barrier-bus
//! remset traffic.
//!
//! Within one database, inter-partition pointers live in per-partition
//! remembered sets maintained by the write barrier. The sharded runtime
//! reproduces that design one level up: a reference from one client
//! stream's object graph to another stream's object is recorded here,
//! keyed by the *target* side `(stream, oid)`, exactly like a remset entry
//! keyed by the pointed-into partition.
//!
//! Maintenance flows through the existing barrier event bus rather than a
//! new protocol: each session carries a [`RemsetBridge`] bystander
//! observer which forwards the session's
//! [`BarrierEvent::ObjectReclaimed`] and [`BarrierEvent::ObjectCopied`]
//! events into the shared table — reclaims clean the entry, copies update
//! its recorded partition. The bridge is an ordinary bus bystander: it
//! reads the same stream every policy sees and touches nothing in the
//! session, so carrying it cannot perturb a run.
//!
//! Cross-shard links are deliberately *weak*: they account for the
//! reference but do not pin the target object's liveness. A strong link
//! would make one stream's collection decisions depend on another
//! stream's mutations — and with it, on shard placement and thread
//! timing. Weak links keep every session bit-identical to a dedicated
//! single-database run, which is the property the whole runtime is built
//! around (the paper's policies are only comparable under deterministic
//! replay).

//! The table is **striped**: entries spread over
//! [`REMSET_STRIPES`] independently locked shards of the map, selected by
//! [`pgc_types::fast_hash_u64`] of the *target* stream. Every operation a
//! [`RemsetBridge`] performs is keyed by its own session's stream, so
//! bridges riding different streams take different stripes and never
//! contend — the one global mutex this table used to be disappears from
//! the workers' hot paths. Counters accumulate per stripe and
//! [`InterShardRemset::stats`] folds them in ascending stripe order;
//! every field is a sum, so the fold is deterministic for a given set of
//! link calls and event streams at any shard count and any interleaving.

use crate::router::StreamId;
use pgc_odb::{BarrierEvent, BarrierObserver};
use pgc_types::{fast_hash_u64, Oid, PartitionId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Lock stripes the table spreads over (a power of two so stripe selection
/// is a mask).
pub const REMSET_STRIPES: usize = 16;

/// One target object's cross-shard inbound references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkRecord {
    /// Streams holding a reference to the target object.
    pub sources: BTreeSet<StreamId>,
    /// The partition holding the target object, tracked across
    /// collection-driven relocations.
    pub partition: PartitionId,
}

/// Counters over the life of the table. All four are deterministic for a
/// given set of client streams and link calls, at any shard count: they
/// are driven only by the caller's link sequence and by per-session event
/// streams, never by placement or thread timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemsetStats {
    /// Distinct `(source, target, oid)` links accepted. Re-registering an
    /// existing link is idempotent and counted once.
    pub registered: u64,
    /// Links removed because the target object was reclaimed.
    pub cleaned: u64,
    /// Partition updates applied because a linked target was evacuated.
    pub relocated: u64,
    /// Link attempts rejected because the target object was unknown or
    /// already dead.
    pub dangling: u64,
}

#[derive(Debug, Default)]
struct RemsetInner {
    links: BTreeMap<(StreamId, Oid), LinkRecord>,
    stats: RemsetStats,
}

/// The shared cross-shard reference table, striped by target stream.
///
/// One instance per server. Every operation is keyed by a target stream,
/// which hashes to one of [`REMSET_STRIPES`] independently locked map
/// shards — bystander bridges on different streams touch different
/// stripes, so they never serialize on each other. Lock scope stays a
/// single entry update.
#[derive(Debug)]
pub struct InterShardRemset {
    stripes: Vec<Mutex<RemsetInner>>,
}

impl Default for InterShardRemset {
    fn default() -> Self {
        Self::new()
    }
}

impl InterShardRemset {
    /// An empty table.
    pub fn new() -> Self {
        Self {
            stripes: (0..REMSET_STRIPES)
                .map(|_| Mutex::new(RemsetInner::default()))
                .collect(),
        }
    }

    /// The stripe holding every entry for `target`'s graph.
    fn stripe(&self, target: StreamId) -> &Mutex<RemsetInner> {
        &self.stripes[fast_hash_u64(target.0) as usize & (REMSET_STRIPES - 1)]
    }

    /// Records that `source` holds a reference to `oid` in `target`'s
    /// graph, currently residing in `partition`. Returns `true` when the
    /// link is new; re-registration is idempotent.
    pub fn register(
        &self,
        source: StreamId,
        target: StreamId,
        oid: Oid,
        partition: PartitionId,
    ) -> bool {
        let mut inner = self.stripe(target).lock().expect("remset lock");
        let entry = inner
            .links
            .entry((target, oid))
            .or_insert_with(|| LinkRecord {
                sources: BTreeSet::new(),
                partition,
            });
        let fresh = entry.sources.insert(source);
        if fresh {
            inner.stats.registered += 1;
        }
        fresh
    }

    /// Counts a link attempt into `target`'s graph whose target object
    /// could not be resolved.
    pub fn note_dangling(&self, target: StreamId) {
        self.stripe(target)
            .lock()
            .expect("remset lock")
            .stats
            .dangling += 1;
    }

    /// Removes every link into `(target, oid)` — the object was
    /// reclaimed. Each removed source counts toward `cleaned`.
    fn clean(&self, target: StreamId, oid: Oid) {
        let mut inner = self.stripe(target).lock().expect("remset lock");
        if let Some(record) = inner.links.remove(&(target, oid)) {
            inner.stats.cleaned += record.sources.len() as u64;
        }
    }

    /// Re-points every link into `(target, oid)` at the partition the
    /// object was evacuated to.
    fn relocate(&self, target: StreamId, oid: Oid, to: PartitionId) {
        let mut inner = self.stripe(target).lock().expect("remset lock");
        if let Some(record) = inner.links.get_mut(&(target, oid)) {
            record.partition = to;
            inner.stats.relocated += 1;
        }
    }

    /// Current counters: per-stripe stats folded in ascending stripe
    /// order. Each field is a sum, so the fold is independent of which
    /// stripe any entry landed on.
    pub fn stats(&self) -> RemsetStats {
        let mut out = RemsetStats::default();
        for stripe in &self.stripes {
            let inner = stripe.lock().expect("remset lock");
            out.registered += inner.stats.registered;
            out.cleaned += inner.stats.cleaned;
            out.relocated += inner.stats.relocated;
            out.dangling += inner.stats.dangling;
        }
        out
    }

    /// Live links into `target`'s graph, in ascending oid order (all of a
    /// target's entries live on one stripe).
    pub fn links_into(&self, target: StreamId) -> Vec<(Oid, LinkRecord)> {
        let inner = self.stripe(target).lock().expect("remset lock");
        inner
            .links
            .range((target, Oid(0))..=(target, Oid(u64::MAX)))
            .map(|(&(_, oid), record)| (oid, record.clone()))
            .collect()
    }

    /// Total live links across the table, folded in stripe order.
    pub fn live_links(&self) -> u64 {
        self.stripes
            .iter()
            .map(|stripe| {
                let inner = stripe.lock().expect("remset lock");
                inner
                    .links
                    .values()
                    .map(|r| r.sources.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

/// The bus bystander that keeps the shared table honest for one session.
///
/// Registered on the session's barrier bus at open, before any event
/// flows, it forwards the session's reclaim and copy events into the
/// shared [`InterShardRemset`] under the session's stream id.
pub struct RemsetBridge {
    stream: StreamId,
    remset: Arc<InterShardRemset>,
}

impl RemsetBridge {
    /// A bridge publishing `stream`'s reclaims and relocations.
    pub fn new(stream: StreamId, remset: Arc<InterShardRemset>) -> Self {
        Self { stream, remset }
    }
}

impl BarrierObserver for RemsetBridge {
    fn on_event(&mut self, event: &BarrierEvent) {
        match *event {
            BarrierEvent::ObjectReclaimed { oid, .. } => self.remset.clean(self.stream, oid),
            BarrierEvent::ObjectCopied { oid, to, .. } => {
                self.remset.relocate(self.stream, oid, to)
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PartitionId = PartitionId(0);
    const P1: PartitionId = PartitionId(1);

    #[test]
    fn registration_is_idempotent_per_source() {
        let remset = InterShardRemset::new();
        assert!(remset.register(StreamId(1), StreamId(2), Oid(7), P0));
        assert!(!remset.register(StreamId(1), StreamId(2), Oid(7), P0));
        assert!(remset.register(StreamId(3), StreamId(2), Oid(7), P0));
        assert_eq!(remset.stats().registered, 2);
        assert_eq!(remset.live_links(), 2);
    }

    #[test]
    fn bridge_cleans_on_reclaim_and_tracks_copies() {
        let remset = Arc::new(InterShardRemset::new());
        remset.register(StreamId(1), StreamId(2), Oid(7), P0);
        remset.register(StreamId(5), StreamId(2), Oid(7), P0);
        let mut bridge = RemsetBridge::new(StreamId(2), Arc::clone(&remset));

        bridge.on_event(&BarrierEvent::ObjectCopied {
            oid: Oid(7),
            from: P0,
            to: P1,
            size: pgc_types::Bytes(64),
        });
        let links = remset.links_into(StreamId(2));
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].1.partition, P1);

        bridge.on_event(&BarrierEvent::ObjectReclaimed {
            oid: Oid(7),
            partition: P1,
            size: pgc_types::Bytes(64),
        });
        assert!(remset.links_into(StreamId(2)).is_empty());
        let stats = remset.stats();
        assert_eq!(stats.cleaned, 2, "both sources cleaned");
        assert_eq!(stats.relocated, 1);
    }

    /// Parallel register/clean/relocate across every stripe: the striping
    /// must be invisible in the folded counters. Registrations from N
    /// threads race on shared entries (idempotency makes the fresh count
    /// exact anyway); cleans and relocations then partition the key space
    /// per thread so the expected totals are exact, not just bounded.
    #[test]
    fn striped_table_sums_exactly_under_parallel_mutation() {
        const THREADS: u64 = 8;
        const TARGETS: u64 = 2 * REMSET_STRIPES as u64; // every stripe hit
        const OIDS: u64 = 32;
        let remset = Arc::new(InterShardRemset::new());

        // Phase 1: every thread registers every (target, oid) under its
        // own source — twice, so half the attempts race on idempotency —
        // and notes a few dangling misses.
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let remset = Arc::clone(&remset);
                scope.spawn(move || {
                    for target in 0..TARGETS {
                        for oid in 0..OIDS {
                            for _ in 0..2 {
                                remset.register(StreamId(1000 + t), StreamId(target), Oid(oid), P0);
                            }
                        }
                        remset.note_dangling(StreamId(target));
                    }
                });
            }
        });
        let stats = remset.stats();
        assert_eq!(stats.registered, THREADS * TARGETS * OIDS);
        assert_eq!(stats.dangling, THREADS * TARGETS);
        assert_eq!(remset.live_links(), THREADS * TARGETS * OIDS);

        // Phase 2: threads partition the targets; each relocates its even
        // oids then cleans everything it owns — parallel across stripes,
        // deterministic within a partition.
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let remset = Arc::clone(&remset);
                scope.spawn(move || {
                    for target in (t..TARGETS).step_by(THREADS as usize) {
                        for oid in (0..OIDS).step_by(2) {
                            remset.relocate(StreamId(target), Oid(oid), P1);
                        }
                        for oid in 0..OIDS {
                            remset.clean(StreamId(target), Oid(oid));
                        }
                    }
                });
            }
        });
        let stats = remset.stats();
        assert_eq!(stats.relocated, TARGETS * OIDS / 2);
        assert_eq!(stats.cleaned, THREADS * TARGETS * OIDS);
        assert_eq!(remset.live_links(), 0);
        for target in 0..TARGETS {
            assert!(remset.links_into(StreamId(target)).is_empty());
        }
    }

    #[test]
    fn events_for_unlinked_objects_are_ignored() {
        let remset = Arc::new(InterShardRemset::new());
        let mut bridge = RemsetBridge::new(StreamId(2), Arc::clone(&remset));
        bridge.on_event(&BarrierEvent::ObjectReclaimed {
            oid: Oid(9),
            partition: P0,
            size: pgc_types::Bytes(8),
        });
        assert_eq!(remset.stats(), RemsetStats::default());
    }
}
