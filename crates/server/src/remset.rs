//! The inter-shard remembered set: cross-shard references as barrier-bus
//! remset traffic.
//!
//! Within one database, inter-partition pointers live in per-partition
//! remembered sets maintained by the write barrier. The sharded runtime
//! reproduces that design one level up: a reference from one client
//! stream's object graph to another stream's object is recorded here,
//! keyed by the *target* side `(stream, oid)`, exactly like a remset entry
//! keyed by the pointed-into partition.
//!
//! Maintenance flows through the existing barrier event bus rather than a
//! new protocol: each session carries a [`RemsetBridge`] bystander
//! observer which forwards the session's
//! [`BarrierEvent::ObjectReclaimed`] and [`BarrierEvent::ObjectCopied`]
//! events into the shared table — reclaims clean the entry, copies update
//! its recorded partition. The bridge is an ordinary bus bystander: it
//! reads the same stream every policy sees and touches nothing in the
//! session, so carrying it cannot perturb a run.
//!
//! Cross-shard links are deliberately *weak*: they account for the
//! reference but do not pin the target object's liveness. A strong link
//! would make one stream's collection decisions depend on another
//! stream's mutations — and with it, on shard placement and thread
//! timing. Weak links keep every session bit-identical to a dedicated
//! single-database run, which is the property the whole runtime is built
//! around (the paper's policies are only comparable under deterministic
//! replay).

use crate::router::StreamId;
use pgc_odb::{BarrierEvent, BarrierObserver};
use pgc_types::{Oid, PartitionId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// One target object's cross-shard inbound references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkRecord {
    /// Streams holding a reference to the target object.
    pub sources: BTreeSet<StreamId>,
    /// The partition holding the target object, tracked across
    /// collection-driven relocations.
    pub partition: PartitionId,
}

/// Counters over the life of the table. All four are deterministic for a
/// given set of client streams and link calls, at any shard count: they
/// are driven only by the caller's link sequence and by per-session event
/// streams, never by placement or thread timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemsetStats {
    /// Distinct `(source, target, oid)` links accepted. Re-registering an
    /// existing link is idempotent and counted once.
    pub registered: u64,
    /// Links removed because the target object was reclaimed.
    pub cleaned: u64,
    /// Partition updates applied because a linked target was evacuated.
    pub relocated: u64,
    /// Link attempts rejected because the target object was unknown or
    /// already dead.
    pub dangling: u64,
}

#[derive(Debug, Default)]
struct RemsetInner {
    links: BTreeMap<(StreamId, Oid), LinkRecord>,
    stats: RemsetStats,
}

/// The shared cross-shard reference table.
///
/// One instance per server, shared by every shard worker behind a mutex.
/// Lock scope is a single entry update — the table is bookkeeping beside
/// the sessions' hot paths, not on them.
#[derive(Debug, Default)]
pub struct InterShardRemset {
    inner: Mutex<RemsetInner>,
}

impl InterShardRemset {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `source` holds a reference to `oid` in `target`'s
    /// graph, currently residing in `partition`. Returns `true` when the
    /// link is new; re-registration is idempotent.
    pub fn register(
        &self,
        source: StreamId,
        target: StreamId,
        oid: Oid,
        partition: PartitionId,
    ) -> bool {
        let mut inner = self.inner.lock().expect("remset lock");
        let entry = inner
            .links
            .entry((target, oid))
            .or_insert_with(|| LinkRecord {
                sources: BTreeSet::new(),
                partition,
            });
        let fresh = entry.sources.insert(source);
        if fresh {
            inner.stats.registered += 1;
        }
        fresh
    }

    /// Counts a link attempt whose target could not be resolved.
    pub fn note_dangling(&self) {
        self.inner.lock().expect("remset lock").stats.dangling += 1;
    }

    /// Removes every link into `(target, oid)` — the object was
    /// reclaimed. Each removed source counts toward `cleaned`.
    fn clean(&self, target: StreamId, oid: Oid) {
        let mut inner = self.inner.lock().expect("remset lock");
        if let Some(record) = inner.links.remove(&(target, oid)) {
            inner.stats.cleaned += record.sources.len() as u64;
        }
    }

    /// Re-points every link into `(target, oid)` at the partition the
    /// object was evacuated to.
    fn relocate(&self, target: StreamId, oid: Oid, to: PartitionId) {
        let mut inner = self.inner.lock().expect("remset lock");
        if let Some(record) = inner.links.get_mut(&(target, oid)) {
            record.partition = to;
            inner.stats.relocated += 1;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> RemsetStats {
        self.inner.lock().expect("remset lock").stats
    }

    /// Live links into `target`'s graph, in ascending oid order.
    pub fn links_into(&self, target: StreamId) -> Vec<(Oid, LinkRecord)> {
        let inner = self.inner.lock().expect("remset lock");
        inner
            .links
            .range((target, Oid(0))..=(target, Oid(u64::MAX)))
            .map(|(&(_, oid), record)| (oid, record.clone()))
            .collect()
    }

    /// Total live links across the table.
    pub fn live_links(&self) -> u64 {
        let inner = self.inner.lock().expect("remset lock");
        inner.links.values().map(|r| r.sources.len() as u64).sum()
    }
}

/// The bus bystander that keeps the shared table honest for one session.
///
/// Registered on the session's barrier bus at open, before any event
/// flows, it forwards the session's reclaim and copy events into the
/// shared [`InterShardRemset`] under the session's stream id.
pub struct RemsetBridge {
    stream: StreamId,
    remset: Arc<InterShardRemset>,
}

impl RemsetBridge {
    /// A bridge publishing `stream`'s reclaims and relocations.
    pub fn new(stream: StreamId, remset: Arc<InterShardRemset>) -> Self {
        Self { stream, remset }
    }
}

impl BarrierObserver for RemsetBridge {
    fn on_event(&mut self, event: &BarrierEvent) {
        match *event {
            BarrierEvent::ObjectReclaimed { oid, .. } => self.remset.clean(self.stream, oid),
            BarrierEvent::ObjectCopied { oid, to, .. } => {
                self.remset.relocate(self.stream, oid, to)
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PartitionId = PartitionId(0);
    const P1: PartitionId = PartitionId(1);

    #[test]
    fn registration_is_idempotent_per_source() {
        let remset = InterShardRemset::new();
        assert!(remset.register(StreamId(1), StreamId(2), Oid(7), P0));
        assert!(!remset.register(StreamId(1), StreamId(2), Oid(7), P0));
        assert!(remset.register(StreamId(3), StreamId(2), Oid(7), P0));
        assert_eq!(remset.stats().registered, 2);
        assert_eq!(remset.live_links(), 2);
    }

    #[test]
    fn bridge_cleans_on_reclaim_and_tracks_copies() {
        let remset = Arc::new(InterShardRemset::new());
        remset.register(StreamId(1), StreamId(2), Oid(7), P0);
        remset.register(StreamId(5), StreamId(2), Oid(7), P0);
        let mut bridge = RemsetBridge::new(StreamId(2), Arc::clone(&remset));

        bridge.on_event(&BarrierEvent::ObjectCopied {
            oid: Oid(7),
            from: P0,
            to: P1,
            size: pgc_types::Bytes(64),
        });
        let links = remset.links_into(StreamId(2));
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].1.partition, P1);

        bridge.on_event(&BarrierEvent::ObjectReclaimed {
            oid: Oid(7),
            partition: P1,
            size: pgc_types::Bytes(64),
        });
        assert!(remset.links_into(StreamId(2)).is_empty());
        let stats = remset.stats();
        assert_eq!(stats.cleaned, 2, "both sources cleaned");
        assert_eq!(stats.relocated, 1);
    }

    #[test]
    fn events_for_unlinked_objects_are_ignored() {
        let remset = Arc::new(InterShardRemset::new());
        let mut bridge = RemsetBridge::new(StreamId(2), Arc::clone(&remset));
        bridge.on_event(&BarrierEvent::ObjectReclaimed {
            oid: Oid(9),
            partition: P0,
            size: pgc_types::Bytes(8),
        });
        assert_eq!(remset.stats(), RemsetStats::default());
    }
}
