//! # pgc-server
//!
//! The sharded multi-tenant runtime: many client streams, each with its
//! own partitioned database and selection policy, hosted behind a
//! deterministic router on a fixed fleet of shard worker threads.
//!
//! * [`router`] — [`router::StreamId`] and the stateless [`router::Router`]
//!   hashing streams onto shards.
//! * [`ring`] — the [`ring::RingInbox`]: fixed-capacity shard inboxes with
//!   park/unpark backpressure, FIFO drain, and an occupancy high-water
//!   mark; a slow shard throttles its producers instead of buffering the
//!   world.
//! * [`session`] — the session layer: each shard worker owns a table of
//!   sessions (one [`pgc_sim::Shard`] per stream), drains its ring in
//!   arrival order, coalesces consecutive batches for a stream, and steps
//!   them block-at-a-time through one reusable decode scratch.
//! * [`remset`] — the [`remset::InterShardRemset`]: cross-shard references
//!   as remset traffic over the existing barrier event bus, striped by
//!   target stream so shards touching different tenants never contend,
//!   and weak by design so they cannot perturb any session's collection
//!   decisions.
//! * [`server`] — [`server::Server`]: start, open streams, submit event
//!   batches (zero-copy [`TraceSegment`]s, owned vectors, or borrowed
//!   slices), link across streams, and fold the fleet into a
//!   [`server::FleetOutcome`] at shutdown.
//!
//! # Determinism
//!
//! Per-stream results are **bit-identical at any shard count** and to a
//! dedicated single-`Simulation` run: a session is a self-contained
//! [`pgc_sim::Shard`] (the same unit `Simulation` drives), one server
//! handle feeds each stream its events in submission order, and nothing a
//! session observes depends on placement. The router only decides *where*
//! a session executes; cross-shard links are weak accounting entries that
//! never feed back into collection. `tests/shard_equivalence.rs` at the
//! workspace root pins all of this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod remset;
pub mod ring;
pub mod router;
pub mod server;
pub mod session;

pub use remset::{InterShardRemset, LinkRecord, RemsetBridge, RemsetStats, REMSET_STRIPES};
pub use ring::{RingInbox, DEFAULT_INBOX_CAPACITY};
pub use router::{Router, StreamId};
pub use server::{FleetOutcome, Server, ServerConfig, StreamHandle, StreamRef};
pub use session::ShardReport;
// The pieces a server driver needs ride along so callers don't take a
// direct dependency on every lower crate for the common cases.
pub use pgc_durable::{DurabilityConfig, DurabilityMode};
pub use pgc_sim::{RunConfig, RunOutcome};
pub use pgc_telemetry::{FleetSnapshot, ShardTelemetry, TelemetryLevel};
pub use pgc_workload::TraceSegment;
