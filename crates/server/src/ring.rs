//! Bounded ring inboxes: fixed-capacity shard queues with backpressure.
//!
//! PR 8 shipped shard inboxes on `std::sync::mpsc` — unbounded, one heap
//! node per message, no backpressure. A slow shard silently ballooned
//! memory while fast producers sprinted ahead. The [`RingInbox`] replaces
//! that with a fixed-capacity ring (a `VecDeque` that never grows past its
//! capacity) guarded by a mutex and two condvars:
//!
//! * a full ring **parks the producer** until the worker drains a slot, so
//!   a slow shard throttles its feeders instead of buffering the world;
//! * an empty ring parks the worker until a message (or close) arrives;
//! * messages pop in exactly arrival order — the FIFO contract the
//!   session layer's determinism argument rests on;
//! * [`RingInbox::pop_front_if`] lets the worker opportunistically take
//!   the *next* message without blocking when it matches a predicate —
//!   the hook batch coalescing is built on. It never reorders: only the
//!   head of the queue is examined.
//!
//! Lifecycle is explicit because both ends share one `Arc`: the producer
//! side closes through [`SenderGuard`] (dropping it wakes and drains the
//! worker) and the worker side through [`ReceiverGuard`] (dropping it —
//! including by panic — wakes any parked producer with an error instead
//! of deadlocking it). The ring records its occupancy **high-water mark**
//! so fleet telemetry can show how close each shard ran to saturation.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Inbox slots a shard ring holds before producers block.
pub const DEFAULT_INBOX_CAPACITY: usize = 256;

struct RingState<T> {
    queue: VecDeque<T>,
    high_water: usize,
    tx_closed: bool,
    rx_closed: bool,
}

/// A fixed-capacity FIFO between one producer handle and one shard worker.
pub struct RingInbox<T> {
    capacity: usize,
    state: Mutex<RingState<T>>,
    /// Signalled when a slot frees up (or the receiver goes away).
    not_full: Condvar,
    /// Signalled when a message arrives (or the sender closes).
    not_empty: Condvar,
}

impl<T> RingInbox<T> {
    /// A ring holding at most `capacity` messages (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(1);
        Arc::new(Self {
            capacity,
            state: Mutex::new(RingState {
                queue: VecDeque::with_capacity(capacity),
                high_water: 0,
                tx_closed: false,
                rx_closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        })
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `msg`, blocking while the ring is full. Returns the
    /// message back if the receiver is gone (worker exited or panicked).
    pub fn push(&self, msg: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("ring lock");
        while state.queue.len() == self.capacity && !state.rx_closed {
            state = self.not_full.wait(state).expect("ring lock");
        }
        if state.rx_closed {
            return Err(msg);
        }
        state.queue.push_back(msg);
        state.high_water = state.high_water.max(state.queue.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next message in arrival order, blocking while the ring
    /// is empty. Returns `None` once the sender has closed and every
    /// queued message has been drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("ring lock");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(msg);
            }
            if state.tx_closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("ring lock");
        }
    }

    /// Dequeues the head message only if `pred` accepts it; never blocks
    /// and never looks past the head, so arrival order is preserved.
    pub fn pop_front_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut state = self.state.lock().expect("ring lock");
        if state.queue.front().is_some_and(pred) {
            let msg = state.queue.pop_front();
            drop(state);
            self.not_full.notify_one();
            msg
        } else {
            None
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("ring lock").queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak queue occupancy over the ring's life (in messages).
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("ring lock").high_water
    }

    fn close_tx(&self) {
        self.state.lock().expect("ring lock").tx_closed = true;
        self.not_empty.notify_all();
    }

    fn close_rx(&self) {
        self.state.lock().expect("ring lock").rx_closed = true;
        self.not_full.notify_all();
    }
}

/// The producer end: dropping it closes the sender side, letting the
/// worker drain the remaining messages and finish.
pub struct SenderGuard<T>(pub(crate) Arc<RingInbox<T>>);

impl<T> SenderGuard<T> {
    /// The ring this guard feeds.
    pub fn ring(&self) -> &RingInbox<T> {
        &self.0
    }
}

impl<T> Drop for SenderGuard<T> {
    fn drop(&mut self) {
        self.0.close_tx();
    }
}

/// The worker end: dropping it (on normal exit, session error, *or*
/// panic) marks the receiver gone so parked producers fail fast instead
/// of deadlocking.
pub struct ReceiverGuard<T>(pub(crate) Arc<RingInbox<T>>);

impl<T> ReceiverGuard<T> {
    /// The ring this guard drains.
    pub fn ring(&self) -> &RingInbox<T> {
        &self.0
    }
}

impl<T> Drop for ReceiverGuard<T> {
    fn drop(&mut self) {
        self.0.close_rx();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity_clamp() {
        let ring = RingInbox::<u32>::with_capacity(0);
        assert_eq!(ring.capacity(), 1, "capacity clamps to one slot");
        let ring = RingInbox::with_capacity(8);
        for i in 0..8 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.high_water(), 8);
        for i in 0..8 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_parks_the_producer_until_a_slot_frees() {
        let ring = RingInbox::with_capacity(2);
        ring.push(0u32).unwrap();
        ring.push(1).unwrap();
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(2).is_ok())
        };
        // The producer must park: the ring stays at capacity and the third
        // message is not enqueued while both slots are taken.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(ring.len(), 2, "push must block on a full ring");
        assert!(!producer.is_finished(), "producer must be parked");
        assert_eq!(ring.pop(), Some(0));
        assert!(producer.join().unwrap(), "freed slot completes the push");
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.high_water(), 2, "capacity bounds the high water");
    }

    #[test]
    fn sender_close_drains_then_ends_the_receiver() {
        let ring = RingInbox::with_capacity(4);
        let tx = SenderGuard(Arc::clone(&ring));
        ring.push(7u8).unwrap();
        drop(tx);
        assert_eq!(ring.pop(), Some(7), "queued messages survive the close");
        assert_eq!(ring.pop(), None, "then the stream ends");
    }

    #[test]
    fn receiver_death_unparks_and_fails_the_producer() {
        let ring = RingInbox::with_capacity(1);
        ring.push(0u32).unwrap();
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(1))
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(ReceiverGuard(Arc::clone(&ring)));
        assert_eq!(
            producer.join().unwrap(),
            Err(1),
            "a parked producer gets its message back when the worker dies"
        );
        assert_eq!(ring.push(2), Err(2), "later pushes fail fast");
    }

    #[test]
    fn pop_front_if_takes_only_a_matching_head() {
        let ring = RingInbox::with_capacity(4);
        ring.push(1u32).unwrap();
        ring.push(2).unwrap();
        assert_eq!(ring.pop_front_if(|&m| m == 2), None, "head is 1, not 2");
        assert_eq!(ring.pop_front_if(|&m| m == 1), Some(1));
        assert_eq!(ring.pop_front_if(|&m| m == 2), Some(2));
        assert_eq!(ring.pop_front_if(|_| true), None, "empty ring never blocks");
    }
}
