//! The session layer: shard workers multiplexing client streams.
//!
//! Each shard is one OS thread owning a table of sessions — a session is
//! one client stream bound to its own [`Shard`] (database + policy +
//! scheduler + barrier bus + telemetry). The server routes every message
//! for a stream to its home shard's bounded ring inbox; the worker drains
//! the ring in arrival order and steps the addressed session. Because one
//! server handle feeds the rings, each session sees its events in exactly
//! the submission order — thousands of streams interleave freely on the
//! wire while every individual stream replays deterministically.
//!
//! Data messages carry either a [`TraceSegment`] (a refcounted byte range
//! of a shared encoded trace — the zero-copy path) or an owned
//! `Vec<Event>` (moved, never cloned). The worker **coalesces** runs of
//! consecutive queued data messages for the same stream — taken strictly
//! from the head of the ring, so arrival order is untouched — and drives
//! them through [`Shard::step_block`] with one reusable per-worker
//! [`EventBlock`] scratch: segments decode block-at-a-time straight from
//! the shared buffer, owned batches pack into the same scratch. Block
//! boundaries are semantically invisible (`step_block` is bit-identical
//! to per-event stepping), so coalescing can never change a result, only
//! the number of dispatch round-trips.
//!
//! At shutdown the worker finishes its sessions in ascending stream-id
//! order and reports per-stream [`RunOutcome`]s, one merged telemetry
//! snapshot, and the ring's occupancy high-water mark, ready for the
//! fleet-wide fold.

use crate::remset::{InterShardRemset, RemsetBridge};
use crate::ring::{ReceiverGuard, RingInbox};
use crate::router::StreamId;
use pgc_durable::{DurabilityConfig, DurabilityMode};
use pgc_sim::{RunConfig, RunOutcome, Shard};
use pgc_telemetry::{TelemetryLevel, TelemetrySnapshot};
use pgc_types::{PgcError, Result};
use pgc_workload::generator::GenStats;
use pgc_workload::{Event, EventBlock, NodeId, TraceSegment};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// The event payload of one data message.
pub(crate) enum DataPayload {
    /// A refcounted byte range of a shared encoded trace: submitting one
    /// costs an `Arc` bump, however many events it spans.
    Segment(TraceSegment),
    /// An owned, already-decoded batch (moved from the caller, not
    /// cloned).
    Owned(Vec<Event>),
}

/// One message on a shard ring.
pub(crate) enum ShardMsg {
    /// Open a session for `stream` under `cfg`.
    Open {
        /// The stream the session serves.
        stream: StreamId,
        /// The session's full run configuration (boxed: it dwarfs the
        /// other variants).
        cfg: Box<RunConfig>,
    },
    /// Step `stream`'s session through a run of events.
    Data {
        /// The addressed stream.
        stream: StreamId,
        /// The events, in submission order.
        payload: DataPayload,
    },
    /// Register that `source`'s graph references `node` in `target`'s
    /// graph. Routed to the *target*'s home shard, which resolves the
    /// node against the target session and records the link in the
    /// shared inter-shard remset.
    Link {
        /// The referencing stream.
        source: StreamId,
        /// The referenced stream (lives on this shard).
        target: StreamId,
        /// The referenced node in the target's workload id space.
        node: NodeId,
    },
}

/// What one shard worker hands back at shutdown.
pub struct ShardReport {
    /// The shard's index.
    pub shard: usize,
    /// One outcome per hosted session, in ascending stream-id order.
    pub outcomes: Vec<(StreamId, RunOutcome)>,
    /// Every hosted session's telemetry folded together (`None` when the
    /// server ran with telemetry off or the shard hosted no streams).
    pub telemetry: Option<TelemetrySnapshot>,
    /// Peak occupancy of the shard's ring inbox, in messages — how close
    /// the shard ran to saturating its producers.
    pub ring_high_water: u64,
}

/// The per-thread state of one shard worker: its session table plus one
/// reusable block of decode scratch shared by every hosted session.
pub(crate) struct ShardWorker {
    shard: usize,
    telemetry: TelemetryLevel,
    remset: Arc<InterShardRemset>,
    /// Durability root + mode when the fleet persists: each stream gets
    /// its own recoverable data directory `<root>/stream-NNNNNN/`.
    persist: Option<(PathBuf, DurabilityMode)>,
    sessions: BTreeMap<StreamId, Shard>,
    scratch: EventBlock,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        telemetry: TelemetryLevel,
        remset: Arc<InterShardRemset>,
        persist: Option<(PathBuf, DurabilityMode)>,
    ) -> Self {
        Self {
            shard,
            telemetry,
            remset,
            persist,
            sessions: BTreeMap::new(),
            scratch: EventBlock::new(),
        }
    }

    /// Drains the ring until the sender closes, then finishes all
    /// sessions into the shard's report. The receiver guard marks the
    /// ring dead on any exit — return or panic — so parked producers fail
    /// fast instead of deadlocking.
    pub(crate) fn run(mut self, inbox: Arc<RingInbox<ShardMsg>>) -> Result<ShardReport> {
        let guard = ReceiverGuard(Arc::clone(&inbox));
        while let Some(msg) = inbox.pop() {
            match msg {
                ShardMsg::Open { stream, cfg } => self.open(stream, &cfg)?,
                ShardMsg::Data { stream, payload } => {
                    self.step_run(stream, payload, &inbox)?;
                }
                ShardMsg::Link {
                    source,
                    target,
                    node,
                } => self.link(source, target, node),
            }
        }
        let high_water = guard.ring().high_water() as u64;
        self.finish(high_water)
    }

    /// Steps one coalesced run: the popped payload plus every data
    /// message for the same stream sitting consecutively at the head of
    /// the ring. Only head messages are taken (`pop_front_if`), so the
    /// ring's arrival order — and with it every link's apply-point — is
    /// exactly what a message-at-a-time drain would see.
    fn step_run(
        &mut self,
        stream: StreamId,
        first: DataPayload,
        inbox: &RingInbox<ShardMsg>,
    ) -> Result<()> {
        let shard = self
            .sessions
            .get_mut(&stream)
            .ok_or_else(|| PgcError::Session(format!("stream {stream} is not open")))?;
        let block = &mut self.scratch;
        block.clear();
        let mut next = Some(first);
        while let Some(payload) = next {
            match payload {
                DataPayload::Owned(events) => {
                    // Pack owned events into the scratch block, flushing
                    // each time it fills — consecutive small batches merge
                    // into full blocks.
                    for event in &events {
                        block.push(event);
                        if block.is_full() {
                            shard.step_block(block)?;
                            block.clear();
                        }
                    }
                }
                DataPayload::Segment(segment) => {
                    // Order: anything packed so far precedes the segment.
                    if !block.is_empty() {
                        shard.step_block(block)?;
                        block.clear();
                    }
                    let mut cursor = segment.cursor();
                    while cursor.next_block(block)? > 0 {
                        shard.step_block(block)?;
                    }
                    block.clear();
                }
            }
            next = inbox
                .pop_front_if(|msg| matches!(msg, ShardMsg::Data { stream: s, .. } if *s == stream))
                .map(|msg| match msg {
                    ShardMsg::Data { payload, .. } => payload,
                    _ => unreachable!("predicate admits only data messages"),
                });
        }
        if !block.is_empty() {
            shard.step_block(block)?;
            block.clear();
        }
        Ok(())
    }

    fn open(&mut self, stream: StreamId, cfg: &RunConfig) -> Result<()> {
        if self.sessions.contains_key(&stream) {
            return Err(PgcError::Session(format!("stream {stream} already open")));
        }
        // A persisting fleet gives each stream its own data directory —
        // the stream's log + snapshots recover independently of every
        // other tenant via `pgc_sim::durable::recover`.
        let durable_cfg;
        let cfg = match &self.persist {
            Some((root, mode)) => {
                let dir = root.join(format!("stream-{:06}", stream.0));
                let mut cfg = cfg.clone();
                cfg.durability = match mode {
                    DurabilityMode::Off => DurabilityConfig::off(),
                    DurabilityMode::LogOnly => DurabilityConfig::log_only(&dir),
                    DurabilityMode::SnapshotAndLog => DurabilityConfig::snapshot_and_log(&dir),
                };
                durable_cfg = cfg;
                &durable_cfg
            }
            None => cfg,
        };
        let mut shard = Shard::new(cfg)?;
        // Bus registration order is part of the determinism contract:
        // bridge first, telemetry last — constant across shard counts.
        shard.add_observer(Box::new(RemsetBridge::new(
            stream,
            Arc::clone(&self.remset),
        )));
        shard.enable_telemetry(self.telemetry);
        self.sessions.insert(stream, shard);
        Ok(())
    }

    /// Resolves a cross-shard reference against the target session and
    /// records it; unresolvable targets count as dangling instead of
    /// failing (the link API is advisory bookkeeping, not a mutation).
    fn link(&mut self, source: StreamId, target: StreamId, node: NodeId) {
        let resolved = self.sessions.get(&target).and_then(|session| {
            let oid = session.oid_of(node)?;
            let partition = session.db().partition_of(oid)?;
            Some((oid, partition))
        });
        match resolved {
            Some((oid, partition)) => {
                self.remset.register(source, target, oid, partition);
            }
            None => self.remset.note_dangling(target),
        }
    }

    fn finish(self, ring_high_water: u64) -> Result<ShardReport> {
        let mut outcomes = Vec::with_capacity(self.sessions.len());
        let mut telemetry: Option<TelemetrySnapshot> = None;
        for (stream, shard) in self.sessions {
            let outcome = shard.finish(GenStats::default())?;
            if let Some(snap) = &outcome.telemetry {
                match telemetry.as_mut() {
                    Some(merged) => merged.merge(snap),
                    None => telemetry = Some(snap.clone()),
                }
            }
            outcomes.push((stream, outcome));
        }
        Ok(ShardReport {
            shard: self.shard,
            outcomes,
            telemetry,
            ring_high_water,
        })
    }
}
