//! The session layer: shard workers multiplexing client streams.
//!
//! Each shard is one OS thread owning a table of sessions — a session is
//! one client stream bound to its own [`Shard`] (database + policy +
//! scheduler + barrier bus + telemetry). The server routes every message
//! for a stream to its home shard's inbox; the worker drains the inbox in
//! arrival order and steps the addressed session. Because one server
//! handle feeds the inboxes, each session sees its events in exactly the
//! submission order — thousands of streams interleave freely on the wire
//! while every individual stream replays deterministically.
//!
//! At shutdown the worker finishes its sessions in ascending stream-id
//! order and reports per-stream [`RunOutcome`]s plus one merged telemetry
//! snapshot, ready for the fleet-wide fold.

use crate::remset::{InterShardRemset, RemsetBridge};
use crate::router::StreamId;
use pgc_sim::{RunConfig, RunOutcome, Shard};
use pgc_telemetry::{TelemetryLevel, TelemetrySnapshot};
use pgc_types::{PgcError, Result};
use pgc_workload::generator::GenStats;
use pgc_workload::{Event, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One message on a shard inbox.
pub(crate) enum ShardMsg {
    /// Open a session for `stream` under `cfg`.
    Open {
        /// The stream the session serves.
        stream: StreamId,
        /// The session's full run configuration (boxed: it dwarfs the
        /// other variants).
        cfg: Box<RunConfig>,
    },
    /// Step `stream`'s session through a batch of events.
    Batch {
        /// The addressed stream.
        stream: StreamId,
        /// The events, in submission order.
        events: Vec<Event>,
    },
    /// Register that `source`'s graph references `node` in `target`'s
    /// graph. Routed to the *target*'s home shard, which resolves the
    /// node against the target session and records the link in the
    /// shared inter-shard remset.
    Link {
        /// The referencing stream.
        source: StreamId,
        /// The referenced stream (lives on this shard).
        target: StreamId,
        /// The referenced node in the target's workload id space.
        node: NodeId,
    },
}

/// What one shard worker hands back at shutdown.
pub struct ShardReport {
    /// The shard's index.
    pub shard: usize,
    /// One outcome per hosted session, in ascending stream-id order.
    pub outcomes: Vec<(StreamId, RunOutcome)>,
    /// Every hosted session's telemetry folded together (`None` when the
    /// server ran with telemetry off or the shard hosted no streams).
    pub telemetry: Option<TelemetrySnapshot>,
}

/// The per-thread state of one shard worker: its session table.
pub(crate) struct ShardWorker {
    shard: usize,
    telemetry: TelemetryLevel,
    remset: Arc<InterShardRemset>,
    sessions: BTreeMap<StreamId, Shard>,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        telemetry: TelemetryLevel,
        remset: Arc<InterShardRemset>,
    ) -> Self {
        Self {
            shard,
            telemetry,
            remset,
            sessions: BTreeMap::new(),
        }
    }

    /// Drains the inbox until every sender hangs up, then finishes all
    /// sessions into the shard's report.
    pub(crate) fn run(mut self, inbox: std::sync::mpsc::Receiver<ShardMsg>) -> Result<ShardReport> {
        for msg in inbox.iter() {
            self.handle(msg)?;
        }
        Ok(self.finish())
    }

    fn handle(&mut self, msg: ShardMsg) -> Result<()> {
        match msg {
            ShardMsg::Open { stream, cfg } => self.open(stream, &cfg),
            ShardMsg::Batch { stream, events } => self.session(stream)?.step_batch(&events),
            ShardMsg::Link {
                source,
                target,
                node,
            } => {
                self.link(source, target, node);
                Ok(())
            }
        }
    }

    fn open(&mut self, stream: StreamId, cfg: &RunConfig) -> Result<()> {
        if self.sessions.contains_key(&stream) {
            return Err(PgcError::Session(format!("stream {stream} already open")));
        }
        let mut shard = Shard::new(cfg)?;
        // Bus registration order is part of the determinism contract:
        // bridge first, telemetry last — constant across shard counts.
        shard.add_observer(Box::new(RemsetBridge::new(
            stream,
            Arc::clone(&self.remset),
        )));
        shard.enable_telemetry(self.telemetry);
        self.sessions.insert(stream, shard);
        Ok(())
    }

    fn session(&mut self, stream: StreamId) -> Result<&mut Shard> {
        self.sessions
            .get_mut(&stream)
            .ok_or_else(|| PgcError::Session(format!("stream {stream} is not open")))
    }

    /// Resolves a cross-shard reference against the target session and
    /// records it; unresolvable targets count as dangling instead of
    /// failing (the link API is advisory bookkeeping, not a mutation).
    fn link(&mut self, source: StreamId, target: StreamId, node: NodeId) {
        let resolved = self.sessions.get(&target).and_then(|session| {
            let oid = session.oid_of(node)?;
            let partition = session.db().partition_of(oid)?;
            Some((oid, partition))
        });
        match resolved {
            Some((oid, partition)) => {
                self.remset.register(source, target, oid, partition);
            }
            None => self.remset.note_dangling(),
        }
    }

    fn finish(self) -> ShardReport {
        let mut outcomes = Vec::with_capacity(self.sessions.len());
        let mut telemetry: Option<TelemetrySnapshot> = None;
        for (stream, shard) in self.sessions {
            let outcome = shard.finish(GenStats::default());
            if let Some(snap) = &outcome.telemetry {
                match telemetry.as_mut() {
                    Some(merged) => merged.merge(snap),
                    None => telemetry = Some(snap.clone()),
                }
            }
            outcomes.push((stream, outcome));
        }
        ShardReport {
            shard: self.shard,
            outcomes,
            telemetry,
        }
    }
}
