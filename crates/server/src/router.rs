//! Deterministic stream-to-shard routing.
//!
//! The router is a pure function of the stream id and the shard count:
//! [`pgc_types::fast_hash_u64`] over the stream id, reduced modulo the
//! shard count. No load balancing, no affinity tables, no state — so two
//! servers with the same shard count place every stream identically, and
//! a stream's home shard never changes over the life of a server.
//!
//! Placement only decides *which worker thread executes* a session; the
//! session itself is a self-contained [`pgc_sim::Shard`], so placement
//! cannot leak into results. That is the server's determinism argument in
//! one line: changing the shard count changes placement and nothing else.

/// A client stream identity: one tenant, one event stream, one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Hashes workload streams onto a fixed set of shards.
#[derive(Debug, Clone, Copy)]
pub struct Router {
    shards: usize,
}

impl Router {
    /// A router over `shards` shards (clamped to at least one).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
        }
    }

    /// The number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The home shard for `stream` — stable for the life of the router.
    pub fn route(&self, stream: StreamId) -> usize {
        (pgc_types::fast_hash_u64(stream.0) % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let router = Router::new(4);
        for id in 0..1000 {
            let shard = router.route(StreamId(id));
            assert!(shard < 4);
            assert_eq!(shard, router.route(StreamId(id)), "stable placement");
        }
    }

    #[test]
    fn one_shard_takes_everything_and_zero_clamps() {
        assert_eq!(Router::new(1).route(StreamId(99)), 0);
        assert_eq!(Router::new(0).shards(), 1);
    }

    #[test]
    fn hashing_spreads_sequential_streams() {
        let router = Router::new(4);
        let mut counts = [0u32; 4];
        for id in 0..400 {
            counts[router.route(StreamId(id))] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(n > 50, "shard {shard} starved: {counts:?}");
        }
    }
}
