//! Intra-run parallelism knob and the concurrent mark bit set.
//!
//! The simulator's headline guarantee is determinism: the same
//! configuration and seed produce bit-identical results, run after run.
//! [`Parallelism`] extends that guarantee into multi-threaded execution —
//! `Deterministic(n)` modes are *pinned* to produce exactly the results of
//! `Serial`, for any `n`, by restricting worker threads to confluent work
//! (monotone reachability marking, read-only collection planning) and
//! applying all order-sensitive effects on the coordinating thread in a
//! canonical order.
//!
//! [`AtomicBitSet`] is the shared-memory half of that contract: a dense bit
//! set over object ids whose `insert` is an atomic fetch-or, so any number
//! of marking workers can race on it and still compute the same *set* — set
//! union is confluent regardless of interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

/// How much intra-run parallelism a simulation may use.
///
/// `Serial` is the reference mode: one thread does everything.
/// `Deterministic(n)` lets hot kernels (reachability marking, collection
/// planning) fan out over up to `n` worker threads while remaining
/// bit-identical to `Serial` — victim sequences, run totals, telemetry
/// score bits, and the barrier event order all match exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Single-threaded reference execution.
    #[default]
    Serial,
    /// Up to `n` worker threads, pinned bit-identical to [`Parallelism::Serial`].
    /// `Deterministic(0)` is treated as `Deterministic(1)`.
    Deterministic(u32),
}

impl Parallelism {
    /// A deterministic mode with `n` workers (`n` is clamped to at least 1).
    pub fn deterministic(n: u32) -> Self {
        Parallelism::Deterministic(n.max(1))
    }

    /// The number of worker threads this mode may spawn (1 for `Serial`).
    #[inline]
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Deterministic(n) => n.max(1) as usize,
        }
    }

    /// True when parallel kernels should actually fan out (more than one
    /// worker is available).
    #[inline]
    pub fn is_parallel(self) -> bool {
        self.worker_count() > 1
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Serial => write!(f, "serial"),
            Parallelism::Deterministic(n) => write!(f, "deterministic({})", (*n).max(1)),
        }
    }
}

/// A fixed-capacity concurrent bit set over `u64` indices.
///
/// The sharable sibling of [`crate::DenseBitSet`]: words are `AtomicU64`s
/// and `insert` is a relaxed `fetch_or`, so concurrent marking workers can
/// all test-and-set membership through a shared reference. The *resulting
/// set* is independent of thread interleaving (set union is confluent),
/// which is what makes parallel reachability marking deterministic.
///
/// Unlike `DenseBitSet` it does not grow on insert: capacity is fixed by
/// [`AtomicBitSet::reset`] (out-of-range inserts would require locking).
/// Callers size it to the database's oid bound before each pass.
///
/// ```
/// use pgc_types::AtomicBitSet;
///
/// let mut s = AtomicBitSet::new();
/// s.reset(128);
/// assert!(s.insert(3));
/// assert!(!s.insert(3));
/// assert!(s.contains(3));
/// assert_eq!(s.count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct AtomicBitSet {
    words: Vec<AtomicU64>,
}

impl AtomicBitSet {
    /// Creates an empty set with zero capacity (call [`AtomicBitSet::reset`]
    /// before use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every bit and ensures indices `0..bits` fit, reusing the
    /// existing allocation when possible. Requires `&mut self`, so it
    /// happens strictly before or after any concurrent sharing.
    pub fn reset(&mut self, bits: usize) {
        let need = bits.div_ceil(64);
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
        if self.words.len() < need {
            self.words.resize_with(need, || AtomicU64::new(0));
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Atomically inserts `bit`, returning true if it was absent.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is beyond the capacity set by the last
    /// [`AtomicBitSet::reset`].
    #[inline]
    pub fn insert(&self, bit: u64) -> bool {
        let mask = 1u64 << (bit % 64);
        let prev = self.words[(bit / 64) as usize].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Membership test (out-of-capacity indices are absent, not a panic).
    #[inline]
    pub fn contains(&self, bit: u64) -> bool {
        self.words
            .get((bit / 64) as usize)
            .is_some_and(|w| w.load(Ordering::Relaxed) & (1 << (bit % 64)) != 0)
    }

    /// Number of set bits. Exact only once all concurrent inserters have
    /// been joined (relaxed loads observe a quiescent set exactly).
    pub fn count(&self) -> u64 {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_worker_counts() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert!(!Parallelism::Serial.is_parallel());
        assert_eq!(Parallelism::deterministic(0).worker_count(), 1);
        assert_eq!(Parallelism::Deterministic(0).worker_count(), 1);
        assert_eq!(Parallelism::deterministic(4).worker_count(), 4);
        assert!(Parallelism::deterministic(4).is_parallel());
        assert!(!Parallelism::deterministic(1).is_parallel());
        assert_eq!(Parallelism::default(), Parallelism::Serial);
        assert_eq!(Parallelism::Serial.to_string(), "serial");
        assert_eq!(
            Parallelism::deterministic(4).to_string(),
            "deterministic(4)"
        );
    }

    #[test]
    fn atomic_bitset_matches_dense_reference() {
        use crate::{DenseBitSet, SimRng};
        let mut rng = SimRng::new(7);
        let mut atomic = AtomicBitSet::new();
        atomic.reset(700);
        let mut dense = DenseBitSet::new();
        for _ in 0..5000 {
            let bit = rng.below(700);
            assert_eq!(atomic.insert(bit), dense.insert(bit));
            assert_eq!(atomic.contains(bit), dense.contains(bit));
        }
        assert_eq!(atomic.count(), dense.len() as u64);
        // Reset keeps capacity, drops membership.
        atomic.reset(700);
        assert_eq!(atomic.count(), 0);
        assert!(!atomic.contains(1));
    }

    #[test]
    fn concurrent_inserts_converge_to_the_same_set() {
        let mut s = AtomicBitSet::new();
        s.reset(4096);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    // Overlapping ranges: every bit raced by two threads.
                    for bit in (t * 1024)..((t + 2) * 1024).min(4096) {
                        s.insert(bit as u64);
                    }
                });
            }
        });
        assert_eq!(s.count(), 4096);
    }

    #[test]
    fn out_of_capacity_contains_is_false() {
        let mut s = AtomicBitSet::new();
        s.reset(64);
        assert!(!s.contains(1000));
    }
}
