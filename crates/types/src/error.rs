//! Workspace-wide error type.

use crate::ids::{Oid, PartitionId};
use crate::units::Bytes;
use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, PgcError>;

/// Errors surfaced by the storage model, database, collector, and trace
/// codec.
///
/// The simulator is deliberately strict: operations on unknown objects or
/// malformed configurations are reported as errors rather than silently
/// ignored, because a trace that references a reclaimed object indicates a
/// bug in either the workload generator or the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PgcError {
    /// A configuration constraint was violated (see
    /// [`crate::config::DbConfig::validate`]).
    InvalidConfig(&'static str),
    /// An operation referenced an object id that is not (or is no longer)
    /// present in the object table.
    UnknownObject(Oid),
    /// A replayed workload event referenced a node index that was never
    /// materialised as an object (the payload is the raw node index, not
    /// an [`Oid`] — the two id spaces are unrelated).
    UnknownNode(u64),
    /// An operation referenced a slot index beyond the object's slot count.
    SlotOutOfRange {
        /// The object whose slots were indexed.
        oid: Oid,
        /// The offending slot index.
        slot: u16,
        /// How many slots the object actually has.
        len: usize,
    },
    /// An object was too large to ever fit in a partition.
    ObjectTooLarge {
        /// Requested object size.
        size: Bytes,
        /// Capacity of one partition.
        partition_capacity: Bytes,
    },
    /// An operation referenced a partition id that does not exist.
    UnknownPartition(PartitionId),
    /// The collector was asked to collect the designated empty partition.
    CollectEmptyPartition(PartitionId),
    /// A trace byte stream was malformed or truncated.
    TraceFormat(String),
    /// An I/O error from reading or writing a trace file.
    TraceIo(String),
    /// A sharded-runtime session error: an unknown or duplicate stream,
    /// or a shard worker that went away.
    Session(String),
}

impl fmt::Display for PgcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PgcError::UnknownObject(oid) => write!(f, "unknown object {oid}"),
            PgcError::UnknownNode(index) => {
                write!(f, "workload node n#{index} has no materialised object")
            }
            PgcError::SlotOutOfRange { oid, slot, len } => {
                write!(f, "slot s{slot} out of range for {oid} (has {len} slots)")
            }
            PgcError::ObjectTooLarge {
                size,
                partition_capacity,
            } => write!(
                f,
                "object of {size} cannot fit in a partition of {partition_capacity}"
            ),
            PgcError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            PgcError::CollectEmptyPartition(p) => {
                write!(
                    f,
                    "cannot collect {p}: it is the designated empty partition"
                )
            }
            PgcError::TraceFormat(msg) => write!(f, "malformed trace: {msg}"),
            PgcError::TraceIo(msg) => write!(f, "trace I/O error: {msg}"),
            PgcError::Session(msg) => write!(f, "session error: {msg}"),
        }
    }
}

impl std::error::Error for PgcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offender() {
        let e = PgcError::UnknownObject(Oid(9));
        assert_eq!(e.to_string(), "unknown object o#9");

        let e = PgcError::SlotOutOfRange {
            oid: Oid(3),
            slot: 5,
            len: 2,
        };
        assert!(e.to_string().contains("s5"));
        assert!(e.to_string().contains("o#3"));
        assert!(e.to_string().contains("2 slots"));

        let e = PgcError::ObjectTooLarge {
            size: Bytes::from_kib(512),
            partition_capacity: Bytes::from_kib(384),
        };
        assert!(e.to_string().contains("512KiB"));
        assert!(e.to_string().contains("384KiB"));

        let e = PgcError::CollectEmptyPartition(PartitionId(4));
        assert!(e.to_string().contains("P4"));

        let e = PgcError::UnknownNode(99);
        assert!(e.to_string().contains("n#99"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&PgcError::InvalidConfig("x"));
    }
}
