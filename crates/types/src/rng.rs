//! Deterministic random number generation for simulations.
//!
//! Every source of randomness in the workspace (workload generation, the
//! `Random` selection policy, object sizing) draws from a [`SimRng`] that is
//! seeded explicitly, so a simulation run is a pure function of its
//! configuration and seed. The paper reports means and standard deviations
//! over ten seeds; the experiment runner does the same by constructing ten
//! `SimRng`s from consecutive seeds.
//!
//! The generator is a self-contained **xoshiro256++** implementation seeded
//! through SplitMix64, so the workspace builds with no external crates (the
//! build environment has no network access to a registry). The stream
//! therefore differs from the earlier `rand::rngs::StdRng`-backed
//! implementation; EXPERIMENTS.md records the re-measured table values.

/// A seeded, reproducible random number generator.
///
/// xoshiro256++ (Blackman & Vigna) with its 256-bit state filled from the
/// 64-bit seed via SplitMix64. It records its seed (handy for reporting
/// which run produced an anomaly) and offers [`SimRng::fork`] for deriving
/// independent substreams, so that adding a consumer of randomness in one
/// component does not perturb the stream seen by another.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
    forks: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Standard xoshiro seeding: run SplitMix64 from the seed to fill
        // the state. SplitMix64 is equidistributed, so no all-zero state
        // can arise.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(sm)
        };
        let state = [next(), next(), next(), next()];
        Self {
            seed,
            state,
            forks: 0,
        }
    }

    /// The seed this generator was created with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator.
    ///
    /// Each call yields a stream seeded from `(seed, fork index)` via
    /// SplitMix64 finalization, so forks are decorrelated from both the
    /// parent and each other without consuming parent entropy.
    pub fn fork(&mut self) -> SimRng {
        self.forks += 1;
        let sub = splitmix64(self.seed ^ splitmix64(self.forks));
        SimRng::new(sub)
    }

    /// The next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        self.state = [s0, s1, s2, s3.rotate_left(45)];
        result
    }

    /// Uniform integer in `[0, bound)`. `bound` must be positive.
    ///
    /// Lemire's nearly-divisionless unbiased bounded sampling.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        match hi.checked_sub(lo).and_then(|w| w.checked_add(1)) {
            Some(width) => lo + self.below(width),
            // The full u64 range: every output is in range.
            None => self.next_u64(),
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits: the standard dyadic-rational recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        debug_assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Picks a uniformly random index into a collection of length `len`.
    #[inline]
    pub fn pick_index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

/// SplitMix64 finalizer, used for state seeding and fork decorrelation.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SimRng::new(0);
        let outputs: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
        assert!(outputs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        // Forking must not depend on how much entropy the parent consumed.
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let _ = b.below(10); // consume from b only
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..50 {
            assert_eq!(fa.below(1 << 30), fb.below(1 << 30));
        }
    }

    #[test]
    fn successive_forks_differ() {
        let mut a = SimRng::new(7);
        let mut f1 = a.fork();
        let mut f2 = a.fork();
        let v1: Vec<u64> = (0..16).map(|_| f1.below(u64::MAX)).collect();
        let v2: Vec<u64> = (0..16).map(|_| f2.below(u64::MAX)).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(5);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = SimRng::new(6);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = SimRng::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn range_inclusive_handles_full_range() {
        let mut r = SimRng::new(19);
        // Must not overflow or panic on the degenerate full-width range.
        for _ in 0..16 {
            let _ = r.range_inclusive(0, u64::MAX);
        }
        assert_eq!(r.range_inclusive(7, 7), 7);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::new(13);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.pick(&items)));
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::new(17);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_mean_is_centered() {
        let mut r = SimRng::new(23);
        let sum: f64 = (0..10_000).map(|_| r.unit()).sum();
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean={mean}");
    }

    #[test]
    fn seed_is_recorded() {
        assert_eq!(SimRng::new(123).seed(), 123);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference outputs for xoshiro256++ with state {1, 2, 3, 4}
        // (from the public-domain reference implementation).
        let mut r = SimRng::new(0);
        r.state = [1, 2, 3, 4];
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(r.next_u64(), e);
        }
    }
}
