//! Deterministic random number generation for simulations.
//!
//! Every source of randomness in the workspace (workload generation, the
//! `Random` selection policy, object sizing) draws from a [`SimRng`] that is
//! seeded explicitly, so a simulation run is a pure function of its
//! configuration and seed. The paper reports means and standard deviations
//! over ten seeds; the experiment runner does the same by constructing ten
//! `SimRng`s from consecutive seeds.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, reproducible random number generator.
///
/// Thin wrapper over [`rand::rngs::StdRng`] that records its seed (handy for
/// reporting which run produced an anomaly) and offers [`SimRng::fork`] for
/// deriving independent substreams, so that adding a consumer of randomness
/// in one component does not perturb the stream seen by another.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
    forks: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            inner: StdRng::seed_from_u64(seed),
            forks: 0,
        }
    }

    /// The seed this generator was created with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator.
    ///
    /// Each call yields a stream seeded from `(seed, fork index)` via
    /// SplitMix64 finalization, so forks are decorrelated from both the
    /// parent and each other without consuming parent entropy.
    pub fn fork(&mut self) -> SimRng {
        self.forks += 1;
        let sub = splitmix64(self.seed ^ splitmix64(self.forks));
        SimRng::new(sub)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be positive.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        self.inner.random_range(0..bound)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.random_range(lo..=hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random_bool(p)
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.random_range(0.0..1.0)
    }

    /// Picks a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        debug_assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Picks a uniformly random index into a collection of length `len`.
    #[inline]
    pub fn pick_index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

/// SplitMix64 finalizer, used to decorrelate fork seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        // Forking must not depend on how much entropy the parent consumed.
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let _ = b.below(10); // consume from b only
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..50 {
            assert_eq!(fa.below(1 << 30), fb.below(1 << 30));
        }
    }

    #[test]
    fn successive_forks_differ() {
        let mut a = SimRng::new(7);
        let mut f1 = a.fork();
        let mut f2 = a.fork();
        let v1: Vec<u64> = (0..16).map(|_| f1.below(u64::MAX)).collect();
        let v2: Vec<u64> = (0..16).map(|_| f2.below(u64::MAX)).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = SimRng::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::new(13);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.pick(&items)));
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::new(17);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seed_is_recorded() {
        assert_eq!(SimRng::new(123).seed(), 123);
    }
}
