//! Byte and page unit arithmetic.
//!
//! The paper's cost model works at page granularity (8-kilobyte pages),
//! while objects are sized in bytes (uniform 50–150 bytes, plus occasional
//! 64 KB "large" leaves). This module provides a [`Bytes`] newtype with
//! saturating-free checked-by-construction arithmetic for the small set of
//! operations the simulator needs, and helpers to convert byte extents into
//! page spans.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// The page size used throughout the paper's evaluation: 8 kilobytes.
pub const DEFAULT_PAGE_SIZE: usize = 8 * 1024;

/// A byte quantity (object sizes, partition capacities, garbage volumes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Constructs a quantity from kilobytes (1 KB = 1024 bytes).
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Constructs a quantity from megabytes (1 MB = 1024 * 1024 bytes).
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// This quantity expressed in (fractional) kilobytes.
    #[inline]
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// This quantity expressed in (fractional) megabytes.
    #[inline]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Number of whole pages of size `page_size` needed to hold this many
    /// bytes (i.e. the ceiling of `self / page_size`).
    #[inline]
    pub fn pages_ceil(self, page_size: usize) -> PageCount {
        debug_assert!(page_size > 0, "page size must be positive");
        PageCount(self.0.div_ceil(page_size as u64))
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    #[inline]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// True if this is exactly zero bytes.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        debug_assert!(self.0 >= rhs.0, "byte subtraction underflow");
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        debug_assert!(self.0 >= rhs.0, "byte subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 && self.0.is_multiple_of(1024 * 1024) {
            write!(f, "{}MiB", self.0 / (1024 * 1024))
        } else if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{}KiB", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A count of pages (buffer capacities, partition sizes, I/O totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageCount(pub u64);

impl PageCount {
    /// Raw page count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Total bytes occupied by this many pages of size `page_size`.
    #[inline]
    pub fn bytes(self, page_size: usize) -> Bytes {
        Bytes(self.0 * page_size as u64)
    }
}

impl Add for PageCount {
    type Output = PageCount;
    #[inline]
    fn add(self, rhs: PageCount) -> PageCount {
        PageCount(self.0 + rhs.0)
    }
}

impl AddAssign for PageCount {
    #[inline]
    fn add_assign(&mut self, rhs: PageCount) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for PageCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pages", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Bytes::from_kib(1).get(), 1024);
        assert_eq!(Bytes::from_mib(2).get(), 2 * 1024 * 1024);
        assert_eq!(Bytes::ZERO.get(), 0);
        assert!(Bytes::ZERO.is_zero());
        assert!(!Bytes(1).is_zero());
    }

    #[test]
    fn pages_ceil_rounds_up() {
        let ps = DEFAULT_PAGE_SIZE;
        assert_eq!(Bytes(0).pages_ceil(ps), PageCount(0));
        assert_eq!(Bytes(1).pages_ceil(ps), PageCount(1));
        assert_eq!(Bytes(ps as u64).pages_ceil(ps), PageCount(1));
        assert_eq!(Bytes(ps as u64 + 1).pages_ceil(ps), PageCount(2));
        assert_eq!(Bytes(ps as u64 * 8).pages_ceil(ps), PageCount(8));
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Bytes(100);
        let b = Bytes(28);
        assert_eq!(a + b, Bytes(128));
        assert_eq!(a - b, Bytes(72));
        assert_eq!(a * 3, Bytes(300));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        let mut c = a;
        c += b;
        c -= Bytes(28);
        assert_eq!(c, a);
    }

    #[test]
    fn sum_of_bytes() {
        let total: Bytes = [Bytes(1), Bytes(2), Bytes(3)].into_iter().sum();
        assert_eq!(total, Bytes(6));
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Bytes(512).to_string(), "512B");
        assert_eq!(Bytes::from_kib(48).to_string(), "48KiB");
        assert_eq!(Bytes::from_mib(5).to_string(), "5MiB");
        assert_eq!(Bytes(1536).to_string(), "1536B");
        assert_eq!(PageCount(48).to_string(), "48 pages");
    }

    #[test]
    fn page_count_bytes_round_trip() {
        let pc = PageCount(48);
        assert_eq!(pc.bytes(DEFAULT_PAGE_SIZE), Bytes::from_kib(48 * 8));
        assert_eq!(
            pc.bytes(DEFAULT_PAGE_SIZE).pages_ceil(DEFAULT_PAGE_SIZE),
            pc
        );
    }

    #[test]
    fn fractional_views() {
        assert!((Bytes::from_kib(1).as_kib_f64() - 1.0).abs() < 1e-12);
        assert!((Bytes::from_mib(1).as_mib_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    #[cfg(debug_assertions)]
    fn subtraction_underflow_panics_in_debug() {
        let _ = Bytes(1) - Bytes(2);
    }
}
