//! Simulation configuration.
//!
//! [`DbConfig`] gathers the knobs the paper's evaluation section varies or
//! holds fixed: page size (always 8 KB), partition size in pages (24–100,
//! with 48 for the headline tables), buffer size (always equal to one
//! partition), the garbage-collection trigger (a fixed number of pointer
//! overwrites, 150–300), and the maximum object weight used by the
//! `WeightedPointer` policy (16, i.e. 4 bits).

use crate::error::{PgcError, Result};
use crate::units::{Bytes, PageCount, DEFAULT_PAGE_SIZE};

/// How new objects are placed among partitions.
///
/// The paper's test database "attempts to place a new object near its
/// parent" — the clustering that makes a dying subtree leave *concentrated*
/// garbage. The alternatives exist for ablations of that premise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Try the parent's partition first, then any partition with room
    /// (the paper's policy).
    #[default]
    NearParent,
    /// Ignore the parent: first existing partition with room.
    FirstFit,
    /// Ignore the parent: rotate through partitions with room, spreading
    /// related objects apart (an anti-clustering worst case).
    Spread,
}

/// Static configuration of the simulated object database.
///
/// Construct with [`DbConfig::default`] and adjust with the `with_*`
/// builders; [`DbConfig::validate`] is called by the database constructor,
/// so invalid combinations are rejected before any simulation runs.
///
/// ```
/// use pgc_types::DbConfig;
///
/// let cfg = DbConfig::default()
///     .with_partition_pages(48)
///     .with_gc_overwrite_threshold(200);
/// assert_eq!(cfg.partition_bytes().get(), 48 * 8192);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbConfig {
    /// Size of one page in bytes. The paper uses 8 KB pages throughout.
    pub page_size: usize,
    /// Number of pages per partition (paper: 24–100, default 48).
    pub partition_pages: u64,
    /// Number of page frames in the I/O buffer. The paper always sizes the
    /// buffer equal to one partition.
    pub buffer_pages: u64,
    /// Garbage collection is triggered after this many pointer *overwrites*
    /// (stores that replace a previously non-null pointer). Paper: 150–300.
    pub gc_overwrite_threshold: u64,
    /// Maximum object weight for the `WeightedPointer` policy. The paper
    /// stores weights in 4 bits, so the maximum (and default) is 16.
    pub max_weight: u8,
    /// Object placement among partitions (paper: near the parent).
    pub placement: PlacementPolicy,
    /// When set, run under the client/server cost model: a client cache of
    /// this many page frames sits in front of the `buffer_pages`-frame
    /// server buffer, and client misses cost network messages. `None`
    /// (the paper's setup) uses the single buffer.
    pub client_cache_pages: Option<u64>,
}

impl Default for DbConfig {
    fn default() -> Self {
        Self {
            page_size: DEFAULT_PAGE_SIZE,
            partition_pages: 48,
            buffer_pages: 48,
            gc_overwrite_threshold: 250,
            max_weight: 16,
            placement: PlacementPolicy::NearParent,
            client_cache_pages: None,
        }
    }
}

impl DbConfig {
    /// Sets the page size in bytes.
    #[must_use]
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Sets the partition size in pages **and** keeps the buffer the same
    /// size as one partition, following the paper's experimental setup. Use
    /// [`DbConfig::with_buffer_pages`] afterwards to decouple them.
    #[must_use]
    pub fn with_partition_pages(mut self, pages: u64) -> Self {
        self.partition_pages = pages;
        self.buffer_pages = pages;
        self
    }

    /// Sets the buffer size in page frames.
    #[must_use]
    pub fn with_buffer_pages(mut self, pages: u64) -> Self {
        self.buffer_pages = pages;
        self
    }

    /// Sets the number of pointer overwrites between collections.
    #[must_use]
    pub fn with_gc_overwrite_threshold(mut self, overwrites: u64) -> Self {
        self.gc_overwrite_threshold = overwrites;
        self
    }

    /// Sets the maximum object weight (the `WeightedPointer` cap).
    #[must_use]
    pub fn with_max_weight(mut self, max_weight: u8) -> Self {
        self.max_weight = max_weight;
        self
    }

    /// Sets the object placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Enables the client/server cost model with a client cache of
    /// `pages` frames (the server buffer keeps `buffer_pages` frames).
    #[must_use]
    pub fn with_client_cache_pages(mut self, pages: u64) -> Self {
        self.client_cache_pages = Some(pages);
        self
    }

    /// Capacity of one partition in bytes.
    #[inline]
    pub fn partition_bytes(&self) -> Bytes {
        PageCount(self.partition_pages).bytes(self.page_size)
    }

    /// Capacity of the page buffer in bytes.
    #[inline]
    pub fn buffer_bytes(&self) -> Bytes {
        PageCount(self.buffer_pages).bytes(self.page_size)
    }

    /// Checks internal consistency; returns a descriptive error for the
    /// first violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.page_size == 0 {
            return Err(PgcError::InvalidConfig("page_size must be positive"));
        }
        if self.partition_pages == 0 {
            return Err(PgcError::InvalidConfig("partition_pages must be positive"));
        }
        if self.buffer_pages == 0 {
            return Err(PgcError::InvalidConfig("buffer_pages must be positive"));
        }
        if self.gc_overwrite_threshold == 0 {
            return Err(PgcError::InvalidConfig(
                "gc_overwrite_threshold must be positive",
            ));
        }
        if self.max_weight == 0 {
            return Err(PgcError::InvalidConfig("max_weight must be positive"));
        }
        if self.client_cache_pages == Some(0) {
            return Err(PgcError::InvalidConfig(
                "client_cache_pages must be positive when set",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_headline_setup() {
        let cfg = DbConfig::default();
        assert_eq!(cfg.page_size, 8192);
        assert_eq!(cfg.partition_pages, 48);
        assert_eq!(cfg.buffer_pages, 48);
        assert_eq!(cfg.max_weight, 16);
        assert!(cfg.gc_overwrite_threshold >= 150 && cfg.gc_overwrite_threshold <= 300);
        cfg.validate().unwrap();
    }

    #[test]
    fn with_partition_pages_tracks_buffer() {
        let cfg = DbConfig::default().with_partition_pages(100);
        assert_eq!(cfg.partition_pages, 100);
        assert_eq!(cfg.buffer_pages, 100);
        let cfg = cfg.with_buffer_pages(24);
        assert_eq!(cfg.partition_pages, 100);
        assert_eq!(cfg.buffer_pages, 24);
    }

    #[test]
    fn derived_capacities() {
        let cfg = DbConfig::default().with_partition_pages(24);
        assert_eq!(cfg.partition_bytes(), Bytes::from_kib(24 * 8));
        assert_eq!(cfg.buffer_bytes(), Bytes::from_kib(24 * 8));
    }

    #[test]
    fn validation_rejects_zero_fields() {
        assert!(DbConfig::default().with_page_size(0).validate().is_err());
        assert!(DbConfig::default()
            .with_partition_pages(0)
            .validate()
            .is_err());
        assert!(DbConfig::default().with_buffer_pages(0).validate().is_err());
        assert!(DbConfig::default()
            .with_gc_overwrite_threshold(0)
            .validate()
            .is_err());
        assert!(DbConfig::default().with_max_weight(0).validate().is_err());
    }
}
